"""Tests for the failure minimizer."""

import pytest

from repro.errors import IRError
from repro.ir import serialize
from repro.testing.generators import case_rng, generate_graph
from repro.testing.minimize import minimize_graph


def _has_op(graph, op_name):
    return any(n.op == op_name for n in graph.op_nodes())


class TestMinimization:
    def test_shrinks_to_predicate_core(self):
        # Find a fuzz graph containing a matmul/dense op, then shrink with
        # "still contains one" as the failure predicate.
        graph = None
        for i in range(50):
            g = generate_graph(case_rng(200, i))
            if _has_op(g, "dense") and len(g.op_nodes()) >= 10:
                graph = g
                break
        assert graph is not None
        result = minimize_graph(graph, lambda g: _has_op(g, "dense"))
        assert _has_op(result.graph, "dense")
        assert result.minimized_ops <= result.original_ops
        assert result.minimized_ops <= 4
        result.graph.validate()

    def test_minimized_graph_still_executes(self):
        from repro.ir.interpreter import make_inputs, run_graph

        graph = generate_graph(case_rng(200, 1))
        result = minimize_graph(graph, lambda g: len(g.op_nodes()) >= 1)
        outputs = run_graph(result.graph, make_inputs(result.graph))
        assert outputs

    def test_non_failing_input_rejected(self):
        graph = generate_graph(case_rng(200, 2))
        with pytest.raises(IRError):
            minimize_graph(graph, lambda g: False)

    def test_deterministic(self):
        graph = generate_graph(case_rng(200, 3))
        pred = lambda g: len(g.op_nodes()) >= 1
        a = minimize_graph(graph, pred)
        b = minimize_graph(graph, pred)
        assert serialize.dumps(a.graph) == serialize.dumps(b.graph)

    def test_evaluation_budget_respected(self):
        graph = generate_graph(case_rng(200, 4))
        calls = 0

        def pred(g):
            nonlocal calls
            calls += 1
            return True

        minimize_graph(graph, pred, max_evaluations=10)
        assert calls <= 10
