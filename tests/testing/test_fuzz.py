"""Tests for the fuzz campaign driver, artifacts, and the CLI command.

The acceptance-grade mutation test lives here too: a deliberately
injected scheduler bug (a placement mutation) must be caught by the
invariant validator and shrink to a repro of at most 8 ops.
"""

import json

import pytest

from repro.cli import main
from repro.devices import default_machine
from repro.ir import serialize
from repro.testing.fuzz import load_artifact, replay_case, run_campaign
from repro.testing.generators import GeneratorConfig, case_rng, generate_graph
from repro.testing.minimize import minimize_graph
from repro.testing.oracle import run_differential


@pytest.fixture(scope="module")
def machine():
    return default_machine(noisy=False)


SMOKE_CONFIG = GeneratorConfig(max_ops=10)


class TestCampaign:
    def test_clean_campaign(self, machine):
        report = run_campaign(0, 6, config=SMOKE_CONFIG, machine=machine)
        assert report.ok, "\n".join(f.describe() for f in report.failures)
        assert report.cases_run == 6
        assert "OK" in report.summary()

    def test_time_budget_stops_early(self, machine):
        report = run_campaign(
            0, 10_000, config=SMOKE_CONFIG, machine=machine, time_budget_s=0.0
        )
        assert report.cases_run < 10_000

    def test_replay_matches_campaign(self, machine):
        diff = replay_case(0, 2, config=None, machine=machine)
        assert diff.ok, diff.summary()


class TestInjectedSchedulerBug:
    """Acceptance: a deliberate scheduler mutation is caught and shrunk."""

    @staticmethod
    def _buggy(placement, partition):
        # The injected bug: the scheduler "forgets" to place one subgraph
        # (what a broken correction swap that drops an entry would do).
        broken = dict(placement)
        broken.pop(sorted(broken)[0])
        return broken

    def test_caught_and_minimized_to_small_repro(self, machine, tmp_path):
        graph = generate_graph(case_rng(300, 5))

        def failing(g):
            return not run_differential(
                g, machine=machine, placement_transform=self._buggy
            ).ok

        assert failing(graph), "injected bug must be caught by the validator"
        report = run_differential(
            graph, machine=machine, placement_transform=self._buggy
        )
        assert any("never placed" in v for v in report.violations)

        result = minimize_graph(graph, failing)
        assert len(result.graph.op_nodes()) <= 8
        assert failing(result.graph)

        # The minimized repro round-trips through a serialized artifact.
        path = tmp_path / "repro.json"
        path.write_text(serialize.dumps(result.graph))
        replayed = serialize.loads(path.read_text())
        assert failing(replayed)


class TestArtifacts:
    def test_failure_artifact_round_trip(self, machine, tmp_path):
        # Drive the artifact path with a synthetic always-failing oracle by
        # using the campaign's own machinery on a mutated differential run.
        from repro.testing.fuzz import FuzzFailure, _write_artifact

        graph = generate_graph(case_rng(300, 1))
        minimized = minimize_graph(graph, lambda g: True).graph
        failure = FuzzFailure(
            campaign_seed=300,
            index=1,
            problems=["synthetic: output 0 diverges"],
            graph=graph,
            minimized=minimized,
            minimized_problems=["synthetic: output 0 diverges"],
        )
        path = _write_artifact(tmp_path, failure)
        payload = json.loads(path.read_text())
        assert payload["campaign_seed"] == 300
        assert payload["problems"]

        original, shrunk = load_artifact(path)
        assert serialize.dumps(original) == serialize.dumps(graph)
        assert shrunk is not None
        assert serialize.dumps(shrunk) == serialize.dumps(minimized)


class TestCli:
    def test_fuzz_subcommand_clean(self, capsys):
        rc = main(["fuzz", "--seed", "0", "--count", "3", "--max-ops", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK" in out

    def test_fuzz_subcommand_verbose(self, capsys):
        rc = main(
            ["fuzz", "--seed", "1", "--count", "2", "--max-ops", "6",
             "--verbose"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "case" in out


@pytest.mark.fuzz
class TestFuzzCampaignFull:
    """The CI smoke corpus: seeded, time-bounded, artifact-emitting."""

    def test_seed0_corpus_conforms(self, machine, tmp_path):
        report = run_campaign(
            0,
            50,
            machine=machine,
            artifact_dir=tmp_path,
            time_budget_s=60.0,
        )
        assert report.ok, "\n".join(f.describe() for f in report.failures)
        assert report.cases_run >= 40  # budget leaves slack on slow runners
