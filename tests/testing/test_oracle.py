"""Tests for the differential multi-executor oracle."""

import numpy as np
import pytest

from repro.devices import default_machine, make_mesh
from repro.models import build_model
from repro.testing.generators import case_rng, generate_graph
from repro.testing.oracle import alternating_placement, run_differential


@pytest.fixture(scope="module")
def machine():
    return default_machine(noisy=False)


@pytest.fixture(scope="module")
def mesh3():
    return make_mesh(num_gpus=2, noisy=False)


class TestConformingGraphs:
    def test_fuzz_graph_all_paths_agree(self, machine):
        graph = generate_graph(case_rng(100, 0))
        report = run_differential(graph, machine=machine)
        assert report.ok, report.summary()
        # Scheduled arm + both single-device arms always present.
        assert {"single:cpu", "single:gpu", "simulator", "threaded",
                "resilient"} <= set(report.outcomes)
        assert "OK" in report.summary()

    def test_zoo_model_all_paths_agree(self, machine):
        graph = build_model("wide_deep", tiny=True)
        report = run_differential(graph, machine=machine)
        assert report.ok, report.summary()

    def test_alternating_arm_covers_cross_device(self, machine):
        graph = build_model("wide_deep", tiny=True)
        report = run_differential(graph, machine=machine)
        # The forced alternating placement spans both devices whenever the
        # partition has more than one subgraph.
        alt_names = [n for n in report.outcomes if n.endswith("@alt")]
        assert alt_names, "expected a forced cross-device arm"

    def test_outputs_recorded_exactly(self, machine):
        from repro.ir.interpreter import make_inputs, run_graph

        graph = generate_graph(case_rng(100, 1))
        report = run_differential(graph, machine=machine)
        ref = run_graph(graph, make_inputs(graph, seed=0), seed=0)
        got = report.outcomes["threaded"].outputs
        for a, b in zip(got, ref):
            assert a.dtype == b.dtype
            assert np.array_equal(a, b)


class TestMeshArm:
    """The oracle generalizes past the paper pair: every arm (scheduled,
    per-device singles, threaded, resilient, forced alternating) must
    agree on an N-device mesh too."""

    def test_fuzz_graph_all_paths_agree_on_3dev_mesh(self, mesh3):
        graph = generate_graph(case_rng(100, 5))
        report = run_differential(graph, machine=mesh3)
        assert report.ok, report.summary()
        # One single-device arm per mesh device.
        assert {"single:cpu", "single:gpu0", "single:gpu1", "simulator",
                "threaded", "resilient"} <= set(report.outcomes)

    def test_zoo_model_all_paths_agree_on_3dev_mesh(self, mesh3):
        graph = build_model("mtdnn", tiny=True)
        report = run_differential(graph, machine=mesh3)
        assert report.ok, report.summary()

    def test_alternating_arm_spans_mesh(self, mesh3):
        from repro.core import partition_graph

        graph = build_model("mtdnn", tiny=True)
        partition = partition_graph(graph)
        alt = alternating_placement(partition, mesh3.device_names)
        assert set(alt) == {sg.id for sg in partition.subgraphs}
        if len(alt) >= 3:
            assert set(alt.values()) == {"cpu", "gpu0", "gpu1"}

    def test_heterogeneous_mesh_agrees(self):
        mesh = make_mesh(num_gpus=2, noisy=False, gpu_slowdowns=(1.0, 1.6))
        graph = generate_graph(case_rng(100, 6))
        report = run_differential(graph, machine=mesh)
        assert report.ok, report.summary()

    def test_invalid_device_caught_on_mesh(self, mesh3):
        graph = generate_graph(case_rng(100, 7))

        def wrong_device(placement, partition):
            broken = dict(placement)
            broken[sorted(broken)[0]] = "gpu7"
            return broken

        report = run_differential(
            graph, machine=mesh3, placement_transform=wrong_device
        )
        assert not report.ok
        assert any("invalid device" in v for v in report.violations)


class TestMutationDetection:
    def test_dropped_subgraph_caught(self, machine):
        graph = generate_graph(case_rng(100, 2))

        def drop_one(placement, partition):
            broken = dict(placement)
            broken.pop(sorted(broken)[0])
            return broken

        report = run_differential(
            graph, machine=machine, placement_transform=drop_one
        )
        assert not report.ok
        assert any("never placed" in v for v in report.violations)

    def test_invalid_device_caught(self, machine):
        graph = generate_graph(case_rng(100, 3))

        def wrong_device(placement, partition):
            broken = dict(placement)
            broken[sorted(broken)[0]] = "fpga"
            return broken

        report = run_differential(
            graph, machine=machine, placement_transform=wrong_device
        )
        assert not report.ok
        assert any("invalid device" in v for v in report.violations)

    def test_identity_transform_stays_clean(self, machine):
        graph = generate_graph(case_rng(100, 4))
        report = run_differential(
            graph, machine=machine, placement_transform=lambda p, part: p
        )
        assert report.ok, report.summary()


class TestAlternatingPlacement:
    def test_round_robin_over_subgraphs(self, machine):
        from repro.core import partition_graph

        graph = build_model("wide_deep", tiny=True)
        partition = partition_graph(graph)
        alt = alternating_placement(partition)
        assert set(alt) == {sg.id for sg in partition.subgraphs}
        if len(alt) > 1:
            assert set(alt.values()) == {"cpu", "gpu"}
