"""Tests for the plan/schedule invariant validator."""

import dataclasses

import pytest

from repro.core import CompilerAwareProfiler, partition_graph
from repro.core.placement import build_hetero_plan
from repro.core.scheduler import GreedyCorrectionScheduler
from repro.errors import InvariantViolation
from repro.ir.interpreter import make_inputs
from repro.models import build_model
from repro.runtime.simulator import simulate
from repro.testing.invariants import (
    assert_valid,
    check_execution,
    check_partition,
    check_placement,
    check_plan,
    check_task_order,
    validate_schedule,
)


@pytest.fixture(scope="module")
def pipeline(machine_module):
    graph = build_model("wide_deep", tiny=True)
    partition = partition_graph(graph)
    profiles = CompilerAwareProfiler(machine=machine_module).profile_partition(
        partition
    )
    schedule = GreedyCorrectionScheduler(machine=machine_module).schedule(
        graph, partition, profiles
    )
    plan = build_hetero_plan(graph, partition, profiles, schedule.placement)
    return graph, partition, profiles, schedule.placement, plan


@pytest.fixture(scope="module")
def machine_module():
    from repro.devices import default_machine

    return default_machine(noisy=False)


class TestCleanPipeline:
    def test_everything_valid(self, pipeline, machine_module):
        graph, partition, _, placement, plan = pipeline
        result = simulate(plan, machine_module, inputs=make_inputs(graph))
        assert validate_schedule(graph, partition, placement, plan, result) == []

    def test_assert_valid_passes_on_empty(self):
        assert_valid([])  # no raise

    def test_assert_valid_raises_with_all_violations(self):
        with pytest.raises(InvariantViolation) as excinfo:
            assert_valid(["first", "second", "third"])
        assert excinfo.value.violations == ["first", "second", "third"]
        assert "+2 more" in str(excinfo.value)


class TestPlacementChecks:
    def test_missing_subgraph_caught(self, pipeline):
        _, partition, _, placement, _ = pipeline
        broken = dict(placement)
        broken.pop(next(iter(broken)))
        assert any("never placed" in v for v in check_placement(partition, broken))

    def test_unknown_subgraph_caught(self, pipeline):
        _, partition, _, placement, _ = pipeline
        broken = dict(placement, ghost="cpu")
        assert any("unknown" in v for v in check_placement(partition, broken))

    def test_invalid_device_caught(self, pipeline):
        _, partition, _, placement, _ = pipeline
        broken = dict(placement)
        broken[next(iter(broken))] = "tpu"
        assert any("invalid device" in v for v in check_placement(partition, broken))


class TestPartitionChecks:
    def test_clean_partition_passes(self, pipeline):
        graph, partition, *_ = pipeline
        assert check_partition(graph, partition) == []

    def test_partition_of_wrong_graph_caught(self, pipeline):
        _, partition, *_ = pipeline
        other = build_model("siamese", tiny=True)
        violations = check_partition(other, partition)
        assert violations  # coverage cannot match a different model


class TestPlanChecks:
    def test_clean_plan_passes(self, pipeline):
        graph, partition, _, placement, plan = pipeline
        assert check_plan(plan, graph=graph, partition=partition,
                          placement=placement) == []

    def test_non_topological_order_caught(self, pipeline):
        *_, plan = pipeline
        shuffled = dataclasses.replace(plan)
        shuffled.tasks = list(reversed(plan.tasks))
        assert any(
            "not topological" in v or "does not precede" in v
            for v in check_plan(shuffled)
        )

    def test_device_disagreement_with_placement_caught(self, pipeline):
        graph, partition, _, placement, plan = pipeline
        flipped = dict(placement)
        first = plan.tasks[0].task_id
        flipped[first] = "gpu" if plan.tasks[0].device == "cpu" else "cpu"
        assert any(
            "placement says" in v
            for v in check_plan(plan, placement=flipped)
        )

    def test_missing_model_output_caught(self, pipeline):
        graph, *_ , plan = pipeline
        truncated = dataclasses.replace(plan)
        truncated.outputs = plan.outputs[:-1] if len(plan.outputs) > 1 else []
        violations = check_plan(truncated, graph=graph)
        assert any("plan outputs compute" in v for v in violations)


class TestTaskOrderChecks:
    def test_executor_orders_pass(self, pipeline, machine_module):
        graph, *_ , plan = pipeline
        from repro.runtime.threaded import ThreadedExecutor

        result = ThreadedExecutor(plan).run(make_inputs(graph))
        assert check_task_order(plan, result.task_order) == []

    def test_dependency_inversion_caught(self, pipeline):
        *_, plan = pipeline
        order = [t.task_id for t in plan.tasks]
        inverted = list(reversed(order))
        if len(order) > 1:
            assert any(
                "before its" in v for v in check_task_order(plan, inverted)
            )

    def test_missing_and_duplicate_completions_caught(self, pipeline):
        *_, plan = pipeline
        order = [t.task_id for t in plan.tasks]
        assert any("never completed" in v for v in check_task_order(plan, order[:-1]))
        assert any("2 times" in v for v in check_task_order(plan, order + order[-1:]))


class TestExecutionChecks:
    def test_clean_simulation_passes(self, pipeline, machine_module):
        graph, *_ , plan = pipeline
        result = simulate(plan, machine_module, inputs=make_inputs(graph))
        assert check_execution(plan, result) == []

    def test_tampered_record_device_caught(self, pipeline, machine_module):
        graph, *_ , plan = pipeline
        result = simulate(plan, machine_module, inputs=make_inputs(graph))
        rec = result.tasks[0]
        result.tasks[0] = dataclasses.replace(
            rec, device="gpu" if rec.device == "cpu" else "cpu"
        )
        assert check_execution(plan, result)

    def test_dropped_transfer_caught(self, pipeline, machine_module):
        graph, *_ , plan = pipeline
        if len(plan.devices_used()) < 2:
            pytest.skip("single-device plan has no transfers")
        result = simulate(plan, machine_module, inputs=make_inputs(graph))
        assert result.transfers, "cross-device plan must transfer"
        result.transfers.pop()
        assert check_execution(plan, result)
