"""Oracle native arms: skip markers, ULP policy, and backend plumbing.

The differential oracle grew two native arms (``native`` — direct module
run on ctypes kernels — and ``native:threaded`` — the same kernels
dispatched by the threaded executor).  These tests pin the arm contract:

* both arms run and agree when a C compiler is present;
* without a compiler they *skip visibly* (``skipped`` outcome flag and a
  ``[SKIPPED: ...]`` marker in the summary) instead of silently passing;
* exact-class kernels are compared bit-identically, inexact-class
  kernels under the documented per-op ULP budgets;
* ``backend="native"`` switches every compiled arm onto native kernels.
"""

import numpy as np
import pytest

from repro.compiler.native import native_available
from repro.compiler.native.policy import (
    EXACT_OPS,
    ULP_BUDGETS,
    graph_ulp_budget,
    max_ulp_diff,
    ulp_close,
)
from repro.compiler.native.runtime import ENV_DISABLE, find_compiler
from repro.devices import default_machine
from repro.ir import GraphBuilder
from repro.models import build_model
from repro.testing.oracle import EXECUTOR_NAMES, run_differential


@pytest.fixture(scope="module")
def machine():
    return default_machine(noisy=False)


class TestNativeArms:
    def test_native_arms_registered(self):
        assert "native" in EXECUTOR_NAMES
        assert "native:threaded" in EXECUTOR_NAMES

    @pytest.mark.skipif(not native_available(), reason="no C compiler")
    def test_zoo_model_native_arms_agree(self, machine):
        report = run_differential(build_model("mtdnn", tiny=True), machine=machine)
        assert report.ok, report.summary()
        native = report.outcomes["native"]
        assert native.error is None and not native.skipped
        assert native.outputs is not None
        threaded = report.outcomes["native:threaded"]
        assert threaded.error is None and not threaded.skipped

    def test_arms_skip_visibly_without_compiler(self, machine, monkeypatch):
        monkeypatch.setenv(ENV_DISABLE, "1")
        find_compiler.cache_clear()
        try:
            report = run_differential(
                build_model("wide_deep", tiny=True), machine=machine
            )
            assert report.ok, report.summary()
            assert set(report.skipped_arms) == {"native", "native:threaded"}
            assert "[SKIPPED: native, native:threaded" in report.summary()
        finally:
            monkeypatch.delenv(ENV_DISABLE)
            find_compiler.cache_clear()

    @pytest.mark.skipif(not native_available(), reason="no C compiler")
    def test_backend_native_runs_all_compiled_arms_on_native(self, machine):
        report = run_differential(
            build_model("mobilenet", tiny=True), machine=machine, backend="native"
        )
        assert report.ok, report.summary()


class TestUlpPolicy:
    def test_exact_and_budgeted_classes_are_disjoint(self):
        assert not EXACT_OPS & set(ULP_BUDGETS)

    def test_core_arith_is_exact_class(self):
        for op in ("add", "subtract", "multiply", "divide", "relu", "concat"):
            assert op in EXACT_OPS, op

    def test_reassociating_ops_have_budgets(self):
        for op in ("dense", "matmul", "conv2d", "reduce_sum", "softmax", "lstm"):
            assert ULP_BUDGETS.get(op, 0) > 0, op

    def test_max_ulp_diff_zero_for_identical(self):
        x = np.linspace(-3, 3, 64, dtype=np.float32)
        assert max_ulp_diff(x, x.copy()) == 0.0

    def test_max_ulp_diff_counts_neighbor_floats(self):
        x = np.float32(1.0)
        assert max_ulp_diff(np.array([x]), np.array([np.nextafter(x, 2)])) == 1.0
        assert ulp_close(np.array([x]), np.array([np.nextafter(x, 2)]), budget=1)

    def test_nan_positions_must_match(self):
        a = np.array([np.nan, 1.0], dtype=np.float32)
        b = np.array([np.nan, 1.0], dtype=np.float32)
        assert max_ulp_diff(a, b) == 0.0
        c = np.array([1.0, np.nan], dtype=np.float32)
        assert max_ulp_diff(a, c) == np.inf

    def test_graph_budget_sums_per_op_and_scales_recurrent(self):
        b = GraphBuilder("budget")
        x = b.input("x", (2, 6, 8))
        w_ih = b.const((32, 8), name="w_ih")
        w_hh = b.const((32, 8), name="w_hh")
        bias = b.const((32,), name="bias")
        h = b.op("lstm", x, w_ih, w_hh, bias, hidden_size=8)
        g = b.build(h)
        # A recurrent op's budget scales with sequence length (6 steps).
        assert graph_ulp_budget(g) == 6 * ULP_BUDGETS["lstm"]

    def test_exact_graph_has_zero_budget(self):
        b = GraphBuilder("exact")
        x = b.input("x", (4, 4))
        g = b.build(b.op("relu", b.op("add", x, x)))
        assert graph_ulp_budget(g) == 0
