"""Tests for the seeded graph generator."""

import numpy as np
import pytest

from repro.errors import IRError
from repro.ir import serialize
from repro.ir.interpreter import make_inputs, run_graph
from repro.testing.generators import (
    DEFAULT_FAMILIES,
    GeneratorConfig,
    case_rng,
    generate_cases,
    generate_graph,
)


class TestDeterminism:
    def test_same_seed_same_graph(self):
        a = serialize.dumps(generate_graph(7))
        b = serialize.dumps(generate_graph(7))
        assert a == b

    def test_case_rng_is_position_independent(self):
        """Case i can be regenerated without replaying cases 0..i-1."""
        from_stream = [c.graph for c in generate_cases(3, 5)]
        direct = generate_graph(case_rng(3, 4), name=from_stream[4].name)
        assert serialize.dumps(from_stream[4]) == serialize.dumps(direct)

    def test_different_seeds_differ(self):
        graphs = {serialize.dumps(generate_graph(s)) for s in range(8)}
        assert len(graphs) > 1


class TestValidity:
    def test_generated_graphs_are_valid_and_fully_live(self):
        for case in generate_cases(11, 20):
            g = case.graph
            g.validate()
            # The sink-output construction keeps every op reachable.
            assert len(g.pruned().op_nodes()) == len(g.op_nodes())

    def test_generated_graphs_execute(self):
        for case in generate_cases(13, 10):
            outputs = run_graph(case.graph, make_inputs(case.graph))
            assert len(outputs) == len(case.graph.outputs)
            for out in outputs:
                assert np.all(np.isfinite(out))


class TestCoverage:
    def test_all_families_appear_across_a_campaign(self):
        ops = set()
        for case in generate_cases(17, 60):
            ops |= {n.op for n in case.graph.op_nodes()}
        assert "dense" in ops and "matmul" in ops
        assert ops & {"reduce_sum", "reduce_mean", "reduce_max", "reduce_min",
                      "softmax", "log_softmax"}
        assert ops & {"lstm", "gru"}
        assert "strided_slice" in ops and "concat" in ops

    def test_family_weights_disable_families(self):
        config = GeneratorConfig(
            min_ops=8, max_ops=16, families={"unary": 1.0}
        )
        for case in generate_cases(19, 10, config):
            assert all(
                n.op in ("relu", "tanh", "sigmoid", "negative", "abs",
                         "identity", "exp", "add")
                for n in case.graph.op_nodes()
            )

    def test_op_count_respects_bounds_roughly(self):
        config = GeneratorConfig(min_ops=5, max_ops=10)
        for case in generate_cases(23, 10, config):
            # Families may emit up to three ops per step, plus sink folding.
            assert 5 <= len(case.graph.op_nodes()) <= 10 + 4


class TestConfigValidation:
    def test_bad_op_range_rejected(self):
        with pytest.raises(IRError):
            GeneratorConfig(min_ops=5, max_ops=2)

    def test_unknown_family_rejected(self):
        with pytest.raises(IRError):
            GeneratorConfig(families={"quantum": 1.0})

    def test_all_zero_weights_rejected(self):
        with pytest.raises(IRError):
            GeneratorConfig(families={k: 0.0 for k in DEFAULT_FAMILIES})
