"""Tests for the ResNet builder."""

import numpy as np
import pytest

from repro.errors import IRError
from repro.ir import make_inputs, run_graph
from repro.models import ResNetConfig, build_resnet


class TestResNet:
    def test_supported_depths(self):
        for depth in (18, 34, 50, 101):
            cfg = ResNetConfig(depth=depth, image_size=32, num_classes=10)
            g = build_resnet(cfg)
            g.validate()

    def test_unsupported_depth_rejected(self):
        with pytest.raises(IRError):
            ResNetConfig(depth=42)

    def test_output_is_distribution(self):
        cfg = ResNetConfig(depth=18, image_size=32, num_classes=10)
        g = build_resnet(cfg)
        (out,) = run_graph(g, make_inputs(g))
        assert out.shape == (1, 10)
        np.testing.assert_allclose(out.sum(), 1.0, rtol=1e-5)

    def test_conv_counts(self):
        # ResNet-18: stem + 8 blocks x 2 convs + 3 downsamples = 20
        g18 = build_resnet(ResNetConfig(depth=18, image_size=32))
        convs = sum(1 for n in g18.op_nodes() if n.op == "conv2d")
        assert convs == 20

    def test_bottleneck_widths(self):
        g = build_resnet(ResNetConfig(depth=50, image_size=32, num_classes=4))
        # Bottleneck expansion: final stage is 2048-wide.
        gap = next(n for n in g.op_nodes() if n.op == "global_avg_pool2d")
        assert g.node(gap.inputs[0]).ty.shape[1] == 2048

    def test_param_count_ordering(self):
        p18 = build_resnet(ResNetConfig(depth=18, image_size=32)).num_params()
        p34 = build_resnet(ResNetConfig(depth=34, image_size=32)).num_params()
        p101 = build_resnet(ResNetConfig(depth=101, image_size=32)).num_params()
        assert p18 < p34 < p101

    def test_full_size_flop_magnitude(self):
        # ResNet-18 at 224x224: ~3.6 GFLOPs (2 FLOPs per MAC).
        g = build_resnet(ResNetConfig(depth=18))
        assert 2.5e9 < g.total_flops() < 5e9

    def test_batch_dimension(self):
        g = build_resnet(ResNetConfig(depth=18, image_size=32, batch=3))
        assert g.output_types()[0].shape[0] == 3
