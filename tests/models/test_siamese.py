"""Tests for the Siamese network builder."""

import numpy as np
import pytest

from repro.ir import make_inputs, run_graph
from repro.models import build_siamese
from repro.models.zoo import tiny_config


@pytest.fixture(scope="module")
def graph():
    return build_siamese(tiny_config("siamese"))


class TestSiamese:
    def test_two_inputs(self, graph):
        assert {n.id for n in graph.input_nodes()} == {"query", "passage"}

    def test_score_in_unit_interval(self, graph):
        (score,) = run_graph(graph, make_inputs(graph))
        assert score.shape[-1] == 1
        assert np.all((score > 0) & (score < 1))

    def test_weight_sharing_symmetry(self, graph):
        # Shared towers: swapping the two inputs must not change |l - r|,
        # hence the score is symmetric.
        feeds = make_inputs(graph)
        swapped = {"query": feeds["passage"], "passage": feeds["query"]}
        a = run_graph(graph, feeds)[0]
        b = run_graph(graph, swapped)[0]
        np.testing.assert_allclose(a, b, rtol=1e-5)

    def test_identical_inputs_give_known_distance(self, graph):
        feeds = make_inputs(graph)
        same = {"query": feeds["query"], "passage": feeds["query"]}
        (score,) = run_graph(graph, same)
        # |l - r| = 0 -> score = sigmoid(bias term) for the dense head.
        params = graph.materialize_params(0)
        bias = params["score_b"]
        np.testing.assert_allclose(
            score.reshape(-1), 1.0 / (1.0 + np.exp(-bias)), rtol=1e-5
        )

    def test_towers_share_parameters(self, graph):
        # Exactly one set of tower weights despite two towers.
        lstm_weight_consts = [
            n.id for n in graph.const_nodes() if n.id.startswith("tower_l")
        ]
        n_layers = tiny_config("siamese").num_layers
        assert len(lstm_weight_consts) == 3 * n_layers

    def test_two_lstms_per_layer(self, graph):
        n_layers = tiny_config("siamese").num_layers
        lstms = [n for n in graph.op_nodes() if n.op == "lstm"]
        assert len(lstms) == 2 * n_layers
