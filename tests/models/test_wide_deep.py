"""Tests for the Wide-and-Deep model builder."""

import pytest

from repro.ir import make_inputs, run_graph
from repro.models import WideDeepConfig, build_wide_deep


@pytest.fixture(scope="module")
def tiny_cfg():
    from repro.models.zoo import tiny_config

    return tiny_config("wide_deep")


class TestStructure:
    def test_four_inputs(self, tiny_cfg):
        g = build_wide_deep(tiny_cfg)
        names = {n.id for n in g.input_nodes()}
        assert names == {"wide_features", "deep_features", "text_embeddings", "image"}

    def test_single_probability_output(self, tiny_cfg):
        g = build_wide_deep(tiny_cfg)
        outs = run_graph(g, make_inputs(g))
        assert outs[0].shape == (tiny_cfg.batch, tiny_cfg.num_classes)
        assert outs[0].sum() == pytest.approx(tiny_cfg.batch, rel=1e-4)

    def test_rnn_layer_count(self, tiny_cfg):
        for n in (1, 2, 4):
            g = build_wide_deep(tiny_cfg.with_rnn_layers(n))
            assert sum(1 for nd in g.op_nodes() if nd.op == "lstm") == n

    def test_ffn_layer_count(self, tiny_cfg):
        g1 = build_wide_deep(tiny_cfg.with_ffn_layers(1))
        g4 = build_wide_deep(tiny_cfg.with_ffn_layers(4))
        d1 = sum(1 for n in g1.op_nodes() if n.op == "dense")
        d4 = sum(1 for n in g4.op_nodes() if n.op == "dense")
        assert d4 == d1 + 3

    def test_cnn_depth_variants(self, tiny_cfg):
        convs18 = sum(
            1 for n in build_wide_deep(tiny_cfg.with_cnn_depth(18)).op_nodes()
            if n.op == "conv2d"
        )
        convs34 = sum(
            1 for n in build_wide_deep(tiny_cfg.with_cnn_depth(34)).op_nodes()
            if n.op == "conv2d"
        )
        assert convs34 > convs18

    def test_batch_size_propagates(self, tiny_cfg):
        g = build_wide_deep(tiny_cfg.with_batch(4))
        for node in g.input_nodes():
            assert node.ty.shape[0] == 4

    def test_flops_increase_with_depth(self, tiny_cfg):
        f18 = build_wide_deep(tiny_cfg.with_cnn_depth(18)).total_flops()
        f50 = build_wide_deep(tiny_cfg.with_cnn_depth(50)).total_flops()
        assert f50 > f18

    def test_default_config_matches_paper_defaults(self):
        cfg = WideDeepConfig()
        assert cfg.batch == 1
        assert cfg.rnn_layers == 1
        assert cfg.cnn_depth == 18
