"""Tests for the shared layer builders."""

import numpy as np
import pytest

from repro.ir import GraphBuilder, make_inputs, run_graph
from repro.models.common import (
    conv_bn_relu,
    dense_layer,
    last_timestep,
    lstm_layer,
    mlp,
    stacked_lstm,
    transformer_encoder_layer,
)


class TestDenseAndMLP:
    def test_dense_layer_shape(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 8))
        y = dense_layer(b, x, 5, "fc")
        assert y.shape == (2, 5)

    def test_dense_no_activation(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 8))
        y = dense_layer(b, x, 5, "fc", activation=None)
        g = b.build(y)
        assert all(n.op != "relu" for n in g.op_nodes())

    def test_mlp_final_activation(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 4))
        y = mlp(b, x, [8, 8, 2], "m", final_activation="sigmoid")
        g = b.build(y)
        (out,) = run_graph(g, make_inputs(g))
        assert np.all((out > 0) & (out < 1))

    def test_mlp_layer_count(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 4))
        y = mlp(b, x, [8, 8, 8], "m")
        g = b.build(y)
        assert sum(1 for n in g.op_nodes() if n.op == "dense") == 3


class TestRecurrentHelpers:
    def test_lstm_layer_shapes(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 7, 4))
        seq = lstm_layer(b, x, 6, "l", return_sequences=True)
        assert seq.shape == (2, 7, 6)

    def test_stacked_lstm_final_shape(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 7, 4))
        y = stacked_lstm(b, x, 6, 3, "s", return_sequences=False)
        assert y.shape == (2, 6)

    def test_last_timestep(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 7, 4))
        y = last_timestep(b, x)
        g = b.build(y)
        feeds = make_inputs(g)
        (out,) = run_graph(g, feeds)
        np.testing.assert_allclose(out, feeds["x"][:, -1, :])


class TestConvHelpers:
    def test_conv_bn_relu_nonnegative(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 3, 8, 8))
        y = conv_bn_relu(b, x, 4, 3, 1, 1, "c")
        g = b.build(y)
        (out,) = run_graph(g, make_inputs(g))
        assert out.shape == (1, 4, 8, 8)
        assert np.all(out >= 0)

    def test_conv_bn_no_relu_signed(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 3, 8, 8))
        y = conv_bn_relu(b, x, 4, 3, 1, 1, "c", relu=False)
        g = b.build(y)
        (out,) = run_graph(g, make_inputs(g))
        assert (out < 0).any()


class TestTransformerLayer:
    def test_shape_preserved(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 6, 8))
        y = transformer_encoder_layer(b, x, num_heads=2, d_ff=16, prefix="t")
        assert y.shape == (2, 6, 8)

    def test_indivisible_heads_rejected(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 6, 10))
        with pytest.raises(ValueError):
            transformer_encoder_layer(b, x, num_heads=3, d_ff=16, prefix="t")

    def test_output_is_normalized(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 4, 8))
        y = transformer_encoder_layer(b, x, num_heads=2, d_ff=16, prefix="t")
        g = b.build(y)
        (out,) = run_graph(g, make_inputs(g))
        # Final layer_norm with unit-ish gamma: per-token variance near the
        # gamma scale; just assert it's finite and non-degenerate.
        assert np.isfinite(out).all()
        assert out.std() > 0
