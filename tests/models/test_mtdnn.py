"""Tests for the MT-DNN builder."""

import numpy as np
import pytest

from repro.ir import make_inputs, run_graph
from repro.models import MTDNNConfig, build_mtdnn
from repro.models.zoo import tiny_config


@pytest.fixture(scope="module")
def graph():
    return build_mtdnn(tiny_config("mtdnn"))


class TestMTDNN:
    def test_one_output_per_task(self, graph):
        cfg = tiny_config("mtdnn")
        assert len(graph.outputs) == cfg.num_tasks

    def test_outputs_are_distributions(self, graph):
        outs = run_graph(graph, make_inputs(graph))
        for out in outs:
            np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-4)

    def test_token_input_is_integer(self, graph):
        (tokens,) = graph.input_nodes()
        assert tokens.ty.dtype.name == "int64"

    def test_encoder_layer_count(self):
        cfg = tiny_config("mtdnn")
        g2 = build_mtdnn(cfg)
        from dataclasses import replace

        g4 = build_mtdnn(replace(cfg, num_layers=4))
        ln2 = sum(1 for n in g2.op_nodes() if n.op == "layer_norm")
        ln4 = sum(1 for n in g4.op_nodes() if n.op == "layer_norm")
        assert ln4 == 2 * ln2  # two layer_norms per encoder layer

    def test_head_count_scales(self):
        from dataclasses import replace

        cfg = tiny_config("mtdnn")
        g = build_mtdnn(replace(cfg, num_tasks=5))
        assert len(g.outputs) == 5

    def test_heads_differ_numerically(self, graph):
        # Independent task heads have independent weights.
        outs = run_graph(graph, make_inputs(graph))
        assert not np.allclose(outs[0], outs[1])

    def test_d_model_divisibility_checked(self):
        cfg = MTDNNConfig(d_model=10, num_heads=3)
        with pytest.raises(ValueError):
            build_mtdnn(cfg)

    def test_attention_uses_batch_matmul(self, graph):
        ops = {n.op for n in graph.op_nodes()}
        assert "batch_matmul" in ops and "softmax" in ops
