"""Tests for MobileNet-V1 and the depthwise_conv2d operator."""

import numpy as np
import pytest

from repro.errors import IRError, ShapeError
from repro.ir import make_inputs, run_graph
from repro.ir.dtype import TensorType
from repro.ir.ops import get_op
from repro.models import MobileNetConfig, build_mobilenet
from repro.models.zoo import tiny_config


class TestDepthwiseConvOp:
    def test_matches_naive(self, rng):
        x = rng.standard_normal((1, 4, 6, 6)).astype(np.float32)
        w = rng.standard_normal((4, 1, 3, 3)).astype(np.float32)
        out = get_op("depthwise_conv2d").compute(
            [x, w], {"strides": (1, 1), "padding": (1, 1)}
        )
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        ref = np.zeros_like(out)
        for c in range(4):
            for i in range(6):
                for j in range(6):
                    ref[0, c, i, j] = np.sum(xp[0, c, i : i + 3, j : j + 3] * w[c, 0])
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_infer_shapes(self):
        spec = get_op("depthwise_conv2d")
        t = spec.infer_type(
            [TensorType((1, 8, 16, 16)), TensorType((8, 1, 3, 3))],
            {"strides": (2, 2), "padding": (1, 1)},
        )
        assert t.shape == (1, 8, 8, 8)

    def test_channel_mismatch_raises(self):
        spec = get_op("depthwise_conv2d")
        with pytest.raises(ShapeError):
            spec.infer_type(
                [TensorType((1, 8, 16, 16)), TensorType((4, 1, 3, 3))], {}
            )

    def test_multiplier_must_be_one(self):
        spec = get_op("depthwise_conv2d")
        with pytest.raises(ShapeError):
            spec.infer_type(
                [TensorType((1, 8, 16, 16)), TensorType((8, 2, 3, 3))], {}
            )

    def test_flops_lower_than_dense_conv(self):
        dw = get_op("depthwise_conv2d")
        conv = get_op("conv2d")
        data = TensorType((1, 32, 16, 16))
        dw_out = dw.infer_type([data, TensorType((32, 1, 3, 3))], {"padding": (1, 1)})
        conv_out = conv.infer_type(
            [data, TensorType((32, 32, 3, 3))], {"padding": (1, 1)}
        )
        dw_flops = dw.flops([data, TensorType((32, 1, 3, 3))], dw_out, {})
        conv_flops = conv.flops(
            [data, TensorType((32, 32, 3, 3))], conv_out, {}
        )
        assert conv_flops == pytest.approx(32 * dw_flops)


class TestMobileNet:
    def test_builds_and_runs(self):
        g = build_mobilenet(tiny_config("mobilenet"))
        g.validate()
        (out,) = run_graph(g, make_inputs(g))
        np.testing.assert_allclose(out.sum(), 1.0, rtol=1e-5)

    def test_width_multiplier(self):
        narrow = build_mobilenet(
            MobileNetConfig(image_size=32, width_mult=0.25, num_classes=10)
        )
        wide = build_mobilenet(
            MobileNetConfig(image_size=32, width_mult=1.0, num_classes=10)
        )
        assert narrow.num_params() < wide.num_params() / 5

    def test_invalid_config_rejected(self):
        with pytest.raises(IRError):
            MobileNetConfig(width_mult=0.0)
        with pytest.raises(IRError):
            MobileNetConfig(image_size=100)

    def test_block_structure(self):
        g = build_mobilenet(tiny_config("mobilenet"))
        dw = sum(1 for n in g.op_nodes() if n.op == "depthwise_conv2d")
        pw = sum(1 for n in g.op_nodes() if n.op == "conv2d")
        assert dw == 13
        assert pw == 14  # 13 pointwise + stem

    def test_falls_back_to_gpu(self, engine):
        from repro.models import build_model

        opt = engine.optimize(build_model("mobilenet"))
        assert opt.fallback_device == "gpu"

    def test_narrower_cpu_gpu_gap_than_resnet(self, engine):
        """Depthwise convs are memory-bound: smaller GPU advantage."""
        from repro.models import build_model

        mb = engine.optimize(build_model("mobilenet"))
        rn = engine.optimize(build_model("resnet"))
        mb_gap = mb.single_device_latency["cpu"] / mb.single_device_latency["gpu"]
        rn_gap = rn.single_device_latency["cpu"] / rn.single_device_latency["gpu"]
        assert mb_gap < rn_gap
