"""Tests for the model zoo registry."""

import pytest

from repro.errors import IRError
from repro.models import (
    MODEL_NAMES,
    build_model,
    default_config,
    tiny_config,
)


class TestZoo:
    def test_all_models_build(self):
        for name in MODEL_NAMES:
            g = build_model(name, tiny=True)
            g.validate()
            assert len(g.op_nodes()) > 0

    def test_unknown_model_raises(self):
        with pytest.raises(IRError):
            build_model("alexnet")
        with pytest.raises(IRError):
            default_config("alexnet")
        with pytest.raises(IRError):
            tiny_config("alexnet")

    def test_tiny_much_cheaper_than_default(self):
        # Tiny variants shrink compute (their purpose is fast numeric
        # tests); parameter counts may shrink less for conv models whose
        # channel widths are structural.
        for name in MODEL_NAMES:
            tiny = build_model(name, tiny=True)
            full = build_model(name)
            assert tiny.total_flops() < full.total_flops() / 10

    def test_tiny_preserves_structure(self):
        # Same op vocabulary in tiny and full variants.
        for name in MODEL_NAMES:
            tiny_ops = {n.op for n in build_model(name, tiny=True).op_nodes()}
            full_ops = {n.op for n in build_model(name).op_nodes()}
            assert tiny_ops == full_ops

    def test_overrides_applied(self):
        g1 = build_model("wide_deep", tiny=True, rnn_layers=2)
        g2 = build_model("wide_deep", tiny=True)
        assert sum(1 for n in g1.op_nodes() if n.op == "lstm") == 2
        assert sum(1 for n in g2.op_nodes() if n.op == "lstm") == 1

    def test_explicit_config_wins(self):
        from repro.models import SiameseConfig

        g = build_model("siamese", config=SiameseConfig(seq_len=7, embed_dim=8,
                                                        hidden=8))
        lstm = next(n for n in g.op_nodes() if n.op == "lstm")
        assert g.node(lstm.inputs[0]).ty.shape[1] == 7
