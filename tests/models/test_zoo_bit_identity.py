"""Zoo-wide bit-identity: every model, every executor, exact outputs.

DUET's transparency claim (§IV-D) at model scale: the interpreter, the
threaded executor, and the resilient executor (fault-free) must produce
*element-exact* outputs for every model in the zoo — same shape, same
dtype, ``==`` everywhere.  All paths run the same NumPy kernels in
dependency order, so there is no tolerance to hide behind.
"""

import numpy as np
import pytest

from repro.core import DuetEngine
from repro.ir.interpreter import make_inputs, run_graph
from repro.models import MODEL_NAMES, build_model
from repro.runtime.resilient import ResilientExecutor
from repro.runtime.threaded import ThreadedExecutor


def _assert_identical(name, got, ref):
    assert len(got) == len(ref), f"{name}: output count mismatch"
    for i, (a, b) in enumerate(zip(got, ref)):
        a, b = np.asarray(a), np.asarray(b)
        assert a.shape == b.shape, f"{name}: output {i} shape"
        assert a.dtype == b.dtype, f"{name}: output {i} dtype"
        assert np.array_equal(a, b), f"{name}: output {i} values differ"


@pytest.mark.parametrize("model_name", MODEL_NAMES)
def test_zoo_model_bit_identity(model_name, machine):
    graph = build_model(model_name, tiny=True)
    feeds = make_inputs(graph)
    ref = run_graph(graph, feeds)

    plan = DuetEngine(machine=machine).optimize(graph).plan

    threaded = ThreadedExecutor(plan).run(feeds)
    _assert_identical(f"{model_name}/threaded", threaded.outputs, ref)

    resilient = ResilientExecutor(plan).run(feeds)
    _assert_identical(f"{model_name}/resilient", resilient.outputs, ref)
    assert resilient.events == [], "fault-free run must log no recovery"
