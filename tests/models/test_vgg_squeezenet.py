"""Tests for the VGG and SqueezeNet builders (paper §III-A sequential models)."""

import numpy as np
import pytest

from repro.core import DuetEngine, partition_graph, PhaseType
from repro.errors import IRError
from repro.ir import make_inputs, run_graph
from repro.models import (
    SqueezeNetConfig,
    VGGConfig,
    build_squeezenet,
    build_vgg,
)
from repro.models.zoo import tiny_config


class TestVGG:
    def test_depths_build(self):
        for depth in (11, 16):
            g = build_vgg(VGGConfig(depth=depth, image_size=32, num_classes=10,
                                    fc_width=64))
            g.validate()

    def test_invalid_depth_rejected(self):
        with pytest.raises(IRError):
            VGGConfig(depth=13)

    def test_invalid_image_size_rejected(self):
        with pytest.raises(IRError):
            VGGConfig(image_size=100)

    def test_output_distribution(self):
        g = build_vgg(tiny_config("vgg"))
        (out,) = run_graph(g, make_inputs(g))
        np.testing.assert_allclose(out.sum(), 1.0, rtol=1e-5)

    def test_purely_sequential_partition(self):
        g = build_vgg(tiny_config("vgg"))
        part = partition_graph(g)
        # VGG is a pure chain: one sequential phase.
        assert all(p.type is PhaseType.SEQUENTIAL for p in part.phases)

    def test_conv_count(self):
        g = build_vgg(VGGConfig(depth=16, image_size=32, num_classes=10,
                                fc_width=64))
        assert sum(1 for n in g.op_nodes() if n.op == "conv2d") == 13


class TestSqueezeNet:
    def test_builds_and_runs(self):
        g = build_squeezenet(tiny_config("squeezenet"))
        g.validate()
        (out,) = run_graph(g, make_inputs(g))
        np.testing.assert_allclose(out.sum(), 1.0, rtol=1e-5)

    def test_fire_modules_create_multipath_phases(self):
        g = build_squeezenet(tiny_config("squeezenet"))
        part = partition_graph(g)
        multi = part.multi_path_phases()
        assert len(multi) >= 8  # one per fire module
        # Each fire expand phase has exactly the 1x1 and 3x3 branches.
        assert all(len(p.subgraphs) == 2 for p in multi)

    def test_param_count_is_small(self):
        # SqueezeNet's selling point: AlexNet accuracy at ~1.2M params.
        g = build_squeezenet(SqueezeNetConfig())
        assert g.num_params() < 3e6


class TestFallbackBehaviour:
    @pytest.mark.parametrize("name", ["vgg", "squeezenet"])
    def test_sequential_conv_models_fall_back_to_gpu(self, engine, name):
        from repro.models import build_model

        opt = engine.optimize(build_model(name))
        assert opt.fallback_device == "gpu"
        assert opt.latency == pytest.approx(opt.single_device_latency["gpu"])

    def test_squeezenet_numeric_through_engine(self, engine):
        from repro.models import build_model

        g = build_model("squeezenet", tiny=True)
        opt = engine.optimize(g)
        feeds = make_inputs(g)
        result = engine.run(opt, inputs=feeds)
        ref = run_graph(g, feeds)
        np.testing.assert_allclose(result.outputs[0], ref[0], rtol=1e-4,
                                   atol=1e-5)
