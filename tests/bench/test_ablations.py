"""Tests for the ablation drivers and their synthetic workloads."""

import numpy as np
import pytest

from repro.bench import (
    ablation_correction,
    ablation_granularity,
    ablation_profiling,
    build_comm_heavy_model,
    build_fusion_sensitive_model,
)
from repro.compiler import CPU_TARGET, compile_graph
from repro.core import partition_graph
from repro.ir import make_inputs, run_graph


class TestSyntheticModels:
    def test_fusion_sensitive_builds_and_runs(self):
        g = build_fusion_sensitive_model()
        g.validate()
        # Numerically cheap enough to execute directly.
        outs = run_graph(g, make_inputs(g))
        assert outs[0].shape == (1, 1)

    def test_fusion_sensitive_preference_flip(self, machine):
        """The elementwise tower must prefer GPU fused, CPU unfused."""
        g = build_fusion_sensitive_model()
        part = partition_graph(g)
        tower = next(
            sg for sg in part.subgraphs
            if all(g.node(n).op not in ("conv2d", "lstm") for n in sg.node_ids)
            and len(sg.node_ids) > 10
        )
        fused = compile_graph(tower.graph, CPU_TARGET, fuse=True).module
        unfused = compile_graph(tower.graph, CPU_TARGET, fuse=False).module

        def t(module, dev):
            return sum(dev.kernel_time(k.cost) for k in module.kernels)

        assert t(fused, machine.gpu) < t(fused, machine.cpu)
        assert t(unfused, machine.cpu) < t(unfused, machine.gpu)

    def test_comm_heavy_builds_and_runs(self):
        g = build_comm_heavy_model()
        g.validate()
        feeds = make_inputs(g)
        outs = run_graph(g, feeds)
        assert len(outs) == 2
        # The reorder branch output: reversed/transposed/scaled input.
        assert outs[0].shape == (1, 4 * 1024 * 1024)

    def test_comm_heavy_two_branch_multipath(self):
        part = partition_graph(build_comm_heavy_model())
        assert len(part.multi_path_phases()[0].subgraphs) == 2


class TestAblationDrivers:
    def test_profiling_aware_never_worse(self, machine):
        rows = ablation_profiling(machine, models=("fusion_sensitive",))
        (row,) = rows
        assert row["aware_ms"] <= row["naive_ms"]
        assert row["decisions_differ"]
        assert row["penalty"] > 1.0

    def test_granularity_coarse_wins(self, machine):
        rows = ablation_granularity(machine, models=("wide_deep",))
        (row,) = rows
        assert row["per_op_ms"] > row["coarse_ms"]
        assert row["per_op_subgraphs"] > row["coarse_subgraphs"]
        assert row["per_op_transfers"] >= row["coarse_transfers"]

    def test_correction_fixes_comm_heavy(self, machine):
        rows = ablation_correction(machine, models=("comm_heavy",))
        (row,) = rows
        assert row["swaps"] >= 1
        assert row["gain"] > 1.5
        assert row["corrected_ms"] <= float(row["ideal_ms"]) * 1.001

    def test_correction_noop_when_greedy_optimal(self, machine):
        rows = ablation_correction(machine, models=("wide_deep",))
        (row,) = rows
        assert row["gain"] == pytest.approx(1.0)
