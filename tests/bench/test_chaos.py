"""Chaos-harness tests: schedule/report plumbing plus a small live run.

The pure pieces (:class:`ChaosPhase` validation, :class:`PhaseStats`
arithmetic, :class:`ChaosReport` invariant checks and rendering) are
covered exactly; the live test runs :func:`run_chaos_serve` on a short
baseline → outage → recovery schedule and asserts the resilience
invariants the CI smoke job enforces at larger scale.
"""

import pytest

from repro.bench import (
    ChaosPhase,
    ChaosReport,
    PhaseStats,
    default_chaos_schedule,
    run_chaos_serve,
)
from repro.bench.chaos import OUTCOMES
from repro.errors import ExecutionError


def stats(name, ok=0, error=0, expired=0, duration_s=1.0, latencies=()):
    s = PhaseStats(name=name, duration_s=duration_s)
    s.counts["ok"] = ok
    s.counts["error"] = error
    s.counts["expired"] = expired
    s.latencies_s = list(latencies)
    return s


def report(**overrides):
    kwargs = dict(
        phases=[stats("baseline", ok=10), stats("outage", ok=5),
                stats("recovery", ok=9)],
        recovery_ratio=0.9,
        hung_futures=0,
        mismatches=0,
        unaccounted=0,
        recovery_threshold=0.8,
    )
    kwargs.update(overrides)
    return ChaosReport(**kwargs)


class TestSchedule:
    def test_default_schedule_shape(self):
        schedule = default_chaos_schedule(phase_s=0.5, device="gpu")
        assert [p.name for p in schedule] == [
            "baseline", "transient", "stall", "outage", "recovery",
        ]
        assert all(p.duration_s == 0.5 for p in schedule)
        by_name = {p.name: p for p in schedule}
        assert by_name["baseline"].mode is None
        assert by_name["transient"].mode == "transient"
        assert by_name["stall"].mode == "stall"
        assert by_name["stall"].stall_s > 0
        assert by_name["outage"].lose_device == "gpu"
        assert by_name["recovery"].revive_device == "gpu"

    def test_phase_rejects_nonpositive_duration(self):
        with pytest.raises(ExecutionError, match="duration"):
            ChaosPhase("bad", 0.0)


class TestPhaseStats:
    def test_availability_and_throughput(self):
        s = stats("p", ok=8, error=2, duration_s=2.0)
        assert s.submitted == 10
        assert s.availability == pytest.approx(0.8)
        assert s.throughput_rps == pytest.approx(4.0)

    def test_empty_phase_is_zero_not_nan(self):
        s = stats("p")
        assert s.submitted == 0
        assert s.availability == 0.0
        assert s.p99_ms() == 0.0

    def test_p99_in_milliseconds(self):
        s = stats("p", ok=3, latencies=[0.010] * 99 + [0.020])
        assert s.p99_ms() == pytest.approx(10.1, abs=0.2)

    def test_outcome_universe_matches_counts(self):
        assert set(PhaseStats(name="p", duration_s=1.0).counts) == set(OUTCOMES)


class TestChaosReport:
    def test_clean_report_passes(self):
        r = report()
        assert r.invariant_failures() == []
        assert r.ok

    def test_each_invariant_is_reported(self):
        assert "terminal state" in report(hung_futures=2).invariant_failures()[0]
        assert "no terminal outcome" in report(unaccounted=1).invariant_failures()[0]
        assert "bit-identical" in report(mismatches=3).invariant_failures()[0]
        r = report(phases=[stats("baseline", ok=10), stats("outage", error=4)])
        assert any("outage" in f for f in r.invariant_failures())
        r = report(recovery_ratio=0.5)
        assert any("recovered" in f for f in r.invariant_failures())
        assert not r.ok

    def test_phase_lookup(self):
        r = report()
        assert r.phase("outage").counts["ok"] == 5
        with pytest.raises(ExecutionError, match="no phase"):
            r.phase("meltdown")

    def test_render_carries_scoreboard_and_verdict(self):
        text = report().render()
        assert "chaos-serve phase scoreboard" in text
        assert "recovery throughput: 0.90x" in text
        assert "all resilience invariants held" in text
        text = report(hung_futures=1).render()
        assert "INVARIANT FAILURES:" in text


class TestRunChaosServe:
    def test_argument_validation(self):
        with pytest.raises(ExecutionError, match="corpus_size"):
            run_chaos_serve(corpus_size=0)
        with pytest.raises(ExecutionError, match="concurrency"):
            run_chaos_serve(concurrency=0)

    def test_short_outage_run_holds_invariants(self):
        schedule = (
            ChaosPhase("baseline", 0.3),
            ChaosPhase("outage", 0.3, lose_device="gpu"),
            ChaosPhase("recovery", 0.3, revive_device="gpu"),
        )
        r = run_chaos_serve(
            schedule=schedule,
            concurrency=2,
            pool_size=1,
            corpus_size=2,
            recovery_threshold=0.25,
        )
        assert r.hung_futures == 0
        assert r.mismatches == 0
        assert r.unaccounted == 0
        assert r.phase("baseline").counts["ok"] > 0
        # The lane kept answering from the survivor during the outage.
        assert r.phase("outage").counts["ok"] > 0
        assert r.invariant_failures() == [], r.invariant_failures()
        # The metrics exposition rode along and saw the quarantine.
        assert "duet_slot_quarantines_total" in r.metrics_text
        assert 'duet_slot_rebuilds_total{kind="degraded"' in r.metrics_text
