"""Tests for the two-lane heterogeneous timeline renderer."""

from repro.bench import format_hetero_timeline
from repro.core import DuetEngine
from repro.models import build_model


class TestHeteroTimeline:
    def test_renders_all_lanes(self, machine):
        engine = DuetEngine(machine=machine)
        opt = engine.optimize(build_model("wide_deep", tiny=True))
        text = format_hetero_timeline(engine.run(opt), title="t")
        assert text.startswith("t\n")
        for lane in ("cpu", "gpu", "pcie"):
            assert f"{lane:4s}|".replace(" ", "") in text.replace(" ", "")

    def test_busy_times_reported(self, machine):
        engine = DuetEngine(machine=machine)
        opt = engine.optimize(build_model("wide_deep", tiny=True))
        result = engine.run(opt)
        text = format_hetero_timeline(result)
        assert "busy" in text
        assert f"total {result.latency * 1e3:.3f} ms" in text

    def test_fallback_plan_has_one_active_device(self, machine):
        engine = DuetEngine(machine=machine)
        opt = engine.optimize(build_model("resnet"))  # falls back to GPU
        text = format_hetero_timeline(engine.run(opt))
        cpu_line = next(l for l in text.splitlines() if l.startswith("cpu"))
        assert "█" not in cpu_line
