"""Scheduler tournament: league coverage, determinism, and the overlap win."""

import math

import pytest

from repro.bench import (
    TOURNAMENT_MODELS,
    build_tournament_model,
    league_table,
    run_tournament,
    tournament_winner,
)
from repro.core.scheduler import DEFAULT_POLICY, available_policies
from repro.devices import default_machine
from repro.errors import SchedulingError


@pytest.fixture(scope="module")
def league():
    return run_tournament(machine=default_machine(noisy=False), tiny=True)


class TestCoverage:
    def test_every_policy_plays_every_model(self, league):
        models = {r["model"] for r in league}
        policies = {r["policy"] for r in league}
        assert models == set(TOURNAMENT_MODELS)
        assert len(models) >= 4
        assert policies == set(available_policies())
        assert len(policies) >= 5
        assert len(league) == len(models) * len(policies)

    def test_forfeits_are_recorded_not_crashed(self, league):
        # The exhaustive policy forfeits models beyond its subgraph cap;
        # a forfeit carries a NaN latency and an explanatory note.
        for row in league:
            if math.isnan(row["latency_ms"]):
                assert row["note"]

    def test_xfer_bound_model_builds(self):
        graph = build_tournament_model("xfer_bound")
        assert graph.name == "xfer_bound"
        # Zoo names still resolve through the same entry point.
        assert build_tournament_model("siamese", tiny=True) is not None


class TestDeterminism:
    def test_league_identical_under_fixed_seed(self, league):
        rerun = run_tournament(machine=default_machine(noisy=False), tiny=True)
        assert len(rerun) == len(league)
        for a, b in zip(league, rerun):
            assert a["model"] == b["model"] and a["policy"] == b["policy"]
            if math.isnan(a["latency_ms"]):
                assert math.isnan(b["latency_ms"])
            else:
                assert a["latency_ms"] == b["latency_ms"]
                assert a["overlap_ms"] == b["overlap_ms"]

    def test_seed_changes_random_row(self):
        models = ("xfer_bound",)
        a = run_tournament(models=models, policies=("random",), seed=0)
        b = run_tournament(models=models, policies=("random",), seed=3)
        assert a[0]["latency_ms"] != b[0]["latency_ms"]


class TestOverlapColumn:
    def test_overlap_wins_on_the_transfer_bound_model(self, league):
        gains = [
            r["overlap_gain_pct"]
            for r in league
            if r["model"] == "xfer_bound"
        ]
        assert max(gains) > 20.0

    def test_overlap_never_slower_on_this_league(self, league):
        for r in league:
            if not math.isnan(r["latency_ms"]):
                assert r["overlap_ms"] <= r["latency_ms"] + 1e-9


class TestWinner:
    def test_lazy_winner_is_the_documented_default(self, league):
        assert tournament_winner(league) == DEFAULT_POLICY

    def test_overlap_league_promotes_greedy(self, league):
        assert tournament_winner(league, column="overlap_ms") == "greedy"

    def test_exhaustive_never_wins(self, league):
        assert tournament_winner(league) != "exhaustive"

    def test_empty_league_raises(self):
        with pytest.raises(SchedulingError):
            tournament_winner([])


class TestReporting:
    def test_league_table_renders(self, league):
        table = league_table(league)
        assert "overlap_gain_pct" in table
        assert "xfer_bound" in table

    def test_unknown_policy_rejected(self):
        with pytest.raises(SchedulingError, match="unknown"):
            run_tournament(models=("siamese",), policies=("alphazero",))
