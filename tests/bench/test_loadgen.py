"""Shared load-generator tests + trivial-scale smoke of both throughput
benches (the simulated stream one and the real-thread serving one), so
the two consumers of :mod:`repro.bench.loadgen` can't drift apart
unnoticed."""

import importlib.util
import pathlib
import sys
import threading

import pytest

from repro.bench import (
    closed_loop_burst,
    elementwise_chain,
    run_closed_loop,
)
from repro.core import DuetEngine
from repro.devices import default_machine
from repro.errors import ExecutionError
from repro.serving import analyze_stack_safety

BENCH_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"


def _load_bench(name):
    """Import a benchmark module from the benchmarks/ directory."""
    # Benchmarks import their sibling conftest for emit().
    sys.path.insert(0, str(BENCH_DIR))
    try:
        spec = importlib.util.spec_from_file_location(
            name, BENCH_DIR / f"{name}.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module
    finally:
        sys.path.remove(str(BENCH_DIR))


class TestRunClosedLoop:
    def test_completes_every_request_exactly_once(self):
        seen = []
        lock = threading.Lock()

        def submit(i):
            with lock:
                seen.append(i)

        load = run_closed_loop(submit, n_requests=40, concurrency=4)
        assert load.n_requests == 40
        assert load.n_errors == 0
        assert sorted(seen) == list(range(40))
        assert len(load.latencies_s) == 40
        assert load.throughput_rps > 0

    def test_counts_errors_without_propagating(self):
        def submit(i):
            if i % 2:
                raise ValueError("boom")

        load = run_closed_loop(submit, n_requests=10, concurrency=3)
        assert load.n_requests == 5
        assert load.n_errors == 5

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ExecutionError):
            run_closed_loop(lambda i: None, n_requests=0, concurrency=1)
        with pytest.raises(ExecutionError):
            run_closed_loop(lambda i: None, n_requests=1, concurrency=0)


class TestClosedLoopBurst:
    def test_matches_stream_semantics(self):
        engine = DuetEngine()
        opt = engine.optimize(elementwise_chain(batch=2, width=8, depth=2))
        result = closed_loop_burst(
            opt.plan, default_machine(noisy=False), n_requests=5
        )
        assert len(result.latencies) == 5
        assert result.throughput > 0


class TestElementwiseChain:
    def test_is_stack_safe(self):
        opt = DuetEngine().optimize(elementwise_chain(batch=2, width=8, depth=2))
        assert analyze_stack_safety(opt.plan).stackable

    def test_depth_validation(self):
        with pytest.raises(ExecutionError):
            elementwise_chain(depth=0)


class TestBenchSmoke:
    def test_ext_throughput_bench_runs_at_trivial_scale(self):
        bench = _load_bench("bench_ext_throughput")
        rows = bench._run(default_machine(noisy=False))
        assert {r["system"] for r in rows} == {"TVM-CPU", "TVM-GPU", "DUET"}

    def test_serving_load_bench_runs_at_trivial_scale(self):
        bench = _load_bench("bench_serving_load")
        rows, results = bench._run(n_requests=24, concurrency=4)
        assert {r["arm"] for r in rows} == {"unbatched", "batched"}
        for load in results.values():
            assert load.n_errors == 0
            assert load.n_requests == 24
