"""Tests for the text reporting helpers."""

from repro.bench import format_bars, format_table, format_timeline


class TestFormatTable:
    def test_columns_and_rows(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 3.25}]
        text = format_table(rows, title="T")
        assert text.startswith("T\n")
        assert "a" in text and "b" in text
        assert "2.500" in text and "10" in text

    def test_empty(self):
        assert "(no rows)" in format_table([], title="x")

    def test_alignment(self):
        rows = [{"name": "x", "v": 1.0}, {"name": "longer", "v": 2.0}]
        lines = format_table(rows).splitlines()
        assert len({len(l) for l in lines[2:]}) == 1  # data lines equal width


class TestFormatBars:
    def test_bar_lengths_proportional(self):
        rows = [{"k": "a", "v": 1.0}, {"k": "b", "v": 2.0}]
        text = format_bars(rows, "k", "v")
        a_line = next(l for l in text.splitlines() if l.startswith("a"))
        b_line = next(l for l in text.splitlines() if l.startswith("b"))
        assert b_line.count("#") == 2 * a_line.count("#")

    def test_min_one_mark(self):
        rows = [{"k": "tiny", "v": 0.0001}, {"k": "big", "v": 100.0}]
        text = format_bars(rows, "k", "v")
        tiny = next(l for l in text.splitlines() if l.startswith("tiny"))
        assert "#" in tiny

    def test_empty(self):
        assert "(no rows)" in format_bars([], "k", "v")


class TestFormatTimeline:
    def test_renders_segments(self):
        segments = [
            {"kernel": "k1", "start_ms": 0.0, "end_ms": 5.0, "duration_ms": 5.0},
            {"kernel": "k2", "start_ms": 5.0, "end_ms": 6.0, "duration_ms": 1.0},
        ]
        text = format_timeline(segments)
        assert "k1" in text and "k2" in text
        assert "█" in text

    def test_caps_rows(self):
        segments = [
            {
                "kernel": f"k{i}",
                "start_ms": float(i),
                "end_ms": i + 1.0,
                "duration_ms": 1.0,
            }
            for i in range(100)
        ]
        text = format_timeline(segments, max_rows=10)
        assert len(text.splitlines()) <= 12

    def test_empty(self):
        assert "(no segments)" in format_timeline([])
