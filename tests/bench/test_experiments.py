"""Tests for the experiment drivers: shapes of every figure/table."""

import pytest

from repro.bench import (
    fig04_timeline,
    fig05_comm,
    fig11_end2end,
    fig12_tail,
    fig13_schedulers,
    fig14_rnn_layers,
    fig15_cnn_depth,
    fig16_ffn_depth,
    fig17_batch_size,
    table1_rows,
    table2_breakdown,
    table3_resnet,
)


class TestFig04:
    def test_timeline_shape(self, machine):
        data = fig04_timeline(machine)
        assert set(data) == {"cpu", "gpu"}
        for segments in data.values():
            for prev, cur in zip(segments, segments[1:]):
                assert cur["start_ms"] >= prev["start_ms"]

    def test_rnn_dominates_gpu_cnn_dominates_cpu(self, machine):
        data = fig04_timeline(machine)

        def kind_total(segments, marker):
            return sum(
                s["duration_ms"] for s in segments if marker in s["kernel"]
            )

        assert kind_total(data["gpu"], "lstm") > kind_total(data["gpu"], "conv2d") * 0.5
        assert kind_total(data["cpu"], "conv2d") > kind_total(data["cpu"], "lstm")


class TestFig05:
    def test_latency_monotone(self, machine):
        rows = fig05_comm(machine)
        lat = [r["latency_ms"] for r in rows]
        assert lat == sorted(lat)

    def test_linear_regime_for_large_messages(self, machine):
        rows = fig05_comm(machine, sizes=[2**24, 2**25, 2**26])
        assert rows[1]["latency_ms"] / rows[0]["latency_ms"] == pytest.approx(
            2.0, rel=0.05
        )


class TestFig11:
    @pytest.fixture(scope="class")
    def rows(self, machine):
        return fig11_end2end(machine)

    def test_all_systems_present(self, rows):
        systems = {r["system"] for r in rows}
        assert "DUET" in systems and "TVM-GPU" in systems
        assert len(systems) == 7

    def test_duet_wins_every_model(self, rows):
        for model in {r["model"] for r in rows}:
            model_rows = [r for r in rows if r["model"] == model]
            best = min(model_rows, key=lambda r: r["latency_ms"])
            assert best["system"] == "DUET", model

    def test_speedups_in_paper_bands(self, rows):
        """1.5-2.3x vs TVM-GPU; 1.3-15.9x vs TVM-CPU (shape, loose)."""
        for r in rows:
            if r["system"] == "TVM-GPU":
                assert 1.2 <= r["speedup_vs_duet"] <= 3.5, r
            if r["system"] == "TVM-CPU":
                assert 1.2 <= r["speedup_vs_duet"] <= 16.0, r

    def test_framework_speedups_in_paper_bands(self, rows):
        """2.1-8.4x (GPU) and 2.3-18.8x (CPU) vs frameworks (loose)."""
        for r in rows:
            if r["system"] in ("PyTorch-GPU", "TensorFlow-GPU"):
                assert 1.8 <= r["speedup_vs_duet"] <= 9.0, r
            if r["system"] in ("PyTorch-CPU", "TensorFlow-CPU"):
                assert 2.0 <= r["speedup_vs_duet"] <= 19.0, r


class TestTable2:
    def test_wide_deep_placements_match_paper(self, machine):
        rows = table2_breakdown(machine, models=("wide_deep",))
        by_cost = {}
        for r in rows:
            if r["gpu_ms"] > r["cpu_ms"] * 1.5 and r["cpu_ms"] > 1.0:
                assert r["placement"] == "cpu", r  # the RNN-ish subgraph
            if r["cpu_ms"] > r["gpu_ms"] * 5 and r["gpu_ms"] > 0.5:
                assert r["placement"] == "gpu", r  # the CNN subgraph

    def test_every_subgraph_reported(self, machine):
        rows = table2_breakdown(machine, models=("siamese",))
        from repro.core import partition_graph
        from repro.models import build_model

        n = len(partition_graph(build_model("siamese")).subgraphs)
        assert len(rows) == n


class TestFig12:
    @pytest.fixture(scope="class")
    def rows(self, noisy_machine):
        return fig12_tail(noisy_machine, models=("wide_deep",), n_runs=800)

    def test_percentiles_ordered(self, rows):
        for r in rows:
            assert r["p50_ms"] <= r["p99_ms"] <= r["p999_ms"]

    def test_duet_beats_tvm_gpu_at_every_percentile(self, rows):
        duet = next(r for r in rows if r["system"] == "DUET")
        gpu = next(r for r in rows if r["system"] == "TVM-GPU")
        for key in ("p50_ms", "p99_ms", "p999_ms"):
            assert duet[key] < gpu[key]

    def test_tail_speedup_not_larger_than_median_speedup(self, rows):
        # Paper: P99.9 gains shrink because PCIe adds variance.
        duet = next(r for r in rows if r["system"] == "DUET")
        gpu = next(r for r in rows if r["system"] == "TVM-GPU")
        s50 = gpu["p50_ms"] / duet["p50_ms"]
        s999 = gpu["p999_ms"] / duet["p999_ms"]
        assert s999 <= s50 * 1.15


class TestFig13:
    @pytest.fixture(scope="class")
    def rows(self, machine):
        return fig13_schedulers(machine, n_random=8)

    def test_all_schemes_present(self, rows):
        assert [r["scheme"] for r in rows] == [
            "Random",
            "Round-Robin",
            "Random+Correction",
            "Greedy+Correction",
            "Ideal",
        ]

    def test_ordering_matches_paper(self, rows):
        lat = {r["scheme"]: r["latency_ms"] for r in rows}
        assert lat["Random"] > lat["Greedy+Correction"]
        assert lat["Round-Robin"] > lat["Greedy+Correction"] * 0.999
        assert lat["Random+Correction"] >= lat["Ideal"] * 0.999

    def test_greedy_correction_is_ideal(self, rows):
        lat = {r["scheme"]: r["latency_ms"] for r in rows}
        assert lat["Greedy+Correction"] == pytest.approx(lat["Ideal"], rel=1e-6)


class TestModelVariations:
    def test_fig14_gpu_grows_fastest(self, machine):
        rows = fig14_rnn_layers(machine, layers=(1, 4))
        gpu_growth = rows[-1]["tvm_gpu_ms"] / rows[0]["tvm_gpu_ms"]
        cpu_growth = rows[-1]["tvm_cpu_ms"] / rows[0]["tvm_cpu_ms"]
        duet_growth = rows[-1]["duet_ms"] / rows[0]["duet_ms"]
        assert gpu_growth > cpu_growth
        assert all(r["duet_ms"] <= r["tvm_gpu_ms"] for r in rows)

    def test_fig15_cpu_grows_fastest(self, machine):
        rows = fig15_cnn_depth(machine, depths=(18, 50))
        cpu_growth = rows[-1]["tvm_cpu_ms"] / rows[0]["tvm_cpu_ms"]
        gpu_growth = rows[-1]["tvm_gpu_ms"] / rows[0]["tvm_gpu_ms"]
        assert cpu_growth > gpu_growth

    def test_fig16_flat_in_ffn_depth(self, machine):
        rows = fig16_ffn_depth(machine, depths=(1, 8))
        # Paper: "execution time does not change much".
        assert rows[-1]["duet_ms"] < rows[0]["duet_ms"] * 1.3

    def test_fig17_speedup_shrinks_with_batch(self, machine):
        rows = fig17_batch_size(machine, batches=(2, 16))
        assert rows[-1]["speedup_vs_gpu"] < rows[0]["speedup_vs_gpu"]


class TestTables:
    def test_table1_models(self):
        rows = table1_rows()
        assert [r["model"] for r in rows] == ["Wide-and-Deep", "Siamese", "MT-DNN"]
        assert all(r["batch"] == 1 for r in rows)

    def test_table3_duet_matches_best_single_device(self, machine):
        rows = table3_resnet(machine, models=("resnet",))
        lat = {r["system"]: r["latency_ms"] for r in rows}
        assert lat["DUET"] == pytest.approx(lat["TVM-GPU"], rel=1e-6)
        duet_row = next(r for r in rows if r["system"] == "DUET")
        assert duet_row["fallback"] == "gpu"

    def test_table3_vgg_and_squeezenet_also_fall_back(self, machine):
        rows = table3_resnet(machine, models=("vgg", "squeezenet"))
        for model in ("vgg", "squeezenet"):
            duet_row = next(
                r for r in rows
                if r["model"] == model and r["system"] == "DUET"
            )
            assert duet_row["fallback"] == "gpu"
