"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "wide_deep" in out and "fig11" in out

    def test_info(self, capsys):
        assert main(["info", "siamese", "--tiny"]) == 0
        out = capsys.readouterr().out
        assert "phases:" in out and "params:" in out

    def test_print(self, capsys):
        assert main(["print", "siamese", "--tiny"]) == 0
        out = capsys.readouterr().out
        assert "fn siamese(" in out and "lstm" in out

    def test_optimize_tiny(self, capsys):
        assert main(["optimize", "siamese", "--tiny", "--runs", "50"]) == 0
        out = capsys.readouterr().out
        assert "DUET latency" in out and "P99" in out

    def test_optimize_full_wide_deep(self, capsys):
        assert main(["optimize", "wide_deep"]) == 0
        out = capsys.readouterr().out
        assert "fallback:         none" in out

    def test_bench_table1(self, capsys):
        assert main(["bench", "table1"]) == 0
        assert "Wide-and-Deep" in capsys.readouterr().out

    def test_bench_fig13(self, capsys):
        assert main(["bench", "fig13"]) == 0
        assert "Greedy+Correction" in capsys.readouterr().out

    def test_bench_unknown(self, capsys):
        assert main(["bench", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["info", "alexnet"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_tournament_smoke(self, capsys, tmp_path):
        artifact = tmp_path / "league.txt"
        assert main([
            "tournament", "--tiny",
            "--models", "siamese", "xfer_bound",
            "--policies", "dp", "greedy", "round_robin",
            "--output", str(artifact),
        ]) == 0
        out = capsys.readouterr().out
        assert "Scheduler tournament" in out
        assert "league winners" in out
        assert "xfer_bound" in out
        written = artifact.read_text(encoding="utf-8")
        assert "overlap_gain_pct" in written

    def test_tournament_mesh_smoke(self, capsys):
        assert main([
            "tournament", "--tiny",
            "--mesh", "examples/mesh.json",
            "--models", "siamese",
            "--policies", "dp", "round_robin",
        ]) == 0
        out = capsys.readouterr().out
        assert "Scheduler tournament" in out

    def test_tournament_unknown_policy_errors(self, capsys):
        assert main(["tournament", "--tiny", "--models", "siamese",
                     "--policies", "alphazero"]) == 1
        assert "unknown" in capsys.readouterr().err

    def test_chaos_serve_smoke(self, capsys, tmp_path):
        artifact = tmp_path / "chaos.txt"
        assert main([
            "chaos-serve", "--phase-seconds", "0.3",
            "--recovery-threshold", "0.25", "--metrics",
            "--output", str(artifact),
        ]) == 0
        out = capsys.readouterr().out
        assert "chaos-serve phase scoreboard" in out
        assert "recovery throughput" in out
        assert "duet_requests_total" in out
        written = artifact.read_text(encoding="utf-8")
        for phase in ("baseline", "transient", "stall", "outage", "recovery"):
            assert phase in written


class TestCLIProfileCache:
    def test_optimize_with_cache(self, capsys, tmp_path):
        path = tmp_path / "cache.json"
        assert main(["optimize", "siamese", "--tiny",
                     "--profile-cache", str(path)]) == 0
        assert path.exists()
        capsys.readouterr()
        # Second run reuses the artifact without error.
        assert main(["optimize", "siamese", "--tiny",
                     "--profile-cache", str(path)]) == 0
        out = capsys.readouterr().out
        assert "resident weights" in out


class TestCLIReport:
    def test_report_writes_all_tables(self, capsys, tmp_path, monkeypatch):
        # Shrink the heavy experiments so the report finishes quickly.
        import repro.cli as cli

        slim = {
            "fig13": cli._EXPERIMENTS["fig13"],
            "table3": cli._EXPERIMENTS["table3"],
        }
        monkeypatch.setattr(cli, "_EXPERIMENTS", slim)
        out = tmp_path / "results"
        assert main(["report", "--output", str(out), "--runs", "100"]) == 0
        assert (out / "table1.txt").exists()
        assert (out / "fig13.txt").exists()
        assert (out / "table3.txt").exists()
        assert "Greedy+Correction" in (out / "fig13.txt").read_text()


class TestCLISpec:
    def test_optimize_from_spec(self, capsys, tmp_path):
        import json

        spec = {
            "name": "cli_spec",
            "inputs": [{"name": "x", "shape": [1, 16]}],
            "layers": [
                {"kind": "dense", "units": 8},
                {"kind": "softmax"},
            ],
        }
        path = tmp_path / "model.json"
        path.write_text(json.dumps(spec))
        assert main(["optimize", "--spec", str(path)]) == 0
        out = capsys.readouterr().out
        assert "cli_spec" in out and "DUET latency" in out

    def test_optimize_without_model_or_spec_errors(self, capsys):
        assert main(["optimize"]) == 2
        assert "provide a model name" in capsys.readouterr().err
