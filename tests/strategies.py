"""Hypothesis strategies for random computation graphs.

Generates valid DAGs over 2-D float tensors using a mix of unary
elementwise ops, binary joins, dense layers, and concats — enough
structural variety (fan-out, fan-in, independent branches) to exercise the
partitioner, the fusion planner, and the schedulers, while every generated
graph stays cheap to execute numerically.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.ir.builder import GraphBuilder, Var

_UNARY = ("relu", "tanh", "sigmoid", "negative", "abs", "identity")
_BINARY = ("add", "subtract", "multiply", "maximum")


@st.composite
def random_graphs(
    draw,
    min_ops: int = 1,
    max_ops: int = 24,
    max_inputs: int = 3,
    batch: int = 2,
    width: int = 4,
):
    """A random valid graph of 2-D ``(batch, width)`` tensors."""
    n_inputs = draw(st.integers(1, max_inputs))
    n_ops = draw(st.integers(min_ops, max_ops))
    b = GraphBuilder("random")
    frontier: list[Var] = [
        b.input(f"in{i}", (batch, width)) for i in range(n_inputs)
    ]
    op_vars: list[Var] = []
    for i in range(n_ops):
        choice = draw(st.integers(0, 3))
        if choice == 0:
            op = draw(st.sampled_from(_UNARY))
            src = draw(st.sampled_from(frontier))
            new = b.op(op, src)
        elif choice == 1:
            op = draw(st.sampled_from(_BINARY))
            lhs = draw(st.sampled_from(frontier))
            rhs = draw(st.sampled_from(frontier))
            new = b.op(op, lhs, rhs)
        elif choice == 2:
            src = draw(st.sampled_from(frontier))
            w = b.const((width, width))
            new = b.op("dense", src, w)
        else:
            lhs = draw(st.sampled_from(frontier))
            rhs = draw(st.sampled_from(frontier))
            cat = b.op("concat", lhs, rhs, axis=1)
            w = b.const((width, 2 * width))
            new = b.op("dense", cat, w)
        frontier.append(new)
        op_vars.append(new)
    # 1-2 outputs drawn from the most recent results keeps most ops live.
    n_outputs = draw(st.integers(1, min(2, len(op_vars))))
    outputs = op_vars[-n_outputs:]
    return b.build(*outputs)
