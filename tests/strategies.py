"""Hypothesis strategies for random computation graphs.

Thin wrapper over the library fuzzer in :mod:`repro.testing.generators`:
the strategy draws one seed and delegates graph construction to
:func:`repro.testing.generators.generate_graph`, so property tests, the
``python -m repro fuzz`` CLI, and seeded regressions all sample the same
distribution — elementwise chains, binary joins, dense/matmul layers,
reductions, concat/split fan-out, and recurrent layers.

A failing example therefore shrinks (and reproduces) through its seed;
for structural shrinking use :func:`repro.testing.minimize.minimize_graph`
on the failing graph.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.testing.generators import DEFAULT_FAMILIES, GeneratorConfig, generate_graph


@st.composite
def random_graphs(
    draw,
    min_ops: int = 1,
    max_ops: int = 24,
    max_inputs: int = 3,
    batch: int = 2,
    width: int = 4,
    families: dict[str, float] | None = None,
):
    """A random valid graph of 2-D ``(batch, width)`` tensors.

    ``families`` overrides the op-family mix (see
    :data:`repro.testing.generators.DEFAULT_FAMILIES`), e.g.
    ``families={"unary": 1.0}`` for pure elementwise chains.
    """
    seed = draw(st.integers(0, 2**32 - 1))
    config = GeneratorConfig(
        min_ops=min_ops,
        max_ops=max_ops,
        max_inputs=max_inputs,
        batch_choices=(batch,),
        width_choices=(width,),
        families=dict(families) if families is not None else dict(DEFAULT_FAMILIES),
    )
    return generate_graph(
        np.random.default_rng(seed), config, name=f"random_{seed}"
    )
