"""Hypothesis strategies for random computation graphs.

Thin wrapper over the library fuzzer in :mod:`repro.testing.generators`:
the strategy draws one seed and delegates graph construction to
:func:`repro.testing.generators.generate_graph`, so property tests, the
``python -m repro fuzz`` CLI, and seeded regressions all sample the same
distribution — elementwise chains, binary joins, dense/matmul layers,
reductions, concat/split fan-out, and recurrent layers.

A failing example therefore shrinks (and reproduces) through its seed;
for structural shrinking use :func:`repro.testing.minimize.minimize_graph`
on the failing graph.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.testing.generators import DEFAULT_FAMILIES, GeneratorConfig, generate_graph

#: One scripted queue operation: ("put", tenant_index) or ("get", None).
PUT, GET = "put", "get"


@st.composite
def random_graphs(
    draw,
    min_ops: int = 1,
    max_ops: int = 24,
    max_inputs: int = 3,
    batch: int = 2,
    width: int = 4,
    families: dict[str, float] | None = None,
):
    """A random valid graph of 2-D ``(batch, width)`` tensors.

    ``families`` overrides the op-family mix (see
    :data:`repro.testing.generators.DEFAULT_FAMILIES`), e.g.
    ``families={"unary": 1.0}`` for pure elementwise chains.
    """
    seed = draw(st.integers(0, 2**32 - 1))
    config = GeneratorConfig(
        min_ops=min_ops,
        max_ops=max_ops,
        max_inputs=max_inputs,
        batch_choices=(batch,),
        width_choices=(width,),
        families=dict(families) if families is not None else dict(DEFAULT_FAMILIES),
    )
    return generate_graph(
        np.random.default_rng(seed), config, name=f"random_{seed}"
    )


@st.composite
def admission_scripts(
    draw,
    num_tenants: int,
    capacity: int = 64,
    min_events: int = 4,
    max_events: int = 200,
):
    """A valid put/get script for a bounded admission queue.

    Yields a list of ``(PUT, tenant_index)`` / ``(GET, None)`` events
    that never overflows ``capacity`` and never dequeues an empty queue,
    so the WFQ property suite can replay it on a virtual clock with no
    real blocking.  Interleaving (not just the multiset of arrivals) is
    drawn, which is what exercises the virtual-time bookkeeping.
    """
    n = draw(st.integers(min_events, max_events))
    events: list[tuple[str, int | None]] = []
    pending = 0
    for _ in range(n):
        can_put = pending < capacity
        can_get = pending > 0
        do_put = draw(st.booleans()) if (can_put and can_get) else can_put
        if do_put:
            events.append((PUT, draw(st.integers(0, num_tenants - 1))))
            pending += 1
        else:
            events.append((GET, None))
            pending -= 1
    return events
