"""Tests for Machine (pair and mesh forms) and the interconnect wrapper."""

import numpy as np
import pytest

from repro.devices import (
    Interconnect,
    default_machine,
    load_mesh,
    make_cpu,
    make_gpu,
    make_mesh,
    make_pcie3,
    scale_device,
)
from repro.errors import DeviceError


class TestMachine:
    def test_device_lookup(self, machine):
        assert machine.device("cpu") is machine.cpu
        assert machine.device("gpu") is machine.gpu

    def test_unknown_device_raises(self, machine):
        with pytest.raises(DeviceError):
            machine.device("tpu")

    def test_devices_tuple(self, machine):
        assert machine.devices == (machine.cpu, machine.gpu)

    def test_noisy_flag(self):
        noisy = default_machine(noisy=True)
        quiet = default_machine(noisy=False)
        assert noisy.cpu.noise.jitter_sigma > 0
        assert quiet.cpu.noise.jitter_sigma == 0

    def test_factories(self):
        assert make_cpu().kind == "cpu"
        assert make_gpu().kind == "gpu"


class TestMesh:
    def test_make_mesh_shape(self):
        mesh = make_mesh(num_gpus=2, noisy=False)
        assert mesh.device_names == ("cpu", "gpu0", "gpu1")
        assert mesh.host == "cpu"
        assert mesh.device("gpu1").kind == "gpu"

    def test_peers(self):
        mesh = make_mesh(num_gpus=3)
        assert mesh.peers("gpu1") == ("cpu", "gpu0", "gpu2")
        with pytest.raises(DeviceError):
            mesh.peers("tpu")

    def test_other_deprecated_but_works_on_pair(self, machine):
        with pytest.warns(DeprecationWarning, match="peers"):
            assert machine.other("cpu") == "gpu"

    def test_other_ambiguous_on_mesh(self):
        mesh = make_mesh(num_gpus=2)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(DeviceError, match="ambiguous"):
                mesh.other("cpu")

    def test_heterogeneous_slowdowns(self):
        mesh = make_mesh(num_gpus=2, noisy=False, gpu_slowdowns=(1.0, 2.0))
        fast = mesh.device("gpu0").spec
        slow = mesh.device("gpu1").spec
        assert slow.peak_gflops == pytest.approx(fast.peak_gflops / 2)
        assert slow.launch_overhead_s == fast.launch_overhead_s

    def test_scale_device_rejects_nonpositive(self):
        with pytest.raises(DeviceError):
            scale_device(make_gpu(), 0.0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(DeviceError, match="duplicate"):
            from repro.devices import Machine

            Machine(
                devices=[make_gpu(name="g"), make_gpu(name="g")],
                default_link=make_pcie3(),
            )

    def test_legacy_and_mesh_kwargs_exclusive(self):
        from repro.devices import Machine

        with pytest.raises(DeviceError):
            Machine(cpu=make_cpu(), devices=[make_gpu()])

    def test_per_pair_link_override(self):
        from repro.devices import Machine
        from repro.devices.specs import PCIE3_X16
        from dataclasses import replace

        fast = Interconnect(
            spec=replace(PCIE3_X16, bandwidth_gbps=25.0),
            noise=make_pcie3().noise,
        )
        mesh = Machine(
            devices=[make_cpu(False), make_gpu(False, "gpu0"),
                     make_gpu(False, "gpu1")],
            links={("gpu0", "gpu1"): fast},
            default_link=make_pcie3(),
        )
        # symmetric lookup, and only the overridden pair gets the fast link
        assert mesh.link("gpu1", "gpu0") is fast
        assert mesh.link("cpu", "gpu0") is not fast
        with pytest.raises(DeviceError, match="heterogeneous"):
            mesh.interconnect

    def test_self_link_rejected(self):
        mesh = make_mesh(num_gpus=2)
        with pytest.raises(DeviceError):
            mesh.link("gpu0", "gpu0")

    def test_default_machine_is_two_device_mesh(self, machine):
        assert machine.device_names == ("cpu", "gpu")
        assert machine.peers("gpu") == ("cpu",)
        assert machine.links == {("cpu", "gpu"): machine.interconnect}


class TestLoadMesh:
    PAYLOAD = {
        "noisy": False,
        "devices": [
            {"name": "cpu", "base": "xeon_gold_6152"},
            {"name": "gpu0", "base": "titan_v"},
            {"name": "gpu1", "base": "titan_v", "slowdown": 1.3},
        ],
        "links": [{"between": ["gpu0", "gpu1"], "bandwidth_gbps": 25.0}],
        "default_link": {"base": "pcie3_x16"},
    }

    def test_load_from_dict(self):
        mesh = load_mesh(self.PAYLOAD)
        assert mesh.device_names == ("cpu", "gpu0", "gpu1")
        assert mesh.device("cpu").kind == "cpu"
        # slowdown derates gpu1 relative to gpu0
        assert (
            mesh.device("gpu1").spec.peak_gflops
            < mesh.device("gpu0").spec.peak_gflops
        )
        # the gpu0-gpu1 link override carries the custom bandwidth
        assert mesh.link("gpu0", "gpu1").spec.bandwidth_gbps == 25.0
        assert mesh.link("cpu", "gpu0").spec.bandwidth_gbps != 25.0

    def test_load_from_file(self, tmp_path):
        import json

        path = tmp_path / "mesh.json"
        path.write_text(json.dumps(self.PAYLOAD))
        assert load_mesh(path).device_names == ("cpu", "gpu0", "gpu1")

    def test_example_mesh_loads(self):
        from pathlib import Path

        example = (
            Path(__file__).resolve().parents[2] / "examples" / "mesh.json"
        )
        mesh = load_mesh(example)
        assert len(mesh.devices) == 3
        assert mesh.host == "cpu"

    def test_unknown_base_spec_rejected(self):
        with pytest.raises(DeviceError, match="unknown base spec"):
            load_mesh({"devices": [{"name": "x", "base": "h100"}]})

    def test_missing_devices_rejected(self):
        with pytest.raises(DeviceError):
            load_mesh({"devices": []})

    def test_kind_mismatch_rejected(self):
        with pytest.raises(DeviceError, match="kind"):
            load_mesh(
                {"devices": [
                    {"name": "x", "base": "titan_v", "kind": "cpu"}
                ]}
            )


class TestInterconnect:
    def test_sample_noiseless_equals_mean(self, rng):
        link = make_pcie3()
        assert link.sample_transfer_time(2**20, rng) == link.transfer_time(2**20)

    def test_sample_noisy_varies(self, noisy_machine, rng):
        link = noisy_machine.interconnect
        xs = {link.sample_transfer_time(2**20, rng) for _ in range(10)}
        assert len(xs) > 1

    def test_bandwidth_monotone_in_size(self):
        link = make_pcie3()
        sizes = [2**k for k in range(10, 28, 3)]
        bws = [link.bandwidth_at(s) for s in sizes]
        assert bws == sorted(bws)

    def test_zero_bytes_bandwidth(self):
        assert make_pcie3().bandwidth_at(0) == 0.0
