"""Tests for Machine and the interconnect wrapper."""

import numpy as np
import pytest

from repro.devices import (
    Interconnect,
    default_machine,
    make_cpu,
    make_gpu,
    make_pcie3,
)
from repro.errors import DeviceError


class TestMachine:
    def test_device_lookup(self, machine):
        assert machine.device("cpu") is machine.cpu
        assert machine.device("gpu") is machine.gpu

    def test_unknown_device_raises(self, machine):
        with pytest.raises(DeviceError):
            machine.device("tpu")

    def test_devices_tuple(self, machine):
        assert machine.devices == (machine.cpu, machine.gpu)

    def test_noisy_flag(self):
        noisy = default_machine(noisy=True)
        quiet = default_machine(noisy=False)
        assert noisy.cpu.noise.jitter_sigma > 0
        assert quiet.cpu.noise.jitter_sigma == 0

    def test_factories(self):
        assert make_cpu().kind == "cpu"
        assert make_gpu().kind == "gpu"


class TestInterconnect:
    def test_sample_noiseless_equals_mean(self, rng):
        link = make_pcie3()
        assert link.sample_transfer_time(2**20, rng) == link.transfer_time(2**20)

    def test_sample_noisy_varies(self, noisy_machine, rng):
        link = noisy_machine.interconnect
        xs = {link.sample_transfer_time(2**20, rng) for _ in range(10)}
        assert len(xs) > 1

    def test_bandwidth_monotone_in_size(self):
        link = make_pcie3()
        sizes = [2**k for k in range(10, 28, 3)]
        bws = [link.bandwidth_at(s) for s in sizes]
        assert bws == sorted(bws)

    def test_zero_bytes_bandwidth(self):
        assert make_pcie3().bandwidth_at(0) == 0.0
