"""Tests for the device cost model (Device.kernel_time)."""

import pytest

from repro.compiler.kernel import KernelCost
from repro.devices import make_cpu, make_gpu
from repro.ir.ops import OpKind


def _cost(**kw):
    defaults = dict(
        flops=1e6, bytes_in=1e4, bytes_out=1e4, parallelism=1e6,
        kind=OpKind.GEMM,
    )
    defaults.update(kw)
    return KernelCost(**defaults)


class TestUtilization:
    def test_monotone_in_parallelism(self):
        gpu = make_gpu(False)
        assert gpu.utilization(10) < gpu.utilization(1e4) < gpu.utilization(1e7)

    def test_bounded(self):
        gpu = make_gpu(False)
        assert 0.0 <= gpu.utilization(1) <= 1.0
        assert gpu.utilization(0) == 0.0
        assert gpu.utilization(-5) == 0.0

    def test_half_at_saturation_point(self):
        cpu = make_cpu(False)
        sat = cpu.spec.saturation_parallelism
        assert cpu.utilization(sat) == pytest.approx(0.5)


class TestKernelTime:
    def test_more_flops_more_time(self):
        cpu = make_cpu(False)
        assert cpu.kernel_time(_cost(flops=1e8)) > cpu.kernel_time(_cost(flops=1e6))

    def test_memory_bound_kernels_priced_by_bandwidth(self):
        cpu = make_cpu(False)
        cost = _cost(flops=0.0, bytes_in=1e8, bytes_out=0, kind=OpKind.MEMORY)
        expected = 1e8 / (cpu.spec.mem_bandwidth_gbps * 1e9)
        assert cpu.kernel_time(cost) == pytest.approx(
            expected + cpu.spec.launch_overhead_s
        )

    def test_roofline_takes_max(self):
        cpu = make_cpu(False)
        compute_only = cpu.kernel_time(_cost(bytes_in=0, bytes_out=0))
        both = cpu.kernel_time(_cost())
        assert both >= compute_only

    def test_sequential_steps_multiply_launch_overhead(self):
        gpu = make_gpu(False)
        one = _cost(sequential_steps=1, kernels_per_step=2)
        hundred = _cost(sequential_steps=100, kernels_per_step=2)
        t1 = gpu.kernel_time(one)
        t100 = gpu.kernel_time(hundred)
        # Same total flops split across 100 steps: launch overhead paid
        # 100x and per-step utilization unchanged -> t100 must far exceed t1.
        assert t100 > t1 + 99 * 2 * gpu.spec.launch_overhead_s * 0.99

    def test_parallelism_crossover_between_devices(self):
        # The paper's §III-B observation: CPU wins small low-parallelism
        # kernels, GPU wins large highly-parallel ones.
        cpu, gpu = make_cpu(False), make_gpu(False)
        small = _cost(flops=1e6, parallelism=512)
        big = _cost(flops=1e9, parallelism=1e7)
        assert cpu.kernel_time(small) < gpu.kernel_time(small)
        assert gpu.kernel_time(big) < cpu.kernel_time(big)

    def test_utilization_drop_steeper_on_gpu(self):
        cpu, gpu = make_cpu(False), make_gpu(False)
        drop_cpu = cpu.utilization(1e7) / cpu.utilization(512)
        drop_gpu = gpu.utilization(1e7) / gpu.utilization(512)
        assert drop_gpu > drop_cpu

    def test_sample_with_no_noise_equals_mean(self, rng):
        gpu = make_gpu(noisy=False)
        c = _cost()
        assert gpu.sample_kernel_time(c, rng) == gpu.kernel_time(c)

    def test_sample_with_noise_varies(self, rng):
        gpu = make_gpu(noisy=True)
        c = _cost()
        samples = {gpu.sample_kernel_time(c, rng) for _ in range(10)}
        assert len(samples) > 1

    def test_zero_flops_zero_bytes_is_just_launch(self):
        gpu = make_gpu(False)
        c = _cost(flops=0, bytes_in=0, bytes_out=0)
        assert gpu.kernel_time(c) == pytest.approx(gpu.spec.launch_overhead_s)
