"""Tests for the latency noise models."""

import numpy as np
import pytest

from repro.devices import CPU_NOISE, GPU_NOISE, NO_NOISE, PCIE_NOISE, NoiseModel
from repro.errors import DeviceError


class TestNoiseModel:
    def test_no_noise_is_identity(self, rng):
        assert NO_NOISE.sample(0.5, rng) == 0.5

    def test_zero_time_stays_zero(self, rng):
        assert CPU_NOISE.sample(0.0, rng) == 0.0

    def test_mean_preserved(self):
        rng = np.random.default_rng(0)
        model = NoiseModel(jitter_sigma=0.2)
        samples = np.array([model.sample(1.0, rng) for _ in range(20000)])
        assert samples.mean() == pytest.approx(1.0, rel=0.02)

    def test_spikes_produce_heavy_tail(self):
        rng = np.random.default_rng(0)
        model = NoiseModel(jitter_sigma=0.01, spike_prob=0.01, spike_scale=5.0)
        samples = np.array([model.sample(1.0, rng) for _ in range(20000)])
        p999 = np.percentile(samples, 99.9)
        p50 = np.percentile(samples, 50)
        assert p999 > 3 * p50

    def test_samples_positive(self):
        rng = np.random.default_rng(1)
        for _ in range(1000):
            assert PCIE_NOISE.sample(1e-3, rng) > 0

    def test_pcie_noisier_than_devices(self):
        assert PCIE_NOISE.jitter_sigma > CPU_NOISE.jitter_sigma
        assert PCIE_NOISE.jitter_sigma > GPU_NOISE.jitter_sigma

    def test_invalid_params_rejected(self):
        with pytest.raises(DeviceError):
            NoiseModel(jitter_sigma=-1)
        with pytest.raises(DeviceError):
            NoiseModel(spike_prob=2.0)
        with pytest.raises(DeviceError):
            NoiseModel(spike_scale=0.5)
