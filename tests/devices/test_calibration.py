"""Calibration tests: the cost model must reproduce the paper's Table II.

These are the load-bearing assertions of the whole reproduction — if they
hold, every scheduling experiment sits on a substrate with the right
relative magnitudes.
"""

import pytest

from repro.compiler import CPU_TARGET, compile_graph
from repro.devices import make_cpu, make_gpu
from repro.ir.ops import OpKind
from repro.models import build_model


@pytest.fixture(scope="module")
def wide_deep_kernels():
    graph = build_model("wide_deep")
    return compile_graph(graph, CPU_TARGET).module.kernels


def _time_of_kind(kernels, device, kind):
    return sum(
        device.kernel_time(k.cost) for k in kernels if k.cost.kind is kind
    )


class TestTable2Calibration:
    """Paper: RNN 2.4 ms CPU / 6.4 ms GPU; CNN 14.9 ms CPU / 0.9 ms GPU."""

    def test_rnn_faster_on_cpu(self, wide_deep_kernels):
        cpu, gpu = make_cpu(False), make_gpu(False)
        rnn_cpu = _time_of_kind(wide_deep_kernels, cpu, OpKind.RECURRENT)
        rnn_gpu = _time_of_kind(wide_deep_kernels, gpu, OpKind.RECURRENT)
        assert rnn_cpu < rnn_gpu
        assert 1.5 < rnn_gpu / rnn_cpu < 4.0  # paper ratio: 2.7

    def test_rnn_absolute_magnitudes(self, wide_deep_kernels):
        cpu, gpu = make_cpu(False), make_gpu(False)
        rnn_cpu = _time_of_kind(wide_deep_kernels, cpu, OpKind.RECURRENT)
        rnn_gpu = _time_of_kind(wide_deep_kernels, gpu, OpKind.RECURRENT)
        assert 1e-3 < rnn_cpu < 6e-3  # paper: 2.4 ms
        assert 4e-3 < rnn_gpu < 12e-3  # paper: 6.4 ms

    def test_cnn_faster_on_gpu(self, wide_deep_kernels):
        cpu, gpu = make_cpu(False), make_gpu(False)
        cnn_cpu = _time_of_kind(wide_deep_kernels, cpu, OpKind.CONV)
        cnn_gpu = _time_of_kind(wide_deep_kernels, gpu, OpKind.CONV)
        assert cnn_gpu < cnn_cpu
        assert 5.0 < cnn_cpu / cnn_gpu < 30.0  # paper ratio: 16.5

    def test_cnn_absolute_magnitudes(self, wide_deep_kernels):
        cpu, gpu = make_cpu(False), make_gpu(False)
        cnn_cpu = _time_of_kind(wide_deep_kernels, cpu, OpKind.CONV)
        cnn_gpu = _time_of_kind(wide_deep_kernels, gpu, OpKind.CONV)
        assert 7e-3 < cnn_cpu < 30e-3  # paper: 14.9 ms
        assert 0.4e-3 < cnn_gpu < 3e-3  # paper: 0.9 ms


class TestFig5Calibration:
    """Comm latency: linear growth, µs floor, ~12 GB/s asymptote."""

    def test_latency_floor_microseconds(self, machine):
        t = machine.interconnect.transfer_time(1024)
        assert 1e-6 < t < 1e-4

    def test_asymptotic_bandwidth(self, machine):
        bw = machine.interconnect.bandwidth_at(2**28)
        assert 10e9 < bw < 13e9

    def test_latency_vs_compute_scale(self, machine):
        # Paper §III-B: transfer delay for typical activations is orders
        # of magnitude below LSTM/CNN execution times.
        act_bytes = 256 * 4  # a [256] float hidden state
        assert machine.interconnect.transfer_time(act_bytes) < 1e-4
