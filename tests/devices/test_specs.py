"""Tests for device specs and the interconnect spec."""

import pytest

from repro.devices import PCIE3_X16, TITAN_V, XEON_GOLD_6152, DeviceSpec, InterconnectSpec
from repro.errors import DeviceError
from repro.ir.ops import OpKind


class TestDeviceSpec:
    def test_paper_hardware_present(self):
        assert XEON_GOLD_6152.kind == "cpu"
        assert TITAN_V.kind == "gpu"
        assert TITAN_V.peak_gflops > XEON_GOLD_6152.peak_gflops

    def test_gpu_launch_overhead_dominates_cpu(self):
        assert TITAN_V.launch_overhead_s > 5 * XEON_GOLD_6152.launch_overhead_s

    def test_gpu_needs_more_parallelism_to_saturate(self):
        assert (
            TITAN_V.saturation_parallelism
            > 10 * XEON_GOLD_6152.saturation_parallelism
        )

    def test_efficiency_lookup(self):
        assert 0 < XEON_GOLD_6152.efficiency_for(OpKind.GEMM) <= 1

    def test_invalid_kind_rejected(self):
        with pytest.raises(DeviceError):
            DeviceSpec(
                name="x", kind="tpu", peak_gflops=1, mem_bandwidth_gbps=1,
                launch_overhead_s=0, saturation_parallelism=1, efficiency={},
            )

    def test_nonpositive_throughput_rejected(self):
        with pytest.raises(DeviceError):
            DeviceSpec(
                name="x", kind="cpu", peak_gflops=0, mem_bandwidth_gbps=1,
                launch_overhead_s=0, saturation_parallelism=1, efficiency={},
            )

    def test_missing_efficiency_raises(self):
        spec = DeviceSpec(
            name="x", kind="cpu", peak_gflops=1, mem_bandwidth_gbps=1,
            launch_overhead_s=0, saturation_parallelism=1,
            efficiency={OpKind.GEMM: 0.5},
        )
        with pytest.raises(DeviceError):
            spec.efficiency_for(OpKind.CONV)


class TestInterconnectSpec:
    def test_transfer_time_linear_in_size(self):
        t1 = PCIE3_X16.transfer_time(2**20)
        t2 = PCIE3_X16.transfer_time(2**21)
        assert t2 > t1
        # Large transfers double cleanly (base latency amortized away).
        t_big = PCIE3_X16.transfer_time(2**28)
        t_big2 = PCIE3_X16.transfer_time(2**29)
        assert t_big2 / t_big == pytest.approx(2.0, rel=0.01)

    def test_small_message_latency_floor(self):
        assert PCIE3_X16.transfer_time(8) >= PCIE3_X16.base_latency_s

    def test_zero_bytes_free(self):
        assert PCIE3_X16.transfer_time(0) == 0.0

    def test_negative_bytes_raise(self):
        with pytest.raises(DeviceError):
            PCIE3_X16.transfer_time(-1)
