"""Property suite for the two-tier WFQ admission queue.

Everything here runs on a *virtual clock*: the queue's fairness is
defined over dequeue decisions, not wall time, so the properties are
checked by replaying scripted put/get sequences — no sleeps, no worker
threads, no timing tolerance beyond WFQ's inherent discretization.

Properties under test (ISSUE 8, satellite 1):

* work conservation — a dequeue never comes up empty while data waits,
  and every admitted item is eventually served exactly once;
* weighted share — under sustained backlog, tenants within one tier
  drain in proportion to their weights (within discretization
  tolerance);
* no starvation — with the escape enabled, the lowest class keeps a
  trickle of service under a permanent higher-priority flood;
* FIFO within tenant — a tenant's own requests are never reordered,
  for any interleaving of arrivals and any weights;
* single-flow degeneration — with one anonymous tenant the queue is
  exactly the FIFO it replaced.
"""

import queue

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.serving import TenantConfig, WFQAdmissionQueue
from tests.strategies import GET, PUT, admission_scripts


class Item:
    """A fake request: a tenant plus an arrival serial number."""

    __slots__ = ("tenant", "serial")

    def __init__(self, tenant, serial):
        self.tenant = tenant
        self.serial = serial

    def __repr__(self):
        name = self.tenant.name if self.tenant else None
        return f"Item({name}, {self.serial})"


def make_tenants(*specs):
    """specs: (name, priority, weight) triples -> TenantConfig list."""
    return [
        TenantConfig(name=name, priority=priority, weight=weight)
        for name, priority, weight in specs
    ]


def drain(q):
    """Dequeue everything, no blocking; order is the schedule."""
    out = []
    while True:
        try:
            out.append(q.get_nowait())
        except queue.Empty:
            return out


# ---------------------------------------------------------------------------
# Construction / queue.Queue surface


def test_capacity_validation():
    with pytest.raises(ExecutionError):
        WFQAdmissionQueue(0)
    with pytest.raises(ExecutionError):
        WFQAdmissionQueue(4, starvation_escape=0)
    WFQAdmissionQueue(4, starvation_escape=None)  # escape off is legal


def test_put_nowait_full_and_get_nowait_empty():
    q = WFQAdmissionQueue(2)
    q.put_nowait(Item(None, 0))
    q.put_nowait(Item(None, 1))
    with pytest.raises(queue.Full):
        q.put_nowait(Item(None, 2))
    assert q.qsize() == 2
    drain(q)
    with pytest.raises(queue.Empty):
        q.get_nowait()


def test_put_with_timeout_raises_full():
    q = WFQAdmissionQueue(1)
    q.put_nowait(Item(None, 0))
    with pytest.raises(queue.Full):
        q.put(Item(None, 1), timeout=0.01)


def test_get_with_timeout_raises_empty():
    q = WFQAdmissionQueue(1)
    with pytest.raises(queue.Empty):
        q.get(timeout=0.01)


def control_aware(sentinels):
    """A classifier mapping ``sentinels`` to the control channel, like
    the frontend's (the default classifier treats everything as data)."""

    def classify(item):
        if item in sentinels:
            return None
        t = item.tenant
        if t is None:
            return (1, "default", 1.0)
        return (t.tier, t.name, t.weight)

    return classify


def test_controls_bypass_capacity_and_yield_after_data():
    sentinel_a, sentinel_b = object(), object()
    q = WFQAdmissionQueue(1, classify=control_aware((sentinel_a, sentinel_b)))
    q.put_nowait(Item(None, 0))
    # Queue is at data capacity; the control must still go through
    # (shutdown cannot deadlock on a full queue) and must not be handed
    # out while admitted work waits (close() drains the backlog first).
    q.put_nowait(sentinel_a)
    q.put_nowait(sentinel_b)
    assert q.qsize() == 1  # controls are not data
    assert not q.empty()
    first = q.get_nowait()
    assert isinstance(first, Item)
    assert q.get_nowait() is sentinel_a
    assert q.get_nowait() is sentinel_b
    assert q.empty()


# ---------------------------------------------------------------------------
# FIFO degeneration and per-tenant FIFO


@settings(max_examples=60, deadline=None)
@given(admission_scripts(num_tenants=1, capacity=16))
def test_single_anonymous_tenant_is_exactly_fifo(script):
    """One flow == the plain FIFO the WFQ queue replaced."""
    q = WFQAdmissionQueue(16)
    serial = 0
    expected: list[int] = []
    got: list[int] = []
    backlog: list[int] = []
    for op, _ in script:
        if op == PUT:
            q.put_nowait(Item(None, serial))
            backlog.append(serial)
            serial += 1
        else:
            got.append(q.get_nowait().serial)
            expected.append(backlog.pop(0))
    assert got == expected
    # whatever the script left behind drains in arrival order too
    assert [item.serial for item in drain(q)] == backlog


@settings(max_examples=60, deadline=None)
@given(
    admission_scripts(num_tenants=3, capacity=16),
    st.lists(
        st.sampled_from([0.5, 1.0, 2.0, 4.0]), min_size=3, max_size=3
    ),
)
def test_fifo_within_tenant_any_interleaving(script, weights):
    """A tenant's own items are never reordered, whatever the weights."""
    tenants = make_tenants(
        ("a", "standard", weights[0]),
        ("b", "standard", weights[1]),
        ("c", "best_effort", weights[2]),
    )
    q = WFQAdmissionQueue(16)
    serial = 0
    served: dict[str, list[int]] = {t.name: [] for t in tenants}
    arrived: dict[str, list[int]] = {t.name: [] for t in tenants}
    for op, idx in script:
        if op == PUT:
            t = tenants[idx]
            q.put_nowait(Item(t, serial))
            arrived[t.name].append(serial)
            serial += 1
        else:
            item = q.get_nowait()
            served[item.tenant.name].append(item.serial)
    for item in drain(q):
        served[item.tenant.name].append(item.serial)
    assert served == arrived  # same items, same per-tenant order


# ---------------------------------------------------------------------------
# Work conservation


@settings(max_examples=60, deadline=None)
@given(admission_scripts(num_tenants=3, capacity=16))
def test_work_conservation(script):
    """Every admitted item is served exactly once; a get never fails
    while data waits; qsize tracks the script's pending count."""
    tenants = make_tenants(
        ("crit", "critical", 1.0),
        ("std", "standard", 2.0),
        ("be", "best_effort", 1.0),
    )
    q = WFQAdmissionQueue(16, starvation_escape=4)
    serial = 0
    pending = 0
    seen: set[int] = set()
    for op, idx in script:
        if op == PUT:
            q.put_nowait(Item(tenants[idx], serial))
            serial += 1
            pending += 1
        else:
            item = q.get_nowait()  # must not raise: data is waiting
            assert item.serial not in seen
            seen.add(item.serial)
            pending -= 1
        assert q.qsize() == pending
    rest = drain(q)
    assert len(seen) + len(rest) == serial
    assert seen.isdisjoint({i.serial for i in rest})


# ---------------------------------------------------------------------------
# Weighted fair share within a tier


def weighted_share_counts(weights, rounds=600):
    """Sustained backlog: every dequeue is followed by a same-tenant
    put, so all flows stay backlogged and the service counts measure
    the scheduler's steady-state shares."""
    tenants = make_tenants(
        *((f"t{i}", "standard", w) for i, w in enumerate(weights))
    )
    q = WFQAdmissionQueue(capacity=len(tenants) * 4)
    serial = 0
    for t in tenants:
        for _ in range(4):
            q.put_nowait(Item(t, serial))
            serial += 1
    counts = {t.name: 0 for t in tenants}
    for _ in range(rounds):
        item = q.get_nowait()
        counts[item.tenant.name] += 1
        q.put_nowait(Item(item.tenant, serial))
        serial += 1
    return counts


@pytest.mark.parametrize(
    "weights",
    [
        (1.0, 1.0),
        (1.0, 2.0),
        (1.0, 2.0, 4.0),
        (0.5, 1.0, 1.0, 2.0),
    ],
)
def test_weighted_share_proportional(weights):
    rounds = 600
    counts = weighted_share_counts(weights, rounds=rounds)
    total_w = sum(weights)
    for i, w in enumerate(weights):
        got = counts[f"t{i}"] / rounds
        want = w / total_w
        # Start-time fair queueing converges on proportional shares; a
        # 5-percentage-point band absorbs the discretization error.
        assert abs(got - want) < 0.05, (counts, weights)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.sampled_from([0.5, 1.0, 2.0, 3.0]), min_size=2, max_size=4)
)
def test_weighted_share_proportional_random_weights(weights):
    rounds = 400
    counts = weighted_share_counts(weights, rounds=rounds)
    total_w = sum(weights)
    for i, w in enumerate(weights):
        assert abs(counts[f"t{i}"] / rounds - w / total_w) < 0.08, (
            counts,
            weights,
        )


def test_equal_weights_interleave_round_robin():
    """Two equal flows with standing backlog alternate service."""
    a, b = make_tenants(("a", "standard", 1.0), ("b", "standard", 1.0))
    q = WFQAdmissionQueue(16)
    for i in range(4):
        q.put_nowait(Item(a, i))
    for i in range(4):
        q.put_nowait(Item(b, 10 + i))
    order = [item.tenant.name for item in drain(q)]
    # After the first service of each flow, no tenant is served twice
    # in a row while the other is backlogged.
    for i in range(1, 7):
        window = order[i - 1 : i + 2]
        assert len(set(window)) > 1, order


# ---------------------------------------------------------------------------
# Strict priority across tiers, and the anti-starvation escape


def test_strict_priority_without_escape():
    """Escape disabled: lower tiers are served only when higher tiers
    are empty — the best-effort class can starve completely."""
    crit, be = make_tenants(
        ("crit", "critical", 1.0), ("be", "best_effort", 1.0)
    )
    q = WFQAdmissionQueue(64, starvation_escape=None)
    for i in range(8):
        q.put_nowait(Item(be, i))
    served = []
    for i in range(100):
        q.put_nowait(Item(crit, 100 + i))
        served.append(q.get_nowait().tenant.name)
    assert served == ["crit"] * 100
    assert q.escapes == 0
    # Once the flood stops, best-effort drains in FIFO order.
    assert [it.serial for it in drain(q)] == list(range(8))


def test_starvation_escape_grants_trickle():
    """After K bypasses of a backlogged lower tier, one dequeue goes to
    its longest-waiting item."""
    K = 5
    crit, be = make_tenants(
        ("crit", "critical", 1.0), ("be", "best_effort", 1.0)
    )
    q = WFQAdmissionQueue(256, starvation_escape=K)
    for i in range(16):
        q.put_nowait(Item(be, i))
    served = []
    for i in range(96):  # sustained critical flood
        q.put_nowait(Item(crit, 1000 + i))
        served.append(q.get_nowait())
    names = [it.tenant.name for it in served]
    be_served = [it.serial for it in served if it.tenant.name == "be"]
    assert q.escapes == len(be_served) > 0
    # The trickle is periodic: exactly one best-effort dequeue per K+1.
    assert len(be_served) == 96 // (K + 1)
    for idx, name in enumerate(names):
        assert name == ("be" if idx % (K + 1) == K else "crit"), names
    # Longest-waiting first: the escape serves best-effort in FIFO order.
    assert be_served == list(range(len(be_served)))


def test_escape_counter_resets_when_backlog_clears():
    """Bypass streaks do not accumulate across idle periods of the
    lower tier: with only one backlogged tier there is no bypass."""
    crit, be = make_tenants(
        ("crit", "critical", 1.0), ("be", "best_effort", 1.0)
    )
    q = WFQAdmissionQueue(64, starvation_escape=3)
    # Critical-only service never counts as a bypass.
    for i in range(10):
        q.put_nowait(Item(crit, i))
        assert q.get_nowait().tenant.name == "crit"
    assert q.escapes == 0
    # Two bypasses, then the BE backlog clears via normal service.
    q.put_nowait(Item(be, 100))
    for i in range(2):
        q.put_nowait(Item(crit, 200 + i))
        assert q.get_nowait().tenant.name == "crit"
    assert q.get_nowait().tenant.name == "be"  # tier 0 empty -> BE serves
    # A fresh flood must take 3 full bypasses again before escaping.
    q.put_nowait(Item(be, 101))
    names = []
    for i in range(4):
        q.put_nowait(Item(crit, 300 + i))
        names.append(q.get_nowait().tenant.name)
    assert names == ["crit", "crit", "crit", "be"]


# ---------------------------------------------------------------------------
# Preemption hooks


def test_has_higher_tier_and_preempting_get():
    crit, std, be = make_tenants(
        ("crit", "critical", 1.0),
        ("std", "standard", 1.0),
        ("be", "best_effort", 1.0),
    )
    q = WFQAdmissionQueue(16)
    assert not q.has_higher_tier(2)
    q.put_nowait(Item(be, 0))
    assert not q.has_higher_tier(2)  # same tier is not "higher"
    q.put_nowait(Item(std, 1))
    assert q.has_higher_tier(2)
    assert not q.has_higher_tier(1)
    q.put_nowait(Item(crit, 2))
    assert q.has_higher_tier(1)

    # The preemption pull takes the best waiting tier above the caller's,
    # never same-or-lower.
    got = q.get_preempting_nowait(2)
    assert got.tenant.name == "crit"
    got = q.get_preempting_nowait(2)
    assert got.tenant.name == "std"
    with pytest.raises(queue.Empty):
        q.get_preempting_nowait(1)  # only best-effort (+ default) left


def test_preempting_get_skips_controls():
    be, = make_tenants(("be", "best_effort", 1.0))
    sentinel = object()
    q = WFQAdmissionQueue(
        16,
        classify=lambda item: None
        if item is sentinel
        else (item.tenant.tier, item.tenant.name, item.tenant.weight),
    )
    q.put_nowait(sentinel)
    with pytest.raises(queue.Empty):
        q.get_preempting_nowait(2)  # controls are not preemption targets
    q.put_nowait(Item(be, 0))
    with pytest.raises(queue.Empty):
        q.get_preempting_nowait(2)  # same tier: not a preemptor
    assert q.get_preempting_nowait(3).serial == 0


def test_backlog_ahead_monotone_in_tier():
    crit, std, be = make_tenants(
        ("crit", "critical", 1.0),
        ("std", "standard", 1.0),
        ("be", "best_effort", 1.0),
    )
    q = WFQAdmissionQueue(16)
    for t, n in ((crit, 1), (std, 2), (be, 3)):
        for i in range(n):
            q.put_nowait(Item(t, i))
    assert q.backlog_ahead(0) == 1
    assert q.backlog_ahead(1) == 3
    assert q.backlog_ahead(2) == 6
    assert q.depths() == {"crit": 1, "std": 2, "be": 3}


@settings(max_examples=40, deadline=None)
@given(admission_scripts(num_tenants=3, capacity=12))
def test_backlog_ahead_monotonicity_property(script):
    """backlog_ahead(t) is non-decreasing in t at every script step —
    the property the shedder's never-shed-critical-first guarantee
    rests on."""
    tenants = make_tenants(
        ("crit", "critical", 1.0),
        ("std", "standard", 1.0),
        ("be", "best_effort", 2.0),
    )
    q = WFQAdmissionQueue(12)
    serial = 0
    for op, idx in script:
        if op == PUT:
            q.put_nowait(Item(tenants[idx], serial))
            serial += 1
        else:
            q.get_nowait()
        ahead = [q.backlog_ahead(t) for t in range(3)]
        assert ahead == sorted(ahead)
        assert ahead[2] == q.qsize()
