"""Dynamic batcher properties: exactness, linger deadlines, accounting.

Three layers, matching the batcher's separable concerns:

* :func:`collect_batch` window mechanics against a *scripted* queue and
  fake clock — the linger-deadline property is checked in simulated
  time, with no real sleeping and no thread scheduling noise;
* :func:`analyze_stack_safety` verdicts on hand-built plans;
* end-to-end property runs through the real threaded frontend: for
  random (max_batch, linger, arrival-order) configurations, batched
  outputs are bit-identical to unbatched/solo outputs and the batch-size
  histogram accounts for every request exactly once.
"""

import queue

import numpy as np
import pytest

from repro.bench import elementwise_chain
from repro.core import DuetEngine
from repro.errors import ExecutionError
from repro.ir import GraphBuilder, make_inputs
from repro.runtime.core import DispatchKernel, InlineWorkers
from repro.runtime.session import EngineSession
from repro.serving import (
    BatchConfig,
    ServingConfig,
    analyze_stack_safety,
    collect_batch,
    run_stacked,
)
from repro.testing import GeneratorConfig, case_rng, generate_graph

#: Generator families whose ops are all stack-safe (no GEMM, no slicing).
STACK_SAFE_FAMILIES = {"unary": 1.0, "binary": 1.0, "reduction": 0.5}


class _ScriptedQueue:
    """Deterministic queue driven by a virtual clock: item ``i`` becomes
    available at ``arrivals[i]``; ``get`` advances the clock instead of
    sleeping."""

    def __init__(self, arrivals):
        self.arrivals = list(arrivals)
        self.now = 0.0
        self.next_index = 0

    def clock(self):
        return self.now

    def get(self, timeout_s):
        if self.next_index < len(self.arrivals):
            eta = self.arrivals[self.next_index]
            if eta <= self.now + max(timeout_s, 0.0):
                self.now = max(self.now, eta)
                item = self.next_index
                self.next_index += 1
                return item
        self.now += max(timeout_s, 0.0)
        raise queue.Empty


class TestCollectBatch:
    def test_fills_to_max_batch_without_waiting(self):
        script = _ScriptedQueue([0.0] * 10)
        batch, carry = collect_batch(
            "head",
            script.get,
            script.clock,
            BatchConfig(max_batch_size=4, max_linger_s=1.0),
            lambda head, item: True,
        )
        assert len(batch) == 4 and carry is None
        assert script.now == 0.0  # instant fill: no linger spent

    def test_incompatible_item_ends_window_and_carries(self):
        script = _ScriptedQueue(["a", "b", "ODD", "c"])
        script.arrivals = [0.0, 0.0, 0.0, 0.0]
        items = iter(["a", "b", "ODD", "c"])

        def get(timeout_s):
            return next(items)

        batch, carry = collect_batch(
            "head",
            get,
            script.clock,
            BatchConfig(max_batch_size=10, max_linger_s=1.0),
            lambda head, item: item != "ODD",
        )
        assert batch == ["head", "a", "b"]
        assert carry == "ODD"  # next window's head, order preserved

    @pytest.mark.parametrize("trial", range(20))
    def test_no_request_waits_past_the_linger_deadline(self, trial):
        """Window duration never exceeds max_linger_s (simulated time)."""
        rng = np.random.default_rng(trial)
        max_batch = int(rng.integers(1, 9))
        linger = float(rng.uniform(0.0, 0.05))
        arrivals = np.cumsum(rng.uniform(0.0, 0.02, size=12)).tolist()
        script = _ScriptedQueue(arrivals)
        config = BatchConfig(max_batch_size=max_batch, max_linger_s=linger)
        window_start = script.clock()
        batch, carry = collect_batch(
            "head", script.get, script.clock, config, lambda h, i: True
        )
        elapsed = script.clock() - window_start
        assert len(batch) <= max_batch
        # The head entered at window_start and the window closed by the
        # deadline (tiny epsilon for float accumulation in the script).
        assert elapsed <= linger + 1e-9

    def test_zero_linger_drains_backlog_but_never_blocks(self):
        script = _ScriptedQueue([0.0, 0.0, 5.0])  # two queued, one future
        batch, carry = collect_batch(
            "head",
            script.get,
            script.clock,
            BatchConfig(max_batch_size=8, max_linger_s=0.0),
            lambda h, i: True,
        )
        assert len(batch) == 3  # head + the two already-queued items
        assert script.now == 0.0

    def test_config_validation(self):
        with pytest.raises(ExecutionError):
            BatchConfig(max_batch_size=0)
        with pytest.raises(ExecutionError):
            BatchConfig(max_linger_s=-1.0)


class TestStackDecision:
    def _plan(self, graph):
        return DuetEngine().optimize(graph).plan

    def test_elementwise_chain_is_stackable(self):
        decision = analyze_stack_safety(
            self._plan(elementwise_chain(batch=2, width=8, depth=2))
        )
        assert decision.stackable
        assert decision.batch == 2

    def test_dense_is_not_stackable(self):
        b = GraphBuilder("dense")
        x = b.input("x", (2, 8))
        w = b.const((8, 8))
        decision = analyze_stack_safety(self._plan(b.build(b.op("dense", x, w))))
        assert not decision.stackable
        assert "not stack-safe" in decision.reason

    def test_strided_slice_is_not_stackable(self):
        b = GraphBuilder("slice")
        x = b.input("x", (2, 8))
        y = b.op("strided_slice", x, begin=(0, 0), end=(2, 4))
        decision = analyze_stack_safety(self._plan(b.build(y)))
        assert not decision.stackable

    def test_batch_axis_reduction_is_not_stackable(self):
        b = GraphBuilder("axis0")
        x = b.input("x", (2, 8))
        y = b.op("softmax", x, axis=0)
        decision = analyze_stack_safety(self._plan(b.build(y)))
        assert not decision.stackable
        assert "batch axis" in decision.reason

    @pytest.mark.parametrize("index", range(12))
    def test_stack_safe_family_graphs_are_stackable(self, index):
        graph = generate_graph(
            case_rng(77, index),
            GeneratorConfig(max_ops=10, families=dict(STACK_SAFE_FAMILIES)),
        )
        assert analyze_stack_safety(self._plan(graph)).stackable


class TestRunStackedExactness:
    @pytest.mark.parametrize("index", range(10))
    def test_stacked_outputs_bit_identical_to_solo(self, index):
        """run_stacked == per-request session runs, for whitelisted plans."""
        engine = DuetEngine()
        graph = generate_graph(
            case_rng(101, index),
            GeneratorConfig(max_ops=12, families=dict(STACK_SAFE_FAMILIES)),
        )
        opt = engine.optimize(graph)
        decision = analyze_stack_safety(opt.plan)
        assert decision.stackable
        batch_inputs = [
            make_inputs(graph, seed=1000 * index + k) for k in range(5)
        ]
        solo = EngineSession(opt.plan)
        expected = [solo.run(feeds).outputs for feeds in batch_inputs]
        kernel = DispatchKernel(opt.plan, workers=InlineWorkers())
        got = run_stacked(
            lambda feeds: kernel.run(feeds).outputs,
            batch_inputs,
            decision.batch,
        )
        for got_outs, want_outs in zip(got, expected):
            assert len(got_outs) == len(want_outs)
            for g, w in zip(got_outs, want_outs):
                np.testing.assert_array_equal(g, w)


class TestFrontendBatchingProperties:
    """Random (max_batch, linger, arrival-order) configurations."""

    @pytest.mark.parametrize("trial", range(6))
    def test_batched_equals_unbatched_and_histogram_accounts_all(self, trial):
        rng = np.random.default_rng(trial)
        engine = DuetEngine()
        # Alternate between a stack-safe model (stacked execution) and a
        # mixed-family one (per-request fallback inside batches).
        if trial % 2 == 0:
            config = GeneratorConfig(
                max_ops=8, families=dict(STACK_SAFE_FAMILIES)
            )
        else:
            config = GeneratorConfig(max_ops=8)
        graph = generate_graph(case_rng(55, trial), config)
        opt = engine.optimize(graph)

        n_requests = 24
        seeds = rng.integers(0, 10_000, size=n_requests).tolist()
        solo = EngineSession(opt.plan)
        cases = [
            (make_inputs(graph, seed=int(s)), None) for s in seeds
        ]
        cases = [
            (feeds, solo.run(feeds).outputs) for feeds, _ in cases
        ]
        order = rng.permutation(n_requests)  # random arrival order

        serving = ServingConfig(
            batching=True,
            max_batch_size=int(rng.integers(1, 9)),
            max_linger_s=float(rng.uniform(0.0, 0.005)),
            pool_size=1,
        )
        with engine.serve(opt, config=serving) as frontend:
            futures = [
                (i, frontend.submit(cases[i][0])) for i in order
            ]
            for i, fut in futures:
                result = fut.result(30.0)
                for got, want in zip(result.outputs, cases[i][1]):
                    np.testing.assert_array_equal(got, want)
                assert 1 <= result.batch_size <= serving.max_batch_size
            sizes = frontend.registry.histogram("duet_batch_size").merged()
            # Every request rode in exactly one batch.
            assert sizes.sum == n_requests
            batches = frontend.registry.counter("duet_batches_total")
            assert batches.total() == sizes.count
