"""Metrics registry tests: pinned values, exposition round-trip, buckets.

The deterministic serving scenario pins *exact* counter/gauge/histogram
values: with an injected constant clock, a pre-filled queue, and zero
linger, every timing-derived observation is exactly 0.0 and every count
is fixed by the batching arithmetic — so two runs must render
byte-identical exposition text.
"""

import math

import numpy as np
import pytest

from repro.bench import elementwise_chain
from repro.core import DuetEngine
from repro.errors import MetricsError
from repro.ir import make_inputs
from repro.serving import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
    ServingConfig,
    parse_exposition,
    validate_buckets,
)


class TestBucketValidation:
    """The single, central home of bucket-layout validation."""

    def test_canonical_layouts_are_valid(self):
        assert validate_buckets(LATENCY_BUCKETS_S) == LATENCY_BUCKETS_S
        assert validate_buckets(BATCH_SIZE_BUCKETS) == BATCH_SIZE_BUCKETS

    @pytest.mark.parametrize(
        "bad",
        [
            (),
            (1.0, float("inf")),
            (float("nan"),),
            (0.0, 1.0),
            (-1.0, 1.0),
            (1.0, 1.0),
            (2.0, 1.0),
        ],
    )
    def test_invalid_layouts_raise(self, bad):
        with pytest.raises(MetricsError):
            validate_buckets(bad)


class TestFamilies:
    def test_counter_accumulates_per_label(self):
        registry = MetricsRegistry()
        c = registry.counter("reqs")
        c.inc(model="a")
        c.inc(2, model="a")
        c.inc(5, model="b")
        assert c.value(model="a") == 3
        assert c.value(model="b") == 5
        assert c.total() == 8

    def test_counter_rejects_decrease(self):
        with pytest.raises(MetricsError, match="cannot decrease"):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(4, model="a")
        g.inc(2, model="a")
        g.dec(5, model="a")
        assert g.value(model="a") == 1
        assert g.value(model="never") == 0.0

    def test_histogram_counts_and_sum(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        snap = h.snapshot()
        # (0,1]: 0.5, 1.0; (1,2]: 1.5; (2,4]: 3.0; +Inf: 100.0
        assert snap.counts == (2, 1, 1, 1)
        assert snap.count == 5
        assert snap.sum == pytest.approx(106.0)

    def test_quantile_interpolates_within_bucket(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        for _ in range(4):
            h.observe(1.5)  # all in (1, 2]
        snap = h.snapshot()
        # rank 2 of 4 is midway through the (1, 2] bucket.
        assert snap.quantile(0.5) == pytest.approx(1.5)
        assert snap.quantile(1.0) == pytest.approx(2.0)

    def test_quantile_edge_cases(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        assert math.isnan(h.snapshot().quantile(0.5))
        h.observe(50.0)  # overflow bucket clamps to the last bound
        assert h.snapshot().quantile(0.99) == 2.0
        with pytest.raises(MetricsError):
            h.snapshot().quantile(1.5)

    def test_quantile_estimate_flags_overflow(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        for _ in range(9):
            h.observe(0.5)
        h.observe(50.0)  # lands in +Inf
        snap = h.snapshot()
        # p50 is safely inside the finite buckets.
        value, overflowed = snap.quantile_estimate(0.5)
        assert not overflowed and value <= 1.0
        # p99's rank falls in the overflow bucket: the clamped value is
        # only a lower bound and the caller must be told.
        value, overflowed = snap.quantile_estimate(0.99)
        assert overflowed and value == 2.0
        assert snap.overflow_count == 1
        # quantile() keeps its historical float-only contract.
        assert snap.quantile(0.99) == value

    def test_quantile_estimate_no_overflow_without_inf_hits(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        h.observe(1.5)
        snap = h.snapshot()
        assert snap.overflow_count == 0
        _, overflowed = snap.quantile_estimate(1.0)
        assert not overflowed
        # Empty series: NaN, not flagged.
        empty = MetricsRegistry().histogram("lat2", buckets=(1.0,)).snapshot()
        value, overflowed = empty.quantile_estimate(0.9)
        assert math.isnan(value) and not overflowed

    def test_registry_same_name_same_type_is_shared(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_registry_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricsError, match="already registered"):
            registry.gauge("x")


class TestExpositionRoundTrip:
    def _sample_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("reqs", help="requests").inc(3, model="a", outcome="ok")
        registry.counter("reqs").inc(1, model="b", outcome="error")
        registry.gauge("depth").set(2.5, model="a")
        h = registry.histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05, model="a")
        h.observe(0.5, model="a")
        h.observe(7.0, model="a")
        return registry

    def test_render_parses_back_to_the_same_samples(self):
        registry = self._sample_registry()
        samples = parse_exposition(registry.render())
        assert samples[("reqs", (("model", "a"), ("outcome", "ok")))] == 3
        assert samples[("reqs", (("model", "b"), ("outcome", "error")))] == 1
        assert samples[("depth", (("model", "a"),))] == 2.5
        key = ("lat_bucket", (("le", "0.1"), ("model", "a")))
        assert samples[key] == 1
        assert samples[("lat_bucket", (("le", "1"), ("model", "a")))] == 2
        assert samples[("lat_bucket", (("le", "+Inf"), ("model", "a")))] == 3
        assert samples[("lat_count", (("model", "a"),))] == 3
        assert samples[("lat_sum", (("model", "a"),))] == pytest.approx(7.55)

    @pytest.mark.parametrize(
        "bad",
        [
            "no_value_here",
            'name{unterminated="x" 1',
            'name{noquotes=x} 1',
            "name twelve",
        ],
    )
    def test_parser_rejects_malformed_lines(self, bad):
        with pytest.raises(MetricsError):
            parse_exposition(bad)


class TestDeterministicServingScenario:
    """Single-threaded, constant-clock serving run with pinned metrics."""

    N_REQUESTS = 6
    MAX_BATCH = 4

    @pytest.fixture(scope="class")
    def engine_and_opt(self):
        engine = DuetEngine()
        graph = elementwise_chain(batch=2, width=8, depth=2)
        return engine, engine.optimize(graph), graph

    def _run_scenario(self, engine_and_opt) -> MetricsRegistry:
        engine, opt, graph = engine_and_opt
        registry = MetricsRegistry()
        feeds = make_inputs(graph, seed=3)
        frontend = engine.serve(
            opt,
            config=ServingConfig(
                batching=True,
                max_batch_size=self.MAX_BATCH,
                max_linger_s=0.0,  # drain what is queued, never wait
                pool_size=1,
            ),
            registry=registry,
            clock=lambda: 0.0,
            autostart=False,
        )
        futures = [frontend.submit(feeds) for _ in range(self.N_REQUESTS)]
        frontend.start()
        for fut in futures:
            fut.result(10.0)
        frontend.close()
        return registry

    def test_pinned_counter_and_histogram_values(self, engine_and_opt):
        _, opt, _ = engine_and_opt
        registry = self._run_scenario(engine_and_opt)

        reqs = registry.counter("duet_requests_total")
        assert reqs.value(model="default", outcome="ok") == self.N_REQUESTS
        assert reqs.total() == self.N_REQUESTS

        # 6 pre-queued requests drain as one batch of 4 then one of 2.
        batches = registry.counter("duet_batches_total")
        assert batches.value(model="default", mode="stacked") == 2
        assert batches.total() == 2

        sizes = registry.histogram("duet_batch_size").snapshot(model="default")
        assert sizes.count == 2
        assert sizes.sum == self.N_REQUESTS
        by_bound = dict(zip(sizes.bounds, sizes.counts))
        assert by_bound[2.0] == 1 and by_bound[4.0] == 1

        # The injected clock never advances: every timing metric is 0.0.
        waits = registry.histogram("duet_queue_wait_seconds").snapshot(
            model="default"
        )
        assert waits.count == self.N_REQUESTS and waits.sum == 0.0
        assert waits.counts[0] == self.N_REQUESTS  # all in the first bucket
        lat = registry.histogram("duet_request_latency_seconds").snapshot(
            model="default"
        )
        assert lat.count == self.N_REQUESTS and lat.sum == 0.0
        busy = registry.counter("duet_device_busy_seconds_total")
        assert busy.total() == 0.0

        # Two dispatches, each running every task of the plan once.
        attempts = registry.counter("duet_task_attempts_total")
        assert attempts.total() == 2 * len(opt.plan.tasks)
        assert registry.counter("duet_task_errors_total").total() == 0

        assert registry.gauge("duet_queue_depth").value(model="default") == 0
        assert registry.gauge("duet_inflight_requests").value(model="default") == 0

    def test_exposition_is_stable_across_identical_runs(self, engine_and_opt):
        first = self._run_scenario(engine_and_opt).render()
        second = self._run_scenario(engine_and_opt).render()
        assert first == second
        # And it parses: the stable text is also well-formed.
        assert parse_exposition(first)

    def test_snapshot_matches_exposition(self, engine_and_opt):
        registry = self._run_scenario(engine_and_opt)
        snap = registry.snapshot()
        samples = parse_exposition(registry.render())
        key = (("model", "default"), ("outcome", "ok"))
        assert snap["duet_requests_total"]["samples"][key] == samples[
            ("duet_requests_total", key)
        ]
        hist = snap["duet_batch_size"]["samples"][(("model", "default"),)]
        assert hist["count"] == samples[
            ("duet_batch_size_count", (("model", "default"),))
        ]
