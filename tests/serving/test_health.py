"""Slot-health tests: the units, then device loss through a live lane.

Unit coverage of the three health pieces (:class:`SlotHealth`'s state
machine, :class:`LaneHealth`'s lost-device set, the
:class:`AdaptiveShedder` EWMA math) plus :func:`~repro.runtime.resilient.
survivor_plan` selection.  The integration test then walks the whole
quarantine lifecycle against a real frontend: kill the GPU under a
:class:`~repro.runtime.faults.ScriptedChaosInjector`, watch the slot
quarantine and rebuild onto the CPU's standing degradation plan (the
in-flight request retried once, bit-identically), then revive the device
and watch :meth:`~repro.serving.ServingFrontend.restore_device` stage a
background rebuild the worker adopts at a batch boundary.
"""

import time

import numpy as np
import pytest

from repro.core import DuetEngine
from repro.devices import default_machine
from repro.errors import DeviceLostError, ExecutionError, ReproError
from repro.ir import make_inputs
from repro.models import build_model
from repro.runtime.faults import ScriptedChaosInjector
from repro.runtime.resilient import survivor_plan
from repro.runtime.session import EngineSession
from repro.serving import (
    SLOT_DEGRADED,
    SLOT_HEALTHY,
    SLOT_QUARANTINED,
    SLOT_STATE_CODES,
    AdaptiveShedder,
    HealthConfig,
    LaneHealth,
    ServingConfig,
    SlotHealth,
)


class TestSlotHealth:
    def test_state_codes_cover_all_states(self):
        assert SLOT_STATE_CODES == {
            SLOT_HEALTHY: 0,
            SLOT_QUARANTINED: 1,
            SLOT_DEGRADED: 2,
        }

    def test_failure_streak_counts_and_resets(self):
        health = SlotHealth()
        assert health.record_failure() == 1
        assert health.record_failure() == 2
        health.record_success()
        assert health.consecutive_failures == 0
        assert health.record_failure() == 1

    def test_quarantine_degrade_restore_cycle(self):
        health = SlotHealth()
        health.quarantine()
        assert health.state == SLOT_QUARANTINED
        assert health.quarantines == 1
        health.mark_degraded("cpu")
        assert health.state == SLOT_DEGRADED
        assert health.degraded_device == "cpu"
        assert health.rebuilds == 1
        health.consecutive_failures = 3
        health.mark_healthy()
        assert health.state == SLOT_HEALTHY
        assert health.degraded_device is None
        assert health.consecutive_failures == 0
        assert health.rebuilds == 2

    def test_config_validation(self):
        with pytest.raises(ExecutionError):
            HealthConfig(failure_threshold=0)
        assert HealthConfig().enabled is True


class TestLaneHealth:
    def test_mark_lost_reports_novelty(self):
        lane = LaneHealth()
        assert lane.mark_lost("gpu") is True
        assert lane.mark_lost("gpu") is False
        assert lane.is_lost("gpu")
        assert not lane.is_lost("cpu")
        assert lane.lost_devices == frozenset({"gpu"})

    def test_revive_reports_whether_it_was_lost(self):
        lane = LaneHealth()
        assert lane.revive("gpu") is False
        lane.mark_lost("gpu")
        assert lane.revive("gpu") is True
        assert lane.lost_devices == frozenset()


class TestSurvivorPlan:
    # survivor_plan only reads the mapping; sentinels stand in for plans.
    PLAN_A, PLAN_B = object(), object()

    def test_prefers_first_surviving_device_in_order(self):
        plans = {"cpu": self.PLAN_A, "gpu": self.PLAN_B}
        assert survivor_plan(plans, frozenset()) == ("cpu", self.PLAN_A)
        assert survivor_plan(plans, {"cpu"}) == ("gpu", self.PLAN_B)

    def test_none_when_no_survivor_has_a_plan(self):
        plans = {"cpu": self.PLAN_A, "gpu": self.PLAN_B}
        assert survivor_plan(plans, {"cpu", "gpu"}) is None
        assert survivor_plan({}, frozenset()) is None
        assert survivor_plan({"cpu": self.PLAN_A}, {"cpu"}) is None


class TestAdaptiveShedder:
    def test_knob_validation(self):
        with pytest.raises(ExecutionError):
            AdaptiveShedder(alpha=0.0)
        with pytest.raises(ExecutionError):
            AdaptiveShedder(alpha=1.5)
        with pytest.raises(ExecutionError):
            AdaptiveShedder(warmup=0)

    def test_abstains_before_warmup(self):
        shedder = AdaptiveShedder(warmup=3)
        shedder.observe(1.0, 2.0)
        shedder.observe(1.0, 2.0)
        assert shedder.predicted_sojourn_s() is None
        assert shedder.predicted_queue_wait_s() is None
        assert shedder.unmeetable(1e-9) is None

    def test_ewma_matches_hand_computation(self):
        shedder = AdaptiveShedder(alpha=0.5, warmup=2)
        shedder.observe(1.0, 2.0)  # first sample initializes the means
        shedder.observe(3.0, 4.0)
        assert shedder.predicted_queue_wait_s() == pytest.approx(2.0)
        assert shedder.predicted_sojourn_s() == pytest.approx(3.0)

    def test_unmeetable_compares_margin_scaled_prediction(self):
        shedder = AdaptiveShedder(alpha=1.0, warmup=1)
        shedder.observe(0.5, 1.0)
        assert shedder.unmeetable(0.9) == pytest.approx(1.0)
        assert shedder.unmeetable(1.1) is None
        # A 2x safety margin sheds deadlines under twice the prediction.
        assert shedder.unmeetable(1.5, margin=2.0) == pytest.approx(2.0)
        assert shedder.unmeetable(2.5, margin=2.0) is None

    def test_negative_timings_clamp_to_zero(self):
        shedder = AdaptiveShedder(alpha=1.0, warmup=1)
        shedder.observe(-1.0, -2.0)
        assert shedder.predicted_sojourn_s() == 0.0


def _mixed_setup():
    """A both-device optimization, seeded inputs, and solo reference."""
    from repro.bench.chaos import _mixed_serving_opt

    graph = build_model("siamese", tiny=True)
    engine = DuetEngine(machine=default_machine(noisy=False))
    opt = _mixed_serving_opt(engine, graph)
    assert {task.device for task in opt.plan.tasks} == {"cpu", "gpu"}
    feeds = make_inputs(graph, seed=0)
    want = [
        np.copy(o) for o in EngineSession(opt.plan, opt=opt).run(feeds).outputs
    ]
    return engine, opt, feeds, want


def _identical(outputs, want):
    return len(outputs) == len(want) and all(
        np.array_equal(got, ref) for got, ref in zip(outputs, want)
    )


class TestDeviceLossRecovery:
    def test_quarantine_rebuild_and_restore_lifecycle(self):
        engine, opt, feeds, want = _mixed_setup()
        injector = ScriptedChaosInjector()
        config = ServingConfig(pool_size=1, batching=False, shedding=False)
        with engine.serve(
            {"m": opt}, config=config, fault_injectors={"m": injector}
        ) as frontend:
            lane = frontend._lanes["m"]
            result = frontend.request(feeds, model="m", timeout_s=30.0)
            assert _identical(result.outputs, want)
            assert frontend.lane_info("m")["slot_states"] == [SLOT_HEALTHY]

            # Kill the GPU mid-service: the slot quarantines, rebuilds
            # onto the CPU's standing degradation plan, and the failing
            # request is retried once — the caller sees only a success.
            injector.lose_device("gpu")
            result = frontend.request(feeds, model="m", timeout_s=30.0)
            assert _identical(result.outputs, want)
            info = frontend.lane_info("m")
            assert info["slot_states"] == [SLOT_DEGRADED]
            assert info["lost_devices"] == ["gpu"]
            slot = lane.slots[0]
            assert slot.health.degraded_device == "cpu"
            assert lane.slot_quarantines.value(model="m") == 1
            assert lane.slot_rebuilds.value(model="m", kind="degraded") == 1

            # Degraded-but-correct: follow-ups keep serving from the CPU.
            for _ in range(3):
                result = frontend.request(feeds, model="m", timeout_s=30.0)
                assert _identical(result.outputs, want)

            # Revive the device, declare it restored: a background
            # rebuild is staged and adopted at the next batch boundary.
            injector.revive_device("gpu")
            assert frontend.restore_device("gpu", model="m") is True
            deadline = time.monotonic() + 30.0
            while frontend.lane_info("m")["slot_states"] != [SLOT_HEALTHY]:
                if time.monotonic() > deadline:
                    pytest.fail("slot never adopted the restored session")
                result = frontend.request(feeds, model="m", timeout_s=30.0)
                assert _identical(result.outputs, want)
            assert lane.slot_rebuilds.value(model="m", kind="restored") == 1
            assert frontend.lane_info("m")["lost_devices"] == []
            result = frontend.request(feeds, model="m", timeout_s=30.0)
            assert _identical(result.outputs, want)

    def test_health_disabled_fails_requests_on_device_loss(self):
        engine, opt, feeds, _ = _mixed_setup()
        injector = ScriptedChaosInjector()
        config = ServingConfig(
            pool_size=1,
            batching=False,
            shedding=False,
            health=HealthConfig(enabled=False),
        )
        with engine.serve(
            {"m": opt}, config=config, fault_injectors={"m": injector}
        ) as frontend:
            injector.lose_device("gpu")
            with pytest.raises(DeviceLostError):
                frontend.request(feeds, model="m", timeout_s=30.0)
            info = frontend.lane_info("m")
            assert info["slot_states"] == [SLOT_HEALTHY]
            assert info["lost_devices"] == []
            lane = frontend._lanes["m"]
            assert lane.slot_quarantines.value(model="m") == 0

    def test_no_survivor_fails_requests_without_hanging(self):
        engine, opt, feeds, _ = _mixed_setup()
        injector = ScriptedChaosInjector()
        config = ServingConfig(pool_size=1, batching=False, shedding=False)
        with engine.serve(
            {"m": opt}, config=config, fault_injectors={"m": injector}
        ) as frontend:
            injector.lose_device("cpu")
            injector.lose_device("gpu")
            # Both devices gone: no degradation plan can help, but every
            # request still reaches a terminal state.
            for _ in range(2):
                with pytest.raises(ReproError):
                    frontend.request(feeds, model="m", timeout_s=30.0)

    def test_restore_stays_degraded_while_any_device_is_lost(self):
        engine, opt, feeds, want = _mixed_setup()
        injector = ScriptedChaosInjector()
        config = ServingConfig(pool_size=1, batching=False, shedding=False)
        with engine.serve(
            {"m": opt}, config=config, fault_injectors={"m": injector}
        ) as frontend:
            lane = frontend._lanes["m"]
            injector.lose_device("gpu")
            result = frontend.request(feeds, model="m", timeout_s=30.0)
            assert _identical(result.outputs, want)
            lane.health.mark_lost("cpu")
            # The primary plan still touches a lost device: nothing to
            # stage, the slot stays on the degradation plan.
            assert frontend.restore_device("gpu", model="m") is False
            assert frontend.lane_info("m")["slot_states"] == [SLOT_DEGRADED]
            lane.health.revive("cpu")
