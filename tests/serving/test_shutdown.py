"""Shutdown tests: no hung futures, drained queues, flushed counters.

The serving layer's hardest invariant is that every admitted request
reaches exactly one terminal state — including when :meth:`close` races
in-flight faulty batches, when a worker loop hits a non-Repro crash, and
when requests land behind the shutdown sentinels.  These tests drive all
three paths, plus the shutdown-time flush of the retry middleware's
counters (the final in-flight batch's deltas used to be lost when the
worker loop exited before its next flush).
"""

import time

import pytest

from repro.core import DuetEngine
from repro.devices import default_machine
from repro.errors import ExecutionError, ReproError
from repro.ir import make_inputs
from repro.models import build_model
from repro.runtime.faults import ScriptedChaosInjector
from repro.runtime.resilient import RetryPolicy
from repro.serving import ServingConfig


@pytest.fixture(scope="module")
def served():
    graph = build_model("wide_deep", tiny=True)
    engine = DuetEngine(machine=default_machine(noisy=False))
    opt = engine.optimize(graph)
    feeds = make_inputs(graph, seed=0)
    return engine, opt, feeds


class TestCloseSemantics:
    def test_close_fails_requests_behind_the_sentinels(self, served):
        engine, opt, feeds = served
        config = ServingConfig(pool_size=1, batching=False, shedding=False)
        frontend = engine.serve(opt, config=config, autostart=False)
        futures = [frontend.submit(feeds) for _ in range(3)]
        # Workers never started: close() must still drain the queue and
        # fail every waiting future instead of leaving them hung.
        frontend.close()
        for fut in futures:
            assert fut.done()
            with pytest.raises(ReproError, match="closed before the request"):
                fut.result(timeout_s=0.0)
        lane = frontend._lanes["default"]
        assert (
            lane.requests_total.value(model="default", outcome="rejected") == 3
        )
        assert lane.queue_depth.value(model="default") == 0

    def test_submit_after_close_raises(self, served):
        engine, opt, feeds = served
        frontend = engine.serve(opt, config=ServingConfig(pool_size=1))
        frontend.close()
        frontend.close()  # idempotent
        with pytest.raises(ExecutionError, match="closed"):
            frontend.submit(feeds)


class TestShutdownUnderInflightFaults:
    def test_no_hung_futures_when_close_races_faulty_batches(self, served):
        """Satellite invariant: close() during a fault storm leaves no
        ServeFuture unresolved — every one resolves or raises."""
        engine, opt, feeds = served
        injector = ScriptedChaosInjector()
        # Every other attempt faults, no retry middleware: batches fail
        # mid-flight exactly while the sentinels queue up behind them.
        injector.set_mode("transient", rate=2)
        config = ServingConfig(
            pool_size=2,
            batching=True,
            max_batch_size=4,
            max_linger_s=1e-3,
            shedding=False,
        )
        frontend = engine.serve(
            opt, config=config, fault_injectors={"default": injector}
        )
        futures = [frontend.submit(feeds) for _ in range(32)]
        time.sleep(0.005)  # let workers get mid-batch before the close
        frontend.close()
        outcomes = {"ok": 0, "failed": 0}
        for fut in futures:
            assert fut.done(), "close() left an admitted future unresolved"
            try:
                fut.result(timeout_s=0.0)
                outcomes["ok"] += 1
            except ReproError:
                outcomes["failed"] += 1
        # Exactly one terminal state each, and the storm really fired.
        assert sum(outcomes.values()) == len(futures)
        assert outcomes["failed"] > 0

    def test_worker_crash_fails_the_batch_and_keeps_serving(self, served):
        """A non-Repro crash inside batch execution must fail that
        batch's futures (not hang them) and leave the worker alive."""
        engine, opt, feeds = served
        config = ServingConfig(pool_size=1, batching=False, shedding=False)
        with engine.serve(opt, config=config) as frontend:
            lane = frontend._lanes["default"]

            def boom(slot, batch):
                raise RuntimeError("synthetic executor crash")

            lane._execute = boom
            fut = frontend.submit(feeds)
            with pytest.raises(
                ExecutionError, match="serving worker failed"
            ) as excinfo:
                fut.result(timeout_s=30.0)
            assert "synthetic executor crash" in str(excinfo.value)
            assert (
                lane.requests_total.value(model="default", outcome="error")
                == 1
            )
            # The worker survived the crash: restore the real executor
            # and the lane serves again.
            del lane._execute
            frontend.request(feeds, timeout_s=30.0)


class TestRetryCounterFlush:
    def test_shutdown_flushes_pending_retry_deltas(self, served):
        """White-box: deltas accumulated after the last batch flush must
        reach the registry when the lane shuts down."""
        engine, opt, feeds = served
        config = ServingConfig(
            pool_size=1,
            batching=False,
            shedding=False,
            retry_policy=RetryPolicy(max_attempts=3, backoff_base_s=1e-5),
        )
        frontend = engine.serve(opt, config=config)
        lane = frontend._lanes["default"]
        slot = lane.slots[0]
        # No batch ran, so nothing has flushed these yet.
        slot.retry_counters["retries"] += 3
        slot.retry_counters["faults"] += 2
        frontend.close()
        assert lane.retry_metrics["retries"].value(model="default") == 3
        assert lane.retry_metrics["faults"].value(model="default") == 2

    def test_registry_matches_slot_counters_after_close(self, served):
        """End-to-end: after close(), the registry totals equal the sum
        of every slot's in-memory retry counters — no lost deltas."""
        engine, opt, feeds = served
        injector = ScriptedChaosInjector()
        injector.set_mode("transient", rate=3)
        config = ServingConfig(
            pool_size=2,
            batching=False,
            shedding=False,
            retry_policy=RetryPolicy(max_attempts=4, backoff_base_s=1e-5),
        )
        frontend = engine.serve(
            opt, config=config, fault_injectors={"default": injector}
        )
        futures = [frontend.submit(feeds) for _ in range(24)]
        for fut in futures:
            fut.result(timeout_s=30.0)
        frontend.close()
        lane = frontend._lanes["default"]
        for key in ("faults", "retries", "giveups"):
            total = sum(slot.retry_counters[key] for slot in lane.slots)
            assert lane.retry_metrics[key].value(model="default") == total
        assert (
            sum(slot.retry_counters["retries"] for slot in lane.slots) > 0
        ), "the transient schedule should have forced retries"
