"""Concurrent differential stress: serving == solo oracle, bit for bit.

K worker threads hammer the serving frontend with fuzzer-generated
models and seeded inputs; every response must be `np.array_equal` to a
solo :class:`~repro.runtime.session.EngineSession` run of the same
(model, input) pair — the serving layer's core contract.  Three arms:

* batching off — pure admission/pooling concurrency;
* forced batching — long linger windows so requests genuinely coalesce
  (asserted via the batch counters), stacked execution included;
* fault injection — transient kernel faults and corrupted transfers
  under a retry middleware stack, still bit-identical.

Run it alone (the CI ``serving-stress`` job does) with::

    PYTHONPATH=src python -m pytest tests/serving/test_stress.py -q
"""

import threading

import numpy as np
import pytest

from repro.core import DuetEngine
from repro.ir import make_inputs
from repro.runtime.faults import FaultInjector, FaultPlan, KernelFault, TransferFault
from repro.runtime.resilient import RetryPolicy
from repro.runtime.session import EngineSession
from repro.serving import ServingConfig
from repro.testing import GeneratorConfig, case_rng, generate_graph

SEED = 20260806  # fixed: CI replays the exact same campaign
N_THREADS = 8
N_REQUESTS = 240
N_MODELS = 6
N_INPUT_SEEDS = 5


@pytest.fixture(scope="module")
def fleet():
    """Optimized models plus precomputed solo-oracle outputs."""
    engine = DuetEngine()
    models = {}
    expected = {}
    for m in range(N_MODELS):
        # Half the fleet restricted to stack-safe families (these lanes
        # exercise stacked execution under forced batching), half drawing
        # from every family (dense/recurrent/slice lanes exercise the
        # coalesced per-request fallback).
        if m % 2 == 0:
            config = GeneratorConfig(
                max_ops=10,
                families={"unary": 1.0, "binary": 1.0, "reduction": 0.5},
            )
        else:
            config = GeneratorConfig(max_ops=10)
        graph = generate_graph(case_rng(SEED, m), config, name=f"model{m}")
        opt = engine.optimize(graph)
        name = f"model{m}"
        models[name] = opt
        solo = EngineSession(opt.plan)
        for k in range(N_INPUT_SEEDS):
            feeds = make_inputs(graph, seed=SEED + k)
            expected[(name, k)] = (feeds, solo.run(feeds).outputs)
    return engine, models, expected


def _hammer(frontend, expected, n_requests, n_threads):
    """Drive the frontend from ``n_threads`` threads; returns mismatches."""
    names = sorted({name for name, _ in expected})
    errors = []
    lock = threading.Lock()
    counter = iter(range(n_requests))

    def loop():
        while True:
            with lock:
                index = next(counter, None)
            if index is None:
                return
            name = names[index % len(names)]
            k = (index // len(names)) % N_INPUT_SEEDS
            feeds, want = expected[(name, k)]
            try:
                result = frontend.request(feeds, model=name, timeout_s=60.0)
            except Exception as exc:  # collected, not raised mid-thread
                with lock:
                    errors.append(f"request {index} ({name}): {exc!r}")
                continue
            ok = len(result.outputs) == len(want) and all(
                np.array_equal(g, w)
                for g, w in zip(result.outputs, want)
            )
            if not ok:
                with lock:
                    errors.append(
                        f"request {index} ({name}, seed {k}): outputs differ"
                    )

    threads = [
        threading.Thread(target=loop, name=f"stress-{i}", daemon=True)
        for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


def test_stress_unbatched_bit_identical(fleet):
    engine, models, expected = fleet
    config = ServingConfig(batching=False, pool_size=2, queue_capacity=64)
    with engine.serve(models, config=config) as frontend:
        errors = _hammer(frontend, expected, N_REQUESTS, N_THREADS)
        assert not errors, errors[:5]
        total = frontend.registry.counter("duet_requests_total").total()
    assert total == N_REQUESTS


def test_stress_forced_batching_bit_identical(fleet):
    engine, models, expected = fleet
    config = ServingConfig(
        batching=True,
        max_batch_size=N_THREADS,
        max_linger_s=0.02,  # long enough that concurrent requests coalesce
        pool_size=1,
        queue_capacity=64,
    )
    with engine.serve(models, config=config) as frontend:
        errors = _hammer(frontend, expected, N_REQUESTS, N_THREADS)
        assert not errors, errors[:5]
        registry = frontend.registry
        batches = registry.counter("duet_batches_total").total()
        requests = registry.counter("duet_requests_total").total()
    assert requests == N_REQUESTS
    # Batching actually happened: strictly fewer dispatches than requests.
    assert batches < requests, (batches, requests)


def test_stress_faulty_middleware_stack_bit_identical(fleet):
    """Transient kernel faults + corrupted transfers, retried, still exact."""
    engine, models, expected = fleet
    injectors = {}
    for name, opt in models.items():
        tasks = opt.plan.tasks
        kernel_faults = [KernelFault(tasks[0].task_id, fail_attempts=2)]
        transfer_faults = []
        crossing = [
            task
            for task in tasks
            for src in task.sources.values()
            if src.kind == "task" and opt.plan.task(src.ref).device != task.device
        ]
        if crossing:
            task = crossing[0]
            src = next(
                s
                for s in task.sources.values()
                if s.kind == "task"
                and opt.plan.task(s.ref).device != task.device
            )
            transfer_faults.append(
                TransferFault(
                    src.ref, task.device, mode="corrupt", fail_attempts=1
                )
            )
        injectors[name] = FaultInjector(
            FaultPlan(
                kernel_faults=tuple(kernel_faults),
                transfer_faults=tuple(transfer_faults),
                seed=SEED,
            )
        )
    config = ServingConfig(
        batching=True,
        max_batch_size=4,
        max_linger_s=0.005,
        pool_size=1,  # injectors are stateful and not thread-safe
        retry_policy=RetryPolicy(max_attempts=4, backoff_base_s=1e-4),
        validate_transfers=True,  # corrupt transfers become retryable faults
        queue_capacity=64,
    )
    with engine.serve(models, config=config, fault_injectors=injectors) as frontend:
        errors = _hammer(frontend, expected, N_REQUESTS, N_THREADS)
        assert not errors, errors[:5]
        registry = frontend.registry
        # The injected chaos was really exercised and really retried.
        assert registry.counter("duet_faults_total").total() > 0
        assert registry.counter("duet_retries_total").total() > 0
        assert registry.counter("duet_giveups_total").total() == 0
        ok = registry.counter("duet_requests_total")
        assert (
            sum(
                ok.value(model=name, outcome="ok")
                for name in models
            )
            == N_REQUESTS
        )


def test_admission_control_rejects_when_full(fleet):
    """QueueFullError backpressure on a saturated reject-mode queue."""
    engine, models, _ = fleet
    from repro.errors import QueueFullError

    name = sorted(models)[0]
    opt = models[name]
    feeds = make_inputs(opt.graph, seed=SEED)
    config = ServingConfig(
        admission="reject", queue_capacity=2, batching=False, pool_size=1
    )
    frontend = engine.serve(
        {name: opt}, config=config, autostart=False
    )
    frontend.submit(feeds, model=name)
    frontend.submit(feeds, model=name)
    with pytest.raises(QueueFullError, match="full"):
        frontend.submit(feeds, model=name)
    rejected = frontend.registry.counter("duet_requests_total").value(
        model=name, outcome="rejected"
    )
    assert rejected == 1
    # Draining the queue un-blocks admission again.
    frontend.start()
    frontend.close()
