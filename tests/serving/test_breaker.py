"""Circuit-breaker tests: the state machine alone, then wired into a lane.

The unit tests drive :class:`~repro.serving.breaker.CircuitBreaker` with
an injected clock, so every transition — closed → open at the failure
threshold, the lazy open → half-open hop after the recovery timeout,
probe reservation and release, reclose and reopen — is asserted without
sleeping.  The integration tests then trip a real serving lane's breaker
by killing both devices under a :class:`~repro.runtime.faults.
ScriptedChaosInjector` (slot health disabled, so every request fails
terminally) and watch :meth:`~repro.serving.ServingFrontend.submit`
reject fast with :class:`~repro.errors.CircuitOpenError`.
"""

import time

import pytest

from repro.core import DuetEngine
from repro.devices import default_machine
from repro.errors import CircuitOpenError, DeviceLostError, ExecutionError
from repro.ir import make_inputs
from repro.models import build_model
from repro.runtime.faults import ScriptedChaosInjector
from repro.serving import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BREAKER_STATE_CODES,
    BreakerConfig,
    CircuitBreaker,
    HealthConfig,
    ServingConfig,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


def make_breaker(listener=None, **kwargs):
    clock = FakeClock()
    config = BreakerConfig(
        failure_threshold=kwargs.pop("failure_threshold", 3),
        recovery_timeout_s=kwargs.pop("recovery_timeout_s", 1.0),
        half_open_probes=kwargs.pop("half_open_probes", 1),
        success_threshold=kwargs.pop("success_threshold", 1),
    )
    assert not kwargs
    return CircuitBreaker(config, clock=clock, listener=listener), clock


def trip(breaker):
    for _ in range(breaker.config.failure_threshold):
        breaker.record_failure()


class TestBreakerConfig:
    @pytest.mark.parametrize(
        "bad",
        [
            {"failure_threshold": 0},
            {"recovery_timeout_s": -0.1},
            {"half_open_probes": 0},
            {"success_threshold": 0},
        ],
    )
    def test_invalid_knobs_raise(self, bad):
        with pytest.raises(ExecutionError):
            BreakerConfig(**bad)

    def test_state_codes_cover_all_states(self):
        assert BREAKER_STATE_CODES == {
            BREAKER_CLOSED: 0,
            BREAKER_HALF_OPEN: 1,
            BREAKER_OPEN: 2,
        }


class TestStateMachine:
    def test_starts_closed_and_admits(self):
        breaker, _ = make_breaker()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()
        assert breaker.retry_after_s() == 0.0

    def test_success_resets_the_failure_streak(self):
        breaker, _ = make_breaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN

    def test_trips_at_threshold_and_rejects(self):
        breaker, clock = make_breaker(failure_threshold=3)
        trip(breaker)
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()
        assert breaker.retry_after_s() == pytest.approx(1.0)
        clock.advance(0.4)
        assert breaker.retry_after_s() == pytest.approx(0.6)

    def test_half_opens_lazily_after_recovery_timeout(self):
        breaker, clock = make_breaker()
        trip(breaker)
        clock.advance(0.999)
        assert breaker.state == BREAKER_OPEN
        clock.advance(0.001)
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.retry_after_s() == 0.0

    def test_half_open_reserves_bounded_probes(self):
        breaker, clock = make_breaker(half_open_probes=2)
        trip(breaker)
        clock.advance(1.0)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()

    def test_discard_releases_a_probe_slot(self):
        breaker, clock = make_breaker()
        trip(breaker)
        clock.advance(1.0)
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_discard()
        assert breaker.allow()
        assert breaker.state == BREAKER_HALF_OPEN

    def test_probe_success_recloses(self):
        breaker, clock = make_breaker()
        trip(breaker)
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_success_threshold_needs_that_many_probes(self):
        breaker, clock = make_breaker(half_open_probes=2, success_threshold=2)
        trip(breaker)
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED

    def test_probe_failure_reopens_and_restarts_the_timeout(self):
        breaker, clock = make_breaker()
        trip(breaker)
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.retry_after_s() == pytest.approx(1.0)
        clock.advance(0.5)
        assert not breaker.allow()
        clock.advance(0.5)
        assert breaker.allow()

    def test_open_state_ignores_stragglers(self):
        # Requests admitted just before the trip may still resolve; their
        # outcomes must not perturb the open state.
        breaker, _ = make_breaker()
        trip(breaker)
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN

    def test_listener_sees_every_transition_in_order(self):
        seen = []
        breaker, clock = make_breaker(
            listener=lambda old, new: seen.append((old, new))
        )
        trip(breaker)
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert seen == [
            (BREAKER_CLOSED, BREAKER_OPEN),
            (BREAKER_OPEN, BREAKER_HALF_OPEN),
            (BREAKER_HALF_OPEN, BREAKER_CLOSED),
        ]


class TestBreakerServing:
    """The breaker wired into a live lane: trip, fast-reject, recover."""

    def test_lane_trips_rejects_and_recovers(self):
        graph = build_model("siamese", tiny=True)
        engine = DuetEngine(machine=default_machine(noisy=False))
        feeds = make_inputs(graph, seed=0)
        injector = ScriptedChaosInjector()
        config = ServingConfig(
            pool_size=1,
            batching=False,
            shedding=False,
            breaker=BreakerConfig(failure_threshold=2, recovery_timeout_s=0.05),
            # Health off: a device loss fails the request terminally
            # instead of failing over, which is what feeds the breaker.
            health=HealthConfig(enabled=False),
        )
        with engine.serve(
            graph, config=config, fault_injectors={"default": injector}
        ) as frontend:
            lane = frontend._lanes["default"]
            frontend.request(feeds, timeout_s=30.0)
            assert frontend.lane_info()["breaker_state"] == BREAKER_CLOSED

            injector.lose_device("cpu")
            injector.lose_device("gpu")
            for _ in range(2):
                with pytest.raises(DeviceLostError):
                    frontend.request(feeds, timeout_s=30.0)
            assert frontend.lane_info()["breaker_state"] == BREAKER_OPEN

            # Open: structured fast rejection, no queueing.
            with pytest.raises(CircuitOpenError) as excinfo:
                frontend.submit(feeds)
            assert excinfo.value.model == "default"
            assert excinfo.value.retry_after_s >= 0.0
            assert (
                lane.shed_total.value(model="default", reason="breaker_open")
                >= 1
            )
            assert lane.requests_total.value(model="default", outcome="shed") >= 1

            # Heal the devices, wait out the recovery timeout: the next
            # request rides a half-open probe and recloses the breaker.
            injector.revive_device("cpu")
            injector.revive_device("gpu")
            time.sleep(0.06)
            frontend.request(feeds, timeout_s=30.0)
            assert frontend.lane_info()["breaker_state"] == BREAKER_CLOSED
            assert (
                lane.breaker_transitions.value(
                    model="default",
                    from_state=BREAKER_HALF_OPEN,
                    to_state=BREAKER_CLOSED,
                )
                == 1
            )

    def test_queue_full_rejection_releases_probe_slot(self):
        # A half-open admission that dies at the queue must hand its
        # probe slot back, or the lane can never probe again.
        breaker, clock = make_breaker()
        trip(breaker)
        clock.advance(1.0)
        assert breaker.allow()
        # submit() failed downstream (queue full / shed): discard.
        breaker.record_discard()
        assert breaker.allow(), "probe slot leaked by a failed admission"
