"""Deadline tests: future timeouts, queue expiry, and adaptive shedding.

Three layers of the deadline story:

* :meth:`ServeFuture.result` raising a structured
  :class:`~repro.errors.DeadlineExceededError` — with elapsed-time and
  queue-time context — when the caller's wait times out (previously a
  generic failure);
* expiry at dequeue: deadlined work still queued past its budget is
  dropped by the worker (head check and the batch window's ``drop``
  hook) instead of occupying batch slots;
* admission-time shedding: once the lane's
  :class:`~repro.serving.health.AdaptiveShedder` has evidence the
  observed sojourn cannot meet a deadline, :meth:`ServingFrontend.submit`
  raises :class:`~repro.errors.LoadShedError` immediately.
"""

import queue
import time

import numpy as np
import pytest

from repro.core import DuetEngine
from repro.devices import default_machine
from repro.errors import DeadlineExceededError, ExecutionError, LoadShedError
from repro.ir import make_inputs
from repro.models import build_model
from repro.serving import ServeFuture, ServingConfig
from repro.serving.batcher import BatchConfig, collect_batch


@pytest.fixture(scope="module")
def served():
    graph = build_model("wide_deep", tiny=True)
    engine = DuetEngine(machine=default_machine(noisy=False))
    opt = engine.optimize(graph)
    feeds = make_inputs(graph, seed=0)
    return engine, opt, feeds


class TestServeFutureTimeout:
    def test_timeout_raises_structured_deadline_error(self):
        fut = ServeFuture("m", {"x": np.zeros(2, dtype=np.float32)})
        with pytest.raises(
            DeadlineExceededError, match="did not complete within"
        ) as excinfo:
            fut.result(timeout_s=0.01)
        assert "'m'" in str(excinfo.value)
        # Structured: a subclass the caller can catch apart from other
        # execution failures, not a bare ExecutionError.
        assert isinstance(excinfo.value, ExecutionError)
        assert type(excinfo.value) is DeadlineExceededError

    def test_timeout_reports_elapsed_and_queued_context(self):
        clock_now = [10.0]
        fut = ServeFuture(
            "m",
            {"x": np.zeros(2, dtype=np.float32)},
            clock=lambda: clock_now[0],
        )
        fut.enqueued_at = 4.0
        with pytest.raises(DeadlineExceededError, match="still queued"):
            fut.result(timeout_s=0.0)
        fut.dequeued_at = 9.0
        with pytest.raises(
            DeadlineExceededError, match=r"6.0000s since admission"
        ) as excinfo:
            fut.result(timeout_s=0.0)
        assert "5.0000s of it queued" in str(excinfo.value)

    def test_resolved_future_is_unaffected(self, served):
        engine, opt, feeds = served
        with engine.serve(opt, config=ServingConfig(pool_size=1)) as frontend:
            fut = frontend.submit(feeds)
            result = fut.result(timeout_s=30.0)
            assert result.model == "default"
            assert fut.done()


class TestQueueExpiry:
    def test_expired_head_dropped_at_dequeue(self, served):
        engine, opt, feeds = served
        config = ServingConfig(pool_size=1, batching=False, shedding=False)
        frontend = engine.serve(opt, config=config, autostart=False)
        try:
            fut = frontend.submit(feeds, deadline_s=0.01)
            assert fut.expires_at < float("inf")
            time.sleep(0.05)
            frontend.start()
            with pytest.raises(
                DeadlineExceededError, match="expired in queue"
            ):
                fut.result(timeout_s=30.0)
            lane = frontend._lanes["default"]
            assert (
                lane.requests_total.value(model="default", outcome="expired")
                == 1
            )
            assert lane.shed_total.value(model="default", reason="expired") == 1
        finally:
            frontend.close()

    def test_undeadlined_requests_never_expire(self, served):
        engine, opt, feeds = served
        with engine.serve(opt, config=ServingConfig(pool_size=1)) as frontend:
            fut = frontend.submit(feeds)
            assert fut.deadline_s is None
            assert fut.expires_at == float("inf")
            fut.result(timeout_s=30.0)

    def test_default_deadline_applies_to_bare_submits(self, served):
        engine, opt, feeds = served
        config = ServingConfig(pool_size=1, default_deadline_s=45.0)
        with engine.serve(opt, config=config) as frontend:
            fut = frontend.submit(feeds)
            assert fut.deadline_s == 45.0
            fut.result(timeout_s=30.0)

    def test_submit_rejects_nonpositive_deadline(self, served):
        engine, opt, feeds = served
        with engine.serve(opt, config=ServingConfig(pool_size=1)) as frontend:
            with pytest.raises(ExecutionError, match="deadline_s"):
                frontend.submit(feeds, deadline_s=0.0)

    def test_config_validates_deadline_and_margin(self):
        with pytest.raises(ExecutionError):
            ServingConfig(default_deadline_s=0.0)
        with pytest.raises(ExecutionError):
            ServingConfig(shed_margin=0.0)


class TestBatchWindowDrop:
    """The batcher's ``drop`` hook: expired joiners leave the window."""

    @staticmethod
    def _collect(items, drop, max_batch_size=8):
        pending = list(items)

        def get(timeout_s):
            if not pending:
                raise queue.Empty
            return pending.pop(0)

        dropped = []
        batch, carry = collect_batch(
            "head",
            get,
            lambda: 0.0,
            BatchConfig(max_batch_size=max_batch_size, max_linger_s=1e-3),
            compatible=lambda head, item: item != "incompatible",
            drop=drop,
            on_drop=dropped.append,
        )
        return batch, carry, dropped

    def test_dropped_joiners_skip_the_batch_without_closing_it(self):
        batch, carry, dropped = self._collect(
            ["stale-1", "fresh-1", "stale-2", "fresh-2"],
            drop=lambda item: item.startswith("stale"),
        )
        assert batch == ["head", "fresh-1", "fresh-2"]
        assert dropped == ["stale-1", "stale-2"]
        assert carry is None

    def test_head_is_never_dropped(self):
        batch, carry, dropped = self._collect(
            ["fresh-1"], drop=lambda item: True
        )
        assert batch == ["head"]
        assert dropped == ["fresh-1"]

    def test_incompatible_carry_is_not_dropped(self):
        batch, carry, dropped = self._collect(
            ["incompatible", "fresh-1"], drop=lambda item: False
        )
        assert batch == ["head"]
        assert carry == "incompatible"
        assert dropped == []


class TestAdaptiveSheddingAtSubmit:
    def test_unmeetable_deadline_is_shed_with_context(self, served):
        engine, opt, feeds = served
        config = ServingConfig(pool_size=1, batching=False)
        with engine.serve(opt, config=config) as frontend:
            lane = frontend._lanes["default"]
            # Feed the shedder hard evidence of one-second sojourns.
            for _ in range(lane.shedder.warmup):
                lane.shedder.observe(0.5, 1.0)
            with pytest.raises(LoadShedError) as excinfo:
                frontend.submit(feeds, deadline_s=0.1)
            assert excinfo.value.model == "default"
            assert excinfo.value.deadline_s == pytest.approx(0.1)
            assert excinfo.value.predicted_s == pytest.approx(1.0)
            assert (
                lane.shed_total.value(model="default", reason="unmeetable")
                == 1
            )
            assert (
                lane.requests_total.value(model="default", outcome="shed") == 1
            )
            # A meetable deadline and a deadline-less request both pass.
            frontend.request(feeds, deadline_s=30.0, timeout_s=30.0)
            frontend.request(feeds, timeout_s=30.0)

    def test_shedding_disabled_admits_doomed_deadlines(self, served):
        engine, opt, feeds = served
        config = ServingConfig(pool_size=1, batching=False, shedding=False)
        with engine.serve(opt, config=config) as frontend:
            assert frontend._lanes["default"].shedder is None
            # Tight-but-feasible deadline on an idle lane: admitted.
            frontend.request(feeds, deadline_s=30.0, timeout_s=30.0)
