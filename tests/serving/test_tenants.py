"""Tenant identity, per-tenant shedding, and frontend preemption.

ISSUE 8 satellite 3, in four layers:

* :class:`~repro.serving.tenants.TenantConfig` /
  :class:`~repro.serving.tenants.TenantRegistry` semantics, including
  ``tenants.json`` parsing;
* :class:`~repro.serving.health.TenantAwareShedder` — per-tenant EWMA
  isolation, the oracle-seeded service prior, exact regression pins on
  the EWMA arithmetic, and the shedder × priority interaction: at equal
  load a critical request is never shed in favor of a best-effort one;
* per-tenant metrics exported by the frontend
  (``duet_tenant_queue_delay_seconds``, ``duet_tenant_slo_miss_total``,
  ``duet_tenant_requests_total``, per-tenant latency histograms);
* a *deterministic* phase-boundary preemption through the full serving
  stack: a :class:`~repro.runtime.faults.FaultInjector` subclass
  submits a critical request from inside the best-effort request's
  first task, guaranteeing a waiting preemptor at the phase boundary —
  the best-effort request must suspend, the critical one runs to
  completion first, and both come back bit-identical to solo runs.
"""

import numpy as np
import pytest

from repro.core import DuetEngine
from repro.devices import default_machine
from repro.errors import ExecutionError, LoadShedError
from repro.ir import make_inputs
from repro.models import build_model
from repro.runtime.faults import FaultInjector
from repro.serving import (
    DEFAULT_TENANT,
    PRIORITY_CLASSES,
    PRIORITY_TIERS,
    ServingConfig,
    ServingFrontend,
    TenantAwareShedder,
    TenantConfig,
    TenantRegistry,
    WFQAdmissionQueue,
)


@pytest.fixture(scope="module")
def served():
    graph = build_model("wide_deep", tiny=True)
    engine = DuetEngine(machine=default_machine(noisy=False))
    opt = engine.optimize(graph)
    feeds = make_inputs(graph, seed=0)
    return engine, opt, feeds


# ---------------------------------------------------------------------------
# TenantConfig / TenantRegistry


class TestTenantConfig:
    def test_priority_classes_map_to_tiers(self):
        assert PRIORITY_CLASSES == ("critical", "standard", "best_effort")
        assert PRIORITY_TIERS == {
            "critical": 0,
            "standard": 1,
            "best_effort": 2,
        }
        for cls in PRIORITY_CLASSES:
            assert TenantConfig(name="t", priority=cls).tier == (
                PRIORITY_TIERS[cls]
            )

    def test_default_tenant_is_standard_weight_one(self):
        assert DEFAULT_TENANT.name == "default"
        assert DEFAULT_TENANT.priority == "standard"
        assert DEFAULT_TENANT.weight == 1.0
        assert DEFAULT_TENANT.tier == 1
        assert DEFAULT_TENANT.slo_p99_s is None
        assert DEFAULT_TENANT.default_deadline_s is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "t", "priority": "vip"},
            {"name": "t", "weight": 0.0},
            {"name": "t", "weight": -1.0},
            {"name": "t", "slo_p99_s": 0.0},
            {"name": "t", "default_deadline_s": -0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ExecutionError):
            TenantConfig(**kwargs)


class TestTenantRegistry:
    def test_none_resolves_to_default(self):
        reg = TenantRegistry()
        assert reg.resolve(None) == DEFAULT_TENANT
        assert len(reg) == 0

    def test_configured_default_overrides_anonymous(self):
        custom = TenantConfig(name="default", priority="best_effort")
        reg = TenantRegistry([custom])
        assert reg.resolve(None) is custom
        assert reg.resolve("default") is custom

    def test_unknown_name_resolves_to_fresh_standard(self):
        reg = TenantRegistry([TenantConfig(name="a", priority="critical")])
        cfg = reg.resolve("stranger")
        assert cfg.name == "stranger"
        assert cfg.priority == "standard"
        assert cfg.weight == 1.0

    def test_strict_rejects_unknown(self):
        reg = TenantRegistry(
            [TenantConfig(name="a")], strict=True
        )
        assert reg.resolve("a").name == "a"
        with pytest.raises(ExecutionError, match="unknown tenant"):
            reg.resolve("stranger")
        # None stays legal under strict: anonymous traffic is always ok.
        assert reg.resolve(None) == DEFAULT_TENANT

    def test_duplicate_names_rejected(self):
        with pytest.raises(ExecutionError, match="duplicate"):
            TenantRegistry(
                [TenantConfig(name="a"), TenantConfig(name="a")]
            )

    def test_container_surface(self):
        a, b = TenantConfig(name="a"), TenantConfig(name="b", weight=2.0)
        reg = TenantRegistry([a, b])
        assert len(reg) == 2
        assert "a" in reg and "b" in reg and "c" not in reg
        assert reg.names == ("a", "b")
        assert list(reg) == [a, b]


class TestTenantsJson:
    def test_object_form_with_duration_spellings(self):
        reg = TenantRegistry.from_json(
            """
            {"tenants": [
              {"name": "search", "priority": "critical", "weight": 4,
               "slo_p99_ms": 250, "default_deadline_ms": 1000},
              {"name": "batch-embed", "priority": "best_effort",
               "slo_p99_s": 30}
            ]}
            """
        )
        search = reg.resolve("search")
        assert search.tier == 0
        assert search.weight == 4.0
        assert search.slo_p99_s == pytest.approx(0.25)
        assert search.default_deadline_s == pytest.approx(1.0)
        be = reg.resolve("batch-embed")
        assert be.tier == 2
        assert be.slo_p99_s == pytest.approx(30.0)
        assert be.default_deadline_s is None

    def test_list_form(self):
        reg = TenantRegistry.from_json('[{"name": "a", "weight": 2}]')
        assert reg.resolve("a").weight == 2.0

    @pytest.mark.parametrize(
        "text,match",
        [
            ("{not json", "invalid tenants JSON"),
            ('{"other": []}', '"tenants" list'),
            ('"just a string"', "list or an object"),
            ('[{"priority": "critical"}]', "non-empty string name"),
            ('[42]', "must be an object"),
            ('[{"name": "a", "color": "red"}]', "unknown keys"),
            (
                '[{"name": "a", "slo_p99_s": 1, "slo_p99_ms": 5}]',
                "not both",
            ),
        ],
    )
    def test_malformed_documents_rejected(self, text, match):
        with pytest.raises(ExecutionError, match=match):
            TenantRegistry.from_json(text)

    def test_from_file(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text('[{"name": "a", "priority": "critical"}]')
        reg = TenantRegistry.from_file(path)
        assert reg.resolve("a").tier == 0
        with pytest.raises(ExecutionError, match="cannot read"):
            TenantRegistry.from_file(tmp_path / "missing.json")


# ---------------------------------------------------------------------------
# TenantAwareShedder


class TestTenantAwareShedder:
    def test_warm_tenant_empty_queue_matches_adaptive_shedder(self):
        """Regression pin: the single-tenant degeneration is exactly the
        old AdaptiveShedder behaviour — 8 observations of sojourn 1.0
        predict 1.0, and a 0.9s deadline is shed with that prediction."""
        shedder = TenantAwareShedder()
        for _ in range(shedder.warmup):
            shedder.observe(0.5, 1.0)
        assert shedder.predicted_sojourn_s() == pytest.approx(1.0)
        assert shedder.predicted_queue_wait_s() == pytest.approx(0.5)
        assert shedder.unmeetable(0.9) == pytest.approx(1.0)
        assert shedder.unmeetable(1.1) is None

    def test_ewma_update_pinned(self):
        """Exact EWMA arithmetic under per-tenant feedback: alpha=0.2
        from a first sample of 1.0 and a second of 2.0 gives 1.2."""
        shedder = TenantAwareShedder(alpha=0.2, warmup=2)
        shedder.observe(0.0, 1.0, tenant="a")
        shedder.observe(0.0, 2.0, tenant="a")
        assert shedder.predicted_sojourn_s(tenant="a") == pytest.approx(1.2)
        # The shared service EWMA follows the same arithmetic
        # (sojourn - wait, first sample seeds, then blends).
        assert shedder.service_estimate_s() == pytest.approx(1.2)
        shedder.observe(0.5, 1.5, tenant="b")  # service 1.0
        assert shedder.service_estimate_s() == pytest.approx(
            1.2 + 0.2 * (1.0 - 1.2)
        )

    def test_tenant_isolation(self):
        """One tenant's inflated sojourns never shed another tenant
        whose own observed latency is fine."""
        shedder = TenantAwareShedder(warmup=4)
        for _ in range(4):
            shedder.observe(0.0, 5.0, tenant="slow")  # terrible sojourns
            shedder.observe(0.0, 0.01, tenant="fast")
        assert shedder.unmeetable(1.0, tenant="slow") == pytest.approx(5.0)
        assert shedder.unmeetable(1.0, tenant="fast") is None

    def test_cold_lane_abstains_entirely(self):
        shedder = TenantAwareShedder(service_prior_s=10.0)
        # Even with a huge oracle prior, zero observations means no
        # shedding: cold lanes never reject on zero evidence.
        assert shedder.unmeetable(0.001, tenant="anyone") is None

    def test_cold_tenant_on_warm_lane_uses_service_estimate(self):
        shedder = TenantAwareShedder(warmup=4)
        for _ in range(4):
            shedder.observe(1.0, 3.0, tenant="veteran")  # service 2.0
        # A brand-new tenant inherits the shared service estimate.
        assert shedder.unmeetable(1.0, tenant="newcomer") == pytest.approx(
            2.0
        )
        assert shedder.unmeetable(2.5, tenant="newcomer") is None

    def test_service_prior_anchors_then_blends(self):
        shedder = TenantAwareShedder(alpha=0.5, service_prior_s=4.0)
        assert shedder.service_estimate_s() == pytest.approx(4.0)
        shedder.observe(0.0, 2.0)  # service 2.0: blend, don't replace
        assert shedder.service_estimate_s() == pytest.approx(
            4.0 + 0.5 * (2.0 - 4.0)
        )

    def test_backlog_term_scales_prediction(self):
        shedder = TenantAwareShedder(warmup=1)
        shedder.observe(0.0, 1.0, tenant="a")  # sojourn 1.0, service 1.0
        assert shedder.unmeetable(1.5, tenant="a", backlog_ahead=0) is None
        assert shedder.unmeetable(
            1.5, tenant="a", backlog_ahead=2
        ) == pytest.approx(3.0)

    def test_margin_scales_prediction(self):
        shedder = TenantAwareShedder(warmup=1)
        shedder.observe(0.0, 1.0, tenant="a")
        assert shedder.unmeetable(1.5, margin=2.0, tenant="a") == (
            pytest.approx(2.0)
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"warmup": 0},
            {"service_prior_s": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ExecutionError):
            TenantAwareShedder(**kwargs)


class TestShedderPriorityInteraction:
    """At equal load, critical is never shed in favor of best-effort:
    the shedder's contention term uses ``backlog_ahead``, which is
    monotone in priority tier."""

    def _equal_history(self, shedder, tenants, sojourn=1.0):
        for _ in range(shedder.warmup):
            for t in tenants:
                shedder.observe(0.0, sojourn, tenant=t)

    def test_critical_admitted_where_best_effort_shed(self):
        crit = TenantConfig(name="crit", priority="critical")
        be = TenantConfig(name="be", priority="best_effort")
        shedder = TenantAwareShedder(warmup=2)
        self._equal_history(shedder, ("crit", "be"))

        class Req:
            def __init__(self, tenant):
                self.tenant = tenant

        q = WFQAdmissionQueue(32)
        for _ in range(4):
            q.put_nowait(Req(be))  # equal load: a best-effort backlog

        deadline = 2.0  # base sojourn 1.0 + 4 * 1.0 backlog > 2.0
        assert (
            shedder.unmeetable(
                deadline,
                tenant="be",
                backlog_ahead=q.backlog_ahead(be.tier),
            )
            is not None
        )
        assert (
            shedder.unmeetable(
                deadline,
                tenant="crit",
                backlog_ahead=q.backlog_ahead(crit.tier),
            )
            is None
        )

    def test_prediction_monotone_in_tier_at_equal_load(self):
        shedder = TenantAwareShedder(warmup=2)
        self._equal_history(shedder, ("crit", "std", "be"))
        tenants = [
            TenantConfig(name="crit", priority="critical"),
            TenantConfig(name="std", priority="standard"),
            TenantConfig(name="be", priority="best_effort"),
        ]

        class Req:
            def __init__(self, tenant):
                self.tenant = tenant

        q = WFQAdmissionQueue(32)
        for t in tenants:
            for _ in range(2):
                q.put_nowait(Req(t))
        tiny = 1e-9  # everything is unmeetable; compare the predictions
        preds = [
            shedder.unmeetable(
                tiny, tenant=t.name, backlog_ahead=q.backlog_ahead(t.tier)
            )
            for t in tenants
        ]
        assert all(p is not None for p in preds)
        assert preds == sorted(preds)

    def test_frontend_sheds_best_effort_not_critical(self, served):
        """Through the real submit path: identical warm history, a
        best-effort backlog, one deadline — best-effort is shed,
        critical is admitted."""
        engine, opt, feeds = served
        tenants = TenantRegistry(
            [
                TenantConfig(name="crit", priority="critical"),
                TenantConfig(name="be", priority="best_effort"),
            ]
        )
        frontend = ServingFrontend(
            engine,
            {"m": opt},
            config=ServingConfig(tenants=tenants, queue_capacity=32),
            autostart=False,  # keep the backlog static
        )
        try:
            lane = frontend._lanes["m"]
            for _ in range(lane.shedder.warmup):
                lane.shedder.observe(0.0, 1.0, tenant="crit")
                lane.shedder.observe(0.0, 1.0, tenant="be")
            for _ in range(4):
                frontend.submit(feeds, tenant="be")
            with pytest.raises(LoadShedError):
                frontend.submit(feeds, deadline_s=2.0, tenant="be")
            fut = frontend.submit(feeds, deadline_s=2.0, tenant="crit")
            assert fut.tenant.name == "crit"
            shed = lane.tenant_requests.value(
                model="m", tenant="be", outcome="shed"
            )
            assert shed == 1
            assert (
                lane.tenant_requests.value(
                    model="m", tenant="crit", outcome="shed"
                )
                == 0
            )
        finally:
            frontend.close()


# ---------------------------------------------------------------------------
# Frontend integration: deadline cascade, per-tenant metrics, preemption


class TestDeadlineCascade:
    def test_tenant_default_beats_lane_default(self, served):
        engine, opt, feeds = served
        tenants = TenantRegistry(
            [TenantConfig(name="a", default_deadline_s=0.75)]
        )
        frontend = ServingFrontend(
            engine,
            {"m": opt},
            config=ServingConfig(
                tenants=tenants, default_deadline_s=5.0, shedding=False
            ),
            autostart=False,
        )
        try:
            assert frontend.submit(feeds, tenant="a").deadline_s == 0.75
            assert frontend.submit(feeds, tenant="b").deadline_s == 5.0
            assert frontend.submit(feeds).deadline_s == 5.0
            assert (
                frontend.submit(
                    feeds, tenant="a", deadline_s=0.1
                ).deadline_s
                == 0.1
            )
        finally:
            frontend.close()


class TestPerTenantMetrics:
    def test_tenant_labeled_series(self, served):
        engine, opt, feeds = served
        tenants = TenantRegistry(
            [
                TenantConfig(
                    name="search", priority="critical", slo_p99_s=10.0
                ),
                # An SLO target of ~0 means every completion is a miss.
                TenantConfig(
                    name="slo-doomed", priority="best_effort",
                    slo_p99_s=1e-9,
                ),
            ]
        )
        frontend = ServingFrontend(
            engine,
            {"m": opt},
            config=ServingConfig(tenants=tenants, shedding=False),
        )
        with frontend:
            for _ in range(3):
                frontend.request(feeds, tenant="search", timeout_s=10.0)
            for _ in range(2):
                frontend.request(feeds, tenant="slo-doomed", timeout_s=10.0)
            frontend.request(feeds, timeout_s=10.0)  # anonymous default

            reqs = frontend.registry.counter("duet_tenant_requests_total")
            assert reqs.value(model="m", tenant="search", outcome="ok") == 3
            assert (
                reqs.value(model="m", tenant="slo-doomed", outcome="ok") == 2
            )
            assert reqs.value(model="m", tenant="default", outcome="ok") == 1

            misses = frontend.registry.counter("duet_tenant_slo_miss_total")
            assert misses.value(model="m", tenant="slo-doomed") == 2
            assert misses.value(model="m", tenant="search") == 0

            delay = frontend.registry.histogram(
                "duet_tenant_queue_delay_seconds"
            )
            assert delay.snapshot(model="m", tenant="search").count == 3
            lat = frontend.registry.histogram(
                "duet_tenant_request_latency_seconds"
            )
            assert lat.snapshot(model="m", tenant="slo-doomed").count == 2

            # The exposition names match the DESIGN/ISSUE contract.
            text = frontend.render_metrics()
            for name in (
                "duet_tenant_queue_delay_seconds",
                "duet_tenant_request_latency_seconds",
                "duet_tenant_requests_total",
                "duet_tenant_slo_miss_total",
                "duet_tenant_preemptions_total",
            ):
                assert name in text

    def test_lane_info_reports_tenancy(self, served):
        engine, opt, feeds = served
        tenants = TenantRegistry([TenantConfig(name="a")])
        frontend = ServingFrontend(
            engine,
            {"m": opt},
            config=ServingConfig(tenants=tenants),
            autostart=False,
        )
        try:
            info = frontend.lane_info("m")
            assert info["tenants"] == ("a",)
            assert info["preemption"] is True
        finally:
            frontend.close()


class _MidTaskSubmitter(FaultInjector):
    """Chaos hook that submits a critical request from inside the first
    task of the best-effort request — guaranteeing the preemption
    predicate sees a waiting higher-tier arrival at the next phase
    boundary, with no timing dependence at all."""

    def __init__(self):
        super().__init__()
        self.frontend = None
        self.feeds = None
        self.critical_future = None

    def on_task_start(self, task_id: str, device: str) -> None:
        super().on_task_start(task_id, device)
        if self.frontend is not None and self.critical_future is None:
            self.critical_future = self.frontend.submit(
                self.feeds, tenant="vip"
            )


class TestFrontendPreemption:
    def test_critical_preempts_best_effort_at_phase_boundary(self, served):
        engine, opt, feeds = served
        solo = engine.session(opt)
        ref = solo.run(feeds).outputs
        crit_feeds = make_inputs(opt.graph, seed=3)
        crit_ref = solo.run(crit_feeds).outputs

        injector = _MidTaskSubmitter()
        tenants = TenantRegistry(
            [
                TenantConfig(name="vip", priority="critical"),
                TenantConfig(name="bulk", priority="best_effort"),
            ]
        )
        frontend = ServingFrontend(
            engine,
            {"m": opt},
            config=ServingConfig(
                tenants=tenants, shedding=False, batching=False
            ),
            fault_injectors={"m": injector},
        )
        with frontend:
            injector.frontend = frontend
            injector.feeds = crit_feeds
            be_future = frontend.submit(feeds, tenant="bulk")
            be_result = be_future.result(30.0)
            # Stop the hook before the drain below re-triggers it.
            injector.frontend = None

            assert injector.critical_future is not None
            crit_result = injector.critical_future.result(30.0)

            # The best-effort request was suspended at least once...
            assert be_future.preemptions >= 1
            preempted = frontend.registry.counter(
                "duet_tenant_preemptions_total"
            )
            assert preempted.value(model="m", tenant="bulk") == (
                be_future.preemptions
            )
            assert preempted.value(model="m", tenant="vip") == 0
            # ...and both outputs are bit-identical to solo runs.
            for got, want in zip(be_result.outputs, ref):
                np.testing.assert_array_equal(got, want)
            for got, want in zip(crit_result.outputs, crit_ref):
                np.testing.assert_array_equal(got, want)

    def test_preemption_disabled_never_suspends(self, served):
        engine, opt, feeds = served
        injector = _MidTaskSubmitter()
        tenants = TenantRegistry(
            [
                TenantConfig(name="vip", priority="critical"),
                TenantConfig(name="bulk", priority="best_effort"),
            ]
        )
        frontend = ServingFrontend(
            engine,
            {"m": opt},
            config=ServingConfig(
                tenants=tenants,
                shedding=False,
                batching=False,
                preemption=False,
            ),
            fault_injectors={"m": injector},
        )
        with frontend:
            injector.frontend = frontend
            injector.feeds = feeds
            be_future = frontend.submit(feeds, tenant="bulk")
            be_future.result(30.0)
            injector.frontend = None
            assert injector.critical_future is not None
            injector.critical_future.result(30.0)
            assert be_future.preemptions == 0
            preempted = frontend.registry.counter(
                "duet_tenant_preemptions_total"
            )
            assert preempted.total() == 0

    def test_critical_tier_itself_never_preempted(self, served):
        """Tier 0 has nobody above it: a critical request runs with the
        plain (non-preemptible) path even when preemption is on."""
        engine, opt, feeds = served
        tenants = TenantRegistry(
            [TenantConfig(name="vip", priority="critical")]
        )
        frontend = ServingFrontend(
            engine,
            {"m": opt},
            config=ServingConfig(tenants=tenants, shedding=False),
        )
        with frontend:
            fut = frontend.submit(feeds, tenant="vip")
            fut.result(30.0)
            assert fut.preemptions == 0
