"""Public-API surface tests: every exported name resolves and is documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.ir",
    "repro.ir.ops",
    "repro.compiler",
    "repro.devices",
    "repro.runtime",
    "repro.serving",
    "repro.core",
    "repro.core.schedulers",
    "repro.models",
    "repro.baselines",
    "repro.bench",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} has no __all__"
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_module_docstrings_present(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_callables_documented(name):
    module = importlib.import_module(name)
    for symbol in module.__all__:
        obj = getattr(module, symbol)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            assert obj.__doc__, f"{name}.{symbol} lacks a docstring"


def test_error_hierarchy():
    from repro import errors

    base = errors.ReproError
    for name in dir(errors):
        obj = getattr(errors, name)
        if inspect.isclass(obj) and issubclass(obj, Exception) and obj is not base:
            assert issubclass(obj, base), name


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2
