"""Integration tests: the whole pipeline, numerics and shapes together."""

import numpy as np
import pytest

from repro.baselines import TVMLikeBaseline
from repro.core import DuetEngine
from repro.ir import make_inputs, run_graph
from repro.ir.serialize import dumps, loads
from repro.models import MODEL_NAMES, build_model


class TestNumericEquivalenceAcrossStacks:
    """Interpreter == TVM-like CPU == TVM-like GPU == DUET hetero plan."""

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_all_execution_paths_agree(self, machine, name):
        graph = build_model(name, tiny=True)
        feeds = make_inputs(graph)
        ref = run_graph(graph, feeds)

        for dev in ("cpu", "gpu"):
            baseline = TVMLikeBaseline(dev, machine)
            result = baseline.run(baseline.compile(graph), inputs=feeds)
            for got, want in zip(result.outputs, ref):
                np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)

        engine = DuetEngine(machine=machine)
        opt = engine.optimize(graph)
        result = engine.run(opt, inputs=feeds)
        for got, want in zip(result.outputs, ref):
            np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)


class TestSerializeOptimizeRoundTrip:
    def test_serialized_model_schedules_identically(self, machine):
        graph = build_model("wide_deep", tiny=True)
        engine = DuetEngine(machine=machine)
        opt1 = engine.optimize(graph)
        opt2 = engine.optimize(loads(dumps(graph)))
        assert opt1.placement == opt2.placement
        assert opt1.latency == pytest.approx(opt2.latency)


class TestDeterminism:
    def test_optimize_is_deterministic(self, machine):
        engine = DuetEngine(machine=machine)
        g = build_model("mtdnn", tiny=True)
        a = engine.optimize(g)
        b = engine.optimize(g)
        assert a.placement == b.placement
        assert a.latency == b.latency

    def test_sampled_latencies_reproducible_by_seed(self, noisy_machine):
        engine = DuetEngine(machine=noisy_machine)
        opt = engine.optimize(build_model("siamese", tiny=True))
        s1 = engine.latency_stats(opt, n_runs=100, warmup=5, seed=9)
        s2 = engine.latency_stats(opt, n_runs=100, warmup=5, seed=9)
        assert s1.mean == s2.mean and s1.p999 == s2.p999


class TestHeadlineClaims:
    """The abstract's quantitative claims, as executable assertions."""

    @pytest.fixture(scope="class")
    def speedups(self):
        from repro.devices import default_machine

        machine = default_machine(noisy=False)
        engine = DuetEngine(machine=machine)
        out = {}
        for name in ("wide_deep", "siamese", "mtdnn"):
            opt = engine.optimize(build_model(name))
            out[name] = (
                opt.single_device_latency["gpu"] / opt.latency,
                opt.single_device_latency["cpu"] / opt.latency,
            )
        return out

    def test_duet_beats_tvm_gpu_everywhere(self, speedups):
        for name, (vs_gpu, _) in speedups.items():
            assert vs_gpu > 1.2, name

    def test_duet_beats_tvm_cpu_everywhere(self, speedups):
        for name, (_, vs_cpu) in speedups.items():
            assert vs_cpu > 1.2, name

    def test_gpu_speedup_band(self, speedups):
        # Paper: 1.5-2.3x; allow proportional slack for the simulated
        # substrate while preserving the order of magnitude.
        for name, (vs_gpu, _) in speedups.items():
            assert 1.2 <= vs_gpu <= 3.5, (name, vs_gpu)

    def test_cpu_speedup_band(self, speedups):
        # Paper: 1.3-6.4x (Fig. 11 text: up to 15.9x).
        for name, (_, vs_cpu) in speedups.items():
            assert 1.2 <= vs_cpu <= 16.0, (name, vs_cpu)
