"""Smoke tests: the fast example scripts run end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(name, capsys):
    sys.path.insert(0, str(EXAMPLES))
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.path.pop(0)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run("quickstart.py", capsys)
        assert "DUET latency" in out
        assert "Execution timeline" in out
        assert "co-execution wins" in out

    def test_scheduler_playground(self, capsys):
        out = _run("scheduler_playground.py", capsys)
        assert "Greedy+Correction" in out
        assert "Ideal" in out

    def test_multitask_nlu(self, capsys):
        out = _run("multitask_nlu.py", capsys)
        assert "Task heads run on" in out
        assert "match the" in out

    def test_model_variation_study(self, capsys):
        out = _run("model_variation_study.py", capsys)
        for fig in ("Fig 14", "Fig 15", "Fig 16", "Fig 17"):
            assert fig in out

    def test_adaptive_serving(self, capsys):
        out = _run("adaptive_serving.py", capsys)
        assert "ADAPTED" in out
        assert "adaptations total" in out
