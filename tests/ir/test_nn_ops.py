"""Tests for compute-heavy NN operators against naive references."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.ir.dtype import TensorType
from repro.ir.ops import get_op
from repro.ir.ops.nn import conv2d_output_shape, im2col


def _run(name, arrays, **attrs):
    return get_op(name).compute([np.asarray(a) for a in arrays], attrs)


def _infer(name, types, **attrs):
    return get_op(name).infer_type(types, attrs)


def naive_conv2d(x, w, strides, padding):
    """Reference convolution via explicit loops."""
    n, c, h, wdt = x.shape
    oc, ic, kh, kw = w.shape
    sh, sw = strides
    ph, pw = padding
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (wdt + 2 * pw - kw) // sw + 1
    out = np.zeros((n, oc, oh, ow), dtype=x.dtype)
    for b in range(n):
        for o in range(oc):
            for i in range(oh):
                for j in range(ow):
                    patch = xp[b, :, i * sh : i * sh + kh, j * sw : j * sw + kw]
                    out[b, o, i, j] = np.sum(patch * w[o])
    return out


class TestDense:
    def test_matches_numpy(self, rng):
        x = rng.standard_normal((3, 8)).astype(np.float32)
        w = rng.standard_normal((5, 8)).astype(np.float32)
        np.testing.assert_allclose(_run("dense", [x, w]), x @ w.T, rtol=1e-5)

    def test_infer(self):
        t = _infer("dense", [TensorType((3, 8)), TensorType((5, 8))])
        assert t.shape == (3, 5)

    def test_reduction_mismatch_raises(self):
        with pytest.raises(ShapeError):
            _infer("dense", [TensorType((3, 8)), TensorType((5, 4))])

    def test_flops(self):
        spec = get_op("dense")
        i = [TensorType((3, 8)), TensorType((5, 8))]
        assert spec.flops(i, TensorType((3, 5)), {}) == 2 * 3 * 5 * 8


class TestMatmul:
    def test_matches_numpy(self, rng):
        a = rng.standard_normal((3, 4)).astype(np.float32)
        b = rng.standard_normal((4, 5)).astype(np.float32)
        np.testing.assert_allclose(_run("matmul", [a, b]), a @ b, rtol=1e-5)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            _infer("matmul", [TensorType((3, 4)), TensorType((5, 6))])


class TestBatchMatmul:
    def test_matches_numpy(self, rng):
        a = rng.standard_normal((2, 3, 4)).astype(np.float32)
        b = rng.standard_normal((2, 4, 5)).astype(np.float32)
        np.testing.assert_allclose(
            _run("batch_matmul", [a, b]), np.matmul(a, b), rtol=1e-5
        )

    def test_batch_mismatch_raises(self):
        with pytest.raises(ShapeError):
            _infer(
                "batch_matmul", [TensorType((2, 3, 4)), TensorType((3, 4, 5))]
            )


class TestConv2d:
    @pytest.mark.parametrize(
        "strides,padding", [((1, 1), (0, 0)), ((2, 2), (1, 1)), ((1, 2), (2, 0))]
    )
    def test_matches_naive(self, rng, strides, padding):
        x = rng.standard_normal((2, 3, 8, 9)).astype(np.float32)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        got = _run("conv2d", [x, w], strides=strides, padding=padding)
        want = naive_conv2d(x, w, strides, padding)
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)

    def test_output_shape_helper(self):
        assert conv2d_output_shape((1, 3, 224, 224), (64, 3, 7, 7), (2, 2), (3, 3)) == (
            1, 64, 112, 112,
        )

    def test_channel_mismatch_raises(self):
        with pytest.raises(ShapeError):
            _infer("conv2d", [TensorType((1, 3, 8, 8)), TensorType((4, 5, 3, 3))])

    def test_empty_output_raises(self):
        with pytest.raises(ShapeError):
            _infer(
                "conv2d",
                [TensorType((1, 3, 2, 2)), TensorType((4, 3, 5, 5))],
            )

    def test_im2col_shape(self, rng):
        x = rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
        cols = im2col(x, 3, 3, (1, 1), (0, 0))
        assert cols.shape == (2, 27, 16)

    def test_flops_scale_with_kernel(self):
        spec = get_op("conv2d")
        i = [TensorType((1, 3, 8, 8)), TensorType((4, 3, 3, 3))]
        out = spec.infer_type(i, {})
        assert spec.flops(i, out, {}) == 2.0 * out.num_elements * 27

    def test_parallelism_includes_window(self):
        spec = get_op("conv2d")
        i = [TensorType((1, 3, 8, 8)), TensorType((4, 3, 3, 3))]
        out = spec.infer_type(i, {})
        assert spec.parallelism(i, out, {}) == out.num_elements * 9


class TestPooling:
    def test_max_pool(self, rng):
        x = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
        out = _run("max_pool2d", [x], pool_size=(2, 2), strides=(2, 2))
        assert out.shape == (1, 2, 2, 2)
        assert out[0, 0, 0, 0] == x[0, 0, :2, :2].max()

    def test_avg_pool(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = _run("avg_pool2d", [x], pool_size=(2, 2), strides=(2, 2))
        np.testing.assert_allclose(out[0, 0, 0, 0], x[0, 0, :2, :2].mean())

    def test_max_pool_with_padding(self, rng):
        x = rng.standard_normal((1, 1, 5, 5)).astype(np.float32)
        out = _run(
            "max_pool2d", [x], pool_size=(3, 3), strides=(2, 2), padding=(1, 1)
        )
        assert out.shape == (1, 1, 3, 3)
        # Padded cells are -inf for max pooling, so corners still reflect
        # only real data.
        assert out[0, 0, 0, 0] == x[0, 0, :2, :2].max()

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((2, 3, 5, 5)).astype(np.float32)
        out = _run("global_avg_pool2d", [x])
        assert out.shape == (2, 3, 1, 1)
        np.testing.assert_allclose(
            out[..., 0, 0], x.mean(axis=(2, 3)), rtol=1e-5
        )

    def test_pool_empty_output_raises(self):
        with pytest.raises(ShapeError):
            _infer("max_pool2d", [TensorType((1, 1, 2, 2))], pool_size=(4, 4))

    def test_pool_requires_nchw(self):
        with pytest.raises(ShapeError):
            _infer("max_pool2d", [TensorType((2, 4))])


class TestNorms:
    def test_batch_norm_inference_form(self, rng):
        x = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        gamma = rng.standard_normal(3).astype(np.float32)
        beta = rng.standard_normal(3).astype(np.float32)
        mean = rng.standard_normal(3).astype(np.float32)
        var = np.abs(rng.standard_normal(3)).astype(np.float32) + 0.5
        out = _run("batch_norm", [x, gamma, beta, mean, var], epsilon=1e-5)
        v = (1, 3, 1, 1)
        want = (x - mean.reshape(v)) / np.sqrt(var.reshape(v) + 1e-5) * gamma.reshape(
            v
        ) + beta.reshape(v)
        np.testing.assert_allclose(out, want, rtol=1e-4, atol=1e-5)

    def test_batch_norm_param_shape_mismatch_raises(self):
        c3, c4 = TensorType((3,)), TensorType((4,))
        with pytest.raises(ShapeError):
            _infer("batch_norm", [TensorType((1, 3, 2, 2)), c3, c3, c3, c4])

    def test_layer_norm_statistics(self, rng):
        x = rng.standard_normal((4, 16)).astype(np.float32)
        gamma = np.ones(16, dtype=np.float32)
        beta = np.zeros(16, dtype=np.float32)
        out = _run("layer_norm", [x, gamma, beta])
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_layer_norm_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            _infer(
                "layer_norm",
                [TensorType((4, 16)), TensorType((8,)), TensorType((16,))],
            )
