"""Numeric and shape tests for elementwise/broadcast operators."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ShapeError, TypeCheckError
from repro.ir.dtype import FLOAT32, FLOAT64, TensorType
from repro.ir.ops import get_op


def _run(name, arrays, **attrs):
    return get_op(name).compute([np.asarray(a) for a in arrays], attrs)


def _infer(name, types, **attrs):
    return get_op(name).infer_type(types, attrs)


class TestBinaryOps:
    @pytest.mark.parametrize(
        "name,fn",
        [
            ("add", np.add),
            ("subtract", np.subtract),
            ("multiply", np.multiply),
            ("divide", np.divide),
            ("maximum", np.maximum),
            ("minimum", np.minimum),
        ],
    )
    def test_matches_numpy(self, name, fn, rng):
        a = rng.standard_normal((3, 4)).astype(np.float32)
        b = rng.standard_normal((3, 4)).astype(np.float32) + 2.0
        np.testing.assert_allclose(_run(name, [a, b]), fn(a, b), rtol=1e-6)

    def test_broadcast_shape_inference(self):
        t = _infer("add", [TensorType((3, 1, 4)), TensorType((2, 4))])
        assert t.shape == (3, 2, 4)

    def test_incompatible_shapes_raise(self):
        with pytest.raises(ShapeError):
            _infer("add", [TensorType((3, 4)), TensorType((2, 4))])

    def test_dtype_mismatch_raises(self):
        with pytest.raises(TypeCheckError):
            _infer("add", [TensorType((2,), FLOAT32), TensorType((2,), FLOAT64)])

    def test_broadcast_compute(self):
        a = np.ones((2, 3), dtype=np.float32)
        b = np.asarray([1.0, 2.0, 3.0], dtype=np.float32)
        np.testing.assert_allclose(_run("add", [a, b]), a + b)


class TestUnaryOps:
    def test_relu(self):
        x = np.asarray([-1.0, 0.0, 2.5], dtype=np.float32)
        np.testing.assert_allclose(_run("relu", [x]), [0.0, 0.0, 2.5])

    def test_sigmoid_range(self, rng):
        x = rng.standard_normal((10,)).astype(np.float32) * 5
        y = _run("sigmoid", [x])
        assert np.all((y > 0) & (y < 1))

    def test_tanh_matches_numpy(self, rng):
        x = rng.standard_normal((5, 5)).astype(np.float32)
        np.testing.assert_allclose(_run("tanh", [x]), np.tanh(x), rtol=1e-6)

    def test_identity_copies(self):
        x = np.ones((2, 2), dtype=np.float32)
        y = _run("identity", [x])
        assert y is not x
        np.testing.assert_array_equal(y, x)

    def test_gelu_fixed_points(self):
        x = np.asarray([0.0], dtype=np.float32)
        np.testing.assert_allclose(_run("gelu", [x]), [0.0], atol=1e-7)
        # gelu(x) ~ x for large positive x
        big = np.asarray([10.0], dtype=np.float32)
        np.testing.assert_allclose(_run("gelu", [big]), [10.0], rtol=1e-3)

    def test_unary_preserves_type(self):
        t = TensorType((4, 4))
        assert _infer("relu", [t]) == t

    @given(
        hnp.arrays(
            np.float32,
            hnp.array_shapes(min_dims=1, max_dims=3, max_side=5),
            elements=st.floats(-10, 10, width=32),
        )
    )
    def test_negate_roundtrip(self, x):
        np.testing.assert_array_equal(
            _run("negative", [_run("negative", [x])]), x
        )


class TestLeakyReluAndClip:
    def test_leaky_relu_default_alpha(self):
        x = np.asarray([-2.0, 3.0], dtype=np.float32)
        np.testing.assert_allclose(_run("leaky_relu", [x]), [-0.02, 3.0])

    def test_leaky_relu_custom_alpha(self):
        x = np.asarray([-1.0], dtype=np.float32)
        np.testing.assert_allclose(_run("leaky_relu", [x], alpha=0.5), [-0.5])

    def test_clip(self):
        x = np.asarray([-5.0, 0.5, 5.0], dtype=np.float32)
        np.testing.assert_allclose(
            _run("clip", [x], min=-1.0, max=1.0), [-1.0, 0.5, 1.0]
        )


class TestBiasAdd:
    def test_last_axis_default(self, rng):
        x = rng.standard_normal((2, 5)).astype(np.float32)
        b = rng.standard_normal((5,)).astype(np.float32)
        np.testing.assert_allclose(_run("bias_add", [x, b]), x + b, rtol=1e-6)

    def test_channel_axis(self, rng):
        x = rng.standard_normal((1, 3, 4, 4)).astype(np.float32)
        b = rng.standard_normal((3,)).astype(np.float32)
        out = _run("bias_add", [x, b], axis=1)
        np.testing.assert_allclose(out, x + b.reshape(1, 3, 1, 1), rtol=1e-6)

    def test_length_mismatch_raises(self):
        with pytest.raises(ShapeError):
            _infer("bias_add", [TensorType((2, 5)), TensorType((4,))])

    def test_non_vector_bias_raises(self):
        with pytest.raises(ShapeError):
            _infer("bias_add", [TensorType((2, 5)), TensorType((5, 1))])
