"""Tests for the Relay-style printer."""

from repro.ir import GraphBuilder, format_graph


class TestPrinter:
    def test_contains_all_ops(self, diamond_graph):
        text = format_graph(diamond_graph)
        for op in ("relu", "tanh", "sigmoid", "add"):
            assert op in text

    def test_contains_signature(self, diamond_graph):
        text = format_graph(diamond_graph)
        assert "fn diamond(" in text
        assert "%x: Tensor[(2, 8), float32]" in text

    def test_attrs_rendered(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 6))
        g = b.build(b.op("reshape", x, shape=(3, 4)))
        assert "shape=" in format_graph(g)

    def test_params_listed(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 2))
        w = b.const((2, 2), name="w")
        g = b.build(b.op("dense", x, w))
        assert "param %w" in format_graph(g)

    def test_outputs_rendered(self, diamond_graph):
        assert "(%join)" in format_graph(diamond_graph)

    def test_topological_listing(self, chain_graph):
        text = format_graph(chain_graph)
        assert text.index("relu") < text.index("tanh") < text.index("sigmoid")
