"""Tests for the Graph container and its invariants."""

import numpy as np
import pytest

from repro.errors import GraphValidationError, IRError
from repro.ir import GraphBuilder
from repro.ir.dtype import TensorType
from repro.ir.graph import Graph
from repro.ir.node import Node, NodeKind


def _op(nid, op, inputs, shape=(2, 2)):
    return Node(
        id=nid, kind=NodeKind.OP, ty=TensorType(shape), op=op, inputs=tuple(inputs)
    )


def _inp(nid, shape=(2, 2)):
    return Node(id=nid, kind=NodeKind.INPUT, ty=TensorType(shape))


class TestConstruction:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(GraphValidationError):
            Graph("g", [_inp("x"), _inp("x")], ["x"])

    def test_unknown_output_rejected(self):
        with pytest.raises(GraphValidationError):
            Graph("g", [_inp("x")], ["y"])

    def test_no_outputs_rejected(self):
        with pytest.raises(GraphValidationError):
            Graph("g", [_inp("x")], [])

    def test_dangling_edge_rejected(self):
        with pytest.raises(GraphValidationError):
            Graph("g", [_op("a", "relu", ["ghost"])], ["a"])

    def test_cycle_rejected(self):
        nodes = [_op("a", "relu", ["b"]), _op("b", "relu", ["a"])]
        with pytest.raises(GraphValidationError):
            Graph("g", nodes, ["a"])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(GraphValidationError):
            Graph("g", [_inp("x"), _op("a", "add", ["x"])], ["a"])

    def test_declared_type_must_match_inference(self):
        bad = Node(
            id="a",
            kind=NodeKind.OP,
            ty=TensorType((9, 9)),  # relu of (2,2) is (2,2)
            op="relu",
            inputs=("x",),
        )
        with pytest.raises(GraphValidationError):
            Graph("g", [_inp("x"), bad], ["a"])


class TestAccessors:
    def test_topo_order_respects_dependencies(self, diamond_graph):
        order = diamond_graph.topo_order()
        pos = {n: i for i, n in enumerate(order)}
        for node in diamond_graph:
            for src in node.inputs:
                assert pos[src] < pos[node.id]

    def test_consumers(self, diamond_graph):
        assert set(diamond_graph.consumers("a")) == {"left", "right"}
        assert diamond_graph.consumers("join") == ()

    def test_unknown_node_raises(self, diamond_graph):
        with pytest.raises(IRError):
            diamond_graph.node("nope")

    def test_node_partitions(self, diamond_graph):
        assert len(diamond_graph.input_nodes()) == 1
        assert len(diamond_graph.op_nodes()) == 4
        assert len(diamond_graph) == 5

    def test_contains_and_iter(self, diamond_graph):
        assert "a" in diamond_graph
        assert "nope" not in diamond_graph
        assert {n.id for n in diamond_graph} == set(diamond_graph.nodes)

    def test_output_types(self, diamond_graph):
        assert diamond_graph.output_types() == [TensorType((2, 8))]


class TestUtilities:
    def test_total_flops_positive(self, diamond_graph):
        assert diamond_graph.total_flops() > 0

    def test_num_params(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 4))
        w = b.const((8, 4))
        g = b.build(b.op("dense", x, w))
        assert g.num_params() == 32

    def test_materialize_params_deterministic(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 4))
        w = b.const((8, 4), name="w")
        g = b.build(b.op("dense", x, w))
        p1 = g.materialize_params(seed=3)
        p2 = g.materialize_params(seed=3)
        np.testing.assert_array_equal(p1["w"], p2["w"])
        p3 = g.materialize_params(seed=4)
        assert not np.array_equal(p1["w"], p3["w"])

    def test_params_independent_of_other_nodes(self):
        # The same-named const gets the same data regardless of siblings.
        b1 = GraphBuilder("g")
        x1 = b1.input("x", (1, 4))
        w1 = b1.const((8, 4), name="w")
        g1 = b1.build(b1.op("dense", x1, w1))

        b2 = GraphBuilder("g")
        x2 = b2.input("x", (1, 4))
        other = b2.const((2, 2), name="other")
        w2 = b2.const((8, 4), name="w")
        d = b2.op("dense", x2, w2)
        g2 = b2.build(d)

        np.testing.assert_array_equal(
            g1.materialize_params(0)["w"], g2.materialize_params(0)["w"]
        )

    def test_pruned_removes_dead_nodes(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        live = b.op("relu", x)
        b.op("tanh", x)  # dead
        g = b.build(live)
        assert len(g.pruned()) == 2

    def test_with_outputs(self, diamond_graph):
        g2 = diamond_graph.with_outputs(["left"])
        assert g2.outputs == ("left",)
        assert len(g2) == len(diamond_graph)
