"""Tests for graph JSON serialization."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import IRError
from repro.ir import GraphBuilder, make_inputs, run_graph
from repro.ir.serialize import dumps, graph_from_dict, graph_to_dict, loads
from tests.strategies import random_graphs


class TestRoundTrip:
    def test_structure_preserved(self, diamond_graph):
        g2 = loads(dumps(diamond_graph))
        assert g2.name == diamond_graph.name
        assert set(g2.nodes) == set(diamond_graph.nodes)
        assert g2.outputs == diamond_graph.outputs

    def test_semantics_preserved(self, diamond_graph):
        g2 = loads(dumps(diamond_graph))
        feeds = make_inputs(diamond_graph)
        np.testing.assert_allclose(
            run_graph(diamond_graph, feeds)[0], run_graph(g2, feeds)[0]
        )

    def test_literal_payload_survives(self):
        b = GraphBuilder("g")
        x = b.input("x", (2,))
        lit = b.literal(np.asarray([3.0, 4.0], dtype=np.float32), name="lit")
        g = b.build(b.op("add", x, lit))
        g2 = loads(dumps(g))
        np.testing.assert_array_equal(g2.node("lit").literal, [3.0, 4.0])

    def test_tuple_attrs_survive(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 3, 8, 8))
        w = b.const((4, 3, 3, 3))
        g = b.build(b.op("conv2d", x, w, strides=(2, 2), padding=(1, 1)))
        g2 = loads(dumps(g))
        conv = next(n for n in g2.op_nodes())
        assert conv.attrs["strides"] == (2, 2)
        assert isinstance(conv.attrs["strides"], tuple)

    def test_zoo_models_round_trip(self, tiny_model):
        g2 = loads(dumps(tiny_model))
        feeds = make_inputs(tiny_model)
        a = run_graph(tiny_model, feeds)
        b = run_graph(g2, feeds)
        for x, y in zip(a, b):
            np.testing.assert_allclose(x, y, rtol=1e-5, atol=1e-6)

    def test_invalid_json_raises(self):
        with pytest.raises(IRError):
            loads("{not json")

    def test_dict_form_is_json_compatible(self, diamond_graph):
        import json

        data = graph_to_dict(diamond_graph)
        json.dumps(data)  # should not raise
        g2 = graph_from_dict(data)
        assert set(g2.nodes) == set(diamond_graph.nodes)

    @settings(max_examples=25, deadline=None)
    @given(random_graphs(max_ops=12))
    def test_random_graphs_round_trip(self, graph):
        g2 = loads(dumps(graph))
        feeds = make_inputs(graph)
        a = run_graph(graph, feeds)
        b = run_graph(g2, feeds)
        for x, y in zip(a, b):
            np.testing.assert_allclose(x, y, rtol=1e-5, atol=1e-6)
