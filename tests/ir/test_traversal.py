"""Tests for traversal utilities."""

import pytest

from repro.ir import GraphBuilder
from repro.ir.traversal import (
    ancestors,
    are_independent,
    critical_path,
    descendants,
    node_depths,
    weakly_connected_components,
)


class TestReachability:
    def test_ancestors(self, diamond_graph):
        assert ancestors(diamond_graph, "join") == {"x", "a", "left", "right"}
        assert ancestors(diamond_graph, "a") == {"x"}
        assert ancestors(diamond_graph, "x") == set()

    def test_descendants(self, diamond_graph):
        assert descendants(diamond_graph, "a") == {"left", "right", "join"}
        assert descendants(diamond_graph, "join") == set()

    def test_independence(self, diamond_graph):
        assert are_independent(diamond_graph, {"left"}, {"right"})
        assert not are_independent(diamond_graph, {"a"}, {"left"})
        assert not are_independent(diamond_graph, {"left"}, {"join"})


class TestDepths:
    def test_op_only_depths(self, diamond_graph):
        d = node_depths(diamond_graph)
        assert d["a"] == 0
        assert d["left"] == d["right"] == 1
        assert d["join"] == 2

    def test_leaves_transparent(self, diamond_graph):
        d = node_depths(diamond_graph)
        assert d["x"] == -1  # leaf contributes no depth


class TestCriticalPath:
    def test_picks_expensive_branch(self, diamond_graph):
        costs = {"a": 1.0, "left": 10.0, "right": 1.0, "join": 1.0}
        path, total = critical_path(
            diamond_graph, lambda n: costs.get(n, 0.0)
        )
        assert "left" in path and "right" not in path
        assert total == 12.0

    def test_path_is_topologically_ordered(self, diamond_graph):
        path, _ = critical_path(diamond_graph, lambda n: 1.0)
        pos = {n: i for i, n in enumerate(diamond_graph.topo_order())}
        assert [pos[n] for n in path] == sorted(pos[n] for n in path)

    def test_chain_includes_everything(self, chain_graph):
        path, total = critical_path(
            chain_graph,
            lambda n: 1.0 if chain_graph.node(n).is_op else 0.0,
        )
        assert total == 4.0


class TestComponents:
    def test_branches_are_separate_components(self, diamond_graph):
        comps = weakly_connected_components(diamond_graph, {"left", "right"})
        assert len(comps) == 2

    def test_connected_through_member(self, diamond_graph):
        comps = weakly_connected_components(
            diamond_graph, {"a", "left", "right"}
        )
        assert len(comps) == 1

    def test_deterministic_order(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        n1 = b.op("relu", x, name="n1")
        n2 = b.op("tanh", x, name="n2")
        n3 = b.op("sigmoid", x, name="n3")
        g = b.build(b.op("add", b.op("add", n1, n2), n3))
        comps = weakly_connected_components(g, {"n1", "n2", "n3"})
        assert comps == [{"n1"}, {"n2"}, {"n3"}]

    def test_empty_set(self, diamond_graph):
        assert weakly_connected_components(diamond_graph, set()) == []
