"""Tests for dtypes and tensor types."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.ir.dtype import (
    BOOL,
    FLOAT32,
    FLOAT64,
    INT32,
    INT64,
    TensorType,
    dtype_from_name,
    normalize_shape,
)


class TestDType:
    def test_bytes(self):
        assert FLOAT32.bytes == 4
        assert FLOAT64.bytes == 8
        assert INT64.bytes == 8
        assert BOOL.bytes == 1

    def test_to_numpy(self):
        assert FLOAT32.to_numpy() == np.float32
        assert INT32.to_numpy() == np.int32

    def test_lookup_by_name(self):
        assert dtype_from_name("float32") is FLOAT32
        assert dtype_from_name("int64") is INT64

    def test_unknown_name_raises(self):
        with pytest.raises(ShapeError):
            dtype_from_name("complex128")

    def test_str(self):
        assert str(FLOAT32) == "float32"


class TestNormalizeShape:
    def test_coerces_to_int_tuple(self):
        assert normalize_shape([2, 3.0]) == (2, 3)

    @pytest.mark.parametrize("bad", [(0,), (-1, 4), (2, 0, 2)])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ShapeError):
            normalize_shape(bad)

    def test_empty_shape_allowed(self):
        assert normalize_shape(()) == ()


class TestTensorType:
    def test_num_elements(self):
        assert TensorType((2, 3, 4)).num_elements == 24

    def test_scalar_shape(self):
        assert TensorType(()).num_elements == 1

    def test_size_bytes(self):
        assert TensorType((10, 10), FLOAT32).size_bytes == 400
        assert TensorType((10, 10), FLOAT64).size_bytes == 800

    def test_rank(self):
        assert TensorType((1, 2, 3, 4)).rank == 4

    def test_with_shape_preserves_dtype(self):
        t = TensorType((2, 2), INT64).with_shape((4,))
        assert t.shape == (4,)
        assert t.dtype is INT64

    def test_equality_and_hash(self):
        assert TensorType((2, 3)) == TensorType((2, 3))
        assert TensorType((2, 3)) != TensorType((3, 2))
        assert hash(TensorType((2, 3))) == hash(TensorType((2, 3)))

    def test_invalid_shape_rejected(self):
        with pytest.raises(ShapeError):
            TensorType((2, -1))

    def test_str_contains_shape_and_dtype(self):
        s = str(TensorType((2, 3), FLOAT32))
        assert "2, 3" in s and "float32" in s
