"""Tests for the operator registry."""

import pytest

from repro.errors import UnknownOpError
from repro.ir.dtype import TensorType
from repro.ir.ops import (
    OpKind,
    OpPattern,
    OpSpec,
    get_op,
    has_op,
    list_ops,
    register_op,
)


class TestRegistry:
    def test_builtins_registered(self):
        for name in (
            "dense", "conv2d", "lstm", "gru", "relu", "add", "softmax",
            "concat", "reshape", "embedding", "batch_norm", "layer_norm",
        ):
            assert has_op(name), name

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownOpError):
            get_op("not_an_op")

    def test_list_ops_sorted(self):
        names = list_ops()
        assert names == sorted(names)
        assert len(names) >= 30

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_op(
                OpSpec(
                    name="relu",
                    arity=1,
                    pattern=OpPattern.ELEMWISE,
                    kind=OpKind.ELEMWISE,
                    infer_type=lambda i, a: i[0],
                    compute=lambda xs, a: xs[0],
                )
            )

    def test_default_flops_counts_output_elements(self):
        spec = get_op("add")
        out = TensorType((2, 8))
        assert spec.flops([out, out], out, {}) == 16.0

    def test_default_steps_is_one(self):
        spec = get_op("relu")
        assert spec.sequential_steps([TensorType((2, 2))], {}) == 1

    def test_lstm_metadata(self):
        spec = get_op("lstm")
        assert spec.pattern is OpPattern.OPAQUE
        assert spec.kind is OpKind.RECURRENT
        assert spec.kernels_per_step == 2

    def test_conv_is_out_fusable(self):
        assert get_op("conv2d").pattern is OpPattern.OUT_FUSABLE
