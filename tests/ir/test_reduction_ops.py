"""Tests for reduction operators."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.ir.dtype import INT64, TensorType
from repro.ir.ops import get_op


def _run(name, arrays, **attrs):
    return get_op(name).compute([np.asarray(a) for a in arrays], attrs)


def _infer(name, types, **attrs):
    return get_op(name).infer_type(types, attrs)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.standard_normal((4, 7)).astype(np.float32)
        out = _run("softmax", [x], axis=-1)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-5)

    def test_numerically_stable_for_large_logits(self):
        x = np.asarray([[1000.0, 1000.0]], dtype=np.float32)
        out = _run("softmax", [x], axis=-1)
        np.testing.assert_allclose(out, [[0.5, 0.5]])

    def test_axis0(self, rng):
        x = rng.standard_normal((3, 2)).astype(np.float32)
        out = _run("softmax", [x], axis=0)
        np.testing.assert_allclose(out.sum(axis=0), 1.0, rtol=1e-5)

    def test_preserves_shape(self):
        t = TensorType((3, 5))
        assert _infer("softmax", [t], axis=-1) == t

    def test_log_softmax_consistent(self, rng):
        x = rng.standard_normal((2, 6)).astype(np.float32)
        np.testing.assert_allclose(
            _run("log_softmax", [x], axis=-1),
            np.log(_run("softmax", [x], axis=-1)),
            rtol=1e-4,
            atol=1e-5,
        )


class TestReductions:
    @pytest.mark.parametrize(
        "name,fn",
        [
            ("reduce_sum", np.sum),
            ("reduce_mean", np.mean),
            ("reduce_max", np.max),
            ("reduce_min", np.min),
        ],
    )
    def test_matches_numpy(self, name, fn, rng):
        x = rng.standard_normal((3, 5)).astype(np.float32)
        np.testing.assert_allclose(
            _run(name, [x], axis=1), fn(x, axis=1), rtol=1e-5
        )

    def test_keepdims_shape(self):
        t = _infer("reduce_sum", [TensorType((3, 5))], axis=1, keepdims=True)
        assert t.shape == (3, 1)

    def test_drop_axis_shape(self):
        t = _infer("reduce_sum", [TensorType((3, 5))], axis=0)
        assert t.shape == (5,)

    def test_reduce_to_scalar_keeps_rank1(self):
        t = _infer("reduce_mean", [TensorType((5,))], axis=0)
        assert t.shape == (1,)
        out = _run("reduce_mean", [np.ones(5, dtype=np.float32)], axis=0)
        assert out.shape == (1,)

    def test_bad_axis_raises(self):
        with pytest.raises(ShapeError):
            _infer("reduce_sum", [TensorType((3, 5))], axis=2)


class TestArgmax:
    def test_values(self):
        x = np.asarray([[1.0, 5.0, 2.0], [9.0, 0.0, 3.0]], dtype=np.float32)
        out = _run("argmax", [x], axis=1)
        np.testing.assert_array_equal(out, [1, 0])
        assert out.dtype == np.int64

    def test_infer_dtype(self):
        t = _infer("argmax", [TensorType((3, 5))], axis=1)
        assert t.dtype is INT64
        assert t.shape == (3,)
