"""Tests for the GraphBuilder API."""

import numpy as np
import pytest

from repro.errors import IRError
from repro.ir import GraphBuilder
from repro.ir.dtype import INT64
from repro.ir.node import Initializer


class TestBuilder:
    def test_shape_inference_on_op(self):
        b = GraphBuilder("g")
        x = b.input("x", (3, 8))
        w = b.const((5, 8))
        y = b.op("dense", x, w)
        assert y.shape == (3, 5)

    def test_arity_checked_at_build_time(self):
        b = GraphBuilder("g")
        x = b.input("x", (3, 8))
        with pytest.raises(IRError):
            b.op("add", x)

    def test_fresh_ids_unique(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        vars_ = [b.op("relu", x) for _ in range(10)]
        assert len({v.id for v in vars_}) == 10

    def test_explicit_name(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        y = b.op("relu", x, name="my_relu")
        assert y.id == "my_relu"

    def test_duplicate_name_rejected(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        b.op("relu", x, name="n")
        with pytest.raises(IRError):
            b.op("tanh", x, name="n")

    def test_build_requires_outputs(self):
        b = GraphBuilder("g")
        b.input("x", (2, 2))
        with pytest.raises(IRError):
            b.build()

    def test_const_with_init(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        c = b.const((2, 2), init=Initializer.ZEROS, name="z")
        g = b.build(b.op("add", x, c))
        assert g.node("z").init is Initializer.ZEROS

    def test_literal(self):
        b = GraphBuilder("g")
        x = b.input("x", (2,))
        lit = b.literal(np.asarray([1.0, 2.0], dtype=np.float32))
        g = b.build(b.op("add", x, lit))
        node = g.node(lit.id)
        assert node.init is Initializer.LITERAL
        np.testing.assert_array_equal(node.literal, [1.0, 2.0])

    def test_int_input_dtype(self):
        b = GraphBuilder("g")
        t = b.input("tokens", (1, 5), dtype=INT64)
        assert t.ty.dtype is INT64

    def test_attrs_forwarded(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 4))
        y = b.op("reshape", x, shape=(4, 1))
        assert y.shape == (4, 1)

    def test_build_validates(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        y = b.op("relu", x)
        g = b.build(y)
        g.validate()  # should not raise
        assert g.outputs == (y.id,)
