"""Tests for Node construction and parameter materialization."""

import numpy as np
import pytest

from repro.errors import IRError
from repro.ir.dtype import INT64, TensorType
from repro.ir.node import Initializer, Node, NodeKind


def _const(**kw):
    defaults = dict(id="c", kind=NodeKind.CONST, ty=TensorType((3, 2)))
    defaults.update(kw)
    return Node(**defaults)


class TestNodeInvariants:
    def test_op_node_requires_op_name(self):
        with pytest.raises(IRError):
            Node(id="x", kind=NodeKind.OP, ty=TensorType((1,)))

    def test_input_node_rejects_op_name(self):
        with pytest.raises(IRError):
            Node(id="x", kind=NodeKind.INPUT, ty=TensorType((1,)), op="relu")

    def test_leaf_rejects_inputs(self):
        with pytest.raises(IRError):
            Node(
                id="x", kind=NodeKind.CONST, ty=TensorType((1,)), inputs=("y",)
            )

    def test_literal_requires_payload(self):
        with pytest.raises(IRError):
            _const(init=Initializer.LITERAL)

    def test_kind_predicates(self):
        n = Node(
            id="a", kind=NodeKind.OP, ty=TensorType((1,)), op="relu", inputs=("x",)
        )
        assert n.is_op and not n.is_input and not n.is_const

    def test_with_inputs(self):
        n = Node(
            id="a", kind=NodeKind.OP, ty=TensorType((1,)), op="relu", inputs=("x",)
        )
        m = n.with_inputs(("y",))
        assert m.inputs == ("y",) and m.id == n.id and m.op == "relu"

    def test_with_id(self):
        n = _const()
        assert n.with_id("c2").id == "c2"


class TestMaterialize:
    def test_normal_is_deterministic_per_generator(self):
        n = _const()
        a = n.materialize(np.random.default_rng(1))
        b = n.materialize(np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)
        assert a.shape == (3, 2) and a.dtype == np.float32

    def test_zeros_and_ones(self):
        z = _const(init=Initializer.ZEROS).materialize(np.random.default_rng(0))
        o = _const(init=Initializer.ONES).materialize(np.random.default_rng(0))
        assert z.sum() == 0.0 and o.sum() == 6.0

    def test_uniform_int_respects_high(self):
        n = _const(
            ty=TensorType((100,), INT64),
            init=Initializer.UNIFORM_INT,
            attrs={"init_high": 7},
        )
        v = n.materialize(np.random.default_rng(0))
        assert v.dtype == np.int64
        assert v.min() >= 0 and v.max() < 7

    def test_literal_payload_cast(self):
        n = _const(
            ty=TensorType((2,)),
            init=Initializer.LITERAL,
            literal=np.asarray([1, 2], dtype=np.int32),
        )
        v = n.materialize(np.random.default_rng(0))
        assert v.dtype == np.float32
        np.testing.assert_array_equal(v, [1.0, 2.0])

    def test_init_scale_attr(self):
        wide = _const(attrs={"init_scale": 10.0}).materialize(
            np.random.default_rng(0)
        )
        narrow = _const(attrs={"init_scale": 0.001}).materialize(
            np.random.default_rng(0)
        )
        assert wide.std() > narrow.std() * 100

    def test_materialize_non_const_raises(self):
        n = Node(id="x", kind=NodeKind.INPUT, ty=TensorType((1,)))
        with pytest.raises(IRError):
            n.materialize(np.random.default_rng(0))
