"""Tests for data-movement operators."""

import numpy as np
import pytest

from repro.errors import ShapeError, TypeCheckError
from repro.ir.dtype import FLOAT32, INT64, TensorType
from repro.ir.ops import get_op


def _run(name, arrays, **attrs):
    return get_op(name).compute([np.asarray(a) for a in arrays], attrs)


def _infer(name, types, **attrs):
    return get_op(name).infer_type(types, attrs)


class TestReshape:
    def test_basic(self, rng):
        x = rng.standard_normal((2, 6)).astype(np.float32)
        out = _run("reshape", [x], shape=(3, 4))
        np.testing.assert_array_equal(out, x.reshape(3, 4))

    def test_infer_with_minus_one(self):
        t = _infer("reshape", [TensorType((2, 6))], shape=(4, -1))
        assert t.shape == (4, 3)

    def test_element_count_mismatch_raises(self):
        with pytest.raises(ShapeError):
            _infer("reshape", [TensorType((2, 6))], shape=(5, 2))

    def test_bad_minus_one_raises(self):
        with pytest.raises(ShapeError):
            _infer("reshape", [TensorType((2, 5))], shape=(3, -1))

    def test_zero_flops(self):
        spec = get_op("reshape")
        t = TensorType((2, 6))
        assert spec.flops([t], t.with_shape((12,)), {"shape": (12,)}) == 0.0


class TestFlatten:
    def test_keeps_leading_dim(self, rng):
        x = rng.standard_normal((2, 3, 4)).astype(np.float32)
        out = _run("flatten", [x])
        assert out.shape == (2, 12)

    def test_infer(self):
        assert _infer("flatten", [TensorType((5, 2, 2))]).shape == (5, 4)


class TestTranspose:
    def test_default_reverses(self, rng):
        x = rng.standard_normal((2, 3, 4)).astype(np.float32)
        out = _run("transpose", [x])
        assert out.shape == (4, 3, 2)

    def test_explicit_axes(self, rng):
        x = rng.standard_normal((2, 3, 4)).astype(np.float32)
        out = _run("transpose", [x], axes=(0, 2, 1))
        np.testing.assert_array_equal(out, np.transpose(x, (0, 2, 1)))

    def test_invalid_axes_raise(self):
        with pytest.raises(ShapeError):
            _infer("transpose", [TensorType((2, 3))], axes=(0, 0))


class TestConcat:
    def test_axis0(self, rng):
        a = rng.standard_normal((2, 3)).astype(np.float32)
        b = rng.standard_normal((4, 3)).astype(np.float32)
        out = _run("concat", [a, b], axis=0)
        np.testing.assert_array_equal(out, np.concatenate([a, b]))

    def test_negative_axis_infer(self):
        t = _infer("concat", [TensorType((2, 3)), TensorType((2, 5))], axis=-1)
        assert t.shape == (2, 8)

    def test_three_inputs(self):
        t = _infer(
            "concat",
            [TensorType((1, 2)), TensorType((1, 3)), TensorType((1, 4))],
            axis=1,
        )
        assert t.shape == (1, 9)

    def test_rank_mismatch_raises(self):
        with pytest.raises(ShapeError):
            _infer("concat", [TensorType((2, 3)), TensorType((2, 3, 1))], axis=0)

    def test_non_concat_axis_mismatch_raises(self):
        with pytest.raises(ShapeError):
            _infer("concat", [TensorType((2, 3)), TensorType((3, 3))], axis=1)

    def test_dtype_mismatch_raises(self):
        with pytest.raises(TypeCheckError):
            _infer(
                "concat",
                [TensorType((2,), FLOAT32), TensorType((2,), INT64)],
                axis=0,
            )

    def test_empty_inputs_raise(self):
        with pytest.raises(ShapeError):
            _infer("concat", [], axis=0)


class TestStridedSlice:
    def test_basic(self, rng):
        x = rng.standard_normal((4, 6)).astype(np.float32)
        out = _run("strided_slice", [x], begin=(1, 2), end=(3, 6))
        np.testing.assert_array_equal(out, x[1:3, 2:6])

    def test_result_contiguous(self, rng):
        x = rng.standard_normal((4, 6)).astype(np.float32)
        out = _run("strided_slice", [x], begin=(0, 0), end=(2, 3))
        assert out.flags["C_CONTIGUOUS"]

    def test_out_of_range_raises(self):
        with pytest.raises(ShapeError):
            _infer("strided_slice", [TensorType((4, 6))], begin=(0, 0), end=(5, 6))

    def test_empty_slice_raises(self):
        with pytest.raises(ShapeError):
            _infer("strided_slice", [TensorType((4,))], begin=(2,), end=(2,))

    def test_rank_mismatch_raises(self):
        with pytest.raises(ShapeError):
            _infer("strided_slice", [TensorType((4, 6))], begin=(0,), end=(4,))


class TestEmbedding:
    def test_lookup(self, rng):
        table = rng.standard_normal((10, 4)).astype(np.float32)
        idx = np.asarray([[1, 3], [0, 9]], dtype=np.int64)
        out = _run("embedding", [table, idx])
        assert out.shape == (2, 2, 4)
        np.testing.assert_array_equal(out[0, 1], table[3])

    def test_infer(self):
        t = _infer(
            "embedding", [TensorType((100, 8)), TensorType((2, 5), INT64)]
        )
        assert t.shape == (2, 5, 8)
        assert t.dtype is FLOAT32

    def test_float_indices_raise(self):
        with pytest.raises(TypeCheckError):
            _infer("embedding", [TensorType((100, 8)), TensorType((2, 5))])

    def test_non_2d_table_raises(self):
        with pytest.raises(ShapeError):
            _infer(
                "embedding",
                [TensorType((100, 8, 2)), TensorType((2,), INT64)],
            )


class TestReverse:
    def test_time_axis(self, rng):
        x = rng.standard_normal((2, 5, 3)).astype(np.float32)
        out = _run("reverse", [x], axis=1)
        np.testing.assert_array_equal(out, x[:, ::-1, :])

    def test_double_reverse_is_identity(self, rng):
        x = rng.standard_normal((2, 5)).astype(np.float32)
        out = _run("reverse", [_run("reverse", [x], axis=0)], axis=0)
        np.testing.assert_array_equal(out, x)
