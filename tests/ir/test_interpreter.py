"""Tests for the reference interpreter."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.ir import GraphBuilder, make_inputs, run_graph
from repro.ir.dtype import INT64


class TestRunGraph:
    def test_simple_dense_relu(self, rng):
        b = GraphBuilder("g")
        x = b.input("x", (2, 4))
        w = b.const((3, 4), name="w")
        y = b.op("relu", b.op("dense", x, w))
        g = b.build(y)
        feeds = {"x": rng.standard_normal((2, 4)).astype(np.float32)}
        params = g.materialize_params(0)
        (out,) = run_graph(g, feeds, params)
        np.testing.assert_allclose(
            out, np.maximum(feeds["x"] @ params["w"].T, 0), rtol=1e-5
        )

    def test_multiple_outputs(self, diamond_graph):
        g2 = diamond_graph.with_outputs(["left", "right", "join"])
        outs = run_graph(g2, make_inputs(g2))
        assert len(outs) == 3
        np.testing.assert_allclose(outs[0] + outs[1], outs[2], rtol=1e-5)

    def test_missing_input_raises(self, diamond_graph):
        with pytest.raises(ExecutionError):
            run_graph(diamond_graph, {})

    def test_wrong_input_shape_raises(self, diamond_graph):
        with pytest.raises(ExecutionError):
            run_graph(diamond_graph, {"x": np.zeros((1, 1), dtype=np.float32)})

    def test_missing_param_raises(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 2))
        w = b.const((2, 2), name="w")
        g = b.build(b.op("dense", x, w))
        with pytest.raises(ExecutionError):
            run_graph(g, make_inputs(g), params={})

    def test_seed_changes_params_not_inputs(self, rng):
        b = GraphBuilder("g")
        x = b.input("x", (1, 4))
        w = b.const((4, 4), name="w")
        g = b.build(b.op("dense", x, w))
        feeds = make_inputs(g, seed=7)
        a = run_graph(g, feeds, seed=1)[0]
        bb = run_graph(g, feeds, seed=2)[0]
        assert not np.allclose(a, bb)


class TestMakeInputs:
    def test_shapes_and_dtypes(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 3))
        t = b.input("tokens", (1, 5), dtype=INT64)
        tbl = b.const((10, 3))
        g = b.build(b.op("embedding", tbl, t), x)
        feeds = make_inputs(g)
        assert feeds["x"].shape == (2, 3) and feeds["x"].dtype == np.float32
        assert feeds["tokens"].dtype == np.int64

    def test_integer_inputs_respect_init_high(self):
        b = GraphBuilder("g")
        t = b.input("tokens", (1, 100), dtype=INT64)
        t2 = b.op("reshape", t, shape=(100,))
        g = b.build(t2)
        feeds = make_inputs(g)
        assert feeds["tokens"].max() < 2  # default init_high

    def test_deterministic(self, diamond_graph):
        a = make_inputs(diamond_graph, seed=5)
        b = make_inputs(diamond_graph, seed=5)
        np.testing.assert_array_equal(a["x"], b["x"])
