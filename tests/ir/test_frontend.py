"""Tests for the declarative model-spec frontend."""

import json

import numpy as np
import pytest

from repro.core import DuetEngine
from repro.errors import IRError
from repro.ir import make_inputs, run_graph
from repro.ir.frontend import (
    SUPPORTED_LAYER_KINDS,
    build_from_json,
    build_from_spec,
)


def _two_branch_spec():
    return {
        "name": "two_tower",
        "inputs": [
            {"name": "image", "shape": [1, 3, 16, 16]},
            {"name": "text", "shape": [1, 6, 8]},
        ],
        "layers": [
            {"kind": "conv", "name": "c1", "input": "image", "channels": 8,
             "kernel": 3, "stride": 2, "padding": 1},
            {"kind": "global_avg_pool", "name": "img_vec", "input": "c1"},
            {"kind": "lstm", "name": "txt", "input": "text", "hidden": 8},
            {"kind": "concat", "name": "joint", "inputs": ["img_vec", "txt"]},
            {"kind": "dense", "name": "out", "input": "joint", "units": 4,
             "activation": None},
            {"kind": "softmax", "name": "probs", "input": "out"},
        ],
        "outputs": ["probs"],
    }


class TestBuildFromSpec:
    def test_two_branch_model(self):
        g = build_from_spec(_two_branch_spec())
        g.validate()
        (out,) = run_graph(g, make_inputs(g))
        assert out.shape == (1, 4)
        np.testing.assert_allclose(out.sum(), 1.0, rtol=1e-5)

    def test_sequential_default_wiring(self):
        spec = {
            "name": "chain",
            "inputs": [{"name": "x", "shape": [2, 8]}],
            "layers": [
                {"kind": "dense", "units": 16},
                {"kind": "tanh"},
                {"kind": "dense", "units": 4, "activation": None},
            ],
        }
        g = build_from_spec(spec)
        (out,) = run_graph(g, make_inputs(g))
        assert out.shape == (2, 4)

    def test_embedding_and_transformer(self):
        spec = {
            "name": "nlp",
            "inputs": [{"name": "tokens", "shape": [1, 6], "dtype": "int64"}],
            "layers": [
                {"kind": "embedding", "vocab": 50, "dim": 8},
                {"kind": "transformer", "heads": 2, "layers": 2, "d_ff": 16},
            ],
        }
        g = build_from_spec(spec)
        (out,) = run_graph(g, make_inputs(g))
        assert out.shape == (1, 6, 8)

    def test_residual_add(self):
        spec = {
            "name": "res",
            "inputs": [{"name": "x", "shape": [1, 8]}],
            "layers": [
                {"kind": "dense", "name": "fc", "units": 8},
                {"kind": "add", "name": "res", "inputs": ["fc", "x"]},
            ],
        }
        g = build_from_spec(spec)
        (out,) = run_graph(g, make_inputs(g))
        assert out.shape == (1, 8)

    def test_resnet_layer(self):
        spec = {
            "name": "cnn",
            "inputs": [{"name": "image", "shape": [1, 3, 32, 32]}],
            "layers": [{"kind": "resnet", "depth": 18}],
        }
        g = build_from_spec(spec)
        assert sum(1 for n in g.op_nodes() if n.op == "conv2d") == 20

    def test_unknown_kind_rejected(self):
        spec = {
            "inputs": [{"name": "x", "shape": [1, 4]}],
            "layers": [{"kind": "magic"}],
        }
        with pytest.raises(IRError, match="unknown layer kind"):
            build_from_spec(spec)

    def test_unknown_reference_rejected(self):
        spec = {
            "inputs": [{"name": "x", "shape": [1, 4]}],
            "layers": [{"kind": "dense", "units": 4, "input": "ghost"}],
        }
        with pytest.raises(IRError, match="unknown layer/input"):
            build_from_spec(spec)

    def test_duplicate_name_rejected(self):
        spec = {
            "inputs": [{"name": "x", "shape": [1, 4]}],
            "layers": [
                {"kind": "dense", "name": "a", "units": 4},
                {"kind": "tanh", "name": "a"},
            ],
        }
        with pytest.raises(IRError, match="duplicate layer name"):
            build_from_spec(spec)

    def test_missing_sections_rejected(self):
        with pytest.raises(IRError):
            build_from_spec({"layers": [{"kind": "tanh"}]})
        with pytest.raises(IRError):
            build_from_spec({"inputs": [{"name": "x", "shape": [1, 2]}]})

    def test_supported_kinds_exposed(self):
        assert "dense" in SUPPORTED_LAYER_KINDS
        assert "lstm" in SUPPORTED_LAYER_KINDS


class TestBuildFromJson:
    def test_round_trip(self):
        g = build_from_json(json.dumps(_two_branch_spec()))
        g.validate()

    def test_invalid_json_rejected(self):
        with pytest.raises(IRError, match="invalid model spec JSON"):
            build_from_json("{nope")


class TestSpecThroughEngine:
    def test_spec_model_schedules_heterogeneously(self, machine):
        """A conv+lstm spec model splits across devices like quickstart."""
        spec = _two_branch_spec()
        spec["inputs"][0]["shape"] = [1, 3, 64, 64]
        spec["inputs"][1]["shape"] = [1, 50, 128]
        spec["layers"][2]["hidden"] = 128
        g = build_from_spec(spec)
        engine = DuetEngine(machine=machine)
        opt = engine.optimize(g)
        assert opt.latency > 0
        feeds = make_inputs(g)
        result = engine.run(opt, inputs=feeds)
        ref = run_graph(g, feeds)
        np.testing.assert_allclose(result.outputs[0], ref[0], rtol=1e-4,
                                   atol=1e-5)
