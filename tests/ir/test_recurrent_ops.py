"""Tests for LSTM/GRU layer operators."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.ir.dtype import TensorType
from repro.ir.ops import OpKind, OpPattern, get_op


def _sigmoid(x):
    return 1.0 / (1.0 + np.exp(-x))


def _make_lstm_inputs(rng, b=2, t=5, i=3, h=4):
    data = rng.standard_normal((b, t, i)).astype(np.float32)
    w_ih = rng.standard_normal((4 * h, i)).astype(np.float32) * 0.3
    w_hh = rng.standard_normal((4 * h, h)).astype(np.float32) * 0.3
    bias = rng.standard_normal((4 * h,)).astype(np.float32) * 0.1
    return data, w_ih, w_hh, bias


def naive_lstm(data, w_ih, w_hh, bias, hidden):
    """Step-by-step reference with explicit gate math."""
    b, t, _ = data.shape
    h = np.zeros((b, hidden), dtype=data.dtype)
    c = np.zeros((b, hidden), dtype=data.dtype)
    outs = []
    for step in range(t):
        gates = data[:, step] @ w_ih.T + h @ w_hh.T + bias
        i_t = _sigmoid(gates[:, :hidden])
        f_t = _sigmoid(gates[:, hidden : 2 * hidden])
        g_t = np.tanh(gates[:, 2 * hidden : 3 * hidden])
        o_t = _sigmoid(gates[:, 3 * hidden :])
        c = f_t * c + i_t * g_t
        h = o_t * np.tanh(c)
        outs.append(h.copy())
    return np.stack(outs, axis=1)


class TestLSTM:
    def test_matches_naive_reference(self, rng):
        data, w_ih, w_hh, bias = _make_lstm_inputs(rng)
        spec = get_op("lstm")
        got = spec.compute([data, w_ih, w_hh, bias], {"hidden_size": 4})
        want = naive_lstm(data, w_ih, w_hh, bias, 4)
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)

    def test_last_hidden_only(self, rng):
        data, w_ih, w_hh, bias = _make_lstm_inputs(rng)
        spec = get_op("lstm")
        seq = spec.compute(
            [data, w_ih, w_hh, bias], {"hidden_size": 4, "return_sequences": True}
        )
        last = spec.compute(
            [data, w_ih, w_hh, bias], {"hidden_size": 4, "return_sequences": False}
        )
        np.testing.assert_allclose(last, seq[:, -1, :], rtol=1e-6)

    def test_infer_shapes(self):
        types = [
            TensorType((2, 5, 3)),
            TensorType((16, 3)),
            TensorType((16, 4)),
            TensorType((16,)),
        ]
        spec = get_op("lstm")
        assert spec.infer_type(types, {"hidden_size": 4}).shape == (2, 5, 4)
        assert spec.infer_type(
            types, {"hidden_size": 4, "return_sequences": False}
        ).shape == (2, 4)

    def test_weight_shape_mismatch_raises(self):
        types = [
            TensorType((2, 5, 3)),
            TensorType((12, 3)),  # should be 16 x 3
            TensorType((16, 4)),
            TensorType((16,)),
        ]
        with pytest.raises(ShapeError):
            get_op("lstm").infer_type(types, {"hidden_size": 4})

    def test_non_3d_data_raises(self):
        types = [
            TensorType((2, 3)),
            TensorType((16, 3)),
            TensorType((16, 4)),
            TensorType((16,)),
        ]
        with pytest.raises(ShapeError):
            get_op("lstm").infer_type(types, {"hidden_size": 4})

    def test_sequential_steps_equals_seq_len(self):
        spec = get_op("lstm")
        types = [
            TensorType((1, 37, 3)),
            TensorType((16, 3)),
            TensorType((16, 4)),
            TensorType((16,)),
        ]
        assert spec.sequential_steps(types, {"hidden_size": 4}) == 37

    def test_flops_scale_with_seq_len(self):
        spec = get_op("lstm")

        def fl(t):
            types = [
                TensorType((1, t, 8)),
                TensorType((32, 8)),
                TensorType((32, 8)),
                TensorType((32,)),
            ]
            out = spec.infer_type(types, {"hidden_size": 8})
            return spec.flops(types, out, {"hidden_size": 8})

        assert fl(20) == pytest.approx(2 * fl(10))

    def test_metadata(self):
        spec = get_op("lstm")
        assert spec.pattern is OpPattern.OPAQUE
        assert spec.kind is OpKind.RECURRENT

    def test_parallelism_is_per_step(self):
        # Parallelism must not scale with sequence length: steps are serial.
        spec = get_op("lstm")
        short = [
            TensorType((1, 5, 8)),
            TensorType((32, 8)),
            TensorType((32, 8)),
            TensorType((32,)),
        ]
        long = [
            TensorType((1, 500, 8)),
            TensorType((32, 8)),
            TensorType((32, 8)),
            TensorType((32,)),
        ]
        attrs = {"hidden_size": 8}
        p_short = spec.parallelism(short, spec.infer_type(short, attrs), attrs)
        p_long = spec.parallelism(long, spec.infer_type(long, attrs), attrs)
        assert p_short == p_long


class TestGRU:
    def test_output_shape(self, rng):
        data = rng.standard_normal((2, 6, 3)).astype(np.float32)
        w_ih = rng.standard_normal((12, 3)).astype(np.float32) * 0.3
        w_hh = rng.standard_normal((12, 4)).astype(np.float32) * 0.3
        bias = np.zeros(12, dtype=np.float32)
        out = get_op("gru").compute([data, w_ih, w_hh, bias], {"hidden_size": 4})
        assert out.shape == (2, 6, 4)

    def test_bounded_activations(self, rng):
        data = rng.standard_normal((1, 10, 3)).astype(np.float32) * 3
        w_ih = rng.standard_normal((12, 3)).astype(np.float32)
        w_hh = rng.standard_normal((12, 4)).astype(np.float32)
        bias = np.zeros(12, dtype=np.float32)
        out = get_op("gru").compute([data, w_ih, w_hh, bias], {"hidden_size": 4})
        # GRU hidden state is a convex mix of tanh outputs: stays in (-1, 1).
        assert np.all(np.abs(out) <= 1.0)

    def test_zero_input_zero_bias_gives_zero_start(self):
        data = np.zeros((1, 1, 3), dtype=np.float32)
        w_ih = np.zeros((12, 3), dtype=np.float32)
        w_hh = np.zeros((12, 4), dtype=np.float32)
        bias = np.zeros(12, dtype=np.float32)
        out = get_op("gru").compute([data, w_ih, w_hh, bias], {"hidden_size": 4})
        np.testing.assert_allclose(out, 0.0)

    def test_gru_gate_count_in_weight_check(self):
        types = [
            TensorType((1, 5, 3)),
            TensorType((16, 3)),  # 4 gates = LSTM layout, wrong for GRU
            TensorType((12, 4)),
            TensorType((12,)),
        ]
        with pytest.raises(ShapeError):
            get_op("gru").infer_type(types, {"hidden_size": 4})
