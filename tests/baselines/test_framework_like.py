"""Tests for the PyTorch/TensorFlow-like baselines."""

import pytest

from repro.baselines import TVMLikeBaseline, pytorch_like, tensorflow_like
from repro.models import build_model


class TestFrameworkBaselines:
    def test_names(self, machine):
        assert pytorch_like("cpu", machine).name == "PyTorch-CPU"
        assert tensorflow_like("gpu", machine).name == "TensorFlow-GPU"

    def test_framework_slower_than_tvm_same_device(self, machine):
        """§VI-B: compiled execution beats framework execution everywhere."""
        for name in ("wide_deep", "siamese", "mtdnn"):
            graph = build_model(name)
            for dev in ("cpu", "gpu"):
                tvm = TVMLikeBaseline(dev, machine).latency(graph)
                pt = pytorch_like(dev, machine).latency(graph)
                tf = tensorflow_like(dev, machine).latency(graph)
                assert pt > tvm, (name, dev)
                assert tf > tvm, (name, dev)

    def test_tf_slower_than_pytorch(self, machine):
        graph = build_model("mtdnn")
        for dev in ("cpu", "gpu"):
            assert (
                tensorflow_like(dev, machine).latency(graph)
                > pytorch_like(dev, machine).latency(graph)
            )

    def test_unfused_compilation(self, machine):
        graph = build_model("siamese", tiny=True)
        module = pytorch_like("cpu", machine).compile(graph)
        # One kernel per (live) operator.
        assert len(module.kernels) == len(module.graph.op_nodes())

    def test_cpu_rnn_penalty_applied(self, machine):
        graph = build_model("siamese")  # LSTM-dominated
        pt = pytorch_like("cpu", machine)
        tvm = TVMLikeBaseline("cpu", machine).latency(graph)
        # The recurrent slowdown makes the framework CPU latency much more
        # than dispatch overhead alone would.
        assert pt.latency(graph) > 1.8 * tvm

    def test_noisy_stats(self, noisy_machine):
        graph = build_model("siamese", tiny=True)
        stats = pytorch_like("gpu", noisy_machine).latency_stats(
            graph, n_runs=300, warmup=5
        )
        assert stats.p50 <= stats.p999

    def test_invalid_device_rejected(self, machine):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            pytorch_like("tpu", machine)
