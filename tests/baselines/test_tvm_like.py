"""Tests for the TVM-like single-device baseline."""

import numpy as np
import pytest

from repro.baselines import TVMLikeBaseline
from repro.errors import ExecutionError
from repro.ir import make_inputs, run_graph
from repro.models import build_model


class TestTVMLike:
    def test_invalid_device_rejected(self, machine):
        with pytest.raises(ExecutionError):
            TVMLikeBaseline("tpu", machine)

    def test_name(self, machine):
        assert TVMLikeBaseline("cpu", machine).name == "TVM-CPU"
        assert TVMLikeBaseline("gpu", machine).name == "TVM-GPU"

    def test_numeric_correctness(self, machine):
        graph = build_model("siamese", tiny=True)
        baseline = TVMLikeBaseline("cpu", machine)
        module = baseline.compile(graph)
        feeds = make_inputs(graph)
        result = baseline.run(module, inputs=feeds)
        ref = run_graph(graph, feeds)
        np.testing.assert_allclose(result.outputs[0], ref[0], rtol=1e-4)

    def test_gpu_beats_cpu_on_resnet(self, machine):
        graph = build_model("resnet", tiny=True)
        # Tiny 32x32 images still favour the GPU thanks to conv efficiency.
        graph_full = build_model("resnet")
        cpu = TVMLikeBaseline("cpu", machine).latency(graph_full)
        gpu = TVMLikeBaseline("gpu", machine).latency(graph_full)
        assert gpu < cpu

    def test_latency_deterministic(self, machine):
        graph = build_model("siamese", tiny=True)
        b = TVMLikeBaseline("cpu", machine)
        assert b.latency(graph) == b.latency(graph)

    def test_latency_stats_tail_ordering(self, noisy_machine):
        graph = build_model("siamese", tiny=True)
        stats = TVMLikeBaseline("gpu", noisy_machine).latency_stats(
            graph, n_runs=500, warmup=10
        )
        assert stats.p50 <= stats.p99 <= stats.p999
