"""Tests for the compiler-aware profiler."""

import pytest

from repro.core import CompilerAwareProfiler, partition_graph
from repro.errors import ProfilingError
from repro.models import build_model


@pytest.fixture
def profiled(machine):
    graph = build_model("wide_deep", tiny=True)
    partition = partition_graph(graph)
    profiler = CompilerAwareProfiler(machine=machine)
    return partition, profiler.profile_partition(partition)


class TestProfiler:
    def test_profiles_every_subgraph(self, profiled):
        partition, profiles = profiled
        assert set(profiles) == {sg.id for sg in partition.subgraphs}

    def test_both_devices_profiled(self, profiled):
        _, profiles = profiled
        for prof in profiles.values():
            assert set(prof.mean_time) == {"cpu", "gpu"}
            assert set(prof.modules) == {"cpu", "gpu"}
            assert prof.mean_time["cpu"] > 0
            assert prof.mean_time["gpu"] > 0

    def test_modules_target_their_device(self, profiled):
        _, profiles = profiled
        for prof in profiles.values():
            assert prof.modules["cpu"].target.name == "cpu"
            assert prof.modules["gpu"].target.name == "gpu"

    def test_best_device_consistent(self, profiled):
        _, profiles = profiled
        for prof in profiles.values():
            assert prof.time_on(prof.best_device) == prof.best_time
            assert prof.best_time <= prof.worst_time

    def test_unknown_device_raises(self, profiled):
        _, profiles = profiled
        prof = next(iter(profiles.values()))
        with pytest.raises(ProfilingError):
            prof.time_on("tpu")

    def test_profile_uses_compiled_code(self, machine):
        # The profiled mean must reflect *fused* kernels: the fused module
        # has fewer launches than ops, so GPU time < per-op execution.
        graph = build_model("mtdnn", tiny=True)
        partition = partition_graph(graph)
        profiler = CompilerAwareProfiler(machine=machine)
        profiles = profiler.profile_partition(partition)
        for sg in partition.subgraphs:
            module = profiles[sg.id].modules["gpu"]
            assert len(module.kernels) <= len(sg.graph.op_nodes())

    def test_sampling_produces_stats(self, machine):
        graph = build_model("siamese", tiny=True)
        partition = partition_graph(graph)
        profiler = CompilerAwareProfiler(machine=machine, sample_runs=32)
        profiles = profiler.profile_partition(partition)
        for prof in profiles.values():
            assert prof.stats is not None
            assert prof.stats["cpu"].n_samples == 32

    def test_no_sampling_no_stats(self, profiled):
        _, profiles = profiled
        assert all(p.stats is None for p in profiles.values())

    def test_sampled_mean_close_to_analytic(self, noisy_machine):
        graph = build_model("siamese", tiny=True)
        partition = partition_graph(graph)
        profiler = CompilerAwareProfiler(
            machine=noisy_machine, sample_runs=500
        )
        profiles = profiler.profile_partition(partition)
        for prof in profiles.values():
            for dev in ("cpu", "gpu"):
                assert prof.stats[dev].mean == pytest.approx(
                    prof.mean_time[dev], rel=0.15
                )

    def test_bytes_match_subgraph(self, profiled):
        partition, profiles = profiled
        for sg in partition.subgraphs:
            assert profiles[sg.id].bytes_in == sg.bytes_in
            assert profiles[sg.id].bytes_out == sg.bytes_out
