"""Tests for the coarse-grained multi-phase partitioner."""

import pytest

from repro.core import PhaseType, find_separators, partition_graph
from repro.errors import PartitionError
from repro.ir import GraphBuilder
from repro.models import build_model


class TestSeparators:
    def test_chain_all_separators(self, chain_graph):
        seps = find_separators(chain_graph)
        assert len(seps) == 4

    def test_diamond(self, diamond_graph):
        assert find_separators(diamond_graph) == ["a", "join"]

    def test_parallel_sources_no_leading_separator(self):
        b = GraphBuilder("g")
        x1 = b.input("x1", (2, 2))
        x2 = b.input("x2", (2, 2))
        l = b.op("relu", x1, name="l")
        r = b.op("tanh", x2, name="r")
        j = b.op("add", l, r, name="j")
        g = b.build(j)
        assert find_separators(g) == ["j"]

    def test_parallel_sinks_no_trailing_separator(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        a = b.op("relu", x, name="a")
        o1 = b.op("tanh", a, name="o1")
        o2 = b.op("sigmoid", a, name="o2")
        g = b.build(o1, o2)
        assert find_separators(g) == ["a"]

    def test_empty_graph(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        g = b.build(x)
        assert find_separators(g) == []


class TestPartitionStructure:
    def test_diamond_phases(self, diamond_graph):
        part = partition_graph(diamond_graph)
        types = [p.type for p in part.phases]
        assert types == [
            PhaseType.SEQUENTIAL,
            PhaseType.MULTI_PATH,
            PhaseType.SEQUENTIAL,
        ]
        multi = part.phases[1]
        assert len(multi.subgraphs) == 2

    def test_chain_single_phase(self, chain_graph):
        part = partition_graph(chain_graph)
        assert len(part.phases) == 1
        assert part.phases[0].type is PhaseType.SEQUENTIAL

    def test_phases_cover_all_ops(self, tiny_model):
        part = partition_graph(tiny_model)
        covered = part.covered_node_ids()
        live_ops = {n.id for n in tiny_model.pruned().op_nodes()}
        assert covered == live_ops

    def test_phases_disjoint(self, tiny_model):
        part = partition_graph(tiny_model)
        seen = set()
        for sg in part.subgraphs:
            assert not (seen & sg.node_ids)
            seen |= sg.node_ids

    def test_phase_ordering_respects_dependencies(self, tiny_model):
        part = partition_graph(tiny_model)
        phase_of = {}
        for phase in part.phases:
            for sg in phase.subgraphs:
                for nid in sg.node_ids:
                    phase_of[nid] = phase.index
        for node in tiny_model.pruned().op_nodes():
            for src in node.inputs:
                if src in phase_of:
                    assert phase_of[src] <= phase_of[node.id]

    def test_multipath_subgraphs_independent(self, tiny_model):
        from repro.ir.traversal import are_independent

        pruned = tiny_model.pruned()
        part = partition_graph(tiny_model)
        for phase in part.multi_path_phases():
            sgs = phase.subgraphs
            for i in range(len(sgs)):
                for j in range(i + 1, len(sgs)):
                    assert are_independent(
                        pruned, sgs[i].node_ids, sgs[j].node_ids
                    )

    def test_wide_deep_has_four_branches(self):
        g = build_model("wide_deep", tiny=True)
        part = partition_graph(g)
        multi = part.multi_path_phases()
        assert len(multi) >= 1
        assert len(multi[0].subgraphs) == 4  # wide, deep, rnn, cnn

    def test_siamese_has_two_towers(self):
        g = build_model("siamese", tiny=True)
        part = partition_graph(g)
        assert len(part.multi_path_phases()[0].subgraphs) == 2

    def test_mtdnn_heads_form_final_multipath(self):
        g = build_model("mtdnn", tiny=True)
        part = partition_graph(g)
        last_multi = part.multi_path_phases()[-1]
        assert len(last_multi.subgraphs) == 3  # tiny config has 3 tasks

    def test_dead_code_pruned_before_partitioning(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        live = b.op("relu", x, name="live")
        b.op("tanh", x, name="dead")
        part = partition_graph(b.build(live))
        assert part.covered_node_ids() == {"live"}

    def test_no_ops_raises(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        with pytest.raises(PartitionError):
            partition_graph(b.build(x))

    def test_subgraph_lookup(self, diamond_graph):
        part = partition_graph(diamond_graph)
        sg = part.subgraphs[0]
        assert part.subgraph(sg.id) is sg
        with pytest.raises(PartitionError):
            part.subgraph("nope")
