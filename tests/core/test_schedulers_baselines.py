"""Tests for the baseline scheduling policies (§VI-C)."""

import numpy as np
import pytest

from repro.core import (
    CompilerAwareProfiler,
    GreedyCorrectionScheduler,
    partition_graph,
    validate_placement,
)
from repro.core.schedulers import (
    exhaustive_placement,
    random_placement,
    round_robin_placement,
)
from repro.errors import SchedulingError
from repro.models import build_model


@pytest.fixture
def setup(machine):
    graph = build_model("wide_deep", tiny=True)
    partition = partition_graph(graph)
    profiles = CompilerAwareProfiler(machine=machine).profile_partition(partition)
    return graph, partition, profiles


class TestRandom:
    def test_valid_placement(self, setup):
        _, partition, _ = setup
        placement = random_placement(partition, np.random.default_rng(0))
        validate_placement(partition, placement)

    def test_varies_with_rng(self, setup):
        _, partition, _ = setup
        draws = {
            tuple(sorted(random_placement(partition, np.random.default_rng(s)).items()))
            for s in range(20)
        }
        assert len(draws) > 1


class TestRoundRobin:
    def test_alternates(self, setup):
        _, partition, _ = setup
        placement = round_robin_placement(partition)
        devices = [placement[sg.id] for sg in partition.subgraphs]
        assert devices == [
            "cpu" if i % 2 == 0 else "gpu" for i in range(len(devices))
        ]

    def test_valid(self, setup):
        _, partition, _ = setup
        validate_placement(partition, round_robin_placement(partition))


class TestExhaustive:
    def test_optimal_on_small_model(self, setup, machine):
        graph, partition, profiles = setup
        best_placement, best_latency = exhaustive_placement(
            graph, partition, profiles, machine
        )
        validate_placement(partition, best_placement)
        # No policy can beat it.
        scheduler = GreedyCorrectionScheduler(machine=machine)
        greedy = scheduler.schedule(graph, partition, profiles)
        assert best_latency <= greedy.latency + 1e-12

    def test_cap_enforced(self, setup, machine):
        graph, partition, profiles = setup
        with pytest.raises(SchedulingError):
            exhaustive_placement(
                graph, partition, profiles, machine, max_subgraphs=1
            )
