"""Tests for the greedy-correction scheduler."""

import pytest

from repro.core import (
    CompilerAwareProfiler,
    GreedyCorrectionScheduler,
    PhaseType,
    build_hetero_plan,
    partition_graph,
    validate_placement,
)
from repro.core.schedulers import exhaustive_placement
from repro.models import build_model
from repro.runtime import simulate


@pytest.fixture(scope="module")
def wd_setup():
    from repro.devices import default_machine

    machine = default_machine(noisy=False)
    graph = build_model("wide_deep")  # full size: realistic cost contrasts
    partition = partition_graph(graph)
    profiles = CompilerAwareProfiler(machine=machine).profile_partition(partition)
    return machine, graph, partition, profiles


class TestInitialPlacement:
    def test_sequential_phases_on_fastest_device(self, wd_setup):
        machine, graph, partition, profiles = wd_setup
        scheduler = GreedyCorrectionScheduler(machine=machine)
        placement = scheduler.initial_placement(partition, profiles)
        for phase in partition.phases:
            if phase.type is PhaseType.SEQUENTIAL:
                sg = phase.subgraphs[0]
                assert placement[sg.id] == profiles[sg.id].best_device

    def test_critical_subgraph_gets_best_device(self, wd_setup):
        machine, graph, partition, profiles = wd_setup
        scheduler = GreedyCorrectionScheduler(machine=machine)
        placement = scheduler.initial_placement(partition, profiles)
        for phase in partition.multi_path_phases():
            critical = max(
                phase.subgraphs, key=lambda sg: profiles[sg.id].best_time
            )
            assert placement[critical.id] == profiles[critical.id].best_device

    def test_placement_complete(self, wd_setup):
        machine, graph, partition, profiles = wd_setup
        scheduler = GreedyCorrectionScheduler(machine=machine)
        placement = scheduler.initial_placement(partition, profiles)
        validate_placement(partition, placement)


class TestSchedule:
    def test_wide_deep_placement_matches_paper(self, wd_setup):
        """Table II: RNN subgraph on CPU, CNN subgraph on GPU."""
        machine, graph, partition, profiles = wd_setup
        scheduler = GreedyCorrectionScheduler(machine=machine)
        result = scheduler.schedule(graph, partition, profiles)
        branch_device = {}
        for phase in partition.multi_path_phases():
            for sg in phase.subgraphs:
                has_lstm = any(
                    graph.node(n).op == "lstm" for n in sg.node_ids
                )
                has_conv = any(
                    graph.node(n).op == "conv2d" for n in sg.node_ids
                )
                if has_lstm:
                    branch_device["rnn"] = result.placement[sg.id]
                if has_conv:
                    branch_device["cnn"] = result.placement[sg.id]
        assert branch_device["rnn"] == "cpu"
        assert branch_device["cnn"] == "gpu"

    def test_correction_never_hurts(self, wd_setup):
        machine, graph, partition, profiles = wd_setup
        scheduler = GreedyCorrectionScheduler(machine=machine)
        result = scheduler.schedule(graph, partition, profiles)
        assert result.latency <= result.initial_latency + 1e-12

    def test_beats_both_single_devices(self, wd_setup):
        machine, graph, partition, profiles = wd_setup
        scheduler = GreedyCorrectionScheduler(machine=machine)
        result = scheduler.schedule(graph, partition, profiles)
        all_cpu = {sg.id: "cpu" for sg in partition.subgraphs}
        all_gpu = {sg.id: "gpu" for sg in partition.subgraphs}
        for single in (all_cpu, all_gpu):
            plan = build_hetero_plan(graph, partition, profiles, single)
            assert result.latency < simulate(plan, machine).latency

    def test_matches_exhaustive_optimum(self, wd_setup):
        """§VI-C: greedy-correction empirically finds the ideal schedule."""
        machine, graph, partition, profiles = wd_setup
        scheduler = GreedyCorrectionScheduler(machine=machine)
        result = scheduler.schedule(graph, partition, profiles)
        _, ideal = exhaustive_placement(graph, partition, profiles, machine)
        assert result.latency == pytest.approx(ideal, rel=1e-6)

    def test_initial_override_used(self, wd_setup):
        machine, graph, partition, profiles = wd_setup
        scheduler = GreedyCorrectionScheduler(machine=machine)
        init = {sg.id: "cpu" for sg in partition.subgraphs}
        result = scheduler.schedule(graph, partition, profiles, initial=init)
        # Correction starts from all-CPU and must improve it.
        all_cpu_plan = build_hetero_plan(graph, partition, profiles, init)
        assert result.latency <= simulate(all_cpu_plan, machine).latency

    def test_correction_steps_recorded(self, wd_setup):
        machine, graph, partition, profiles = wd_setup
        scheduler = GreedyCorrectionScheduler(machine=machine)
        init = {sg.id: "gpu" for sg in partition.subgraphs}
        result = scheduler.schedule(graph, partition, profiles, initial=init)
        assert result.corrections  # moving off all-GPU must have happened
        for step in result.corrections:
            assert step.latency_after < step.latency_before

    def test_measurement_count_tracked(self, wd_setup):
        machine, graph, partition, profiles = wd_setup
        scheduler = GreedyCorrectionScheduler(machine=machine)
        result = scheduler.schedule(graph, partition, profiles)
        assert result.measurements >= 1
