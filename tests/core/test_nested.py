"""Tests for multi-level (nested) partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import (
    CompilerAwareProfiler,
    GreedyCorrectionScheduler,
    partition_graph,
    partition_graph_nested,
)
from repro.ir import make_inputs, run_graph
from repro.models import build_model
from repro.runtime import simulate
from tests.strategies import random_graphs


class TestNestedPartitioning:
    def test_depth_zero_equals_one_level(self, tiny_model):
        base = partition_graph(tiny_model)
        nested = partition_graph_nested(tiny_model, max_depth=0)
        assert [len(p.subgraphs) for p in nested.phases] == [
            len(p.subgraphs) for p in base.phases
        ]

    def test_covers_all_live_ops(self, tiny_model):
        nested = partition_graph_nested(tiny_model, max_depth=2, min_split_ops=4)
        live = {n.id for n in tiny_model.pruned().op_nodes()}
        assert nested.covered_node_ids() == live

    def test_subgraphs_disjoint(self, tiny_model):
        nested = partition_graph_nested(tiny_model, max_depth=2, min_split_ops=4)
        seen = set()
        for sg in nested.subgraphs:
            assert not (seen & sg.node_ids)
            seen |= sg.node_ids

    def test_produces_finer_units_on_mtdnn(self):
        g = build_model("mtdnn")
        base = partition_graph(g)
        nested = partition_graph_nested(g, max_depth=1)
        assert len(nested.subgraphs) > len(base.subgraphs)

    def test_subgraph_order_is_topological(self, tiny_model):
        nested = partition_graph_nested(tiny_model, max_depth=2, min_split_ops=4)
        position = {}
        for i, sg in enumerate(nested.subgraphs):
            for nid in sg.node_ids:
                position[nid] = i
        pruned = tiny_model.pruned()
        for node in pruned.op_nodes():
            for src in node.inputs:
                if pruned.node(src).is_op:
                    assert position[src] <= position[node.id]

    def test_small_branches_stay_whole(self, diamond_graph):
        nested = partition_graph_nested(diamond_graph, max_depth=2)
        base = partition_graph(diamond_graph)
        assert len(nested.subgraphs) == len(base.subgraphs)

    def test_numeric_correctness_through_scheduler(self, machine):
        g = build_model("mtdnn", tiny=True)
        nested = partition_graph_nested(g, max_depth=2, min_split_ops=4)
        profiles = CompilerAwareProfiler(machine=machine).profile_partition(nested)
        result = GreedyCorrectionScheduler(machine=machine).schedule(
            g, nested, profiles
        )
        feeds = make_inputs(g)
        sim = simulate(result.plan, machine, inputs=feeds)
        ref = run_graph(g, feeds)
        for got, want in zip(sim.outputs, ref):
            np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)

    def test_nested_never_hurts_after_correction(self, machine):
        # Correction can always re-merge devices, so nested placement must
        # not lose to 1-level on the paper's models.
        for name in ("wide_deep", "mtdnn"):
            g = build_model(name)
            sched = GreedyCorrectionScheduler(machine=machine)
            lat = {}
            for label, part in (
                ("base", partition_graph(g)),
                ("nested", partition_graph_nested(g, max_depth=1)),
            ):
                profiles = CompilerAwareProfiler(machine=machine).profile_partition(part)
                lat[label] = sched.schedule(g, part, profiles).latency
            assert lat["nested"] <= lat["base"] * 1.02, name

    @settings(max_examples=20, deadline=None)
    @given(random_graphs(max_ops=20))
    def test_random_graphs_covered(self, graph):
        if not graph.pruned().op_nodes():
            return
        nested = partition_graph_nested(graph, max_depth=2, min_split_ops=3)
        live = {n.id for n in graph.pruned().op_nodes()}
        assert nested.covered_node_ids() == live
