"""HEFT critical-path scheduler and the policy registry."""

import pytest

from repro.core import CompilerAwareProfiler, partition_graph
from repro.core.placement import validate_placement
from repro.core.scheduler import (
    DEFAULT_POLICY,
    LatencyOracle,
    PolicyDecision,
    available_policies,
    schedule_with_policy,
)
from repro.core.schedulers import (
    exhaustive_placement,
    heft_placement,
    upward_ranks,
)
from repro.errors import SchedulingError
from repro.models import build_model


def _pipeline(name, machine, tiny=True):
    graph = build_model(name, tiny=tiny)
    partition = partition_graph(graph)
    profiles = CompilerAwareProfiler(machine=machine).profile_partition(
        partition
    )
    return graph, partition, profiles


class TestUpwardRanks:
    def test_rank_decreases_along_dependencies(self, machine):
        graph, partition, profiles = _pipeline("wide_deep", machine)
        ranks = upward_ranks(graph, partition, profiles, machine)
        assert set(ranks) == {sg.id for sg in partition.subgraphs}
        for sg in partition.subgraphs:
            for other in partition.subgraphs:
                if sg.id == other.id:
                    continue
                # A subgraph consuming another's boundary output must
                # rank strictly lower (every weight is positive).
                if set(sg.boundary_outputs) & set(other.boundary_inputs):
                    assert ranks[sg.id] > ranks[other.id]

    def test_ranks_positive(self, machine):
        graph, partition, profiles = _pipeline("siamese", machine)
        ranks = upward_ranks(graph, partition, profiles, machine)
        assert all(r > 0 for r in ranks.values())


class TestHeftPlacement:
    @pytest.mark.parametrize("model", ["wide_deep", "siamese", "mtdnn"])
    def test_placement_valid(self, machine, model):
        graph, partition, profiles = _pipeline(model, machine)
        placement, makespan = heft_placement(
            graph, partition, profiles, machine
        )
        validate_placement(partition, placement)
        assert makespan > 0
        assert set(placement) == {sg.id for sg in partition.subgraphs}

    @pytest.mark.parametrize("model", ["wide_deep", "siamese", "mtdnn"])
    def test_matches_brute_force_on_small_zoo(self, machine, model):
        """HEFT's analytic EFT finds the measured optimum on the paper's
        small models (spot-check, not a general guarantee)."""
        graph, partition, profiles = _pipeline(model, machine)
        oracle = LatencyOracle(graph, partition, profiles, machine)
        heft, _ = heft_placement(graph, partition, profiles, machine)
        _, best = exhaustive_placement(
            graph, partition, profiles, machine, oracle=oracle
        )
        assert oracle.measure(heft) == pytest.approx(best, rel=1e-9)


class TestPolicyRegistry:
    def test_expected_policies_registered(self):
        names = available_policies()
        for expected in (
            "dp",
            "exhaustive",
            "greedy",
            "heft",
            "random",
            "round_robin",
        ):
            assert expected in names
        assert DEFAULT_POLICY in names

    def test_unknown_policy_raises(self, machine):
        graph, partition, profiles = _pipeline("siamese", machine)
        with pytest.raises(SchedulingError, match="unknown"):
            schedule_with_policy(
                "simulated_annealing", graph, partition, profiles, machine
            )

    @pytest.mark.parametrize("policy", ["dp", "greedy", "heft", "round_robin"])
    def test_decisions_are_valid_and_measured(self, machine, policy):
        graph, partition, profiles = _pipeline("wide_deep", machine)
        decision = schedule_with_policy(
            policy, graph, partition, profiles, machine
        )
        assert isinstance(decision, PolicyDecision)
        assert decision.policy == policy
        validate_placement(partition, decision.placement)
        assert decision.latency > 0

    def test_random_policy_deterministic_under_seed(self, machine):
        graph, partition, profiles = _pipeline("mtdnn", machine)
        a = schedule_with_policy(
            "random", graph, partition, profiles, machine, seed=7
        )
        b = schedule_with_policy(
            "random", graph, partition, profiles, machine, seed=7
        )
        c = schedule_with_policy(
            "random", graph, partition, profiles, machine, seed=8
        )
        assert a.placement == b.placement and a.latency == b.latency
        # A different seed is allowed to collide, but not on this model.
        assert c.placement != a.placement

    def test_shared_oracle_is_used(self, machine):
        graph, partition, profiles = _pipeline("siamese", machine)
        oracle = LatencyOracle(graph, partition, profiles, machine)
        decision = schedule_with_policy(
            "heft", graph, partition, profiles, machine, oracle=oracle
        )
        assert decision.latency == oracle.measure(decision.placement)
