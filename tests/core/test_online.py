"""Tests for the online-adaptation engine."""

import numpy as np
import pytest

from repro.core import AdaptiveDuetEngine, DuetEngine
from repro.devices import Machine, default_machine, scale_device
from repro.errors import SchedulingError
from repro.models import build_model
from repro.runtime import simulate


def _contended(machine, cpu=1.0, gpu=1.0):
    return Machine(
        cpu=scale_device(machine.cpu, cpu),
        gpu=scale_device(machine.gpu, gpu),
        interconnect=machine.interconnect,
    )


@pytest.fixture(scope="module")
def wd_graph():
    return build_model("wide_deep")


class TestAdaptiveEngine:
    def test_requires_start(self, machine):
        engine = AdaptiveDuetEngine(base_machine=machine)
        with pytest.raises(SchedulingError):
            engine.serve_one()

    def test_stable_under_nominal_conditions(self, machine, wd_graph):
        engine = AdaptiveDuetEngine(base_machine=machine)
        engine.start(wd_graph)
        for _ in range(30):
            rec = engine.serve_one()
            assert not rec.adapted
        assert engine.adaptations == 0
        assert engine.assumed_slowdown == {"cpu": 1.0, "gpu": 1.0}

    def test_detects_cpu_contention(self, machine, wd_graph):
        engine = AdaptiveDuetEngine(base_machine=machine, cooldown=5)
        engine.start(wd_graph)
        contended = _contended(machine, cpu=4.0)
        for _ in range(40):
            engine.serve_one(contended)
        assert engine.adaptations >= 1
        # Belief converges near the true factor.
        assert 2.0 < engine.assumed_slowdown["cpu"] < 6.0
        assert engine.assumed_slowdown["gpu"] == pytest.approx(1.0)

    def test_adaptation_improves_latency(self, machine, wd_graph):
        engine = AdaptiveDuetEngine(base_machine=machine, cooldown=5)
        engine.start(wd_graph)
        static_plan = engine.plan
        contended = _contended(machine, cpu=4.0)
        last = None
        for _ in range(50):
            last = engine.serve_one(contended)
        static_latency = simulate(static_plan, contended).latency
        assert last.latency < static_latency * 0.95

    def test_detects_gpu_throttling(self, machine, wd_graph):
        engine = AdaptiveDuetEngine(base_machine=machine, cooldown=5)
        engine.start(wd_graph)
        throttled = _contended(machine, gpu=8.0)
        for _ in range(40):
            engine.serve_one(throttled)
        assert engine.assumed_slowdown["gpu"] > 3.0

    def test_cooldown_limits_thrash(self, machine, wd_graph):
        engine = AdaptiveDuetEngine(base_machine=machine, cooldown=25)
        engine.start(wd_graph)
        contended = _contended(machine, cpu=4.0)
        for _ in range(50):
            engine.serve_one(contended)
        assert engine.adaptations <= 2

    def test_recovery_after_contention_clears(self, machine, wd_graph):
        engine = AdaptiveDuetEngine(base_machine=machine, cooldown=5)
        engine.start(wd_graph)
        contended = _contended(machine, cpu=4.0)
        for _ in range(40):
            engine.serve_one(contended)
        # Contention clears; the engine should walk its belief back down.
        for _ in range(60):
            rec = engine.serve_one(machine)
        assert engine.assumed_slowdown["cpu"] < 2.0
        nominal = DuetEngine(machine=machine).optimize(wd_graph).latency
        assert rec.latency < nominal * 1.3

    def test_serve_records_well_formed(self, machine, wd_graph):
        engine = AdaptiveDuetEngine(base_machine=machine)
        engine.start(wd_graph)
        rec = engine.serve_one()
        assert rec.index == 1
        assert rec.latency > 0
        assert set(rec.assumed_slowdown) == {"cpu", "gpu"}
        assert rec.placement == engine.placement


class TestMisuseGuards:
    """serve_one must fail with SchedulingError, never AttributeError."""

    def test_expected_is_a_declared_field(self, machine):
        engine = AdaptiveDuetEngine(base_machine=machine)
        assert engine._expected == {}

    def test_manually_assigned_plan_rejected(self, machine, wd_graph):
        # Bypassing start() leaves the drift monitor without its
        # per-task expectations; serve_one must refuse cleanly.
        donor = AdaptiveDuetEngine(base_machine=machine)
        donor.start(wd_graph)
        engine = AdaptiveDuetEngine(base_machine=machine)
        engine.plan = donor.plan  # misuse: no start()
        engine.graph = wd_graph
        with pytest.raises(SchedulingError, match="start"):
            engine.serve_one()

    def test_start_resets_expectations(self, machine, wd_graph):
        engine = AdaptiveDuetEngine(base_machine=machine)
        engine.start(wd_graph)
        first = dict(engine._expected)
        assert first  # populated for every task in the plan
        assert set(first) == {t.task_id for t in engine.plan.tasks}
        engine.start(wd_graph)
        assert set(engine._expected) == set(first)
