"""Tests for profile persistence."""

import json

import pytest

from repro.core import (
    CompilerAwareProfiler,
    GreedyCorrectionScheduler,
    partition_graph,
)
from repro.core.profile_store import (
    load_profiles,
    partition_fingerprint,
    save_profiles,
)
from repro.errors import ProfilingError
from repro.models import build_model


@pytest.fixture
def setup(machine, tmp_path):
    graph = build_model("wide_deep", tiny=True)
    partition = partition_graph(graph)
    profiles = CompilerAwareProfiler(machine=machine).profile_partition(partition)
    path = tmp_path / "profiles.json"
    return graph, partition, profiles, path


class TestProfileStore:
    def test_round_trip_times(self, setup):
        _, partition, profiles, path = setup
        save_profiles(partition, profiles, path)
        loaded = load_profiles(partition, path)
        for sid, prof in profiles.items():
            assert loaded[sid].mean_time == dict(prof.mean_time)
            assert loaded[sid].bytes_in == prof.bytes_in

    def test_loaded_profiles_schedule_identically(self, setup, machine):
        graph, partition, profiles, path = setup
        save_profiles(partition, profiles, path)
        loaded = load_profiles(partition, path)
        scheduler = GreedyCorrectionScheduler(machine=machine)
        a = scheduler.schedule(graph, partition, profiles)
        b = scheduler.schedule(graph, partition, loaded)
        assert a.placement == b.placement
        assert a.latency == pytest.approx(b.latency)

    def test_fingerprint_stable(self, setup):
        graph, partition, _, _ = setup
        again = partition_graph(build_model("wide_deep", tiny=True))
        assert partition_fingerprint(partition) == partition_fingerprint(again)

    def test_fingerprint_detects_model_change(self, setup, machine):
        _, partition, profiles, path = setup
        save_profiles(partition, profiles, path)
        other = partition_graph(build_model("wide_deep", tiny=True, rnn_layers=2))
        with pytest.raises(ProfilingError, match="does not match"):
            load_profiles(other, path)

    def test_missing_file_raises(self, setup, tmp_path):
        _, partition, _, _ = setup
        with pytest.raises(ProfilingError):
            load_profiles(partition, tmp_path / "nope.json")

    def test_corrupt_file_raises(self, setup):
        _, partition, _, path = setup
        path.write_text("{broken")
        with pytest.raises(ProfilingError):
            load_profiles(partition, path)


class TestMalformedPayloads:
    """Shape problems must surface as ProfilingError, never a raw KeyError."""

    def _mangle(self, setup, mutate):
        _, partition, profiles, path = setup
        save_profiles(partition, profiles, path)
        payload = json.loads(path.read_text())
        mutate(payload)
        path.write_text(json.dumps(payload))
        return partition, path

    def test_missing_profiles_table(self, setup):
        partition, path = self._mangle(setup, lambda p: p.pop("profiles"))
        with pytest.raises(ProfilingError, match="missing 'profiles'"):
            load_profiles(partition, path)

    def test_profiles_table_wrong_type(self, setup):
        def mutate(payload):
            payload["profiles"] = ["not", "a", "table"]

        partition, path = self._mangle(setup, mutate)
        with pytest.raises(ProfilingError, match="missing 'profiles'"):
            load_profiles(partition, path)

    def test_entry_not_an_object(self, setup):
        def mutate(payload):
            sid = next(iter(payload["profiles"]))
            payload["profiles"][sid] = 3.14

        partition, path = self._mangle(setup, mutate)
        with pytest.raises(ProfilingError, match="is not an object"):
            load_profiles(partition, path)

    def test_missing_mean_time_device(self, setup):
        def mutate(payload):
            entry = next(iter(payload["profiles"].values()))
            del entry["mean_time"]["gpu"]

        partition, path = self._mangle(setup, mutate)
        with pytest.raises(ProfilingError, match="mean_time"):
            load_profiles(partition, path)

    def test_missing_mean_time_entirely(self, setup):
        def mutate(payload):
            entry = next(iter(payload["profiles"].values()))
            del entry["mean_time"]

        partition, path = self._mangle(setup, mutate)
        with pytest.raises(ProfilingError, match="mean_time"):
            load_profiles(partition, path)

    def test_non_numeric_bytes(self, setup):
        def mutate(payload):
            entry = next(iter(payload["profiles"].values()))
            entry["bytes_in"] = "lots"

        partition, path = self._mangle(setup, mutate)
        with pytest.raises(ProfilingError, match="bytes_in"):
            load_profiles(partition, path)

    def test_non_numeric_mean_time(self, setup):
        def mutate(payload):
            entry = next(iter(payload["profiles"].values()))
            entry["mean_time"]["cpu"] = "fast"

        partition, path = self._mangle(setup, mutate)
        with pytest.raises(ProfilingError, match="non-numeric mean_time"):
            load_profiles(partition, path)


class TestDamagedArtifacts:
    """Truncated/empty/structurally-wrong artifacts raise ProfilingError."""

    def _saved(self, setup):
        _, partition, profiles, path = setup
        save_profiles(partition, profiles, path)
        return partition, path

    def test_truncated_artifact(self, setup):
        partition, path = self._saved(setup)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(ProfilingError, match="cannot read"):
            load_profiles(partition, path)

    def test_empty_file(self, setup):
        partition, path = self._saved(setup)
        path.write_text("")
        with pytest.raises(ProfilingError, match="cannot read"):
            load_profiles(partition, path)

    def test_top_level_not_an_object(self, setup):
        partition, path = self._saved(setup)
        path.write_text(json.dumps(["not", "an", "object"]))
        with pytest.raises(ProfilingError, match="not an object"):
            load_profiles(partition, path)

    def test_top_level_scalar(self, setup):
        partition, path = self._saved(setup)
        path.write_text("42")
        with pytest.raises(ProfilingError, match="not an object"):
            load_profiles(partition, path)

    def test_fingerprint_missing(self, setup):
        partition, path = self._saved(setup)
        payload = json.loads(path.read_text())
        del payload["fingerprint"]
        path.write_text(json.dumps(payload))
        with pytest.raises(ProfilingError, match="does not match"):
            load_profiles(partition, path)

    def test_wrong_fingerprint(self, setup):
        partition, path = self._saved(setup)
        payload = json.loads(path.read_text())
        payload["fingerprint"] = "0" * 16
        path.write_text(json.dumps(payload))
        with pytest.raises(ProfilingError, match="does not match"):
            load_profiles(partition, path)

    def test_missing_subgraph_entry(self, setup):
        partition, path = self._saved(setup)
        payload = json.loads(path.read_text())
        sid = next(iter(payload["profiles"]))
        del payload["profiles"][sid]
        path.write_text(json.dumps(payload))
        with pytest.raises(ProfilingError, match="misses subgraph"):
            load_profiles(partition, path)
