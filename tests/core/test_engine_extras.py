"""Tests for engine integrations: profile caching and memory reporting."""

import json

import pytest

from repro.core import DuetEngine
from repro.models import build_model


class TestProfileCaching:
    def test_artifact_written_and_reused(self, machine, tmp_path):
        engine = DuetEngine(machine=machine)
        graph = build_model("wide_deep", tiny=True)
        path = tmp_path / "wd.profiles.json"
        opt1 = engine.optimize(graph, profile_path=str(path))
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["profiles"]

        # Tamper with the file's timings to prove the second run reads it.
        for entry in payload["profiles"].values():
            entry["mean_time"] = {"cpu": 1.0, "gpu": 2.0}
        path.write_text(json.dumps(payload))
        opt2 = engine.optimize(graph, profile_path=str(path))
        some = next(iter(opt2.profiles.values()))
        assert some.mean_time == {"cpu": 1.0, "gpu": 2.0}

    def test_stale_artifact_triggers_reprofile(self, machine, tmp_path):
        engine = DuetEngine(machine=machine)
        path = tmp_path / "p.json"
        engine.optimize(build_model("wide_deep", tiny=True), profile_path=str(path))
        # Different model: fingerprint mismatch -> silently re-profiled.
        opt = engine.optimize(
            build_model("wide_deep", tiny=True, rnn_layers=2),
            profile_path=str(path),
        )
        assert opt.latency > 0
        # The artifact was rewritten for the new model.
        payload = json.loads(path.read_text())
        assert len(payload["profiles"]) == len(opt.profiles)

    def test_without_path_behaves_as_before(self, machine):
        engine = DuetEngine(machine=machine)
        graph = build_model("siamese", tiny=True)
        a = engine.optimize(graph)
        b = engine.optimize(graph, profile_path=None)
        assert a.placement == b.placement


class TestMemoryReportAccessor:
    def test_report_shape(self, machine):
        engine = DuetEngine(machine=machine)
        opt = engine.optimize(build_model("wide_deep", tiny=True))
        report = opt.memory_report()
        assert report.cpu.tasks + report.gpu.tasks == len(opt.plan.tasks)
        assert report.cpu.param_bytes >= 0 and report.gpu.param_bytes >= 0
