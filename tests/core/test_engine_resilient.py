"""Engine-level tests: run_resilient plumbing and robust profile saving."""

import dataclasses
import warnings

import numpy as np
import pytest

from repro.core import DuetEngine
from repro.core.engine import DuetOptimization
from repro.errors import ProfilingError
from repro.ir import make_inputs, run_graph
from repro.models import build_model
from repro.runtime import ResilienceConfig, RetryPolicy, ThreadedExecutor
from repro.runtime.faults import DeviceLoss, FaultInjector, FaultPlan, KernelFault


@pytest.fixture(scope="module")
def optimized(machine):
    graph = build_model("siamese", tiny=True)
    engine = DuetEngine(machine=machine)
    return engine, graph, engine.optimize(graph)


class TestRunResilient:
    def test_optimize_builds_degradation_plans(self, optimized):
        _, _, opt = optimized
        assert set(opt.degradation_plans) == {"cpu", "gpu"}
        for dev, plan in opt.degradation_plans.items():
            assert plan.devices_used() == {dev}
            assert len(plan.tasks) == 1

    def test_no_fault_matches_threaded_path(self, optimized):
        engine, graph, opt = optimized
        feeds = make_inputs(graph)
        baseline = ThreadedExecutor(opt.plan).run(feeds)
        report = engine.run_resilient(opt, feeds)
        assert report.completed
        for got, want in zip(report.outputs, baseline.outputs):
            np.testing.assert_array_equal(got, want)
        assert report.task_worker == baseline.task_worker
        assert report.events == []

    def test_accepts_fault_plan_or_injector(self, optimized):
        engine, graph, opt = optimized
        feeds = make_inputs(graph)
        tid = opt.plan.tasks[0].task_id
        fp = FaultPlan(kernel_faults=(KernelFault(tid, fail_attempts=1),))
        config = ResilienceConfig(
            retry=RetryPolicy(max_attempts=2, backoff_base_s=1e-4)
        )
        by_plan = engine.run_resilient(opt, feeds, config=config, faults=fp)
        by_injector = engine.run_resilient(
            opt, feeds, config=config, faults=FaultInjector(fp)
        )
        assert by_plan.counters["retries"] == 1
        assert by_plan.counters == by_injector.counters

    def test_gpu_loss_mid_run_completes_on_cpu(self, optimized, machine):
        """The acceptance scenario: permanent GPU loss mid-run."""
        engine, graph, opt = optimized
        # Force a genuinely heterogeneous plan (tiny models may fall back
        # to a single device) while keeping the engine's standing
        # degradation plans.
        from repro.core import CompilerAwareProfiler, partition_graph
        from repro.core.placement import build_hetero_plan

        partition = partition_graph(graph)
        profiles = CompilerAwareProfiler(machine=machine).profile_partition(
            partition
        )
        placement = {
            sg.id: ("cpu" if i == 0 else "gpu")
            for i, sg in enumerate(partition.subgraphs)
        }
        hetero = build_hetero_plan(graph, partition, profiles, placement)
        opt = dataclasses.replace(opt, plan=hetero, fallback_device=None)
        feeds = make_inputs(graph)
        ref = run_graph(graph, feeds)
        gpu_tasks = [t.task_id for t in hetero.tasks if t.device == "gpu"]

        def chaos():
            return engine.run_resilient(
                opt,
                feeds,
                faults=FaultPlan(
                    device_losses=(DeviceLoss("gpu", at_task=gpu_tasks[1]),),
                    seed=11,
                ),
            )

        report = chaos()
        assert report.completed
        assert report.degraded_device == "cpu"
        for got, want in zip(report.outputs, ref):
            np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)
        kinds = [e.kind for e in report.events]
        assert kinds[0] == "device-lost"
        assert "failover-migrate" in kinds
        # Deterministic under the fixed seed: same event chain, same
        # placements, same outputs.
        again = chaos()
        assert [e.kind for e in again.events] == kinds
        assert again.task_worker == report.task_worker
        for x, y in zip(report.outputs, again.outputs):
            np.testing.assert_array_equal(x, y)


class TestRobustProfileSaving:
    """An unwritable artifact path must not sink the optimization."""

    def test_unwritable_path_warns_and_continues(self, machine, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("i am a file, not a directory")
        bad_path = blocker / "profiles.json"  # OSError on write
        graph = build_model("wide_deep", tiny=True)
        engine = DuetEngine(machine=machine)
        with pytest.warns(RuntimeWarning, match="could not write"):
            opt = engine.optimize(graph, profile_path=str(bad_path))
        # The freshly profiled results are intact and usable.
        assert opt.profiles
        assert opt.latency > 0

    def test_read_only_directory_warns_and_continues(
        self, machine, tmp_path, monkeypatch
    ):
        # Simulate a read-only directory / full disk regardless of the
        # privileges the test runs under (root ignores mode bits).
        import repro.core.profile_store as store

        def denied(partition, profiles, path):
            raise PermissionError(13, "Permission denied", str(path))

        monkeypatch.setattr(store, "save_profiles", denied)
        graph = build_model("wide_deep", tiny=True)
        engine = DuetEngine(machine=machine)
        with pytest.warns(RuntimeWarning, match="could not write"):
            opt = engine.optimize(
                graph, profile_path=str(tmp_path / "ro" / "profiles.json")
            )
        assert opt.profiles

    def test_profiling_error_on_load_still_reprofiles(self, machine, tmp_path):
        # Sanity: artifact problems keep triggering re-profiling (not the
        # new OSError path).
        path = tmp_path / "profiles.json"
        path.write_text("{broken")
        graph = build_model("wide_deep", tiny=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no warning expected here
            opt = DuetEngine(machine=machine).optimize(
                graph, profile_path=str(path)
            )
        assert opt.profiles
        # The artifact was rewritten with good contents.
        from repro.core import load_profiles, partition_graph

        reloaded = load_profiles(partition_graph(graph), path)
        assert set(reloaded) == set(opt.profiles)
