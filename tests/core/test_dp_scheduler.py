"""Tests for the analytic dynamic-programming scheduler."""

import pytest

from repro.core import (
    CompilerAwareProfiler,
    GreedyCorrectionScheduler,
    build_hetero_plan,
    partition_graph,
    partition_graph_nested,
    validate_placement,
)
from repro.core.schedulers import dp_placement, exhaustive_placement
from repro.errors import SchedulingError
from repro.models import build_model
from repro.runtime import simulate


def _setup(machine, name="wide_deep", nested=False):
    graph = build_model(name)
    part = (
        partition_graph_nested(graph, max_depth=1)
        if nested
        else partition_graph(graph)
    )
    profiles = CompilerAwareProfiler(machine=machine).profile_partition(part)
    return graph.pruned(), part, profiles


class TestDPScheduler:
    def test_valid_placement(self, machine):
        graph, part, profiles = _setup(machine)
        placement, est = dp_placement(graph, part, profiles, machine)
        validate_placement(part, placement)
        assert est > 0

    def test_matches_optimum_on_wide_deep(self, machine):
        """With barriers irrelevant (W&D is one multipath phase + head),
        the analytic DP finds the same placement quality as exhaustive."""
        graph, part, profiles = _setup(machine)
        placement, _ = dp_placement(graph, part, profiles, machine)
        true = simulate(
            build_hetero_plan(graph, part, profiles, placement), machine
        ).latency
        _, ideal = exhaustive_placement(graph, part, profiles, machine)
        assert true == pytest.approx(ideal, rel=1e-6)

    def test_estimate_upper_bounds_truth_on_chain_phases(self, machine):
        # The barrier assumption can only add time relative to the real
        # non-barriered executor on these partitions.
        graph, part, profiles = _setup(machine)
        placement, est = dp_placement(graph, part, profiles, machine)
        true = simulate(
            build_hetero_plan(graph, part, profiles, placement), machine
        ).latency
        assert est >= true * 0.999

    def test_loses_to_measured_correction_on_nested_partition(self, machine):
        """The paper's §IV-C argument: analytic estimates mislead where
        the executor's real behaviour (cross-phase overlap) diverges from
        the DP's model."""
        graph, part, profiles = _setup(machine, "mtdnn", nested=True)
        placement, _ = dp_placement(graph, part, profiles, machine)
        dp_true = simulate(
            build_hetero_plan(graph, part, profiles, placement), machine
        ).latency
        gc = GreedyCorrectionScheduler(machine=machine).schedule(
            graph, part, profiles
        )
        assert gc.latency < dp_true * 0.99

    def test_phase_width_cap(self, machine):
        graph, part, profiles = _setup(machine)
        with pytest.raises(SchedulingError):
            dp_placement(graph, part, profiles, machine, max_phase_subgraphs=2)

    def test_accounts_for_host_bound_outputs(self, machine):
        from repro.bench.ablations import build_comm_heavy_model

        graph = build_model("siamese")  # placeholder; real check below
        g = build_comm_heavy_model().pruned()
        part = partition_graph(g)
        profiles = CompilerAwareProfiler(machine=machine).profile_partition(part)
        placement, _ = dp_placement(g, part, profiles, machine)
        # The 16 MB host-bound reorder branch must not be sent to the GPU.
        big = max(part.subgraphs, key=lambda sg: sg.bytes_out)
        assert placement[big.id] == "cpu"
