"""Tests for placement validation and hetero-plan construction."""

import numpy as np
import pytest

from repro.core import (
    CompilerAwareProfiler,
    build_hetero_plan,
    partition_graph,
    validate_placement,
)
from repro.errors import SchedulingError
from repro.ir import make_inputs, run_graph
from repro.models import build_model
from repro.runtime import simulate


@pytest.fixture
def setup(machine, diamond_graph):
    partition = partition_graph(diamond_graph)
    profiles = CompilerAwareProfiler(machine=machine).profile_partition(partition)
    return diamond_graph, partition, profiles


def _all_cpu(partition):
    return {sg.id: "cpu" for sg in partition.subgraphs}


class TestValidatePlacement:
    def test_complete_placement_ok(self, setup):
        _, partition, _ = setup
        validate_placement(partition, _all_cpu(partition))

    def test_missing_subgraph_rejected(self, setup):
        _, partition, _ = setup
        placement = _all_cpu(partition)
        placement.popitem()
        with pytest.raises(SchedulingError):
            validate_placement(partition, placement)

    def test_unknown_subgraph_rejected(self, setup):
        _, partition, _ = setup
        placement = _all_cpu(partition)
        placement["ghost"] = "cpu"
        with pytest.raises(SchedulingError):
            validate_placement(partition, placement)

    def test_bad_device_rejected(self, setup):
        _, partition, _ = setup
        placement = _all_cpu(partition)
        placement[next(iter(placement))] = "tpu"
        with pytest.raises(SchedulingError):
            validate_placement(partition, placement)

    def test_bad_device_message_names_machine_devices(self, setup):
        # The error enumerates the actual device set — not a hard-coded
        # ("cpu", "gpu") — so mesh misconfigurations are self-explaining.
        _, partition, _ = setup
        placement = _all_cpu(partition)
        placement[next(iter(placement))] = "tpu"
        with pytest.raises(SchedulingError, match=r"\['cpu', 'gpu'\]"):
            validate_placement(partition, placement)
        with pytest.raises(
            SchedulingError, match=r"\['cpu', 'gpu0', 'gpu1'\]"
        ):
            validate_placement(
                partition, placement, devices=("cpu", "gpu0", "gpu1")
            )

    def test_mesh_devices_accepted(self, setup):
        _, partition, _ = setup
        placement = {sg.id: "gpu1" for sg in partition.subgraphs}
        validate_placement(
            partition, placement, devices=("cpu", "gpu0", "gpu1")
        )
        # ...but only when the machine actually has them.
        with pytest.raises(SchedulingError, match="unknown device 'gpu1'"):
            validate_placement(partition, placement)


class TestBuildPlan:
    def test_plan_structure(self, setup):
        graph, partition, profiles = setup
        plan = build_hetero_plan(graph, partition, profiles, _all_cpu(partition))
        assert len(plan.tasks) == len(partition.subgraphs)
        assert len(plan.outputs) == 1

    def test_cross_device_plan_executes_numerically(self, setup, machine):
        graph, partition, profiles = setup
        placement = _all_cpu(partition)
        # Put the multi-path branches on different devices.
        multi = partition.multi_path_phases()[0]
        placement[multi.subgraphs[0].id] = "gpu"
        plan = build_hetero_plan(graph, partition, profiles, placement)
        feeds = make_inputs(graph)
        result = simulate(plan, machine, inputs=feeds)
        ref = run_graph(graph, feeds)
        np.testing.assert_allclose(result.outputs[0], ref[0], rtol=1e-5)

    def test_all_placements_numerically_identical(self, machine):
        graph = build_model("siamese", tiny=True)
        partition = partition_graph(graph)
        profiles = CompilerAwareProfiler(machine=machine).profile_partition(
            partition
        )
        feeds = make_inputs(graph)
        ref = run_graph(graph, feeds)
        ids = [sg.id for sg in partition.subgraphs]
        for mask in range(2 ** len(ids)):
            placement = {
                sid: ("gpu" if (mask >> i) & 1 else "cpu")
                for i, sid in enumerate(ids)
            }
            plan = build_hetero_plan(graph, partition, profiles, placement)
            result = simulate(plan, machine, inputs=feeds)
            for got, want in zip(result.outputs, ref):
                np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)

    def test_mesh_plan_executes_numerically(self):
        from repro.devices import make_mesh

        mesh = make_mesh(num_gpus=2, noisy=False)
        graph = build_model("siamese", tiny=True)
        partition = partition_graph(graph)
        profiles = CompilerAwareProfiler(machine=mesh).profile_partition(
            partition
        )
        ids = [sg.id for sg in partition.subgraphs]
        placement = {
            sid: mesh.device_names[i % 3] for i, sid in enumerate(ids)
        }
        plan = build_hetero_plan(
            graph, partition, profiles, placement,
            devices=mesh.device_names,
        )
        feeds = make_inputs(graph)
        result = simulate(plan, mesh, inputs=feeds)
        ref = run_graph(graph, feeds)
        for got, want in zip(result.outputs, ref):
            np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)

    def test_task_metadata(self, setup):
        graph, partition, profiles = setup
        plan = build_hetero_plan(graph, partition, profiles, _all_cpu(partition))
        for task, sg in zip(plan.tasks, partition.subgraphs):
            assert task.task_id == sg.id
            assert task.phase_index == sg.phase_index

    def test_missing_profile_rejected(self, setup):
        graph, partition, profiles = setup
        placement = _all_cpu(partition)
        incomplete = dict(profiles)
        incomplete.popitem()
        with pytest.raises(SchedulingError):
            build_hetero_plan(graph, partition, incomplete, placement)
