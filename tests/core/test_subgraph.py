"""Tests for subgraph extraction."""

import numpy as np
import pytest

from repro.core import extract_subgraph
from repro.errors import PartitionError
from repro.ir import GraphBuilder, make_inputs, run_graph


class TestExtraction:
    def test_branch_extraction(self, diamond_graph):
        sg = extract_subgraph(diamond_graph, {"left"}, "sg0")
        assert sg.boundary_inputs == ("a",)
        assert sg.boundary_outputs == ("left",)
        assert sg.graph.node("a").is_input  # replicated placeholder
        assert sg.graph.outputs == ("left",)

    def test_consts_copied_in(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 4))
        w = b.const((4, 4), name="w")
        d = b.op("dense", x, w, name="d")
        g = b.build(b.op("relu", d, name="r"))
        sg = extract_subgraph(g, {"d"}, "sg0")
        assert "w" in sg.graph
        assert sg.graph.node("w").is_const
        assert sg.boundary_inputs == ("x",)  # weights are not boundaries

    def test_semantics_preserved(self, diamond_graph):
        sg = extract_subgraph(diamond_graph, {"a", "left"}, "sg0")
        feeds = make_inputs(diamond_graph)
        (ref,) = run_graph(diamond_graph.with_outputs(["left"]), feeds)
        got = run_graph(sg.graph, {"x": feeds["x"]})
        idx = sg.boundary_outputs.index("left")
        np.testing.assert_allclose(got[idx], ref, rtol=1e-6)

    def test_internal_values_not_outputs(self, diamond_graph):
        sg = extract_subgraph(diamond_graph, {"a", "left", "right", "join"}, "s")
        assert sg.boundary_outputs == ("join",)

    def test_multi_output_subgraph(self, diamond_graph):
        # a feeds left and right; extracting {a, left} must surface both
        # left (consumed by nothing outside? no - left feeds join) and a
        # (consumed by right outside).
        sg = extract_subgraph(diamond_graph, {"a", "left"}, "s")
        assert set(sg.boundary_outputs) == {"a", "left"}

    def test_graph_output_always_boundary(self, diamond_graph):
        sg = extract_subgraph(diamond_graph, {"join"}, "s")
        assert sg.boundary_outputs == ("join",)

    def test_bytes_accounting(self, diamond_graph):
        sg = extract_subgraph(diamond_graph, {"left"}, "s")
        assert sg.bytes_in == 2 * 8 * 4
        assert sg.bytes_out == 2 * 8 * 4

    def test_non_op_member_rejected(self, diamond_graph):
        with pytest.raises(PartitionError):
            extract_subgraph(diamond_graph, {"x"}, "s")

    def test_dead_subgraph_rejected(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        live = b.op("relu", x, name="live")
        b.op("tanh", x, name="dead")
        g = b.build(live)
        with pytest.raises(PartitionError):
            extract_subgraph(g, {"dead"}, "s")

    def test_shared_input_replicated_across_subgraphs(self, diamond_graph):
        left = extract_subgraph(diamond_graph, {"left"}, "l")
        right = extract_subgraph(diamond_graph, {"right"}, "r")
        # Both reference the same upstream node id via their own placeholder.
        assert left.boundary_inputs == right.boundary_inputs == ("a",)

    def test_phase_index_recorded(self, diamond_graph):
        sg = extract_subgraph(diamond_graph, {"left"}, "s", phase_index=3)
        assert sg.phase_index == 3
