"""Regression tests: memoized latency oracle + correction-loop sweep.

Covers the scheduling fast path: cache hits must be bit-identical to
re-simulation, ``ScheduleResult.measurements`` must equal actual simulator
invocations, and the outer correction sweep must revisit earlier phases.
"""

import pytest

import repro.core.scheduler as scheduler_mod
from repro.core import (
    CompilerAwareProfiler,
    GreedyCorrectionScheduler,
    LatencyOracle,
    build_hetero_plan,
    partition_graph,
)
from repro.core.scheduler import correct_placement
from repro.errors import SchedulingError
from repro.models import build_model
from repro.runtime import simulate

EVAL_MODELS = ("wide_deep", "siamese", "mtdnn")


@pytest.fixture(scope="module", params=EVAL_MODELS)
def problem(request):
    from repro.devices import default_machine

    machine = default_machine(noisy=False)
    graph = build_model(request.param, tiny=True)
    partition = partition_graph(graph)
    profiles = CompilerAwareProfiler(machine=machine).profile_partition(partition)
    return machine, graph, partition, profiles


class TestLatencyOracle:
    def test_repeat_measure_is_free_and_identical(self, problem):
        machine, graph, partition, profiles = problem
        oracle = LatencyOracle(graph, partition, profiles, machine)
        placement = {sg.id: "cpu" for sg in partition.subgraphs}
        first = oracle.measure(placement)
        assert (oracle.hits, oracle.misses) == (0, 1)
        assert oracle.measure(placement) == first
        assert (oracle.hits, oracle.misses) == (1, 1)
        assert oracle.simulations == 1

    def test_matches_plain_simulation_bitwise(self, problem):
        machine, graph, partition, profiles = problem
        oracle = LatencyOracle(graph, partition, profiles, machine)
        placement = {
            sg.id: ("gpu" if i % 2 else "cpu")
            for i, sg in enumerate(partition.subgraphs)
        }
        plan = build_hetero_plan(graph, partition, profiles, placement)
        assert oracle.measure(placement) == simulate(plan, machine).latency

    def test_plan_matches_direct_construction(self, problem):
        machine, graph, partition, profiles = problem
        oracle = LatencyOracle(graph, partition, profiles, machine)
        placement = {sg.id: "gpu" for sg in partition.subgraphs}
        plan = oracle.plan(placement)
        direct = build_hetero_plan(graph, partition, profiles, placement)
        assert [t.task_id for t in plan.tasks] == [t.task_id for t in direct.tasks]
        assert [t.device for t in plan.tasks] == [t.device for t in direct.tasks]
        assert plan.outputs == direct.outputs

    def test_incomplete_placement_raises(self, problem):
        machine, graph, partition, profiles = problem
        oracle = LatencyOracle(graph, partition, profiles, machine)
        with pytest.raises(SchedulingError, match="misses subgraph"):
            oracle.measure({})


class TestScheduleCounters:
    def test_measurements_equal_simulator_invocations(self, problem, monkeypatch):
        machine, graph, partition, profiles = problem
        real = scheduler_mod.simulate
        calls = {"n": 0}

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(scheduler_mod, "simulate", counting)
        scheduler = GreedyCorrectionScheduler(machine=machine)
        result = scheduler.schedule(graph, partition, profiles)
        assert result.measurements == calls["n"]
        assert result.cache_misses == result.measurements
        # At minimum the correction loop's re-measure of the initial
        # placement and the final latency lookup are cache hits.
        assert result.cache_hits >= 2

    def test_cache_invariance(self, problem):
        """cache=True and cache=False must schedule bit-identically."""
        machine, graph, partition, profiles = problem
        scheduler = GreedyCorrectionScheduler(machine=machine)
        cached = scheduler.schedule(graph, partition, profiles)
        uncached = scheduler.schedule(
            graph,
            partition,
            profiles,
            oracle=LatencyOracle(graph, partition, profiles, machine, cache=False),
        )
        assert cached.placement == uncached.placement
        assert cached.latency == uncached.latency
        assert cached.initial_latency == uncached.initial_latency
        assert cached.corrections == uncached.corrections
        assert cached.measurements <= uncached.measurements

    def test_shared_oracle_makes_restarts_free(self, problem):
        machine, graph, partition, profiles = problem
        scheduler = GreedyCorrectionScheduler(machine=machine)
        solo = scheduler.schedule(graph, partition, profiles)
        oracle = LatencyOracle(graph, partition, profiles, machine)
        first = scheduler.schedule(graph, partition, profiles, oracle=oracle)
        second = scheduler.schedule(graph, partition, profiles, oracle=oracle)
        assert first.placement == solo.placement
        assert first.latency == solo.latency
        assert second.placement == first.placement
        assert second.latency == first.latency
        # The rerun retraces placements the oracle already measured.
        assert second.measurements == 0
        assert second.cache_hits == first.cache_hits + first.cache_misses


class _SG:
    def __init__(self, sid):
        self.id = sid


class _Phase:
    def __init__(self, index, ids):
        self.index = index
        self.subgraphs = [_SG(s) for s in ids]


class _StubPartition:
    def __init__(self, phases):
        self.phases = phases

    def multi_path_phases(self):
        return list(self.phases)


class TestCorrectionSweep:
    def test_outer_sweep_revisits_earlier_phases(self):
        """A later-phase swap can unlock an earlier-phase gain.

        Phase 0 alone sees no improving move from (cpu, cpu); only after
        phase 1 moves "b" does moving "a" pay off.  A single pass over the
        phases would stop at latency 9; the outer sweep reaches 7.
        """
        table = {
            ("cpu", "cpu"): 10.0,
            ("gpu", "cpu"): 11.0,
            ("cpu", "gpu"): 9.0,
            ("gpu", "gpu"): 7.0,
        }
        partition = _StubPartition([_Phase(0, ["a"]), _Phase(1, ["b"])])
        placement, steps, _ = correct_placement(
            {"a": "cpu", "b": "cpu"},
            partition,
            lambda p: table[(p["a"], p["b"])],
        )
        assert placement == {"a": "gpu", "b": "gpu"}
        assert [s.phase_index for s in steps] == [1, 0]
        assert steps[-1].latency_after == 7.0

    def test_no_gain_terminates_immediately(self):
        partition = _StubPartition([_Phase(0, ["a", "b"])])
        calls = {"n": 0}

        def flat(_placement):
            calls["n"] += 1
            return 1.0

        placement, steps, n_measures = correct_placement(
            {"a": "cpu", "b": "gpu"}, partition, flat
        )
        assert placement == {"a": "cpu", "b": "gpu"}
        assert steps == []
        assert n_measures == calls["n"]

    def test_sweeps_bounded_by_max_rounds(self):
        """A pathological oscillating oracle cannot loop forever."""
        partition = _StubPartition([_Phase(0, ["a"])])
        calls = {"n": 0}

        def ever_improving(_placement):
            calls["n"] += 1
            return -float(calls["n"])

        placement, steps, _ = correct_placement(
            {"a": "cpu"}, partition, ever_improving, max_rounds=3
        )
        assert len(steps) <= 9  # at most max_rounds sweeps x max_rounds swaps
