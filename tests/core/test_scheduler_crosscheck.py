"""Cross-checks between the analytic DP and brute-force schedulers.

Satellite of the conformance harness: on every small fuzz instance the
DP must return the exact minimum of its own analytic objective (verified
by enumerating all 2^n placements of
:func:`~repro.core.schedulers.dp.estimate_placement_cost`), and the
exhaustive scheduler — optimal for *measured* simulator latency — must
never lose to the DP placement on the simulator.
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CompilerAwareProfiler, partition_graph
from repro.core.scheduler import LatencyOracle
from repro.core.schedulers import (
    dp_placement,
    estimate_placement_cost,
    exhaustive_placement,
)
from repro.devices import default_machine, make_mesh
from repro.testing.generators import GeneratorConfig, generate_graph

import numpy as np
import pytest

_MACHINE = default_machine(noisy=False)
# Small graphs so the partition stays within the 2^6 enumeration budget.
_CONFIG = GeneratorConfig(max_ops=8)

#: Mesh arms of the DP conformance check: the DP's exactness claim is
#: per-machine, so it is brute-forced on wider and heterogeneous meshes
#: too (a derated gpu1 makes per-device compute and link pricing
#: actually matter — a placement bug that only swaps identical GPUs
#: would be invisible on the uniform meshes).
_MESHES = {
    "default_2dev": _MACHINE,
    "mesh_3dev": make_mesh(num_gpus=2, noisy=False),
    "mesh_4dev": make_mesh(num_gpus=3, noisy=False),
    "mesh_3dev_hetero": make_mesh(
        num_gpus=2, noisy=False, gpu_slowdowns=(1.0, 1.7)
    ),
}


def _small_instance(seed, machine=_MACHINE, max_states=4096):
    graph = generate_graph(np.random.default_rng(seed), _CONFIG).pruned()
    partition = partition_graph(graph)
    n = len(partition.subgraphs)
    if n > 6 or len(machine.device_names) ** n > max_states:
        return None
    profiles = CompilerAwareProfiler(machine=machine).profile_partition(
        partition
    )
    return graph, partition, profiles


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.filter_too_much])
@given(st.integers(0, 2**32 - 1))
def test_dp_matches_bruteforce_of_its_objective(seed):
    """DP makespan == exhaustive minimum of the analytic objective."""
    instance = _small_instance(seed)
    if instance is None:
        return
    graph, partition, profiles = instance
    placement, dp_cost = dp_placement(graph, partition, profiles, _MACHINE)

    ids = [sg.id for sg in partition.subgraphs]
    brute_cost = min(
        estimate_placement_cost(
            graph, partition, profiles, _MACHINE, dict(zip(ids, devices))
        )
        for devices in itertools.product(("cpu", "gpu"), repeat=len(ids))
    )
    assert dp_cost == pytest.approx(brute_cost, rel=1e-12)
    # The returned placement actually achieves the returned cost.
    assert estimate_placement_cost(
        graph, partition, profiles, _MACHINE, placement
    ) == pytest.approx(dp_cost, rel=1e-12)


@pytest.mark.parametrize("mesh_name", sorted(_MESHES))
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.filter_too_much])
@given(st.integers(0, 2**32 - 1))
def test_dp_matches_bruteforce_on_meshes(mesh_name, seed):
    """The DP's exactness survives the N-device generalization: on 3-
    and 4-device meshes (uniform and heterogeneous) its makespan still
    equals the brute-force minimum of the analytic objective over all
    |devices|^n assignment vectors."""
    machine = _MESHES[mesh_name]
    instance = _small_instance(seed, machine)
    if instance is None:
        return
    graph, partition, profiles = instance
    placement, dp_cost = dp_placement(graph, partition, profiles, machine)
    assert set(placement.values()) <= set(machine.device_names)

    ids = [sg.id for sg in partition.subgraphs]
    brute_cost = min(
        estimate_placement_cost(
            graph, partition, profiles, machine, dict(zip(ids, devices))
        )
        for devices in itertools.product(
            machine.device_names, repeat=len(ids)
        )
    )
    assert dp_cost == pytest.approx(brute_cost, rel=1e-12)
    assert estimate_placement_cost(
        graph, partition, profiles, machine, placement
    ) == pytest.approx(dp_cost, rel=1e-12)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_exhaustive_is_measured_optimum(seed):
    """Exhaustive search lower-bounds the DP placement's measured latency."""
    instance = _small_instance(seed)
    if instance is None:
        return
    graph, partition, profiles = instance
    oracle = LatencyOracle(graph, partition, profiles, _MACHINE)
    _, ideal = exhaustive_placement(graph, partition, profiles, _MACHINE)
    dp_place, _ = dp_placement(graph, partition, profiles, _MACHINE)
    assert ideal <= oracle.measure(dp_place) * (1 + 1e-9)
