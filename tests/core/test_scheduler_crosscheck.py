"""Cross-checks between the analytic DP and brute-force schedulers.

Satellite of the conformance harness: on every small fuzz instance the
DP must return the exact minimum of its own analytic objective (verified
by enumerating all 2^n placements of
:func:`~repro.core.schedulers.dp.estimate_placement_cost`), and the
exhaustive scheduler — optimal for *measured* simulator latency — must
never lose to the DP placement on the simulator.
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CompilerAwareProfiler, partition_graph
from repro.core.scheduler import LatencyOracle
from repro.core.schedulers import (
    dp_placement,
    estimate_placement_cost,
    exhaustive_placement,
)
from repro.devices import default_machine
from repro.testing.generators import GeneratorConfig, generate_graph

import numpy as np
import pytest

_MACHINE = default_machine(noisy=False)
# Small graphs so the partition stays within the 2^6 enumeration budget.
_CONFIG = GeneratorConfig(max_ops=8)


def _small_instance(seed):
    graph = generate_graph(np.random.default_rng(seed), _CONFIG).pruned()
    partition = partition_graph(graph)
    if len(partition.subgraphs) > 6:
        return None
    profiles = CompilerAwareProfiler(machine=_MACHINE).profile_partition(
        partition
    )
    return graph, partition, profiles


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.filter_too_much])
@given(st.integers(0, 2**32 - 1))
def test_dp_matches_bruteforce_of_its_objective(seed):
    """DP makespan == exhaustive minimum of the analytic objective."""
    instance = _small_instance(seed)
    if instance is None:
        return
    graph, partition, profiles = instance
    placement, dp_cost = dp_placement(graph, partition, profiles, _MACHINE)

    ids = [sg.id for sg in partition.subgraphs]
    brute_cost = min(
        estimate_placement_cost(
            graph, partition, profiles, _MACHINE, dict(zip(ids, devices))
        )
        for devices in itertools.product(("cpu", "gpu"), repeat=len(ids))
    )
    assert dp_cost == pytest.approx(brute_cost, rel=1e-12)
    # The returned placement actually achieves the returned cost.
    assert estimate_placement_cost(
        graph, partition, profiles, _MACHINE, placement
    ) == pytest.approx(dp_cost, rel=1e-12)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_exhaustive_is_measured_optimum(seed):
    """Exhaustive search lower-bounds the DP placement's measured latency."""
    instance = _small_instance(seed)
    if instance is None:
        return
    graph, partition, profiles = instance
    oracle = LatencyOracle(graph, partition, profiles, _MACHINE)
    _, ideal = exhaustive_placement(graph, partition, profiles, _MACHINE)
    dp_place, _ = dp_placement(graph, partition, profiles, _MACHINE)
    assert ideal <= oracle.measure(dp_place) * (1 + 1e-9)
