"""Property-based tests: partitioning invariants on random DAGs."""

import numpy as np
from hypothesis import given, settings

from repro.core import PhaseType, partition_graph
from repro.core.placement import build_hetero_plan
from repro.core.profiler import CompilerAwareProfiler
from repro.devices import default_machine
from repro.ir import make_inputs, run_graph
from repro.ir.traversal import are_independent
from repro.runtime import simulate
from tests.strategies import random_graphs

_MACHINE = default_machine(noisy=False)


def _has_ops(graph):
    return bool(graph.pruned().op_nodes())


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_phases_partition_live_ops(graph):
    if not _has_ops(graph):
        return
    part = partition_graph(graph)
    covered = []
    for sg in part.subgraphs:
        covered.extend(sg.node_ids)
    assert len(covered) == len(set(covered))
    assert set(covered) == {n.id for n in graph.pruned().op_nodes()}


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_phase_order_respects_dependencies(graph):
    if not _has_ops(graph):
        return
    pruned = graph.pruned()
    part = partition_graph(graph)
    phase_of = {
        nid: phase.index
        for phase in part.phases
        for sg in phase.subgraphs
        for nid in sg.node_ids
    }
    for node in pruned.op_nodes():
        for src in node.inputs:
            if pruned.node(src).is_op:
                assert phase_of[src] <= phase_of[node.id]


@settings(max_examples=30, deadline=None)
@given(random_graphs())
def test_multipath_subgraphs_are_independent(graph):
    if not _has_ops(graph):
        return
    pruned = graph.pruned()
    part = partition_graph(graph)
    for phase in part.multi_path_phases():
        sgs = phase.subgraphs
        for i in range(len(sgs)):
            for j in range(i + 1, len(sgs)):
                assert are_independent(pruned, sgs[i].node_ids, sgs[j].node_ids)


@settings(max_examples=30, deadline=None)
@given(random_graphs())
def test_sequential_phases_are_chains(graph):
    if not _has_ops(graph):
        return
    pruned = graph.pruned()
    part = partition_graph(graph)
    for phase in part.phases:
        if phase.type is not PhaseType.SEQUENTIAL:
            continue
        (sg,) = phase.subgraphs
        # Within the subgraph's op set, at most one op-consumer inside the
        # member set per node (a chain never branches internally).
        members = sg.node_ids
        for nid in members:
            internal = [c for c in set(pruned.consumers(nid)) if c in members]
            assert len(internal) <= 1


@settings(max_examples=20, deadline=None)
@given(
    random_graphs(max_ops=14),
    # a random bit source to derive placements from
)
def test_any_valid_placement_preserves_semantics(graph):
    if not _has_ops(graph):
        return
    part = partition_graph(graph)
    profiles = CompilerAwareProfiler(machine=_MACHINE).profile_partition(part)
    ids = [sg.id for sg in part.subgraphs]
    # Derive a pseudo-random but deterministic placement from the ids.
    placement = {
        sid: ("gpu" if (hash(sid) + i) % 2 else "cpu")
        for i, sid in enumerate(ids)
    }
    plan = build_hetero_plan(graph.pruned(), part, profiles, placement)
    feeds = make_inputs(graph)
    result = simulate(plan, _MACHINE, inputs=feeds)
    ref = run_graph(graph, feeds)
    for got, want in zip(result.outputs, ref):
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)
