"""Tests for the end-to-end DuetEngine."""

import json

import numpy as np
import pytest

import repro.core.profile_store as profile_store
from repro.core import DuetEngine
from repro.errors import ProfilingError
from repro.ir import make_inputs, run_graph
from repro.models import build_model


class TestOptimize:
    def test_wide_deep_co_executes(self, engine):
        opt = engine.optimize(build_model("wide_deep"))
        assert not opt.used_fallback
        assert set(opt.placement.values()) == {"cpu", "gpu"}
        assert opt.latency < min(opt.single_device_latency.values())

    def test_resnet_falls_back_to_gpu(self, engine):
        opt = engine.optimize(build_model("resnet"))
        assert opt.used_fallback
        assert opt.fallback_device == "gpu"
        assert opt.latency == pytest.approx(opt.single_device_latency["gpu"])

    def test_fallback_plan_is_single_device(self, engine):
        opt = engine.optimize(build_model("resnet"))
        assert len(opt.plan.tasks) == 1
        assert opt.plan.tasks[0].device == "gpu"

    def test_headline_speedups_in_paper_bands(self, engine):
        """Abstract: 1.5-2.3x vs TVM-GPU, 1.3-6.4x vs TVM-CPU (shapes)."""
        for name in ("wide_deep", "siamese", "mtdnn"):
            opt = engine.optimize(build_model(name))
            vs_gpu = opt.single_device_latency["gpu"] / opt.latency
            vs_cpu = opt.single_device_latency["cpu"] / opt.latency
            assert 1.2 <= vs_gpu <= 3.5, (name, vs_gpu)
            assert 1.2 <= vs_cpu <= 16.0, (name, vs_cpu)


class TestRun:
    @pytest.mark.parametrize("name", ["wide_deep", "siamese", "mtdnn"])
    def test_numeric_outputs_match_reference(self, engine, name):
        graph = build_model(name, tiny=True)
        opt = engine.optimize(graph)
        feeds = make_inputs(graph)
        result = engine.run(opt, inputs=feeds)
        ref = run_graph(graph, feeds)
        assert len(result.outputs) == len(ref)
        for got, want in zip(result.outputs, ref):
            np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)

    def test_run_without_inputs_times_only(self, engine):
        opt = engine.optimize(build_model("siamese", tiny=True))
        result = engine.run(opt)
        assert result.outputs is None
        assert result.latency > 0

    def test_latency_stats(self, engine):
        opt = engine.optimize(build_model("siamese", tiny=True))
        stats = engine.latency_stats(opt, n_runs=200, warmup=10)
        assert stats.n_samples == 200
        assert stats.p50 <= stats.p99 <= stats.p999

    def test_noisy_engine_tail_exceeds_median(self, noisy_machine):
        engine = DuetEngine(machine=noisy_machine)
        opt = engine.optimize(build_model("siamese", tiny=True))
        stats = engine.latency_stats(opt, n_runs=1000, warmup=10)
        assert stats.p999 > stats.p50


class TestProfileArtifactReload:
    def test_artifact_written_and_reused(self, machine, tmp_path):
        path = tmp_path / "profiles.json"
        graph = build_model("wide_deep", tiny=True)
        engine = DuetEngine(machine=machine)
        first = engine.optimize(graph, profile_path=str(path))
        assert path.exists()
        second = engine.optimize(graph, profile_path=str(path))
        assert second.placement == first.placement
        assert second.latency == pytest.approx(first.latency)

    def test_corrupt_artifact_triggers_reprofile(self, machine, tmp_path):
        path = tmp_path / "profiles.json"
        path.write_text("{not json at all")
        engine = DuetEngine(machine=machine)
        opt = engine.optimize(
            build_model("siamese", tiny=True), profile_path=str(path)
        )
        assert opt.latency > 0
        # The bad artifact was replaced by a valid one.
        assert "profiles" in json.loads(path.read_text())

    def test_profiling_error_triggers_reprofile(self, machine, tmp_path, monkeypatch):
        path = tmp_path / "profiles.json"
        graph = build_model("siamese", tiny=True)
        engine = DuetEngine(machine=machine)
        engine.optimize(graph, profile_path=str(path))

        def stale(*args, **kwargs):
            raise ProfilingError("stale artifact")

        monkeypatch.setattr(profile_store, "load_profiles", stale)
        opt = engine.optimize(graph, profile_path=str(path))
        assert opt.latency > 0

    def test_unexpected_load_error_propagates(self, machine, tmp_path, monkeypatch):
        """Only ProfilingError means "re-profile"; real bugs must surface."""
        path = tmp_path / "profiles.json"
        graph = build_model("siamese", tiny=True)
        engine = DuetEngine(machine=machine)
        engine.optimize(graph, profile_path=str(path))

        def boom(*args, **kwargs):
            raise RuntimeError("disk on fire")

        monkeypatch.setattr(profile_store, "load_profiles", boom)
        with pytest.raises(RuntimeError, match="disk on fire"):
            engine.optimize(graph, profile_path=str(path))


class TestFallbackMargin:
    def test_margin_forces_fallback(self, machine):
        # With an absurd margin DUET can never win -> always fall back.
        engine = DuetEngine(machine=machine, fallback_margin=0.99)
        opt = engine.optimize(build_model("wide_deep", tiny=True))
        assert opt.used_fallback
