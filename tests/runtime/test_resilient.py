"""Tests for the resilient executor: retries, deadlines, failover."""

import numpy as np
import pytest

from repro.errors import (
    DeadlineExceededError,
    DeviceLostError,
    ExecutionError,
)
from repro.runtime import ThreadedExecutor, single_device_plan
from repro.runtime.faults import (
    DeviceLoss,
    FaultInjector,
    FaultPlan,
    KernelFault,
    StallFault,
    TransferFault,
)
from repro.runtime.resilient import (
    ExecutionReport,
    ResilienceConfig,
    ResilientExecutor,
    RetryPolicy,
)

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=1e-4)


def _assert_matches_reference(outputs, reference):
    assert len(outputs) == len(reference)
    for got, want in zip(outputs, reference):
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base_s=0.01, backoff_multiplier=2.0, jitter=0.0)
        rng = np.random.default_rng(0)
        assert policy.backoff_s(1, rng) == pytest.approx(0.01)
        assert policy.backoff_s(3, rng) == pytest.approx(0.04)

    def test_jitter_bounded(self):
        policy = RetryPolicy(backoff_base_s=0.01, jitter=0.5)
        rng = np.random.default_rng(0)
        for attempt in range(1, 5):
            delay = policy.backoff_s(attempt, rng)
            nominal = 0.01 * 2.0 ** (attempt - 1)
            assert 0.5 * nominal <= delay <= 1.5 * nominal

    def test_validation(self):
        with pytest.raises(ExecutionError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ExecutionError, match="jitter"):
            RetryPolicy(jitter=1.5)


class TestNoFaultEquivalence:
    """Empty fault plan => bit-identical to the plain threaded path."""

    def test_outputs_and_placement_identical(self, siamese_mixed):
        plan, _, feeds, _ = siamese_mixed
        baseline = ThreadedExecutor(plan).run(feeds)
        report = ResilientExecutor(
            plan, fault_injector=FaultInjector(FaultPlan())
        ).run(feeds)
        assert report.completed
        assert len(report.outputs) == len(baseline.outputs)
        for got, want in zip(report.outputs, baseline.outputs):
            np.testing.assert_array_equal(got, want)
        assert report.task_worker == baseline.task_worker
        assert sorted(report.task_order) == sorted(baseline.task_order)

    def test_no_events_no_counters(self, siamese_mixed):
        plan, _, feeds, _ = siamese_mixed
        report = ResilientExecutor(plan).run(feeds)
        assert report.events == []
        assert all(v == 0 for v in report.counters.values())
        assert report.degraded_device is None
        assert not report.restarted
        assert report.wall_time_s > 0


class TestTransientRetry:
    def test_transient_kernel_fault_retried_to_success(self, siamese_mixed):
        plan, _, feeds, ref = siamese_mixed
        tid = plan.tasks[-1].task_id
        injector = FaultInjector(
            FaultPlan(kernel_faults=(KernelFault(tid, fail_attempts=2),))
        )
        report = ResilientExecutor(
            plan, ResilienceConfig(retry=FAST_RETRY), injector
        ).run(feeds)
        _assert_matches_reference(report.outputs, ref)
        assert report.counters["faults"] == 2
        assert report.counters["retries"] == 2
        assert report.counters["giveups"] == 0
        kinds = [e.kind for e in report.events]
        assert kinds == ["fault", "backoff", "retry", "fault", "backoff", "retry"]
        fault = report.events[0]
        assert fault.task_id == tid and fault.attempt == 1

    def test_retries_exhausted_raises_with_report(self, siamese_mixed):
        plan, _, feeds, _ = siamese_mixed
        tid = plan.tasks[0].task_id
        injector = FaultInjector(
            FaultPlan(kernel_faults=(KernelFault(tid, fail_attempts=99),))
        )
        config = ResilienceConfig(
            retry=RetryPolicy(max_attempts=2, backoff_base_s=1e-4)
        )
        with pytest.raises(ExecutionError, match="after 2 attempt"):
            ResilientExecutor(plan, config, injector).run(feeds)
        try:
            ResilientExecutor(plan, config, FaultInjector(
                FaultPlan(kernel_faults=(KernelFault(tid, fail_attempts=99),))
            )).run(feeds)
        except ExecutionError as exc:
            report = exc.report
        assert isinstance(report, ExecutionReport)
        assert not report.completed and report.outputs is None
        assert report.counters["giveups"] == 1
        assert [e.kind for e in report.events][-1] == "giveup"

    def test_corrupted_transfer_detected_and_retried(self, siamese_mixed):
        plan, _, feeds, ref = siamese_mixed
        # Corrupt the CPU root's tensor on its way to the GPU consumer:
        # the NaN guard turns it into a retryable TransferError and the
        # second fetch is clean.
        cpu_root = plan.tasks[0]
        assert cpu_root.device == "cpu"
        injector = FaultInjector(
            FaultPlan(
                transfer_faults=(
                    TransferFault(cpu_root.task_id, "gpu", mode="corrupt"),
                )
            )
        )
        report = ResilientExecutor(
            plan, ResilienceConfig(retry=FAST_RETRY), injector
        ).run(feeds)
        _assert_matches_reference(report.outputs, ref)
        assert report.counters["faults"] == 1
        assert "non-finite" in report.events[0].detail

    def test_failed_transfer_retried(self, siamese_mixed):
        plan, _, feeds, ref = siamese_mixed
        cpu_root = plan.tasks[0]
        injector = FaultInjector(
            FaultPlan(
                transfer_faults=(
                    TransferFault(cpu_root.task_id, "gpu", mode="fail"),
                )
            )
        )
        report = ResilientExecutor(
            plan, ResilienceConfig(retry=FAST_RETRY), injector
        ).run(feeds)
        _assert_matches_reference(report.outputs, ref)
        assert report.counters["retries"] == 1

    def test_deterministic_under_fixed_seed(self, siamese_mixed):
        plan, _, feeds, _ = siamese_mixed
        tid = plan.tasks[-1].task_id

        def chaos_run():
            injector = FaultInjector(
                FaultPlan(kernel_faults=(KernelFault(tid, fail_attempts=2),))
            )
            return ResilientExecutor(
                plan, ResilienceConfig(retry=FAST_RETRY, seed=7), injector
            ).run(feeds)

        a, b = chaos_run(), chaos_run()
        assert [e.kind for e in a.events] == [e.kind for e in b.events]
        assert [(e.task_id, e.attempt) for e in a.events] == [
            (e.task_id, e.attempt) for e in b.events
        ]
        assert a.counters == b.counters
        assert a.task_worker == b.task_worker
        for x, y in zip(a.outputs, b.outputs):
            np.testing.assert_array_equal(x, y)
        # Same seed => identical jitter choices in the backoff log.
        backoffs = lambda r: [
            e.detail for e in r.events if e.kind == "backoff"
        ]
        assert backoffs(a) == backoffs(b)


class TestDeadlines:
    def test_end_to_end_deadline(self, siamese_mixed):
        plan, _, feeds, _ = siamese_mixed
        injector = FaultInjector(
            FaultPlan(stalls=(StallFault(plan.tasks[0].task_id, 0.5),))
        )
        config = ResilienceConfig(deadline_s=0.05)
        with pytest.raises(DeadlineExceededError, match="end-to-end"):
            ResilientExecutor(plan, config, injector).run(feeds)
        try:
            ResilientExecutor(plan, config, FaultInjector(
                FaultPlan(stalls=(StallFault(plan.tasks[0].task_id, 0.5),))
            )).run(feeds)
        except DeadlineExceededError as exc:
            assert [e.kind for e in exc.report.events] == ["deadline"]
            assert not exc.report.completed

    def test_task_deadline_miss_is_retryable(self, siamese_mixed):
        plan, _, feeds, ref = siamese_mixed
        tid = plan.tasks[0].task_id
        # Attempt 1 stalls past the per-task budget; attempt 2 is clean.
        injector = FaultInjector(
            FaultPlan(stalls=(StallFault(tid, 0.2, stall_attempts=1),))
        )
        config = ResilienceConfig(retry=FAST_RETRY, task_deadline_s=0.1)
        report = ResilientExecutor(plan, config, injector).run(feeds)
        _assert_matches_reference(report.outputs, ref)
        assert report.counters["task_deadline_misses"] == 1
        assert report.events[0].kind == "task-deadline"
        assert report.events[0].task_id == tid

    def test_no_deadline_means_no_timeout(self, siamese_mixed):
        plan, _, feeds, ref = siamese_mixed
        report = ResilientExecutor(plan, ResilienceConfig()).run(feeds)
        _assert_matches_reference(report.outputs, ref)


class TestDeviceLossFailover:
    def test_mid_run_gpu_loss_migrates_to_cpu(self, siamese_mixed):
        plan, _, feeds, ref = siamese_mixed
        gpu_tasks = [t.task_id for t in plan.tasks if t.device == "gpu"]
        assert len(gpu_tasks) >= 2
        # The GPU dies when its *second* task is dispatched: the first
        # GPU task has already completed, so this is a mid-run loss and
        # the executor migrates in place instead of restarting.
        injector = FaultInjector(
            FaultPlan(device_losses=(DeviceLoss("gpu", at_task=gpu_tasks[1]),))
        )
        report = ResilientExecutor(plan, fault_injector=injector).run(feeds)
        _assert_matches_reference(report.outputs, ref)
        assert report.completed
        assert report.degraded_device == "cpu"
        assert not report.restarted
        assert report.counters["device_losses"] == 1
        assert report.counters["failovers"] == 1
        assert report.counters["migrated_tasks"] >= 1
        kinds = [e.kind for e in report.events]
        assert kinds[0] == "device-lost"
        assert "failover-migrate" in kinds
        # The first GPU task kept its placement; everything after the
        # loss ran on the surviving CPU worker.
        assert report.task_worker[gpu_tasks[0]] == "gpu"
        for tid in gpu_tasks[1:]:
            assert report.task_worker[tid] == "cpu"

    def test_loss_before_any_completion_restarts_on_survivor(
        self, siamese_mixed, machine
    ):
        plan, _, feeds, ref = siamese_mixed
        first = plan.tasks[0].task_id  # the CPU root: nothing done yet
        gpu_root = next(t.task_id for t in plan.tasks if t.device == "gpu")
        # Stall the concurrent GPU root so the loss is handled while no
        # task has completed — the condition for the restart path.
        injector = FaultInjector(
            FaultPlan(
                device_losses=(DeviceLoss("cpu", at_task=first),),
                stalls=(StallFault(gpu_root, 0.25),),
            )
        )
        # Build a standing degradation plan for the survivor (gpu).
        gpu_task = [t for t in plan.tasks if t.device == "gpu"][0]
        from repro.compiler import Compiler
        from repro.compiler.target import GPU_TARGET

        graph = siamese_mixed[1]
        module = Compiler().compile(graph, GPU_TARGET)
        degradation = {"gpu": single_device_plan(module, "gpu")}
        report = ResilientExecutor(
            plan, fault_injector=injector, degradation_plans=degradation
        ).run(feeds)
        _assert_matches_reference(report.outputs, ref)
        assert report.restarted
        assert report.degraded_device == "gpu"
        assert report.counters["failovers"] == 1
        assert [e.kind for e in report.events] == [
            "device-lost", "failover-restart",
        ]
        # The executed tasks are the degradation plan's, all on the GPU.
        assert set(report.task_worker.values()) == {"gpu"}

    def test_loss_without_degradation_plan_migrates(self, siamese_mixed):
        plan, _, feeds, ref = siamese_mixed
        first = plan.tasks[0].task_id
        injector = FaultInjector(
            FaultPlan(device_losses=(DeviceLoss("cpu", at_task=first),))
        )
        report = ResilientExecutor(plan, fault_injector=injector).run(feeds)
        _assert_matches_reference(report.outputs, ref)
        assert not report.restarted
        assert report.degraded_device == "gpu"
        assert set(report.task_worker.values()) == {"gpu"}

    def test_both_devices_lost_is_terminal(self, siamese_mixed):
        plan, _, feeds, _ = siamese_mixed
        first = plan.tasks[0].task_id
        injector = FaultInjector(
            FaultPlan(
                device_losses=(
                    DeviceLoss("cpu", at_task=first),
                    DeviceLoss("gpu", at_task=first),
                )
            )
        )
        with pytest.raises(ExecutionError, match="all devices lost"):
            ResilientExecutor(plan, fault_injector=injector).run(feeds)

    def test_failover_disabled_propagates_loss(self, siamese_mixed):
        plan, _, feeds, _ = siamese_mixed
        gpu_tasks = [t.task_id for t in plan.tasks if t.device == "gpu"]
        injector = FaultInjector(
            FaultPlan(device_losses=(DeviceLoss("gpu", at_task=gpu_tasks[1]),))
        )
        with pytest.raises(DeviceLostError):
            ResilientExecutor(
                plan, ResilienceConfig(failover=False), injector
            ).run(feeds)

    def test_failover_deterministic_under_seed(self, siamese_mixed):
        plan, _, feeds, _ = siamese_mixed
        gpu_tasks = [t.task_id for t in plan.tasks if t.device == "gpu"]

        def chaos_run():
            injector = FaultInjector(
                FaultPlan(
                    device_losses=(DeviceLoss("gpu", at_task=gpu_tasks[1]),),
                    seed=3,
                )
            )
            return ResilientExecutor(
                plan, ResilienceConfig(seed=3), injector
            ).run(feeds)

        a, b = chaos_run(), chaos_run()
        assert [e.kind for e in a.events] == [e.kind for e in b.events]
        assert a.task_worker == b.task_worker
        assert a.counters == b.counters
        for x, y in zip(a.outputs, b.outputs):
            np.testing.assert_array_equal(x, y)
