"""Tests for the real-concurrency threaded executor."""

import numpy as np
import pytest

from repro.core import CompilerAwareProfiler, DuetEngine, partition_graph
from repro.core.placement import build_hetero_plan
from repro.errors import ExecutionError
from repro.ir import make_inputs, run_graph
from repro.models import build_model
from repro.runtime.threaded import ThreadedExecutor


@pytest.fixture(params=["wide_deep", "siamese", "mtdnn"])
def plan_and_graph(request, machine):
    graph = build_model(request.param, tiny=True)
    engine = DuetEngine(machine=machine)
    opt = engine.optimize(graph)
    return opt.plan, graph


class TestThreadedExecutor:
    def test_outputs_match_interpreter(self, plan_and_graph):
        plan, graph = plan_and_graph
        feeds = make_inputs(graph)
        result = ThreadedExecutor(plan).run(feeds)
        ref = run_graph(graph, feeds)
        assert len(result.outputs) == len(ref)
        for got, want in zip(result.outputs, ref):
            np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)

    def test_tasks_run_on_assigned_worker(self, plan_and_graph):
        plan, graph = plan_and_graph
        result = ThreadedExecutor(plan).run(make_inputs(graph))
        for task in plan.tasks:
            assert result.task_worker[task.task_id] == task.device

    def test_completion_order_respects_dependencies(self, plan_and_graph):
        plan, graph = plan_and_graph
        result = ThreadedExecutor(plan).run(make_inputs(graph))
        position = {tid: i for i, tid in enumerate(result.task_order)}
        for task in plan.tasks:
            for src in task.sources.values():
                if src.kind == "task":
                    assert position[src.ref] < position[task.task_id]

    def test_all_tasks_complete(self, plan_and_graph):
        plan, graph = plan_and_graph
        result = ThreadedExecutor(plan).run(make_inputs(graph))
        assert len(result.task_order) == len(plan.tasks)
        assert result.wall_time_s > 0

    def test_missing_input_propagates(self, plan_and_graph):
        plan, _ = plan_and_graph
        with pytest.raises(ExecutionError):
            ThreadedExecutor(plan).run({})

    def test_repeated_runs_deterministic_outputs(self, machine):
        graph = build_model("siamese", tiny=True)
        partition = partition_graph(graph)
        profiles = CompilerAwareProfiler(machine=machine).profile_partition(
            partition
        )
        placement = {sg.id: ("gpu" if i % 2 else "cpu")
                     for i, sg in enumerate(partition.subgraphs)}
        plan = build_hetero_plan(graph, partition, profiles, placement)
        feeds = make_inputs(graph)
        a = ThreadedExecutor(plan).run(feeds)
        b = ThreadedExecutor(plan).run(feeds)
        for x, y in zip(a.outputs, b.outputs):
            np.testing.assert_array_equal(x, y)
