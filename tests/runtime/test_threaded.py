"""Tests for the real-concurrency threaded executor."""

import dataclasses
import threading
import time

import numpy as np
import pytest

from repro.core import CompilerAwareProfiler, DuetEngine, partition_graph
from repro.core.placement import build_hetero_plan
from repro.errors import ExecutionError, TransientKernelError
from repro.ir import make_inputs, run_graph
from repro.models import build_model
from repro.runtime.faults import (
    DeviceLoss,
    FaultInjector,
    FaultPlan,
    KernelFault,
)
from repro.runtime.plan import HeteroPlan
from repro.runtime.threaded import ThreadedExecutor


@pytest.fixture(params=["wide_deep", "siamese", "mtdnn"])
def plan_and_graph(request, machine):
    graph = build_model(request.param, tiny=True)
    engine = DuetEngine(machine=machine)
    opt = engine.optimize(graph)
    return opt.plan, graph


def _clone_root_task(plan, task_id, device, first_kernel_fn):
    """A copy of the plan's first (dependency-free) task with a new id,
    device, and replacement behavior for its first kernel."""
    root = plan.tasks[0]
    assert all(s.kind == "external" for s in root.sources.values())
    k0 = root.module.kernels[0]
    patched = dataclasses.replace(k0, fn=first_kernel_fn)
    module = dataclasses.replace(
        root.module, kernels=[patched] + list(root.module.kernels[1:])
    )
    return dataclasses.replace(
        root, task_id=task_id, device=device, module=module
    )


class TestThreadedExecutor:
    def test_outputs_match_interpreter(self, plan_and_graph):
        plan, graph = plan_and_graph
        feeds = make_inputs(graph)
        result = ThreadedExecutor(plan).run(feeds)
        ref = run_graph(graph, feeds)
        assert len(result.outputs) == len(ref)
        for got, want in zip(result.outputs, ref):
            np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)

    def test_tasks_run_on_assigned_worker(self, plan_and_graph):
        plan, graph = plan_and_graph
        result = ThreadedExecutor(plan).run(make_inputs(graph))
        for task in plan.tasks:
            assert result.task_worker[task.task_id] == task.device

    def test_completion_order_respects_dependencies(self, plan_and_graph):
        plan, graph = plan_and_graph
        result = ThreadedExecutor(plan).run(make_inputs(graph))
        position = {tid: i for i, tid in enumerate(result.task_order)}
        for task in plan.tasks:
            for src in task.sources.values():
                if src.kind == "task":
                    assert position[src.ref] < position[task.task_id]

    def test_all_tasks_complete(self, plan_and_graph):
        plan, graph = plan_and_graph
        result = ThreadedExecutor(plan).run(make_inputs(graph))
        assert len(result.task_order) == len(plan.tasks)
        assert result.wall_time_s > 0

    def test_missing_input_propagates(self, plan_and_graph):
        plan, _ = plan_and_graph
        with pytest.raises(ExecutionError):
            ThreadedExecutor(plan).run({})

    def test_failed_task_drains_queued_work(self, machine):
        """On error, already-queued tasks are drained, not executed."""
        graph = build_model("siamese", tiny=True)
        plan = DuetEngine(machine=machine).optimize(graph).plan
        real_fn = plan.tasks[0].module.kernels[0].fn
        ran = []

        def slow(args):
            time.sleep(0.5)
            return real_fn(args)

        def boom(args):
            raise ValueError("kernel exploded")

        def recorder(args):
            ran.append("behind")
            return real_fn(args)

        # gpu queue: [sleeper, behind]; cpu queue: [failer].  The failure
        # lands while the gpu worker sleeps, so "behind" must be drained
        # before that worker can reach it.
        crafted = HeteroPlan(
            tasks=[
                _clone_root_task(plan, "sleeper", "gpu", slow),
                _clone_root_task(plan, "failer", "cpu", boom),
                _clone_root_task(plan, "behind", "gpu", recorder),
            ],
            outputs=[("sleeper", 0)],
        )
        with pytest.raises(ExecutionError, match="kernel exploded"):
            ThreadedExecutor(crafted).run(make_inputs(graph))
        assert ran == []

    def test_stuck_worker_named_in_error(self, machine):
        """A wedged worker is reported instead of joined forever."""
        graph = build_model("siamese", tiny=True)
        plan = DuetEngine(machine=machine).optimize(graph).plan
        real_fn = plan.tasks[0].module.kernels[0].fn

        def wedge(args):
            time.sleep(1.0)
            return real_fn(args)

        def boom(args):
            # Give the gpu worker time to start (and get stuck inside) its
            # task before the failure cuts the run short.
            time.sleep(0.25)
            raise ValueError("kernel exploded")

        crafted = HeteroPlan(
            tasks=[
                _clone_root_task(plan, "wedged", "gpu", wedge),
                _clone_root_task(plan, "failer", "cpu", boom),
            ],
            outputs=[("wedged", 0)],
        )
        with pytest.raises(ExecutionError, match=r"gpu.*wedged") as excinfo:
            ThreadedExecutor(crafted, join_timeout=0.05).run(make_inputs(graph))
        assert "kernel exploded" in str(excinfo.value)

    def test_multiple_worker_failures_all_surfaced(self, machine):
        """Every worker failure lands in the message, not just the first."""
        graph = build_model("siamese", tiny=True)
        plan = DuetEngine(machine=machine).optimize(graph).plan

        gpu_started = threading.Event()

        def boom_cpu(args):
            # Hold the cpu failure until the gpu task is provably in
            # flight, otherwise the abort may drain it before it starts
            # and there is only one failure to surface.
            gpu_started.wait(timeout=5.0)
            raise ValueError("boom-cpu")

        def boom_gpu_late(args):
            # Already running when the cpu failure aborts the run; its own
            # failure must still be recorded, not silently dropped.
            gpu_started.set()
            time.sleep(0.05)
            raise ValueError("boom-gpu")

        crafted = HeteroPlan(
            tasks=[
                _clone_root_task(plan, "late_failer", "gpu", boom_gpu_late),
                _clone_root_task(plan, "fast_failer", "cpu", boom_cpu),
            ],
            outputs=[("late_failer", 0)],
        )
        with pytest.raises(ExecutionError) as excinfo:
            ThreadedExecutor(crafted).run(make_inputs(graph))
        message = str(excinfo.value)
        assert "boom-cpu" in message
        assert "boom-gpu" in message
        assert "additional worker failure" in message

    def test_repeated_runs_deterministic_outputs(self, machine):
        graph = build_model("siamese", tiny=True)
        partition = partition_graph(graph)
        profiles = CompilerAwareProfiler(machine=machine).profile_partition(
            partition
        )
        placement = {sg.id: ("gpu" if i % 2 else "cpu")
                     for i, sg in enumerate(partition.subgraphs)}
        plan = build_hetero_plan(graph, partition, profiles, placement)
        feeds = make_inputs(graph)
        a = ThreadedExecutor(plan).run(feeds)
        b = ThreadedExecutor(plan).run(feeds)
        for x, y in zip(a.outputs, b.outputs):
            np.testing.assert_array_equal(x, y)


class TestThreadedFaultInjection:
    """Failure paths driven by the deterministic injector (no recovery
    here — the plain executor aborts exactly like on a real fault)."""

    def test_mid_graph_kernel_fault_aborts_run(self, siamese_mixed):
        plan, _, feeds, _ = siamese_mixed
        mid = plan.tasks[1].task_id
        injector = FaultInjector(
            FaultPlan(kernel_faults=(KernelFault(mid, fail_attempts=1),))
        )
        with pytest.raises(ExecutionError, match="injected transient"):
            ThreadedExecutor(plan, fault_injector=injector).run(feeds)
        assert isinstance(injector, FaultInjector)

    def test_mid_graph_fault_is_deterministic(self, siamese_mixed):
        plan, _, feeds, _ = siamese_mixed
        mid = plan.tasks[1].task_id
        for _ in range(3):
            injector = FaultInjector(
                FaultPlan(kernel_faults=(KernelFault(mid, fail_attempts=1),))
            )
            with pytest.raises(ExecutionError) as excinfo:
                ThreadedExecutor(plan, fault_injector=injector).run(feeds)
            assert isinstance(excinfo.value.__cause__, TransientKernelError)
            assert mid in str(excinfo.value)

    def test_both_device_fault_surfaces_both(self, siamese_mixed):
        plan, _, feeds, _ = siamese_mixed
        roots = [t for t in plan.tasks
                 if all(s.kind == "external" for s in t.sources.values())]
        by_dev = {t.device: t.task_id for t in roots}
        assert set(by_dev) == {"cpu", "gpu"}, "need a root on each device"
        injector = FaultInjector(
            FaultPlan(
                kernel_faults=(
                    KernelFault(by_dev["cpu"], fail_attempts=1),
                    KernelFault(by_dev["gpu"], fail_attempts=1),
                )
            )
        )
        with pytest.raises(ExecutionError) as excinfo:
            ThreadedExecutor(plan, fault_injector=injector).run(feeds)
        # Both roots start immediately on their own workers, so both
        # injected faults fire and both appear in the message.
        message = str(excinfo.value)
        assert by_dev["cpu"] in message or by_dev["gpu"] in message

    def test_injected_fault_drains_queued_work(self, machine):
        """An injected failure must drain queued tasks like a real one."""
        graph = build_model("siamese", tiny=True)
        plan = DuetEngine(machine=machine).optimize(graph).plan
        real_fn = plan.tasks[0].module.kernels[0].fn
        ran = []

        def slow(args):
            time.sleep(0.5)
            return real_fn(args)

        def recorder(args):
            ran.append("behind")
            return real_fn(args)

        crafted = HeteroPlan(
            tasks=[
                _clone_root_task(plan, "sleeper", "gpu", slow),
                _clone_root_task(plan, "failer", "cpu", real_fn),
                _clone_root_task(plan, "behind", "gpu", recorder),
            ],
            outputs=[("sleeper", 0)],
        )
        injector = FaultInjector(
            FaultPlan(kernel_faults=(KernelFault("failer", fail_attempts=1),))
        )
        with pytest.raises(ExecutionError, match="injected transient"):
            ThreadedExecutor(crafted, fault_injector=injector).run(
                make_inputs(graph)
            )
        assert ran == []

    def test_device_loss_aborts_plain_executor(self, siamese_mixed):
        plan, _, feeds, _ = siamese_mixed
        gpu_tasks = [t.task_id for t in plan.tasks if t.device == "gpu"]
        injector = FaultInjector(
            FaultPlan(device_losses=(DeviceLoss("gpu", at_task=gpu_tasks[0]),))
        )
        with pytest.raises(ExecutionError, match="was lost"):
            ThreadedExecutor(plan, fault_injector=injector).run(feeds)
