"""Phase-boundary preemption: bit-identity under forced suspension.

ISSUE 8 satellite 2.  The preemption contract — a request suspended at a
phase boundary and resumed later produces output bit-identical to an
uninterrupted run, even when other requests ran through the same
kernel/arena in between — is exercised three ways:

* directly on :meth:`~repro.runtime.core.DispatchKernel.run_preemptible`
  with an always-true predicate (suspend at *every* boundary) and
  arena-clobbering interlopers between segments;
* through :class:`~repro.runtime.session.EngineSession.run_preemptible`
  / :class:`~repro.runtime.session.SuspendedRun`, including serving
  other requests on the same session while suspended;
* through the differential oracle's new ``preempt`` arm over fuzzed
  graphs from :mod:`repro.testing.generators` (every live execution
  path must agree, and the arm itself verifies one suspension per
  plan phase boundary).
"""

import numpy as np
import pytest

from repro.core import DuetEngine
from repro.devices import default_machine
from repro.errors import ExecutionError
from repro.ir import make_inputs
from repro.models import build_model
from repro.runtime.core import (
    DispatchKernel,
    InlineWorkers,
    PhaseCheckpoint,
    ThreadedWorkers,
)
from repro.runtime.memory import TensorArena
from repro.runtime.session import SessionResult, SuspendedRun
from repro.testing.generators import GeneratorConfig, generate_graph
from repro.testing.oracle import EXECUTOR_NAMES, run_differential


@pytest.fixture(scope="module")
def served():
    """A multi-phase model (wide_deep tiny: two plan phases), its
    engine, optimization, inputs, and reference outputs."""
    graph = build_model("wide_deep", tiny=True)
    engine = DuetEngine(machine=default_machine(noisy=False))
    opt = engine.optimize(graph)
    feeds = make_inputs(graph)
    ref = engine.run(opt, feeds).outputs
    return engine, opt, feeds, ref


def phase_boundaries(plan):
    return sum(
        1
        for prev, cur in zip(plan.tasks, plan.tasks[1:])
        if cur.phase_index != prev.phase_index
    )


class TestKernelPreemption:
    def test_always_preempt_suspends_at_every_boundary(self, served):
        engine, opt, feeds, ref = served
        kernel = DispatchKernel(
            opt.plan, workers=InlineWorkers(), arena=TensorArena()
        )
        boundaries = phase_boundaries(opt.plan)
        assert boundaries >= 1  # wide_deep is the multi-phase model

        hops = 0
        out = kernel.run_preemptible(feeds, should_preempt=lambda: True)
        while isinstance(out, PhaseCheckpoint):
            assert out.next_index > 0  # progress guarantee: >= 1 task ran
            assert out.preemptions == hops + 1
            hops += 1
            out = kernel.run_preemptible(
                should_preempt=lambda: True, checkpoint=out
            )
        assert hops == boundaries
        for got, want in zip(out.outputs, ref):
            np.testing.assert_array_equal(got, want)

    def test_interloper_cannot_perturb_suspended_frontier(self, served):
        """Full dispatches through the same kernel (same arena) between
        segments must not change the resumed request's outputs — the
        checkpoint detaches its values from the arena."""
        engine, opt, feeds, ref = served
        other = make_inputs(opt.graph, seed=99)
        kernel = DispatchKernel(
            opt.plan, workers=InlineWorkers(), arena=TensorArena()
        )
        out = kernel.run_preemptible(feeds, should_preempt=lambda: True)
        suspensions = 0
        while isinstance(out, PhaseCheckpoint):
            suspensions += 1
            kernel.run(other)  # interloper overwrites the arena buffers
            out = kernel.run_preemptible(
                should_preempt=lambda: True, checkpoint=out
            )
        assert suspensions >= 1
        for got, want in zip(out.outputs, ref):
            np.testing.assert_array_equal(got, want)

    def test_predicate_consulted_once_per_boundary(self, served):
        engine, opt, feeds, ref = served
        kernel = DispatchKernel(
            opt.plan, workers=InlineWorkers(), arena=TensorArena()
        )
        calls = []

        def never(*, _calls=calls):
            calls.append(1)
            return False

        out = kernel.run_preemptible(feeds, should_preempt=never)
        assert not isinstance(out, PhaseCheckpoint)
        assert len(calls) == phase_boundaries(opt.plan)

    def test_never_preempt_matches_plain_run(self, served):
        engine, opt, feeds, ref = served
        kernel = DispatchKernel(
            opt.plan, workers=InlineWorkers(), arena=TensorArena()
        )
        out = kernel.run_preemptible(feeds, should_preempt=lambda: False)
        for got, want in zip(out.outputs, ref):
            np.testing.assert_array_equal(got, want)
        assert out.task_order == kernel.run(feeds).task_order

    def test_threaded_workers_rejected(self, served):
        engine, opt, feeds, ref = served
        kernel = DispatchKernel(opt.plan, workers=ThreadedWorkers())
        with pytest.raises(ExecutionError, match="InlineWorkers"):
            kernel.run_preemptible(feeds, should_preempt=lambda: True)

    def test_fresh_start_requires_inputs(self, served):
        engine, opt, feeds, ref = served
        kernel = DispatchKernel(
            opt.plan, workers=InlineWorkers(), arena=TensorArena()
        )
        with pytest.raises(ExecutionError, match="inputs"):
            kernel.run_preemptible(should_preempt=lambda: True)

    def test_single_phase_plan_never_suspends(self):
        """A plan with no phase boundaries has no suspension points."""
        graph = build_model("siamese", tiny=True)
        engine = DuetEngine(machine=default_machine(noisy=False))
        opt = engine.optimize(graph)
        if phase_boundaries(opt.plan) != 0:
            pytest.skip("siamese tiny gained a second phase")
        feeds = make_inputs(graph)
        kernel = DispatchKernel(
            opt.plan, workers=InlineWorkers(), arena=TensorArena()
        )
        out = kernel.run_preemptible(feeds, should_preempt=lambda: True)
        assert not isinstance(out, PhaseCheckpoint)
        for got, want in zip(out.outputs, engine.run(opt, feeds).outputs):
            np.testing.assert_array_equal(got, want)


class TestSessionPreemption:
    def test_suspend_resume_bit_identical(self, served):
        engine, opt, feeds, ref = served
        session = engine.session(opt)
        outcome = session.run_preemptible(feeds, should_preempt=lambda: True)
        resumes = 0
        while isinstance(outcome, SuspendedRun):
            assert outcome.phase_index >= 0
            assert outcome.preemptions == resumes + 1
            resumes += 1
            outcome = outcome.resume()
        assert isinstance(outcome, SessionResult)
        assert resumes == phase_boundaries(opt.plan)
        assert outcome.preemptions == resumes
        assert outcome.wall_time_s > 0
        for got, want in zip(outcome.outputs, ref):
            np.testing.assert_array_equal(got, want)

    def test_session_serves_others_while_suspended(self, served):
        """The session lock is released during suspension: the very
        session holding the checkpoint serves interloping requests, and
        the resumed outputs still match the uninterrupted reference."""
        engine, opt, feeds, ref = served
        other = make_inputs(opt.graph, seed=7)
        other_ref = engine.run(opt, other).outputs
        session = engine.session(opt)
        outcome = session.run_preemptible(feeds, should_preempt=lambda: True)
        assert isinstance(outcome, SuspendedRun)
        while isinstance(outcome, SuspendedRun):
            interloper = session.run(other)  # same session, mid-suspension
            for got, want in zip(interloper.outputs, other_ref):
                np.testing.assert_array_equal(got, want)
            outcome = outcome.resume()
        for got, want in zip(outcome.outputs, ref):
            np.testing.assert_array_equal(got, want)

    def test_resume_override_predicate(self, served):
        engine, opt, feeds, ref = served
        session = engine.session(opt)
        outcome = session.run_preemptible(feeds, should_preempt=lambda: True)
        assert isinstance(outcome, SuspendedRun)
        # Overriding with never-preempt finishes in one resume even
        # though the original predicate always fires.
        outcome = outcome.resume(should_preempt=lambda: False)
        assert isinstance(outcome, SessionResult)
        assert outcome.preemptions == 1
        for got, want in zip(outcome.outputs, ref):
            np.testing.assert_array_equal(got, want)

    def test_completion_counts_one_request(self, served):
        engine, opt, feeds, ref = served
        session = engine.session(opt)
        outcome = session.run_preemptible(feeds, should_preempt=lambda: True)
        assert session.requests_served == 0  # not done yet
        while isinstance(outcome, SuspendedRun):
            outcome = outcome.resume()
        assert session.requests_served == 1

    def test_never_preempt_is_plain_run(self, served):
        engine, opt, feeds, ref = served
        session = engine.session(opt)
        outcome = session.run_preemptible(feeds, should_preempt=lambda: False)
        assert isinstance(outcome, SessionResult)
        assert outcome.preemptions == 0
        for got, want in zip(outcome.outputs, ref):
            np.testing.assert_array_equal(got, want)


class TestOraclePreemptArm:
    def test_arm_registered(self):
        assert "preempt" in EXECUTOR_NAMES

    def test_arm_runs_on_zoo_model(self):
        report = run_differential(build_model("wide_deep", tiny=True))
        assert report.ok, report.summary()
        assert "preempt" in report.outcomes
        assert report.outcomes["preempt"].outputs is not None

    @pytest.mark.parametrize("seed", range(4))
    def test_fuzzed_graphs_conform(self, seed):
        """Small fuzzed graphs through every arm, preemption included."""
        config = GeneratorConfig(min_ops=3, max_ops=10)
        graph = generate_graph(
            np.random.default_rng(seed), config, name=f"preempt_fuzz_{seed}"
        )
        report = run_differential(graph, single_device=False)
        assert report.ok, report.summary()
        preempt_arms = [n for n in report.outcomes if n.startswith("preempt")]
        assert preempt_arms

    @pytest.mark.fuzz
    @pytest.mark.parametrize("seed", range(4, 24))
    def test_fuzzed_graphs_conform_extended(self, seed):
        config = GeneratorConfig(min_ops=3, max_ops=10)
        graph = generate_graph(
            np.random.default_rng(seed), config, name=f"preempt_fuzz_{seed}"
        )
        # Some seeds trip a known partitioner chain-invariant issue
        # before any executor runs; that is not this suite's subject.
        from repro.core.partition import partition_graph
        from repro.testing.invariants import check_partition

        if check_partition(graph, partition_graph(graph)):
            pytest.skip("pre-existing partition invariant violation")
        report = run_differential(graph, single_device=False)
        assert report.ok, report.summary()
