"""Tests for the latency-distribution harness."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.runtime import LatencyStats, measure_latency


class TestLatencyStats:
    def test_from_samples(self):
        stats = LatencyStats.from_samples(np.linspace(1e-3, 2e-3, 1001))
        assert stats.p50 == pytest.approx(1.5e-3)
        assert stats.mean == pytest.approx(1.5e-3)
        assert stats.p99 > stats.p50
        assert stats.p999 >= stats.p99
        assert stats.n_samples == 1001

    def test_ms_properties(self):
        stats = LatencyStats.from_samples(np.full(10, 2e-3))
        assert stats.p50_ms == pytest.approx(2.0)
        assert stats.mean_ms == pytest.approx(2.0)

    def test_empty_samples_raise(self):
        with pytest.raises(ExecutionError):
            LatencyStats.from_samples(np.array([]))


class TestMeasureLatency:
    def test_warmup_excluded(self):
        calls = []

        def run_once(rng):
            calls.append(1)
            # First 10 calls (warm-up) are slow; the rest fast.
            return 100.0 if len(calls) <= 10 else 1.0

        stats = measure_latency(run_once, n_runs=50, warmup=10)
        assert stats.mean == pytest.approx(1.0)
        assert len(calls) == 60

    def test_deterministic_given_seed(self):
        def run_once(rng):
            return float(rng.random())

        a = measure_latency(run_once, n_runs=100, warmup=0, seed=3)
        b = measure_latency(run_once, n_runs=100, warmup=0, seed=3)
        assert a.mean == b.mean
        c = measure_latency(run_once, n_runs=100, warmup=0, seed=4)
        assert a.mean != c.mean

    def test_percentile_ordering(self):
        def run_once(rng):
            return float(rng.lognormal(0.0, 0.5))

        stats = measure_latency(run_once, n_runs=2000, warmup=0)
        assert stats.p50 < stats.p99 < stats.p999
