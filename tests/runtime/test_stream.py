"""Tests for request-stream simulation."""

import numpy as np
import pytest

from repro.core import DuetEngine
from repro.errors import ExecutionError
from repro.models import build_model
from repro.runtime import run_single_device, simulate
from repro.runtime.single import single_device_plan
from repro.runtime.stream import simulate_stream


@pytest.fixture(scope="module")
def wd_plans():
    from repro.devices import default_machine

    machine = default_machine(noisy=False)
    engine = DuetEngine(machine=machine)
    graph = build_model("wide_deep")
    opt = engine.optimize(graph)
    gpu_module = engine.compiler.compile_gpu(graph)
    return machine, opt.plan, single_device_plan(gpu_module, "gpu")


class TestStream:
    def test_single_request_matches_overlap_simulate(self, wd_plans):
        # The stream replay uses the overlapped (ready-ordered) link
        # discipline, so one request prices exactly as simulate(overlap=True).
        machine, duet_plan, _ = wd_plans
        stream = simulate_stream(duet_plan, machine, n_requests=1)
        single = simulate(duet_plan, machine, overlap=True)
        assert stream.latencies[0] == single.latency
        assert stream.makespan == single.latency

    def test_sparse_arrivals_have_unqueued_latency(self, wd_plans):
        machine, duet_plan, _ = wd_plans
        single = simulate(duet_plan, machine, overlap=True).latency
        stream = simulate_stream(
            duet_plan, machine, n_requests=5, interarrival_s=single * 3
        )
        for lat in stream.latencies:
            assert lat == pytest.approx(single, rel=1e-6)

    def test_burst_latencies_grow_with_queueing(self, wd_plans):
        machine, duet_plan, _ = wd_plans
        stream = simulate_stream(duet_plan, machine, n_requests=10)
        assert stream.latencies[-1] > stream.latencies[0]

    def test_duet_throughput_beats_single_gpu(self, wd_plans):
        machine, duet_plan, gpu_plan = wd_plans
        duet = simulate_stream(duet_plan, machine, n_requests=50)
        gpu = simulate_stream(gpu_plan, machine, n_requests=50)
        assert duet.throughput > gpu.throughput * 1.5

    def test_throughput_bounded_by_bottleneck_device(self, wd_plans):
        machine, duet_plan, _ = wd_plans
        stream = simulate_stream(duet_plan, machine, n_requests=100)
        # Per-request busy time of the most loaded device bounds throughput.
        busy = {"cpu": 0.0, "gpu": 0.0}
        for task in duet_plan.tasks:
            device = machine.device(task.device)
            busy[task.device] += sum(
                device.kernel_time(k.cost) for k in task.module.kernels
            )
        bottleneck = max(busy.values())
        assert stream.throughput <= 1.0 / bottleneck * 1.001

    def test_zero_requests_rejected(self, wd_plans):
        machine, duet_plan, _ = wd_plans
        with pytest.raises(ExecutionError):
            simulate_stream(duet_plan, machine, n_requests=0)

    def test_noisy_stream_reproducible(self, wd_plans):
        from repro.devices import default_machine

        noisy = default_machine(noisy=True)
        _, duet_plan, _ = wd_plans
        a = simulate_stream(
            duet_plan, noisy, n_requests=20, rng=np.random.default_rng(3)
        )
        b = simulate_stream(
            duet_plan, noisy, n_requests=20, rng=np.random.default_rng(3)
        )
        assert a.latencies == b.latencies
