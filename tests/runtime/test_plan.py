"""Tests for HeteroPlan validation."""

import pytest

from repro.compiler import CPU_TARGET, lower
from repro.errors import SchedulingError
from repro.ir import GraphBuilder
from repro.runtime import HeteroPlan, Source, TaskSpec


def _module():
    b = GraphBuilder("m")
    x = b.input("x", (2, 2))
    return lower(b.build(b.op("relu", x)), CPU_TARGET)


def _task(tid="t0", device="cpu", sources=None):
    mod = _module()
    if sources is None:
        sources = {"x": Source(kind="external", ref="x")}
    return TaskSpec(task_id=tid, device=device, module=mod, sources=sources)


class TestSource:
    def test_invalid_kind_rejected(self):
        with pytest.raises(SchedulingError):
            Source(kind="magic", ref="x")

    def test_valid_kinds(self):
        Source(kind="external", ref="x")
        Source(kind="task", ref="t1", output_index=1)


class TestTaskSpec:
    def test_invalid_device_rejected(self):
        # Plans are machine-agnostic: any non-empty name is a device (it
        # is checked against a concrete machine at assembly/simulation),
        # but empty/non-string names are malformed outright.
        with pytest.raises(SchedulingError):
            _task(device="")
        with pytest.raises(SchedulingError):
            _task(device=None)

    def test_mesh_device_accepted(self):
        assert _task(device="gpu1").device == "gpu1"

    def test_unwired_input_rejected(self):
        with pytest.raises(SchedulingError):
            _task(sources={})


class TestHeteroPlan:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(SchedulingError):
            HeteroPlan(tasks=[_task("a"), _task("a")], outputs=[("a", 0)])

    def test_forward_dependency_rejected(self):
        t1 = _task("t1", sources={"x": Source(kind="task", ref="t2")})
        t2 = _task("t2")
        with pytest.raises(SchedulingError):
            HeteroPlan(tasks=[t1, t2], outputs=[("t1", 0)])

    def test_unknown_output_rejected(self):
        with pytest.raises(SchedulingError):
            HeteroPlan(tasks=[_task("a")], outputs=[("ghost", 0)])

    def test_valid_chain(self):
        t1 = _task("t1")
        t2 = _task("t2", sources={"x": Source(kind="task", ref="t1")})
        plan = HeteroPlan(tasks=[t1, t2], outputs=[("t2", 0)])
        assert plan.task("t1") is t1
        assert plan.devices_used() == {"cpu"}

    def test_unknown_task_lookup_raises(self):
        plan = HeteroPlan(tasks=[_task("a")], outputs=[("a", 0)])
        with pytest.raises(SchedulingError):
            plan.task("b")
