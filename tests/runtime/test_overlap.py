"""Tests for the double-buffered (overlap) transfer discipline.

Covers the shared discrete-event core (:mod:`repro.runtime.overlap`),
``simulate(..., overlap=True)``, the prefetching transfer worker of the
threaded executor, and the bit-identity guarantee: overlap changes the
virtual clock, never the data.
"""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.ir import GraphBuilder
from repro.runtime import Source, simulate
from repro.runtime.faults import FaultInjector, FaultPlan, TransferFault
from repro.runtime.overlap import replay_plan
from repro.runtime.plan import HeteroPlan
from repro.runtime.threaded import ThreadedExecutor

from .test_simulator import _dense_graph, _ext, _task


def _late_vs_bulk_plan():
    """Two tasks whose lazy link order wastes the bulk transfer window.

    ``t_u`` computes on the CPU for a while and feeds its small output to
    the GPU join ``t_j``; the join *also* consumes a 1 MB external input,
    listed after ``u`` in its sources.  The lazy discipline reaches the
    join's transfers in source order — the bulk copy queues behind the
    late ``u`` tensor even though it was ready at arrival.  The overlap
    discipline ships it at t=0, inside ``t_u``'s compute window.
    """
    u_graph = _dense_graph("u", units=256, in_dim=256)

    n = 256 * 1024  # 1 MB of float32
    b = GraphBuilder("join")
    ju = b.input("u_in", (1, 256))
    jb = b.input("xb", (1, n))
    j = b.op("concat", ju, jb, axis=1)
    j_graph = b.build(b.op("reduce_mean", j, axis=1, keepdims=True))

    t_u = _task(u_graph, "t_u", "cpu", _ext("x"))
    t_j = _task(
        j_graph,
        "t_j",
        "gpu",
        {
            "u_in": Source(kind="task", ref="t_u", output_index=0),
            "xb": Source(kind="external", ref="xb"),
        },
    )
    return HeteroPlan(tasks=[t_u, t_j], outputs=[("t_j", 0)])


class TestLinkReadyOrder:
    def test_bulk_external_transfer_not_blocked_by_late_tensor(self, machine):
        """Regression: plan-iteration order must not delay ready transfers."""
        plan = _late_vs_bulk_plan()
        lazy = simulate(plan, machine)
        eager = simulate(plan, machine, overlap=True)

        u_finish = next(r for r in lazy.tasks if r.task_id == "t_u").finish
        lazy_bulk = next(t for t in lazy.transfers if t.what == "external:xb")
        eager_bulk = next(t for t in eager.transfers if t.what == "external:xb")
        # Lazy reaches the join's sources only in task order: the bulk
        # copy queues behind the late ``u`` tensor.
        assert lazy_bulk.start >= u_finish
        # Overlap serves the link in ready order: the external input was
        # ready at arrival and ships immediately.
        assert eager_bulk.start == pytest.approx(0.0)
        # The recovered window — the bulk copy overlapping ``t_u``'s
        # compute — is the whole point.
        assert eager.latency < lazy.latency
        assert lazy.latency - eager.latency >= 0.5 * u_finish

    def test_overlap_timeline_keeps_link_serialized(self, machine):
        plan = _late_vs_bulk_plan()
        result = simulate(plan, machine, overlap=True)
        xfers = sorted(result.transfers, key=lambda t: t.start)
        for prev, cur in zip(xfers, xfers[1:]):
            assert cur.start >= prev.finish - 1e-12

    def test_replay_is_deterministic(self, machine):
        plan = _late_vs_bulk_plan()
        a = replay_plan(plan, machine, arrivals=[0.0])
        b = replay_plan(plan, machine, arrivals=[0.0])
        assert a.completions == b.completions
        assert [
            (t.what, t.start, t.finish) for t in a.transfers
        ] == [(t.what, t.start, t.finish) for t in b.transfers]


class TestBitIdentity:
    def test_overlap_outputs_bit_identical(self, machine):
        plan = _late_vs_bulk_plan()
        feeds = {
            "x": np.random.default_rng(0)
            .standard_normal((1, 256))
            .astype(np.float32),
            "xb": np.random.default_rng(1)
            .standard_normal((1, 256 * 1024))
            .astype(np.float32),
        }
        lazy = simulate(plan, machine, inputs=feeds)
        eager = simulate(plan, machine, inputs=feeds, overlap=True)
        assert lazy.outputs is not None and eager.outputs is not None
        for a, b in zip(lazy.outputs, eager.outputs):
            assert a.dtype == b.dtype and a.shape == b.shape
            assert np.array_equal(a, b)

    def test_threaded_prefetch_outputs_bit_identical(self, machine):
        plan = _late_vs_bulk_plan()
        feeds = {
            "x": np.random.default_rng(2)
            .standard_normal((1, 256))
            .astype(np.float32),
            "xb": np.random.default_rng(3)
            .standard_normal((1, 256 * 1024))
            .astype(np.float32),
        }
        plain = ThreadedExecutor(plan).run(feeds)
        prefetched = ThreadedExecutor(plan, overlap=True).run(feeds)
        for a, b in zip(plain.outputs, prefetched.outputs):
            assert np.array_equal(a, b)
        # Placement is still honored by the prefetching configuration.
        for tid, dev in prefetched.task_worker.items():
            assert plan.task(tid).device == dev


class TestGuards:
    def test_overlap_rejects_fault_injection(self, machine):
        plan = _late_vs_bulk_plan()
        injector = FaultInjector(
            FaultPlan(
                transfer_faults=[
                    TransferFault(ref="xb", dest_device="gpu")
                ]
            )
        )
        with pytest.raises(ExecutionError, match="overlap"):
            simulate(plan, machine, overlap=True, injector=injector)

    def test_lazy_default_unchanged_by_flag_plumbing(self, machine):
        plan = _late_vs_bulk_plan()
        assert (
            simulate(plan, machine).latency
            == simulate(plan, machine, overlap=False).latency
        )


class TestDifferentialOracle:
    def test_xfer_bound_shape_conforms_across_all_arms(self, machine):
        """The oracle's overlap arms agree on a transfer-bound graph."""
        from repro.models.common import dense_layer, last_timestep, lstm_layer
        from repro.testing import run_differential

        b = GraphBuilder("xfer_bound_tiny")
        xu = b.input("xu", (1, 6, 16))
        xw = b.input("xw", (1, 8))
        xb = b.input("xb", (1, 4096))
        yu = lstm_layer(b, xu, 16, "u_lstm", return_sequences=True)
        yu = last_timestep(b, yu)
        yu = dense_layer(b, yu, 8, "u_head", activation=None)
        s = b.literal(np.asarray([2.0], dtype=np.float32), name="w_scale")
        yw = b.op("multiply", xw, s)
        j = b.op("concat", yu, yw, xb, axis=1)
        graph = b.build(b.op("reduce_mean", j, axis=1, keepdims=True))

        report = run_differential(graph, machine)
        assert report.ok, report.summary()
        assert any("simulator:overlap" in n for n in report.outcomes)
        assert any("threaded:overlap" in n for n in report.outcomes)
