"""Tests for the discrete-event simulator's execution semantics."""

import numpy as np
import pytest

from repro.compiler import CPU_TARGET, GPU_TARGET, lower
from repro.ir import GraphBuilder, make_inputs, run_graph
from repro.runtime import (
    HeteroPlan,
    Source,
    TaskSpec,
    run_single_device,
    simulate,
)


def _dense_graph(name="m", units=64, in_dim=64):
    b = GraphBuilder(name)
    x = b.input("x", (1, in_dim))
    w = b.const((units, in_dim))
    return b.build(b.op("relu", b.op("dense", x, w)))


def _task(graph, tid, device, sources):
    target = GPU_TARGET if device == "gpu" else CPU_TARGET
    return TaskSpec(
        task_id=tid, device=device, module=lower(graph, target), sources=sources
    )


def _ext(*names):
    return {n: Source(kind="external", ref=n) for n in names}


class TestSingleDevice:
    def test_cpu_latency_is_kernel_sum(self, machine):
        g = _dense_graph()
        mod = lower(g, CPU_TARGET)
        result = run_single_device(mod, "cpu", machine)
        expected = sum(machine.cpu.kernel_time(k.cost) for k in mod.kernels)
        assert result.latency == pytest.approx(expected)
        assert result.transfers == []

    def test_gpu_pays_io_transfers(self, machine):
        g = _dense_graph()
        mod = lower(g, GPU_TARGET)
        result = run_single_device(mod, "gpu", machine)
        kernel_time = sum(machine.gpu.kernel_time(k.cost) for k in mod.kernels)
        assert result.latency > kernel_time
        assert len(result.transfers) == 2  # input H2D + output D2H

    def test_kernel_records_contiguous(self, machine, tiny_model):
        mod = lower(tiny_model, CPU_TARGET)
        result = run_single_device(mod, "cpu", machine)
        kernels = result.tasks[0].kernels
        for prev, cur in zip(kernels, kernels[1:]):
            assert cur.start == pytest.approx(prev.finish)


class TestConcurrency:
    def _two_branch_plan(self, devices):
        g1 = _dense_graph("m1")
        g2 = _dense_graph("m2")
        t1 = _task(g1, "t1", devices[0], _ext("x"))
        t2 = _task(g2, "t2", devices[1], _ext("x"))
        return HeteroPlan(tasks=[t1, t2], outputs=[("t1", 0), ("t2", 0)])

    def test_different_devices_overlap(self, machine):
        plan = self._two_branch_plan(("cpu", "gpu"))
        result = simulate(plan, machine)
        r1 = result.task_record("t1")
        r2 = result.task_record("t2")
        # both may start immediately (input transfer aside): t1 on cpu at 0.
        assert r1.start == 0.0
        assert r2.start < r1.finish or r1.start < r2.finish  # overlap exists

    def test_same_device_serializes(self, machine):
        plan = self._two_branch_plan(("cpu", "cpu"))
        result = simulate(plan, machine)
        r1 = result.task_record("t1")
        r2 = result.task_record("t2")
        assert r2.start >= r1.finish

    def test_split_overlaps_instead_of_serializing(self, machine):
        split = simulate(self._two_branch_plan(("cpu", "gpu")), machine)
        r1 = split.task_record("t1")
        r2 = split.task_record("t2")
        serial_bound = (
            r1.duration
            + r2.duration
            + sum(t.duration for t in split.transfers)
        )
        assert split.latency < serial_bound


class TestTransfers:
    def _chain_plan(self, dev1, dev2):
        g1 = _dense_graph("m1")
        t1 = _task(g1, "t1", dev1, _ext("x"))
        out_id = t1.module.output_ids[0]
        g2b = GraphBuilder("m2")
        h = g2b.input(out_id, (1, 64))
        w = g2b.const((8, 64))
        g2 = g2b.build(g2b.op("dense", h, w))
        t2 = _task(g2, "t2", dev2, {out_id: Source(kind="task", ref="t1")})
        return HeteroPlan(tasks=[t1, t2], outputs=[("t2", 0)])

    def test_same_device_chain_has_no_transfer(self, machine):
        result = simulate(self._chain_plan("cpu", "cpu"), machine)
        assert result.transfers == []

    def test_cross_device_chain_pays_transfer(self, machine):
        result = simulate(self._chain_plan("cpu", "gpu"), machine)
        # t1 output H2D + final output D2H
        assert len(result.transfers) == 2
        r1 = result.task_record("t1")
        r2 = result.task_record("t2")
        transfer = next(t for t in result.transfers if t.what.startswith("task:t1"))
        assert transfer.start >= r1.finish
        assert r2.start >= transfer.finish

    def test_transfer_cached_for_repeat_consumers(self, machine):
        g1 = _dense_graph("m1")
        t1 = _task(g1, "t1", "cpu", _ext("x"))
        out_id = t1.module.output_ids[0]

        def consumer(name):
            bb = GraphBuilder(name)
            h = bb.input(out_id, (1, 64))
            w = bb.const((8, 64))
            return bb.build(bb.op("dense", h, w))

        t2 = _task(consumer("m2"), "t2", "gpu", {out_id: Source(kind="task", ref="t1")})
        t3 = _task(consumer("m3"), "t3", "gpu", {out_id: Source(kind="task", ref="t1")})
        plan = HeteroPlan(tasks=[t1, t2, t3], outputs=[("t2", 0), ("t3", 0)])
        result = simulate(plan, machine)
        h2d = [t for t in result.transfers if t.what.startswith("task:t1")]
        assert len(h2d) == 1  # transferred once, reused by t3

    def test_external_input_to_gpu_transferred_once(self, machine):
        g1 = _dense_graph("m1")
        g2 = _dense_graph("m2")
        t1 = _task(g1, "t1", "gpu", _ext("x"))
        t2 = _task(g2, "t2", "gpu", _ext("x"))
        plan = HeteroPlan(tasks=[t1, t2], outputs=[("t1", 0), ("t2", 0)])
        result = simulate(plan, machine)
        ext = [t for t in result.transfers if t.what == "external:x"]
        assert len(ext) == 1

    def test_link_serializes_transfers(self, machine):
        # Two big tensors crossing at once: second waits for the first.
        big = 1 << 20
        bb = GraphBuilder("big")
        x = bb.input("x", (1, big // 4))
        g = bb.build(bb.op("relu", x))
        t1 = _task(g, "t1", "gpu", _ext("x"))
        bb2 = GraphBuilder("big2")
        y = bb2.input("y", (1, big // 4))
        g2 = bb2.build(bb2.op("relu", y))
        t2 = _task(g2, "t2", "gpu", {"y": Source(kind="external", ref="y")})
        plan = HeteroPlan(tasks=[t1, t2], outputs=[("t1", 0), ("t2", 0)])
        result = simulate(plan, machine)
        h2d = sorted(
            (t for t in result.transfers if t.what.startswith("external")),
            key=lambda t: t.start,
        )
        assert h2d[1].start >= h2d[0].finish


class TestNumericExecution:
    def test_outputs_match_interpreter(self, machine, diamond_graph):
        mod = lower(diamond_graph, CPU_TARGET)
        feeds = make_inputs(diamond_graph)
        result = run_single_device(mod, "cpu", machine, inputs=feeds)
        ref = run_graph(diamond_graph, feeds)
        np.testing.assert_allclose(result.outputs[0], ref[0], rtol=1e-5)

    def test_cross_device_values_flow(self, machine):
        g1 = _dense_graph("m1")
        t1 = _task(g1, "t1", "cpu", _ext("x"))
        out_id = t1.module.output_ids[0]
        bb = GraphBuilder("m2")
        h = bb.input(out_id, (1, 64))
        g2 = bb.build(bb.op("tanh", h))
        t2 = _task(g2, "t2", "gpu", {out_id: Source(kind="task", ref="t1")})
        plan = HeteroPlan(tasks=[t1, t2], outputs=[("t2", 0)])
        feeds = {"x": np.random.default_rng(0).standard_normal((1, 64)).astype(np.float32)}
        result = simulate(plan, machine, inputs=feeds)
        want = np.tanh(t1.module.run(feeds)[0])
        np.testing.assert_allclose(result.outputs[0], want, rtol=1e-5)

    def test_no_inputs_no_outputs(self, machine, diamond_graph):
        mod = lower(diamond_graph, CPU_TARGET)
        result = run_single_device(mod, "cpu", machine)
        assert result.outputs is None


class TestNoiseMode:
    def test_sampled_latency_varies(self, noisy_machine, diamond_graph):
        mod = lower(diamond_graph, CPU_TARGET)
        rng = np.random.default_rng(0)
        xs = {
            run_single_device(mod, "cpu", noisy_machine, rng=rng).latency
            for _ in range(10)
        }
        assert len(xs) > 1

    def test_mean_mode_deterministic(self, machine, diamond_graph):
        mod = lower(diamond_graph, CPU_TARGET)
        a = run_single_device(mod, "cpu", machine).latency
        b = run_single_device(mod, "cpu", machine).latency
        assert a == b
