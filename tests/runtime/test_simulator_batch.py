"""Regression tests: vectorized sampling and the timing-only fast path."""

import numpy as np
import pytest

from repro.core import DuetEngine
from repro.errors import ExecutionError
from repro.models import build_model
from repro.runtime import (
    measure_latency,
    measure_latency_batch,
    simulate,
    simulate_batch,
)


@pytest.fixture
def noisy_plan(noisy_machine):
    engine = DuetEngine(machine=noisy_machine)
    return engine.optimize(build_model("wide_deep", tiny=True)).plan


class TestSimulateBatch:
    def test_n1_bit_identical_to_scalar_sampled(self, noisy_plan, noisy_machine):
        for seed in range(5):
            scalar = simulate(
                noisy_plan, noisy_machine, rng=np.random.default_rng(seed)
            ).latency
            batch = simulate_batch(
                noisy_plan, noisy_machine, np.random.default_rng(seed), 1
            )
            assert batch.shape == (1,)
            assert batch[0] == scalar

    def test_seeded_determinism(self, noisy_plan, noisy_machine):
        a = simulate_batch(noisy_plan, noisy_machine, np.random.default_rng(7), 100)
        b = simulate_batch(noisy_plan, noisy_machine, np.random.default_rng(7), 100)
        np.testing.assert_array_equal(a, b)

    def test_noise_free_machine_reproduces_mean(self, machine):
        engine = DuetEngine(machine=machine)
        opt = engine.optimize(build_model("siamese", tiny=True))
        mean = simulate(opt.plan, machine).latency
        batch = simulate_batch(opt.plan, machine, np.random.default_rng(0), 8)
        assert np.all(batch == mean)

    def test_distribution_matches_sequential_scalar(self, noisy_plan, noisy_machine):
        """Batched percentiles agree with the old one-run-at-a-time loop."""
        seq = measure_latency(
            lambda rng: simulate(noisy_plan, noisy_machine, rng=rng).latency,
            n_runs=2000,
            warmup=0,
            seed=1,
        )
        bat = measure_latency_batch(
            lambda rng, n: simulate_batch(noisy_plan, noisy_machine, rng, n),
            n_runs=2000,
            warmup=0,
            seed=1,
        )
        assert bat.mean == pytest.approx(seq.mean, rel=0.02)
        assert bat.p50 == pytest.approx(seq.p50, rel=0.02)
        assert bat.p99 == pytest.approx(seq.p99, rel=0.05)

    def test_invalid_n_runs_raises(self, noisy_plan, noisy_machine):
        with pytest.raises(ExecutionError, match="n_runs"):
            simulate_batch(noisy_plan, noisy_machine, np.random.default_rng(0), 0)


class TestTimingOnlyFastPath:
    def test_latency_bit_identical_to_full_records(self, machine):
        engine = DuetEngine(machine=machine)
        opt = engine.optimize(build_model("mtdnn", tiny=True))
        full = simulate(opt.plan, machine)
        fast = simulate(opt.plan, machine, record_kernels=False)
        assert fast.latency == full.latency
        assert all(rec.kernels == () for rec in fast.tasks)
        assert any(rec.kernels for rec in full.tasks)

    def test_precomputed_kernel_times_bit_identical(self, machine):
        engine = DuetEngine(machine=machine)
        opt = engine.optimize(build_model("wide_deep", tiny=True))
        times = {
            t.task_id: [
                machine.device(t.device).kernel_time(k.cost)
                for k in t.module.kernels
            ]
            for t in opt.plan.tasks
        }
        full = simulate(opt.plan, machine)
        fast = simulate(
            opt.plan, machine, record_kernels=False, kernel_times=times
        )
        assert fast.latency == full.latency

    def test_numeric_execution_unaffected(self, machine):
        from repro.ir import make_inputs, run_graph

        graph = build_model("siamese", tiny=True)
        engine = DuetEngine(machine=machine)
        opt = engine.optimize(graph)
        feeds = make_inputs(graph)
        result = simulate(opt.plan, machine, inputs=feeds)
        for got, want in zip(result.outputs, run_graph(graph, feeds)):
            np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)


class TestMeasureLatencyBatch:
    def test_warmup_excluded(self):
        def sampler(rng, n):
            return np.arange(n, dtype=float)

        stats = measure_latency_batch(sampler, n_runs=50, warmup=10)
        assert stats.n_samples == 50
        assert stats.mean == pytest.approx(np.arange(10, 60).mean())

    def test_bad_shape_raises(self):
        with pytest.raises(ExecutionError, match="shape"):
            measure_latency_batch(lambda rng, n: np.zeros((n, 2)), n_runs=10)

    def test_deterministic_given_seed(self):
        def sampler(rng, n):
            return rng.random(n)

        a = measure_latency_batch(sampler, n_runs=100, warmup=0, seed=3)
        b = measure_latency_batch(sampler, n_runs=100, warmup=0, seed=3)
        c = measure_latency_batch(sampler, n_runs=100, warmup=0, seed=4)
        assert a.mean == b.mean
        assert a.mean != c.mean
