"""Property-based tests: simulator timing invariants on random graphs.

For any valid placement of any random DAG, the simulated latency must sit
between two analytic bounds:

* lower bound: the busiest device's total work, and the (profiled)
  critical path through the subgraph DAG;
* upper bound: total work + total transfer time (full serialization).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import partition_graph
from repro.core.placement import build_hetero_plan
from repro.core.profiler import CompilerAwareProfiler
from repro.devices import default_machine
from repro.runtime.simulator import simulate
from tests.strategies import random_graphs

_MACHINE = default_machine(noisy=False)


def _setup(graph):
    partition = partition_graph(graph)
    profiles = CompilerAwareProfiler(machine=_MACHINE).profile_partition(partition)
    return partition, profiles


def _placement_from_bits(partition, bits: int):
    return {
        sg.id: ("gpu" if (bits >> i) & 1 else "cpu")
        for i, sg in enumerate(partition.subgraphs)
    }


@settings(max_examples=25, deadline=None)
@given(random_graphs(max_ops=16), st.integers(0, 2**16 - 1))
def test_latency_at_least_busiest_device(graph, bits):
    if not graph.pruned().op_nodes():
        return
    partition, profiles = _setup(graph)
    placement = _placement_from_bits(partition, bits)
    plan = build_hetero_plan(graph.pruned(), partition, profiles, placement)
    result = simulate(plan, _MACHINE)

    busy = {"cpu": 0.0, "gpu": 0.0}
    for task in plan.tasks:
        device = _MACHINE.device(task.device)
        busy[task.device] += sum(
            device.kernel_time(k.cost) for k in task.module.kernels
        )
    assert result.latency >= max(busy.values()) - 1e-12


@settings(max_examples=25, deadline=None)
@given(random_graphs(max_ops=16), st.integers(0, 2**16 - 1))
def test_latency_at_most_full_serialization(graph, bits):
    if not graph.pruned().op_nodes():
        return
    partition, profiles = _setup(graph)
    placement = _placement_from_bits(partition, bits)
    plan = build_hetero_plan(graph.pruned(), partition, profiles, placement)
    result = simulate(plan, _MACHINE)

    total_work = sum(
        sum(
            _MACHINE.device(task.device).kernel_time(k.cost)
            for k in task.module.kernels
        )
        for task in plan.tasks
    )
    total_transfer = sum(t.duration for t in result.transfers)
    assert result.latency <= total_work + total_transfer + 1e-12


@settings(max_examples=25, deadline=None)
@given(random_graphs(max_ops=16), st.integers(0, 2**16 - 1))
def test_task_records_consistent(graph, bits):
    if not graph.pruned().op_nodes():
        return
    partition, profiles = _setup(graph)
    placement = _placement_from_bits(partition, bits)
    plan = build_hetero_plan(graph.pruned(), partition, profiles, placement)
    result = simulate(plan, _MACHINE)

    # Per-device FIFO: tasks on the same device never overlap.
    for dev in ("cpu", "gpu"):
        recs = sorted(
            (r for r in result.tasks if r.device == dev), key=lambda r: r.start
        )
        for a, b in zip(recs, recs[1:]):
            assert b.start >= a.finish - 1e-12
    # Dependencies: a consumer never starts before its producer finishes.
    finish = {r.task_id: r.finish for r in result.tasks}
    for task in plan.tasks:
        rec = result.task_record(task.task_id)
        for src in task.sources.values():
            if src.kind == "task":
                assert rec.start >= finish[src.ref] - 1e-12


@settings(max_examples=15, deadline=None)
@given(random_graphs(max_ops=14), st.integers(0, 2**14 - 1))
def test_noise_free_sampling_matches_mean(graph, bits):
    if not graph.pruned().op_nodes():
        return
    partition, profiles = _setup(graph)
    placement = _placement_from_bits(partition, bits)
    plan = build_hetero_plan(graph.pruned(), partition, profiles, placement)
    mean = simulate(plan, _MACHINE).latency
    sampled = simulate(plan, _MACHINE, rng=np.random.default_rng(0)).latency
    # The noiseless machine has zero-variance noise models.
    assert sampled == mean
