"""Tests for reusable engine sessions (plan once, serve many)."""

import threading

import numpy as np
import pytest

from repro.core import DuetEngine
from repro.ir import make_inputs
from repro.models import build_model
from repro.runtime.session import EngineSession, SessionResult


@pytest.fixture(scope="module")
def served():
    """One graph, its engine, and the inputs every test reuses."""
    from repro.devices import default_machine

    graph = build_model("wide_deep", tiny=True)
    engine = DuetEngine(machine=default_machine(noisy=False))
    return engine, graph, make_inputs(graph)


class TestEngineSession:
    def test_repeated_calls_bit_identical_to_fresh_engine_run(self, served):
        engine, graph, feeds = served
        session = engine.session(graph)
        ref = engine.run(session.opt, feeds).outputs
        for _ in range(3):
            result = session.run(feeds)
            assert isinstance(result, SessionResult)
            assert len(result.outputs) == len(ref)
            for got, want in zip(result.outputs, ref):
                np.testing.assert_array_equal(got, want)

    def test_outputs_survive_later_requests(self, served):
        engine, graph, feeds = served
        session = engine.session(graph)
        first = session.run(feeds).outputs
        kept = [np.copy(o) for o in first]
        session.run(feeds)  # overwrites the arena's buffers
        for a, b in zip(first, kept):
            np.testing.assert_array_equal(a, b)

    def test_arena_stops_allocating_after_warmup(self, served):
        engine, graph, feeds = served
        session = engine.session(graph)
        session.run(feeds)
        allocations = session.arena.allocations
        buffers = session.arena.buffer_count
        for _ in range(5):
            session.run(feeds)
        assert session.arena.allocations == allocations
        assert session.arena.buffer_count == buffers

    def test_preallocation_covers_first_request(self, served):
        engine, graph, feeds = served
        session = engine.session(graph, preallocate=True)
        before = session.arena.allocations
        assert before > 0  # sized from declared node types at construction
        session.run(feeds)
        assert session.arena.allocations == before

    def test_session_from_existing_optimization(self, served):
        engine, graph, feeds = served
        opt = engine.optimize(graph)
        session = engine.session(opt)
        assert session.opt is opt
        assert session.plan is opt.plan
        result = session.run(feeds)
        for got, want in zip(result.outputs, engine.run(opt, feeds).outputs):
            np.testing.assert_array_equal(got, want)

    def test_run_many_counts_requests(self, served):
        engine, graph, feeds = served
        session = engine.session(graph)
        results = session.run_many([feeds] * 4)
        assert len(results) == 4
        assert session.requests_served == 4
        assert all(r.wall_time_s > 0 for r in results)

    def test_trace_sink_sees_every_task(self, served):
        engine, graph, feeds = served
        events = []
        session = engine.session(graph, trace_sink=events.append)
        session.run(feeds)
        n_tasks = len(session.plan.tasks)
        assert sum(e.kind == "task-start" for e in events) == n_tasks
        assert sum(e.kind == "task-finish" for e in events) == n_tasks

    def test_direct_construction_from_plan(self, served):
        engine, graph, feeds = served
        opt = engine.optimize(graph)
        session = EngineSession(opt.plan)
        result = session.run(feeds)
        for got, want in zip(result.outputs, engine.run(opt, feeds).outputs):
            np.testing.assert_array_equal(got, want)


class TestSessionThreadSafety:
    def test_concurrent_sessions_smoke(self, served):
        """Separate sessions serve concurrently without interference."""
        engine, graph, feeds = served
        opt = engine.optimize(graph)
        ref = engine.run(opt, feeds).outputs
        failures = []

        def serve():
            try:
                session = engine.session(opt)
                for _ in range(3):
                    for got, want in zip(session.run(feeds).outputs, ref):
                        np.testing.assert_array_equal(got, want)
            except Exception as exc:  # noqa: BLE001 - surfaced to the test
                failures.append(exc)

        threads = [threading.Thread(target=serve) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not failures, failures

    def test_shared_session_serializes_runs(self, served):
        """One session's lock serializes concurrent run() calls."""
        engine, graph, feeds = served
        session = engine.session(graph)
        ref = session.run(feeds).outputs
        failures = []

        def serve():
            try:
                for _ in range(3):
                    for got, want in zip(session.run(feeds).outputs, ref):
                        np.testing.assert_array_equal(got, want)
            except Exception as exc:  # noqa: BLE001 - surfaced to the test
                failures.append(exc)

        threads = [threading.Thread(target=serve) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not failures, failures
        assert session.requests_served == 1 + 4 * 3
