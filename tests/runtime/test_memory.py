"""Tests for plan memory accounting."""

import pytest

from repro.core import DuetEngine
from repro.models import build_model
from repro.runtime.memory import memory_report


@pytest.fixture(scope="module")
def wd_opt():
    from repro.devices import default_machine

    engine = DuetEngine(machine=default_machine(noisy=False))
    return engine.optimize(build_model("wide_deep"))


class TestMemoryReport:
    def test_params_split_matches_model(self, wd_opt):
        report = memory_report(wd_opt.plan)
        total_params = wd_opt.graph.num_params() * 4  # float32
        assert report.cpu.param_bytes + report.gpu.param_bytes == pytest.approx(
            total_params
        )

    def test_task_counts_match_placement(self, wd_opt):
        report = memory_report(wd_opt.plan)
        cpu_tasks = sum(1 for d in wd_opt.placement.values() if d == "cpu")
        assert report.cpu.tasks == cpu_tasks
        assert report.gpu.tasks == len(wd_opt.placement) - cpu_tasks

    def test_gpu_holds_the_cnn_weights(self, wd_opt):
        # The ResNet branch dominates parameters and lives on the GPU.
        report = memory_report(wd_opt.plan)
        assert report.gpu.param_bytes > report.cpu.param_bytes

    def test_peaks_positive_when_used(self, wd_opt):
        report = memory_report(wd_opt.plan)
        for dev in (report.cpu, report.gpu):
            if dev.tasks:
                assert dev.peak_activation_bytes > 0
                assert dev.total_bytes >= dev.param_bytes

    def test_fallback_plan_is_single_device(self, machine):
        engine = DuetEngine(machine=machine)
        opt = engine.optimize(build_model("resnet"))
        report = memory_report(opt.plan)
        assert report.cpu.tasks == 0
        assert report.gpu.tasks == 1
        assert report.device("gpu").param_bytes == pytest.approx(
            opt.graph.num_params() * 4
        )
