"""Tests for the deterministic fault-injection layer."""

import numpy as np
import pytest

from repro.errors import (
    DeviceLostError,
    ExecutionError,
    TransferError,
    TransientKernelError,
)
from repro.runtime import simulate
from repro.runtime.faults import (
    DeviceLoss,
    FaultInjector,
    FaultPlan,
    KernelFault,
    StallFault,
    TransferFault,
)


class TestFaultPlanValidation:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert not FaultPlan(kernel_faults=(KernelFault("t"),)).is_empty

    def test_lists_coerced_to_tuples(self):
        plan = FaultPlan(kernel_faults=[KernelFault("t")])
        assert isinstance(plan.kernel_faults, tuple)

    def test_bad_kernel_fault_attempts(self):
        with pytest.raises(ExecutionError, match="fail_attempts"):
            KernelFault("t", fail_attempts=0)

    def test_bad_stall(self):
        with pytest.raises(ExecutionError, match="delay_s"):
            StallFault("t", delay_s=-1.0)

    def test_bad_transfer_mode(self):
        with pytest.raises(ExecutionError, match="mode"):
            TransferFault("t", "gpu", mode="explode")

    def test_bad_transfer_device(self):
        # Mesh device names are open-ended; only junk values are rejected.
        with pytest.raises(ExecutionError, match="device"):
            TransferFault("t", "")

    def test_mesh_device_names_accepted(self):
        TransferFault("t", "gpu1")
        DeviceLoss("gpu1", at_task="t")

    def test_device_loss_needs_trigger(self):
        with pytest.raises(ExecutionError, match="at_task or at_time"):
            DeviceLoss("gpu")
        with pytest.raises(ExecutionError, match="device"):
            DeviceLoss("", at_task="t")


class TestInjectorAttemptCounting:
    def test_kernel_fault_fails_first_k_attempts(self):
        inj = FaultInjector(
            FaultPlan(kernel_faults=(KernelFault("t", fail_attempts=2),))
        )
        for _ in range(2):
            with pytest.raises(TransientKernelError):
                inj.on_task_start("t", "cpu")
        inj.on_task_start("t", "cpu")  # third attempt succeeds
        assert inj.task_attempts("t") == 3

    def test_unrelated_tasks_unaffected(self):
        inj = FaultInjector(
            FaultPlan(kernel_faults=(KernelFault("t", fail_attempts=2),))
        )
        inj.on_task_start("other", "cpu")

    def test_reset_revives_counters_and_devices(self):
        inj = FaultInjector(
            FaultPlan(
                kernel_faults=(KernelFault("t"),),
                device_losses=(DeviceLoss("gpu", at_task="t"),),
            )
        )
        with pytest.raises(DeviceLostError):
            # at_task fires first, and "t" sits on the dying device.
            inj.on_task_start("t", "gpu")
        assert inj.device_is_lost("gpu")
        inj.reset()
        assert not inj.device_is_lost("gpu")
        assert inj.task_attempts("t") == 0


class TestDeviceLoss:
    def test_loss_at_task_kills_device_for_later_tasks(self):
        inj = FaultInjector(
            FaultPlan(device_losses=(DeviceLoss("gpu", at_task="trigger"),))
        )
        inj.on_task_start("before", "gpu")  # fine: device still alive
        inj.on_task_start("trigger", "cpu")  # trigger lives on the CPU
        assert inj.device_is_lost("gpu")
        with pytest.raises(DeviceLostError) as excinfo:
            inj.on_task_start("after", "gpu")
        assert excinfo.value.device == "gpu"
        inj.on_task_start("cpu_task", "cpu")  # survivor keeps working

    def test_mark_device_lost(self):
        inj = FaultInjector()
        inj.mark_device_lost("cpu")
        with pytest.raises(DeviceLostError):
            inj.on_task_start("t", "cpu")


class TestTransferFaults:
    def test_fail_mode_raises_then_recovers(self):
        inj = FaultInjector(
            FaultPlan(
                transfer_faults=(
                    TransferFault("prod", "gpu", mode="fail", fail_attempts=1),
                )
            )
        )
        arr = np.ones(4)
        with pytest.raises(TransferError):
            inj.on_transfer("prod", "gpu", arr)
        out = inj.on_transfer("prod", "gpu", arr)
        np.testing.assert_array_equal(out, arr)

    def test_corrupt_mode_poisons_floats_with_nan(self):
        inj = FaultInjector(
            FaultPlan(
                transfer_faults=(
                    TransferFault("prod", "cpu", mode="corrupt"),
                )
            )
        )
        arr = np.ones(4, dtype=np.float32)
        out = inj.on_transfer("prod", "cpu", arr)
        assert np.isnan(out).all()
        np.testing.assert_array_equal(arr, np.ones(4, dtype=np.float32))
        # Second fetch is clean.
        out2 = inj.on_transfer("prod", "cpu", arr)
        np.testing.assert_array_equal(out2, arr)

    def test_corrupt_mode_saturates_ints(self):
        inj = FaultInjector(
            FaultPlan(
                transfer_faults=(TransferFault("prod", "cpu", mode="corrupt"),)
            )
        )
        arr = np.ones(4, dtype=np.int32)
        out = inj.on_transfer("prod", "cpu", arr)
        assert (out == np.iinfo(np.int32).max).all()

    def test_other_destination_untouched(self):
        inj = FaultInjector(
            FaultPlan(transfer_faults=(TransferFault("prod", "gpu"),))
        )
        arr = np.ones(4)
        np.testing.assert_array_equal(inj.on_transfer("prod", "cpu", arr), arr)


class TestSimulatorHooks:
    def test_empty_plan_latency_bit_identical(self, siamese_mixed, machine):
        plan, _, _, _ = siamese_mixed
        base = simulate(plan, machine)
        hooked = simulate(plan, machine, injector=FaultInjector(FaultPlan()))
        assert hooked.latency == base.latency
        assert [t.finish for t in hooked.tasks] == [t.finish for t in base.tasks]

    def test_stall_extends_virtual_latency(self, siamese_mixed, machine):
        plan, _, _, _ = siamese_mixed
        base = simulate(plan, machine).latency
        inj = FaultInjector(
            FaultPlan(stalls=(StallFault(plan.tasks[0].task_id, 0.25),))
        )
        stalled = simulate(plan, machine, injector=inj).latency
        # The stalled task is on the critical path of this plan, so
        # (almost) the whole stall shows up end to end — the tiny slack
        # other branches had absorbs the rest.
        assert stalled == pytest.approx(base + 0.25, abs=0.01)
        assert stalled > base

    def test_kernel_fault_raises_in_simulator(self, siamese_mixed, machine):
        plan, _, _, _ = siamese_mixed
        inj = FaultInjector(
            FaultPlan(kernel_faults=(KernelFault(plan.tasks[-1].task_id),))
        )
        with pytest.raises(TransientKernelError):
            simulate(plan, machine, injector=inj)

    def test_device_loss_at_virtual_time(self, siamese_mixed, machine):
        plan, _, _, _ = siamese_mixed
        inj = FaultInjector(
            FaultPlan(device_losses=(DeviceLoss("gpu", at_time=0.0),))
        )
        with pytest.raises(DeviceLostError) as excinfo:
            simulate(plan, machine, injector=inj)
        assert excinfo.value.device == "gpu"

    def test_device_loss_after_end_never_fires(self, siamese_mixed, machine):
        plan, _, _, _ = siamese_mixed
        base = simulate(plan, machine).latency
        inj = FaultInjector(
            FaultPlan(device_losses=(DeviceLoss("gpu", at_time=base * 10),))
        )
        assert simulate(plan, machine, injector=inj).latency == base
