"""Tests for the unified dispatch core: stack composition, middleware,
worker strategies, and the single-device result shim."""

import dataclasses
import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro.compiler import Compiler
from repro.compiler.target import CPU_TARGET
from repro.core import DuetEngine
from repro.errors import (
    ExecutionError,
    InvariantViolation,
    TransferError,
    TransientKernelError,
)
from repro.ir import make_inputs, run_graph
from repro.models import build_model
from repro.runtime.core import (
    DispatchKernel,
    InlineWorkers,
    InvariantMiddleware,
    TaskContext,
    ThreadedWorkers,
    TracingMiddleware,
    TransferGuardMiddleware,
    build_attempt_stack,
)
from repro.runtime.memory import TensorArena
from repro.runtime.plan import HeteroPlan
from repro.runtime.single import run_single_device


@pytest.fixture(scope="module")
def plan_and_graph():
    from repro.devices import default_machine

    graph = build_model("wide_deep", tiny=True)
    engine = DuetEngine(machine=default_machine(noisy=False))
    return engine.optimize(graph).plan, graph


def _patch_first_kernel(plan, fn):
    """The plan with its first task's first kernel replaced by ``fn``."""
    root = plan.tasks[0]
    k0 = root.module.kernels[0]
    module = dataclasses.replace(
        root.module,
        kernels=[dataclasses.replace(k0, fn=fn)] + list(root.module.kernels[1:]),
    )
    task = dataclasses.replace(root, module=module)
    return HeteroPlan(tasks=[task] + list(plan.tasks[1:]), outputs=plan.outputs)


class TestAttemptStack:
    def test_composes_outermost_first(self):
        calls = []

        def mk(tag):
            def mw(ctx, call_next):
                calls.append(f"{tag}:enter")
                call_next(ctx)
                calls.append(f"{tag}:exit")

            return mw

        stack = build_attempt_stack([mk("outer"), mk("inner")], lambda ctx: calls.append("base"))
        stack(None)
        assert calls == [
            "outer:enter",
            "inner:enter",
            "base",
            "inner:exit",
            "outer:exit",
        ]


class TestWorkerStrategies:
    def test_inline_and_threaded_agree_bitwise(self, plan_and_graph):
        plan, graph = plan_and_graph
        feeds = make_inputs(graph)
        inline = DispatchKernel(plan, workers=InlineWorkers()).run(feeds)
        threaded = DispatchKernel(plan, workers=ThreadedWorkers()).run(feeds)
        for a, b in zip(inline.outputs, threaded.outputs):
            np.testing.assert_array_equal(a, b)
        assert inline.task_worker == threaded.task_worker

    def test_worker_threads_named_and_daemonic(self, plan_and_graph):
        plan, graph = plan_and_graph
        seen: dict[str, tuple[str, bool]] = {}

        def recorder(ctx, call_next):
            thread = threading.current_thread()
            seen[ctx.device] = (thread.name, thread.daemon)
            call_next(ctx)

        DispatchKernel(
            plan, workers=ThreadedWorkers(), middleware=[recorder]
        ).run(make_inputs(graph))
        assert seen  # at least one device actually ran tasks
        for device, (name, daemon) in seen.items():
            assert name == f"duet-worker-{device}"
            assert daemon

    def test_inline_runs_on_calling_thread(self, plan_and_graph):
        plan, graph = plan_and_graph
        names = set()

        def recorder(ctx, call_next):
            names.add(threading.current_thread().name)
            call_next(ctx)

        DispatchKernel(
            plan, workers=InlineWorkers(), middleware=[recorder]
        ).run(make_inputs(graph))
        assert names == {threading.current_thread().name}

    def test_inline_propagates_raw_exceptions(self, plan_and_graph):
        plan, graph = plan_and_graph

        def boom(args):
            raise ValueError("not a runtime error")

        bad = _patch_first_kernel(plan, boom)
        with pytest.raises(ValueError, match="not a runtime error"):
            DispatchKernel(bad, workers=InlineWorkers()).run(make_inputs(graph))

    def test_missing_external_input(self, plan_and_graph):
        plan, _ = plan_and_graph
        with pytest.raises(ExecutionError, match="missing external input"):
            DispatchKernel(plan, workers=InlineWorkers()).run({})

    def test_arena_stops_allocating_and_outputs_match(self, plan_and_graph):
        plan, graph = plan_and_graph
        feeds = make_inputs(graph)
        arena = TensorArena()
        kernel = DispatchKernel(plan, workers=InlineWorkers(), arena=arena)
        first = [np.copy(o) for o in kernel.run(feeds).outputs]
        allocations = arena.allocations
        second = kernel.run(feeds)
        assert arena.allocations == allocations
        for a, b in zip(first, second.outputs):
            np.testing.assert_array_equal(a, b)
        plain = DispatchKernel(plan, workers=InlineWorkers()).run(feeds)
        for a, b in zip(first, plain.outputs):
            np.testing.assert_array_equal(a, b)


class TestTracingMiddleware:
    def test_success_emits_start_finish_pairs(self, plan_and_graph):
        plan, graph = plan_and_graph
        events = []
        DispatchKernel(
            plan,
            workers=InlineWorkers(),
            middleware=[TracingMiddleware(events.append)],
        ).run(make_inputs(graph))
        starts = [e for e in events if e.kind == "task-start"]
        finishes = [e for e in events if e.kind == "task-finish"]
        assert len(starts) == len(plan.tasks)
        assert len(finishes) == len(plan.tasks)
        assert {e.task_id for e in starts} == {t.task_id for t in plan.tasks}
        assert all(e.attempt == 1 for e in events)
        times = [e.time_s for e in events]
        assert times == sorted(times)

    def test_error_emits_task_error_and_reraises(self):
        events = []
        mw = TracingMiddleware(events.append)
        ctx = TaskContext(task=SimpleNamespace(task_id="t0"), device="cpu")

        def boom(ctx):
            raise TransientKernelError("flaky kernel")

        with pytest.raises(TransientKernelError):
            mw(ctx, boom)
        assert [e.kind for e in events] == ["task-start", "task-error"]
        assert "flaky kernel" in events[-1].detail


class TestTransferGuardMiddleware:
    def _ctx(self, value):
        ctx = TaskContext(task=SimpleNamespace(task_id="t0"), device="gpu")
        ctx.crossed = {"x"}
        ctx.feeds = {"x": value}
        return ctx

    def test_rejects_non_finite_crossed_tensor(self):
        ctx = self._ctx(np.array([1.0, np.nan], dtype=np.float32))
        with pytest.raises(TransferError, match="non-finite tensor arrived"):
            TransferGuardMiddleware()(ctx, lambda ctx: None)

    def test_passes_finite_tensors(self):
        ran = []
        ctx = self._ctx(np.array([1.0, 2.0], dtype=np.float32))
        TransferGuardMiddleware()(ctx, lambda ctx: ran.append(True))
        assert ran == [True]

    def test_ignores_uncrossed_tensors(self):
        ctx = self._ctx(np.array([np.inf], dtype=np.float32))
        ctx.crossed = set()  # same-device feed: the guard must not look
        ran = []
        TransferGuardMiddleware()(ctx, lambda ctx: ran.append(True))
        assert ran == [True]


class TestInvariantMiddleware:
    def test_healthy_run_passes(self, plan_and_graph):
        plan, graph = plan_and_graph
        DispatchKernel(
            plan,
            workers=InlineWorkers(),
            middleware=[InvariantMiddleware()],
        ).run(make_inputs(graph))

    def test_flags_wrong_shape_and_dtype(self, plan_and_graph):
        plan, _ = plan_and_graph
        task = plan.tasks[0]
        ctx = TaskContext(task=task, device=task.device)

        def fake_execute(ctx):
            ctx.env = {
                out: np.zeros((), dtype=np.float16)
                for out in task.module.output_ids
            }

        with pytest.raises(InvariantViolation) as err:
            InvariantMiddleware()(ctx, fake_execute)
        text = str(err.value)
        assert "has shape" in text or "has dtype" in text

    def test_flags_missing_output(self, plan_and_graph):
        plan, _ = plan_and_graph
        task = plan.tasks[0]
        ctx = TaskContext(task=task, device=task.device)

        def fake_execute(ctx):
            ctx.env = {}

        with pytest.raises(InvariantViolation, match="never produced"):
            InvariantMiddleware()(ctx, fake_execute)


class TestSingleDeviceResult:
    @pytest.fixture(scope="class")
    def result(self, plan_and_graph):
        from repro.devices import default_machine

        _, graph = plan_and_graph
        module = Compiler().compile(graph, CPU_TARGET)
        return run_single_device(
            module, "cpu", default_machine(noisy=False), inputs=make_inputs(graph)
        )

    def test_carries_outputs_and_wall_time(self, result, plan_and_graph):
        _, graph = plan_and_graph
        ref = run_graph(graph, make_inputs(graph))
        for got, want in zip(result.outputs, ref):
            np.testing.assert_array_equal(got, np.asarray(want))
        assert result.wall_time_s > 0

    def test_dict_access_removed_with_directing_error(self, result):
        # The one-cycle deprecation shim is gone; the TypeError names the
        # attribute to use instead.
        with pytest.raises(TypeError, match=r"use the \.latency attribute"):
            result["latency"]

    def test_dict_access_removed_for_unknown_keys_too(self, result):
        with pytest.raises(TypeError, match="removed"):
            result["no_such_field"]
