"""Shared fixtures: deterministic machines, tiny models, engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import Compiler
from repro.core import CompilerAwareProfiler, DuetEngine, partition_graph
from repro.core.placement import build_hetero_plan
from repro.devices import default_machine
from repro.ir import GraphBuilder, make_inputs, run_graph
from repro.models import build_model


@pytest.fixture(scope="session")
def machine():
    """Noiseless machine: kernel times are exact cost-model means."""
    return default_machine(noisy=False)


@pytest.fixture(scope="session")
def noisy_machine():
    """The paper's machine with latency noise enabled."""
    return default_machine(noisy=True)


@pytest.fixture
def engine(machine):
    return DuetEngine(machine=machine)


@pytest.fixture
def compiler():
    return Compiler()


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def diamond_graph():
    """x -> a -> {b, c} -> d: one sequential op, two branches, a join."""
    b = GraphBuilder("diamond")
    x = b.input("x", (2, 8))
    a = b.op("relu", x, name="a")
    left = b.op("tanh", a, name="left")
    right = b.op("sigmoid", a, name="right")
    d = b.op("add", left, right, name="join")
    return b.build(d)


@pytest.fixture
def chain_graph():
    """A pure sequential chain of elementwise ops."""
    b = GraphBuilder("chain")
    x = b.input("x", (4, 4))
    y = x
    for i, op in enumerate(("relu", "tanh", "sigmoid", "exp")):
        y = b.op(op, y, name=f"n{i}")
    return b.build(y)


@pytest.fixture(
    params=[
        "wide_deep", "siamese", "mtdnn", "resnet", "vgg", "squeezenet",
        "mobilenet",
    ]
)
def tiny_model(request):
    """Each zoo model at test scale (structure preserved, cheap numerics)."""
    return build_model(request.param, tiny=True)


@pytest.fixture(scope="session")
def siamese_mixed(machine):
    """A siamese plan forced onto both devices, plus inputs and reference.

    Returns ``(plan, graph, feeds, reference_outputs)``.  The first
    subgraph is placed on the CPU and the rest on the GPU, guaranteeing
    cross-device edges and at least two GPU tasks — the shape the
    fault-injection and failover tests need.  Tests must not mutate any
    of it.
    """
    graph = build_model("siamese", tiny=True)
    partition = partition_graph(graph)
    profiles = CompilerAwareProfiler(machine=machine).profile_partition(partition)
    placement = {
        sg.id: ("cpu" if i == 0 else "gpu")
        for i, sg in enumerate(partition.subgraphs)
    }
    plan = build_hetero_plan(graph, partition, profiles, placement)
    feeds = make_inputs(graph)
    return plan, graph, feeds, run_graph(graph, feeds)
