"""Shared fixtures: deterministic machines, tiny models, engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import Compiler
from repro.core import DuetEngine
from repro.devices import default_machine
from repro.ir import GraphBuilder
from repro.models import build_model


@pytest.fixture(scope="session")
def machine():
    """Noiseless machine: kernel times are exact cost-model means."""
    return default_machine(noisy=False)


@pytest.fixture(scope="session")
def noisy_machine():
    """The paper's machine with latency noise enabled."""
    return default_machine(noisy=True)


@pytest.fixture
def engine(machine):
    return DuetEngine(machine=machine)


@pytest.fixture
def compiler():
    return Compiler()


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def diamond_graph():
    """x -> a -> {b, c} -> d: one sequential op, two branches, a join."""
    b = GraphBuilder("diamond")
    x = b.input("x", (2, 8))
    a = b.op("relu", x, name="a")
    left = b.op("tanh", a, name="left")
    right = b.op("sigmoid", a, name="right")
    d = b.op("add", left, right, name="join")
    return b.build(d)


@pytest.fixture
def chain_graph():
    """A pure sequential chain of elementwise ops."""
    b = GraphBuilder("chain")
    x = b.input("x", (4, 4))
    y = x
    for i, op in enumerate(("relu", "tanh", "sigmoid", "exp")):
        y = b.op(op, y, name=f"n{i}")
    return b.build(y)


@pytest.fixture(
    params=[
        "wide_deep", "siamese", "mtdnn", "resnet", "vgg", "squeezenet",
        "mobilenet",
    ]
)
def tiny_model(request):
    """Each zoo model at test scale (structure preserved, cheap numerics)."""
    return build_model(request.param, tiny=True)
