"""Seeded conformance pins for the native backend.

The first native fuzz sweep (``python -m repro fuzz --backend native
--seed 0 --count 50``) came back clean, so there is no minimized failure
to enshrine; instead these pins replay a spread of seed-0 cases with
``backend="native"`` so the whole oracle cross-check — C renderer,
signature cache, ctypes dispatch, two-class ULP policy — stays green on
generated graphs, not just the curated zoo.  Case 26 is included
deliberately: it exposed the output-renaming compiler bug
(see ``test_fuzzer_finds.py``), so it exercises declared-output plumbing
through the native path too.

When a machine has no C compiler the native arms self-skip inside the
oracle and these pins degrade to the NumPy cross-check — still a valid
(if weaker) assertion, and the skip is visible in the report summary.
"""

import pytest

from repro.cli import build_parser
from repro.devices import default_machine
from repro.testing.generators import case_rng, generate_graph
from repro.testing.oracle import run_differential


@pytest.fixture(scope="module")
def machine():
    return default_machine(noisy=False)


@pytest.mark.parametrize("index", [0, 7, 26, 33, 42])
def test_seed0_cases_conform_on_native(machine, index):
    graph = generate_graph(case_rng(0, index), name=f"fuzz_s0_i{index}")
    report = run_differential(graph, machine=machine, backend="native")
    assert report.ok, report.summary()


def test_fuzz_cli_accepts_native_backend():
    args = build_parser().parse_args(
        ["fuzz", "--backend", "native", "--seed", "0", "--count", "1"]
    )
    assert args.backend == "native"


def test_fuzz_cli_defaults_to_numpy_backend():
    args = build_parser().parse_args(["fuzz", "--seed", "0", "--count", "1"])
    assert args.backend == "numpy"
