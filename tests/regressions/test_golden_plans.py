"""Regression pin: default 2-device plans are bit-identical to the seed.

The fixture was captured from the pre-mesh code (when ``Machine`` was a
hard-coded CPU+GPU pair) by running ``DuetEngine().optimize`` over the
whole zoo and recording placements, plan task/device/output wiring, and
``repr``-exact latencies.  The mesh refactor must be behavior-preserving
at N=2, so the same run today must reproduce every byte: float values
are compared via ``repr`` so even a last-ulp drift — e.g. from a changed
accumulation order in the simulator or a reordered RNG draw — fails.
"""

import json
from pathlib import Path

import pytest

from repro.core.engine import DuetEngine
from repro.models.zoo import MODEL_NAMES, build_model

_FIXTURE = Path(__file__).parent / "fixtures" / "golden_plans_2dev.json"


@pytest.fixture(scope="module")
def golden():
    with open(_FIXTURE) as f:
        return json.load(f)


def test_fixture_covers_whole_zoo(golden):
    assert set(golden) == set(MODEL_NAMES)


@pytest.mark.parametrize("name", sorted(MODEL_NAMES))
def test_default_machine_plan_matches_seed(name, golden):
    opt = DuetEngine().optimize(build_model(name))
    got = {
        "placement": dict(sorted(opt.schedule.placement.items())),
        "fallback_device": opt.fallback_device,
        "latency": repr(opt.latency),
        "schedule_latency": repr(opt.schedule.latency),
        "plan_tasks": [[t.task_id, t.device] for t in opt.plan.tasks],
        "plan_outputs": [[tid, idx] for tid, idx in opt.plan.outputs],
        "single_device_latency": {
            k: repr(v) for k, v in sorted(opt.single_device_latency.items())
        },
    }
    assert got == golden[name], (
        f"{name}: default 2-device machine no longer reproduces the "
        "pre-mesh seed bit-for-bit"
    )
