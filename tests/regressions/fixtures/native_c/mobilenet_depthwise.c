#include <math.h>
#include <string.h>
#include <stdint.h>

typedef float f32;
typedef double f64;
typedef int32_t i32;
typedef int64_t i64;
typedef unsigned char u8;

/* NaN-propagating min/max, matching np.maximum/np.minimum/np.max/np.min. */
static inline f32 duet_max_f32(f32 a, f32 b) {
    if (a != a) return a; if (b != b) return b; return a > b ? a : b;
}
static inline f32 duet_min_f32(f32 a, f32 b) {
    if (a != a) return a; if (b != b) return b; return a < b ? a : b;
}
static inline f64 duet_max_f64(f64 a, f64 b) {
    if (a != a) return a; if (b != b) return b; return a > b ? a : b;
}
static inline f64 duet_min_f64(f64 a, f64 b) {
    if (a != a) return a; if (b != b) return b; return a < b ? a : b;
}
/* np.clip: lower bound first, upper bound wins on an inverted range. */
static inline f32 duet_clip_f32(f32 x, f32 lo, f32 hi) {
    f32 w = x < lo ? lo : x; return w > hi ? hi : w;
}
static inline f64 duet_clip_f64(f64 x, f64 lo, f64 hi) {
    f64 w = x < lo ? lo : x; return w > hi ? hi : w;
}
static inline f32 duet_sigmoid_f32(f32 x) { return 1.0f / (1.0f + expf(-x)); }
static inline f64 duet_sigmoid_f64(f64 x) { return 1.0 / (1.0 + exp(-x)); }

void duet_kernel(const void *const *args, void *out, void *scratch_v) {
    (void)args; (void)scratch_v;
    char *scratch = (char *)scratch_v; (void)scratch;
    const f32 *a0 = (const f32 *)args[0];
    const f32 *a1 = (const f32 *)args[1];
    const f32 *a2 = (const f32 *)args[2];
    const f32 *a3 = (const f32 *)args[3];
    const f32 *a4 = (const f32 *)args[4];
    const f32 *a5 = (const f32 *)args[5];
    f32 *outp = (f32 *)out;
    f32 *t0 = (f32 *)(scratch + 0);
    f32 *t1 = (f32 *)(scratch + 8192);
    f32 *bn_sc_batch_norm_4 = (f32 *)(scratch + 16384);
    f32 *bn_sh_batch_norm_4 = (f32 *)(scratch + 16448);
    {
        /* depthwise_conv2d -> depthwise_conv2d_3 */
        for (long i0 = 0; i0 < 1; ++i0) {
            for (long i1 = 0; i1 < 8; ++i1) {
                for (long i2 = 0; i2 < 16; ++i2) {
                    for (long i3 = 0; i3 < 16; ++i3) {
                        f32 acc = 0;
                        for (long i4 = 0; i4 < 3; ++i4) {
                            for (long i5 = 0; i5 < 3; ++i5) {
                                long ih = i2 * 1 - 1 + i4;
                                long iw = i3 * 1 - 1 + i5;
                                if (ih >= 0 && ih < 16 && iw >= 0 && iw < 16) {
                                    acc += a0[((i0 * 8 + i1) * 16 + ih) * 16 + iw] * a1[(i1 * 3 + i4) * 3 + i5];
                                }
                            }
                        }
                        t0[((i0 * 8 + i1) * 16 + i2) * 16 + i3] = acc;
                    }
                }
            }
        }
    }
    {
        /* batch_norm -> batch_norm_4 */
        for (long i6 = 0; i6 < 8; ++i6) {
            bn_sc_batch_norm_4[i6] = a2[i6] / sqrtf(a5[i6] + (f32)(1e-05));
            bn_sh_batch_norm_4[i6] = a3[i6] - a4[i6] * a2[i6] / sqrtf(a5[i6] + (f32)(1e-05));
        }
        for (long i7 = 0; i7 < 1; ++i7) {
            for (long i8 = 0; i8 < 8; ++i8) {
                for (long i9 = 0; i9 < 16; ++i9) {
                    for (long i10 = 0; i10 < 16; ++i10) {
                        t1[i7*2048 + i8*256 + i9*16 + i10] = t0[i7*2048 + i8*256 + i9*16 + i10] * bn_sc_batch_norm_4[i8] + bn_sh_batch_norm_4[i8];
                    }
                }
            }
        }
    }
    {
        /* relu -> relu_5 */
        for (long i11 = 0; i11 < 1; ++i11) {
            for (long i12 = 0; i12 < 8; ++i12) {
                for (long i13 = 0; i13 < 16; ++i13) {
                    for (long i14 = 0; i14 < 16; ++i14) {
                        f32 v0 = t1[i11*2048 + i12*256 + i13*16 + i14];
                        outp[i11*2048 + i12*256 + i13*16 + i14] = duet_max_f32(v0, 0);
                    }
                }
            }
        }
    }
}
