#include <math.h>
#include <string.h>
#include <stdint.h>

typedef float f32;
typedef double f64;
typedef int32_t i32;
typedef int64_t i64;
typedef unsigned char u8;

/* NaN-propagating min/max, matching np.maximum/np.minimum/np.max/np.min. */
static inline f32 duet_max_f32(f32 a, f32 b) {
    if (a != a) return a; if (b != b) return b; return a > b ? a : b;
}
static inline f32 duet_min_f32(f32 a, f32 b) {
    if (a != a) return a; if (b != b) return b; return a < b ? a : b;
}
static inline f64 duet_max_f64(f64 a, f64 b) {
    if (a != a) return a; if (b != b) return b; return a > b ? a : b;
}
static inline f64 duet_min_f64(f64 a, f64 b) {
    if (a != a) return a; if (b != b) return b; return a < b ? a : b;
}
/* np.clip: lower bound first, upper bound wins on an inverted range. */
static inline f32 duet_clip_f32(f32 x, f32 lo, f32 hi) {
    f32 w = x < lo ? lo : x; return w > hi ? hi : w;
}
static inline f64 duet_clip_f64(f64 x, f64 lo, f64 hi) {
    f64 w = x < lo ? lo : x; return w > hi ? hi : w;
}
static inline f32 duet_sigmoid_f32(f32 x) { return 1.0f / (1.0f + expf(-x)); }
static inline f64 duet_sigmoid_f64(f64 x) { return 1.0 / (1.0 + exp(-x)); }

void duet_kernel(const void *const *args, void *out, void *scratch_v) {
    (void)args; (void)scratch_v;
    char *scratch = (char *)scratch_v; (void)scratch;
    const f32 *a0 = (const f32 *)args[0];
    const f32 *a1 = (const f32 *)args[1];
    const f32 *a2 = (const f32 *)args[2];
    f32 *outp = (f32 *)out;
    f32 *t0 = (f32 *)(scratch + 0);
    {
        /* dense -> dense_2 */
        for (long m0 = 0; m0 < 8; m0 += 4) {
            long mb = 8 - m0 < 4 ? 8 - m0 : 4;
            for (long n0 = 0; n0 < 16; n0 += 4) {
                long nb = 16 - n0 < 4 ? 16 - n0 : 4;
                f32 acc[16];
                for (long z = 0; z < 16; ++z) acc[z] = 0;
                for (long k = 0; k < 16; ++k) {
                    for (long mi = 0; mi < mb; ++mi) {
                        f32 av = a0[0 + (m0 + mi) * 16 + k];
                        for (long ni = 0; ni < nb; ++ni) {
                            acc[mi * 4 + ni] += av * a1[0 + (n0 + ni) * 16 + k];
                        }
                    }
                }
                for (long mi = 0; mi < mb; ++mi) {
                    for (long ni = 0; ni < nb; ++ni) {
                        t0[0 + (m0 + mi) * 16 + n0 + ni] = acc[mi * 4 + ni];
                    }
                }
            }
        }
    }
    {
        /* bias_add -> bias_add_3 */
        for (long i0 = 0; i0 < 8; ++i0) {
            for (long i1 = 0; i1 < 16; ++i1) {
                f32 v0 = t0[i0*16 + i1];
                f32 v1 = a2[i1];
                outp[i0*16 + i1] = (v0 + v1);
            }
        }
    }
}
