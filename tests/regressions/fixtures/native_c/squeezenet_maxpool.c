#include <math.h>
#include <string.h>
#include <stdint.h>

typedef float f32;
typedef double f64;
typedef int32_t i32;
typedef int64_t i64;
typedef unsigned char u8;

/* NaN-propagating min/max, matching np.maximum/np.minimum/np.max/np.min. */
static inline f32 duet_max_f32(f32 a, f32 b) {
    if (a != a) return a; if (b != b) return b; return a > b ? a : b;
}
static inline f32 duet_min_f32(f32 a, f32 b) {
    if (a != a) return a; if (b != b) return b; return a < b ? a : b;
}
static inline f64 duet_max_f64(f64 a, f64 b) {
    if (a != a) return a; if (b != b) return b; return a > b ? a : b;
}
static inline f64 duet_min_f64(f64 a, f64 b) {
    if (a != a) return a; if (b != b) return b; return a < b ? a : b;
}
/* np.clip: lower bound first, upper bound wins on an inverted range. */
static inline f32 duet_clip_f32(f32 x, f32 lo, f32 hi) {
    f32 w = x < lo ? lo : x; return w > hi ? hi : w;
}
static inline f64 duet_clip_f64(f64 x, f64 lo, f64 hi) {
    f64 w = x < lo ? lo : x; return w > hi ? hi : w;
}
static inline f32 duet_sigmoid_f32(f32 x) { return 1.0f / (1.0f + expf(-x)); }
static inline f64 duet_sigmoid_f64(f64 x) { return 1.0 / (1.0 + exp(-x)); }

void duet_kernel(const void *const *args, void *out, void *scratch_v) {
    (void)args; (void)scratch_v;
    char *scratch = (char *)scratch_v; (void)scratch;
    const f32 *a0 = (const f32 *)args[0];
    f32 *outp = (f32 *)out;
    {
        /* max_pool2d -> max_pool2d_3 */
        for (long i0 = 0; i0 < 1; ++i0) {
            for (long i1 = 0; i1 < 64; ++i1) {
                for (long i2 = 0; i2 < 16; ++i2) {
                    for (long i3 = 0; i3 < 16; ++i3) {
                        f32 m = -INFINITY;
                        for (long i4 = 0; i4 < 3; ++i4) {
                            for (long i5 = 0; i5 < 3; ++i5) {
                                long ih = i2 * 2 - 1 + i4;
                                long iw = i3 * 2 - 1 + i5;
                                if (ih >= 0 && ih < 32 && iw >= 0 && iw < 32) {
                                    m = duet_max_f32(m, a0[((i0 * 64 + i1) * 32 + ih) * 32 + iw]);
                                }
                            }
                        }
                        outp[((i0 * 64 + i1) * 16 + i2) * 16 + i3] = m;
                    }
                }
            }
        }
    }
}
