#include <math.h>
#include <string.h>
#include <stdint.h>

typedef float f32;
typedef double f64;
typedef int32_t i32;
typedef int64_t i64;
typedef unsigned char u8;

/* NaN-propagating min/max, matching np.maximum/np.minimum/np.max/np.min. */
static inline f32 duet_max_f32(f32 a, f32 b) {
    if (a != a) return a; if (b != b) return b; return a > b ? a : b;
}
static inline f32 duet_min_f32(f32 a, f32 b) {
    if (a != a) return a; if (b != b) return b; return a < b ? a : b;
}
static inline f64 duet_max_f64(f64 a, f64 b) {
    if (a != a) return a; if (b != b) return b; return a > b ? a : b;
}
static inline f64 duet_min_f64(f64 a, f64 b) {
    if (a != a) return a; if (b != b) return b; return a < b ? a : b;
}
/* np.clip: lower bound first, upper bound wins on an inverted range. */
static inline f32 duet_clip_f32(f32 x, f32 lo, f32 hi) {
    f32 w = x < lo ? lo : x; return w > hi ? hi : w;
}
static inline f64 duet_clip_f64(f64 x, f64 lo, f64 hi) {
    f64 w = x < lo ? lo : x; return w > hi ? hi : w;
}
static inline f32 duet_sigmoid_f32(f32 x) { return 1.0f / (1.0f + expf(-x)); }
static inline f64 duet_sigmoid_f64(f64 x) { return 1.0 / (1.0 + exp(-x)); }

void duet_kernel(const void *const *args, void *out, void *scratch_v) {
    (void)args; (void)scratch_v;
    char *scratch = (char *)scratch_v; (void)scratch;
    const f32 *a0 = (const f32 *)args[0];
    const f32 *a1 = (const f32 *)args[1];
    const f32 *a2 = (const f32 *)args[2];
    const f32 *a3 = (const f32 *)args[3];
    const f32 *a4 = (const f32 *)args[4];
    const f32 *a5 = (const f32 *)args[5];
    f32 *outp = (f32 *)out;
    f32 *t0 = (f32 *)(scratch + 0);
    f32 *t1 = (f32 *)(scratch + 262144);
    f32 *col_conv2d_0 = (f32 *)(scratch + 524288);
    f32 *bn_sc_batch_norm_1 = (f32 *)(scratch + 634880);
    f32 *bn_sh_batch_norm_1 = (f32 *)(scratch + 635136);
    {
        /* conv2d -> conv2d_0 */
        for (long i0 = 0; i0 < 1; ++i0) {
            for (long i1 = 0; i1 < 3; ++i1) {
                for (long i2 = 0; i2 < 3; ++i2) {
                    for (long i3 = 0; i3 < 3; ++i3) {
                        long r = ((i1 * 3 + i2) * 3 + i3) * 1024;
                        for (long i4 = 0; i4 < 32; ++i4) {
                            long ih = i4 * 1 - 1 + i2;
                            if (ih < 0 || ih >= 32) {
                                for (long q = 0; q < 32; ++q) {
                                    col_conv2d_0[r + i4 * 32 + q] = 0;
                                }
                                } else {
                                    for (long q = 0; q < 32; ++q) {
                                        long iw = q * 1 - 1 + i3;
                                        col_conv2d_0[r + i4 * 32 + q] = (iw >= 0 && iw < 32) ? a0[((i0 * 3 + i1) * 32 + ih) * 32 + iw] : 0;
                                    }
                                }
                            }
                        }
                    }
                }
                for (long m0 = 0; m0 < 64; m0 += 4) {
                    long mb = 64 - m0 < 4 ? 64 - m0 : 4;
                    for (long n0 = 0; n0 < 1024; n0 += 4) {
                        long nb = 1024 - n0 < 4 ? 1024 - n0 : 4;
                        f32 acc[16];
                        for (long z = 0; z < 16; ++z) acc[z] = 0;
                        for (long k = 0; k < 27; ++k) {
                            for (long mi = 0; mi < mb; ++mi) {
                                f32 av = a1[0 + (m0 + mi) * 27 + k];
                                for (long ni = 0; ni < nb; ++ni) {
                                    acc[mi * 4 + ni] += av * col_conv2d_0[0 + k * 1024 + n0 + ni];
                                }
                            }
                        }
                        for (long mi = 0; mi < mb; ++mi) {
                            for (long ni = 0; ni < nb; ++ni) {
                                t0[i0 * 65536 + (m0 + mi) * 1024 + n0 + ni] = acc[mi * 4 + ni];
                            }
                        }
                    }
                }
            }
        }
        {
            /* batch_norm -> batch_norm_1 */
            for (long i5 = 0; i5 < 64; ++i5) {
                bn_sc_batch_norm_1[i5] = a2[i5] / sqrtf(a5[i5] + (f32)(1e-05));
                bn_sh_batch_norm_1[i5] = a3[i5] - a4[i5] * a2[i5] / sqrtf(a5[i5] + (f32)(1e-05));
            }
            for (long i6 = 0; i6 < 1; ++i6) {
                for (long i7 = 0; i7 < 64; ++i7) {
                    for (long i8 = 0; i8 < 32; ++i8) {
                        for (long i9 = 0; i9 < 32; ++i9) {
                            t1[i6*65536 + i7*1024 + i8*32 + i9] = t0[i6*65536 + i7*1024 + i8*32 + i9] * bn_sc_batch_norm_1[i7] + bn_sh_batch_norm_1[i7];
                        }
                    }
                }
            }
        }
        {
            /* relu -> relu_2 */
            for (long i10 = 0; i10 < 1; ++i10) {
                for (long i11 = 0; i11 < 64; ++i11) {
                    for (long i12 = 0; i12 < 32; ++i12) {
                        for (long i13 = 0; i13 < 32; ++i13) {
                            f32 v0 = t1[i10*65536 + i11*1024 + i12*32 + i13];
                            outp[i10*65536 + i11*1024 + i12*32 + i13] = duet_max_f32(v0, 0);
                        }
                    }
                }
            }
        }
}
