#include <math.h>
#include <string.h>
#include <stdint.h>

typedef float f32;
typedef double f64;
typedef int32_t i32;
typedef int64_t i64;
typedef unsigned char u8;

/* NaN-propagating min/max, matching np.maximum/np.minimum/np.max/np.min. */
static inline f32 duet_max_f32(f32 a, f32 b) {
    if (a != a) return a; if (b != b) return b; return a > b ? a : b;
}
static inline f32 duet_min_f32(f32 a, f32 b) {
    if (a != a) return a; if (b != b) return b; return a < b ? a : b;
}
static inline f64 duet_max_f64(f64 a, f64 b) {
    if (a != a) return a; if (b != b) return b; return a > b ? a : b;
}
static inline f64 duet_min_f64(f64 a, f64 b) {
    if (a != a) return a; if (b != b) return b; return a < b ? a : b;
}
/* np.clip: lower bound first, upper bound wins on an inverted range. */
static inline f32 duet_clip_f32(f32 x, f32 lo, f32 hi) {
    f32 w = x < lo ? lo : x; return w > hi ? hi : w;
}
static inline f64 duet_clip_f64(f64 x, f64 lo, f64 hi) {
    f64 w = x < lo ? lo : x; return w > hi ? hi : w;
}
static inline f32 duet_sigmoid_f32(f32 x) { return 1.0f / (1.0f + expf(-x)); }
static inline f64 duet_sigmoid_f64(f64 x) { return 1.0 / (1.0 + exp(-x)); }

void duet_kernel(const void *const *args, void *out, void *scratch_v) {
    (void)args; (void)scratch_v;
    char *scratch = (char *)scratch_v; (void)scratch;
    const f32 *a0 = (const f32 *)args[0];
    const f32 *a1 = (const f32 *)args[1];
    const f32 *a2 = (const f32 *)args[2];
    const f32 *a3 = (const f32 *)args[3];
    f32 *outp = (f32 *)out;
    f32 *lstm_h_lstm_out = (f32 *)(scratch + 0);
    f32 *lstm_c_lstm_out = (f32 *)(scratch + 64);
    f32 *lstm_g_lstm_out = (f32 *)(scratch + 128);
    {
        /* lstm -> lstm_out */
        memset(lstm_h_lstm_out, 0, 64);
        memset(lstm_c_lstm_out, 0, 64);
        for (long t = 0; t < 5; ++t) {
            for (long bb = 0; bb < 2; ++bb) {
                for (long g = 0; g < 32; ++g) {
                    f32 acc = 0;
                    for (long q = 0; q < 8; ++q) {
                        acc += a0[(bb * 5 + t) * 8 + q] * a1[g * 8 + q];
                    }
                    for (long q = 0; q < 8; ++q) {
                        acc += lstm_h_lstm_out[bb * 8 + q] * a2[g * 8 + q];
                    }
                    lstm_g_lstm_out[bb * 32 + g] = acc + a3[g];
                }
            }
            for (long bb = 0; bb < 2; ++bb) {
                for (long u = 0; u < 8; ++u) {
                    f32 gi = duet_sigmoid_f32(lstm_g_lstm_out[bb * 32 + u]);
                    f32 gf = duet_sigmoid_f32(lstm_g_lstm_out[bb * 32 + 8 + u]);
                    f32 gg = tanhf(lstm_g_lstm_out[bb * 32 + 16 + u]);
                    f32 go = duet_sigmoid_f32(lstm_g_lstm_out[bb * 32 + 24 + u]);
                    f32 cn = gf * lstm_c_lstm_out[bb * 8 + u] + gi * gg;
                    lstm_c_lstm_out[bb * 8 + u] = cn;
                    f32 hn = go * tanhf(cn);
                    lstm_h_lstm_out[bb * 8 + u] = hn;
                    outp[(bb * 5 + t) * 8 + u] = hn;
                }
            }
        }
    }
}
