"""Seeded regression pins for bugs the conformance fuzzer surfaced.

Each test replays the exact fuzz case (campaign seed + index) that first
exposed a bug, plus a focused unit pin of the underlying fix, so a
reintroduction fails loudly even without running a full campaign.

Find 1 — campaign seed 0, cases 26 and 28: ``simplify`` (identity
elimination) and ``cse`` rewrote *declared graph outputs* to other node
ids.  Numerics were unchanged but the module's public output-id contract
broke: plans exposed outputs under names the caller never asked for, and
the plan invariant checker flagged a boundary mismatch.

Find 2 — ``Graph.materialize_params`` seeded per-node parameters from
``hash(node.id)``, which Python randomizes per process, so "seeded"
parameters differed across processes (and across PYTHONHASHSEED
settings), breaking reproduce-from-artifact.
"""

import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest

from repro.compiler.passes.cse import common_subexpression_elimination
from repro.compiler.passes.simplify import simplify
from repro.devices import default_machine
from repro.ir import GraphBuilder
from repro.testing.oracle import run_differential
from repro.testing.generators import case_rng, generate_graph


@pytest.fixture(scope="module")
def machine():
    return default_machine(noisy=False)


class TestOutputRenamingFind:
    """Fuzzer find: compiler passes must never rename declared outputs."""

    @pytest.mark.parametrize("index", [26, 28])
    def test_seed0_cases_conform(self, machine, index):
        graph = generate_graph(case_rng(0, index))
        report = run_differential(graph, machine=machine)
        assert report.ok, report.summary()

    def test_simplify_keeps_identity_output_id(self):
        b = GraphBuilder("pin")
        x = b.input("x", (2, 3))
        y = b.op("relu", x)
        out = b.op("identity", y)
        g = b.build(out)
        assert simplify(g).outputs == (out.id,)

    def test_cse_keeps_duplicate_output_ids(self):
        b = GraphBuilder("pin")
        x = b.input("x", (2, 3))
        a = b.op("tanh", x)
        dup = b.op("tanh", x)
        g = b.build(a, dup)
        result = common_subexpression_elimination(g)
        assert result.outputs == (a.id, dup.id)
        assert {n.id for n in result.op_nodes()} >= {a.id, dup.id}


class TestParamSeedingFind:
    """Fuzzer find: parameters must not depend on PYTHONHASHSEED."""

    _SNIPPET = (
        "import numpy as np\n"
        "from repro.ir import GraphBuilder\n"
        "b = GraphBuilder('pin')\n"
        "x = b.input('x', (2, 3))\n"
        "w = b.const((4, 3), name='w')\n"
        "y = b.op('dense', x, w)\n"
        "g = b.build(y)\n"
        "params = g.materialize_params(seed=7)\n"
        "print(np.asarray(params['w']).tobytes().hex())\n"
    )

    def _run(self, hashseed):
        repo = pathlib.Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src")
        env["PYTHONHASHSEED"] = str(hashseed)
        proc = subprocess.run(
            [sys.executable, "-c", self._SNIPPET],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(repo),
            check=True,
        )
        return proc.stdout.strip()

    def test_params_identical_across_hash_seeds(self):
        assert self._run(1) == self._run(2)

    def test_params_identical_in_process(self):
        b = GraphBuilder("pin")
        x = b.input("x", (2, 3))
        w = b.const((4, 3), name="w")
        y = b.op("dense", x, w)
        g = b.build(y)
        first = g.materialize_params(seed=7)
        second = g.materialize_params(seed=7)
        assert np.array_equal(first["w"], second["w"])
