"""Golden codegen pins: rendered C for representative kernels.

The native renderer's output *is* the numerics contract — a changed
loop order, literal format, or accumulation pattern silently shifts
results within (or out of) the ULP policy.  These fixtures pin the
exact C source rendered for six representative fused kernels drawn
from the zoo (GEMM + epilogue, im2col conv, depthwise conv, pooling,
concat front-end) plus a recurrent LSTM step loop, so any
renderer drift shows up as an explicit, reviewable fixture diff.

Rendering is pure Python — no C compiler needed — so these run in every
environment.  To regenerate after an *intentional* renderer change::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/regressions/test_golden_codegen.py -q

and review/commit the fixture diff (bump RENDERER_VERSION so cached
shared objects from the old renderer are invalidated).
"""

import os
from pathlib import Path

import pytest

from repro.compiler.fusion import plan_fusion
from repro.compiler.native.renderer import render_group
from repro.compiler.pass_manager import PassManager, default_passes
from repro.ir.builder import GraphBuilder
from repro.models.zoo import build_model

_FIXTURE_DIR = Path(__file__).parent / "fixtures" / "native_c"


def _lstm_graph():
    b = GraphBuilder("golden_lstm")
    x = b.input("x", (2, 5, 8))
    w_ih = b.const((32, 8), name="w_ih")
    w_hh = b.const((32, 8), name="w_hh")
    bias = b.const((32,), name="bias")
    h = b.op("lstm", x, w_ih, w_hh, bias, hidden_size=8, name="lstm_out")
    return b.build(h)


def _groups_with_externals(graph):
    """Fusion groups of the optimized graph, with kernel-external inputs
    in the same order lowering computes them."""
    opt = PassManager(default_passes(2)).run(graph)
    for group in plan_fusion(opt):
        members = set(group.node_ids)
        external, seen = [], set()
        for nid in group.node_ids:
            for src in opt.node(nid).inputs:
                if src not in members and src not in seen:
                    seen.add(src)
                    external.append(src)
        yield opt, group, external


def _render_first(graph, anchor_op: str) -> str:
    for opt, group, external in _groups_with_externals(graph):
        if any(opt.node(nid).op == anchor_op for nid in group.node_ids):
            return render_group(opt, group, external).source
    raise AssertionError(f"no fusion group with op {anchor_op!r} in {graph.name}")


CASES = {
    # kernel fixture            source graph                     anchor op
    "mtdnn_dense_epilogue": (lambda: build_model("mtdnn", tiny=True), "dense"),
    "vgg_conv_im2col": (lambda: build_model("vgg", tiny=True), "conv2d"),
    "mobilenet_depthwise": (
        lambda: build_model("mobilenet", tiny=True),
        "depthwise_conv2d",
    ),
    "squeezenet_maxpool": (
        lambda: build_model("squeezenet", tiny=True),
        "max_pool2d",
    ),
    "wide_deep_concat": (
        lambda: build_model("wide_deep", tiny=True),
        "concat",
    ),
    "lstm_step_loop": (_lstm_graph, "lstm"),
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_rendered_c_matches_golden(case):
    build, anchor = CASES[case]
    source = _render_first(build(), anchor)
    path = _FIXTURE_DIR / f"{case}.c"
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        _FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden fixture {path}; regenerate with "
        "REPRO_UPDATE_GOLDENS=1"
    )
    golden = path.read_text()
    assert source == golden, (
        f"{case}: rendered C drifted from the pinned fixture.  If the "
        "change is intentional, bump RENDERER_VERSION and regenerate "
        "with REPRO_UPDATE_GOLDENS=1, then review the diff."
    )
