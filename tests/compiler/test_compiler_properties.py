"""Property-based tests: compilation never changes program semantics."""

import numpy as np
from hypothesis import given, settings

from repro.compiler import CPU_TARGET, GPU_TARGET, compile_graph
from repro.ir import make_inputs, run_graph
from tests.strategies import random_graphs


@settings(max_examples=50, deadline=None)
@given(random_graphs())
def test_full_optimization_preserves_semantics(graph):
    feeds = make_inputs(graph)
    ref = run_graph(graph, feeds)
    mod = compile_graph(graph, CPU_TARGET).module
    got = mod.run(feeds)
    assert len(ref) == len(got)
    for a, b in zip(ref, got):
        np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-5)


@settings(max_examples=25, deadline=None)
@given(random_graphs())
def test_targets_agree_numerically(graph):
    feeds = make_inputs(graph)
    cpu = compile_graph(graph, CPU_TARGET).module.run(feeds)
    gpu = compile_graph(graph, GPU_TARGET).module.run(feeds)
    for a, b in zip(cpu, gpu):
        np.testing.assert_allclose(a, b, rtol=1e-6)


@settings(max_examples=25, deadline=None)
@given(random_graphs())
def test_unfused_agrees_with_fused(graph):
    feeds = make_inputs(graph)
    fused = compile_graph(graph, CPU_TARGET).module
    unfused = compile_graph(graph, CPU_TARGET, fuse=False).module
    for a, b in zip(fused.run(feeds), unfused.run(feeds)):
        np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-6)


@settings(max_examples=25, deadline=None)
@given(random_graphs())
def test_optimization_never_increases_flops(graph):
    mod_opt = compile_graph(graph, CPU_TARGET).module
    mod_raw = compile_graph(graph, CPU_TARGET, opt_level=0).module
    assert mod_opt.total_flops() <= mod_raw.total_flops() + 1e-9
