"""Tests for the individual graph passes."""

import numpy as np
import pytest

from repro.compiler.passes import (
    common_subexpression_elimination,
    constant_fold,
    dead_code_elimination,
    simplify,
)
from repro.ir import GraphBuilder, make_inputs, run_graph
from repro.ir.node import Initializer


def _same_outputs(g1, g2, seed=0):
    feeds = make_inputs(g1, seed=seed)
    a = run_graph(g1, feeds, params=None, seed=seed)
    b = run_graph(g2, {k: feeds[k] for k in feeds if k in g2.nodes}, seed=seed)
    for x, y in zip(a, b):
        np.testing.assert_allclose(x, y, rtol=1e-5, atol=1e-6)


class TestDCE:
    def test_removes_dead_branch(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        live = b.op("relu", x)
        b.op("tanh", b.op("sigmoid", x))  # dead chain
        g = b.build(live)
        out = dead_code_elimination(g)
        assert len(out) == 2
        _same_outputs(g, out)

    def test_keeps_everything_live(self, diamond_graph):
        out = dead_code_elimination(diamond_graph)
        assert len(out) == len(diamond_graph)


class TestCSE:
    def test_merges_identical_ops(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        a1 = b.op("relu", x)
        a2 = b.op("relu", x)
        g = b.build(b.op("add", a1, a2))
        out = common_subexpression_elimination(g)
        assert len(out.op_nodes()) == 2  # one relu + the add
        _same_outputs(g, out)

    def test_respects_attrs(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 6))
        r1 = b.op("reshape", x, shape=(3, 4))
        r2 = b.op("reshape", x, shape=(6, 2))
        g = b.build(r1, r2)
        out = common_subexpression_elimination(g)
        assert len(out.op_nodes()) == 2  # different attrs, no merge

    def test_does_not_merge_consts(self):
        # Two same-shaped parameters materialize to different values.
        b = GraphBuilder("g")
        x = b.input("x", (1, 4))
        w1 = b.const((4, 4), name="w1")
        w2 = b.const((4, 4), name="w2")
        g = b.build(b.op("add", b.op("dense", x, w1), b.op("dense", x, w2)))
        out = common_subexpression_elimination(g)
        assert len(out.op_nodes()) == 3

    def test_transitive_merge(self):
        # The interior relu duplicates merge; the output-level tanh
        # duplicates must both survive under their declared ids (output
        # ids are the module's public contract, and merging them would
        # make the graph return one id twice).
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        g = b.build(
            b.op("tanh", b.op("relu", x)), b.op("tanh", b.op("relu", x))
        )
        out = common_subexpression_elimination(g)
        assert len(out.op_nodes()) == 3
        assert out.outputs == g.outputs
        assert len(set(out.outputs)) == 2
        _same_outputs(g, out)

    def test_keeps_duplicate_output_name(self):
        # A duplicate op the graph *returns* is kept, not remapped: the
        # declared output id must survive CSE.
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        a1 = b.op("relu", x)
        a2 = b.op("relu", x)
        g = b.build(a2)
        out = common_subexpression_elimination(g)
        assert out.outputs == (a2.id,)
        assert a1.id in {n.id for n in out.op_nodes()}
        _same_outputs(g, out)


class TestConstantFold:
    def test_folds_literal_arithmetic(self):
        b = GraphBuilder("g")
        x = b.input("x", (2,))
        l1 = b.literal(np.asarray([1.0, 2.0], dtype=np.float32))
        l2 = b.literal(np.asarray([3.0, 4.0], dtype=np.float32))
        s = b.op("add", l1, l2)
        g = b.build(b.op("add", x, s))
        out = constant_fold(g)
        assert len(out.op_nodes()) == 1
        folded = next(n for n in out.const_nodes() if n.literal is not None)
        _same_outputs(g, out)

    def test_does_not_fold_lazy_params(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        w = b.const((2, 2))  # lazy NORMAL initializer
        g = b.build(b.op("add", x, b.op("relu", w)))
        out = constant_fold(g)
        assert len(out.op_nodes()) == 2  # relu not folded

    def test_respects_size_cap(self):
        b = GraphBuilder("g")
        big = b.literal(np.ones((100, 100), dtype=np.float32))  # 10k > cap
        g = b.build(b.op("relu", big))
        out = constant_fold(g)
        assert len(out.op_nodes()) == 1

    def test_cascading_fold(self):
        b = GraphBuilder("g")
        l = b.literal(np.asarray([2.0], dtype=np.float32))
        y = b.op("exp", b.op("negative", l))
        x = b.input("x", (1,))
        g = b.build(b.op("multiply", x, y))
        out = constant_fold(g)
        assert len(out.op_nodes()) == 1
        _same_outputs(g, out)


class TestSimplify:
    def test_removes_identity(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        g = b.build(b.op("relu", b.op("identity", x)))
        out = simplify(g)
        assert all(n.op != "identity" for n in out.op_nodes())
        _same_outputs(g, out)

    def test_merges_reshape_chain(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 6))
        r = b.op("reshape", b.op("reshape", x, shape=(3, 4)), shape=(12,))
        g = b.build(b.op("relu", r))
        out = simplify(g)
        reshapes = [n for n in out.op_nodes() if n.op == "reshape"]
        assert len(reshapes) == 1
        assert reshapes[0].ty.shape == (12,)
        _same_outputs(g, out)

    def test_removes_noop_reshape(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 6))
        g = b.build(b.op("relu", b.op("reshape", x, shape=(2, 6))))
        out = simplify(g)
        assert all(n.op != "reshape" for n in out.op_nodes())

    def test_cancels_double_transpose(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 3, 4))
        t = b.op(
            "transpose", b.op("transpose", x, axes=(1, 0, 2)), axes=(1, 0, 2)
        )
        g = b.build(b.op("relu", t))
        out = simplify(g)
        assert all(n.op != "transpose" for n in out.op_nodes())
        _same_outputs(g, out)

    def test_composes_transposes(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 3, 4))
        t = b.op(
            "transpose", b.op("transpose", x, axes=(2, 0, 1)), axes=(2, 0, 1)
        )
        g = b.build(b.op("relu", t))
        out = simplify(g)
        transposes = [n for n in out.op_nodes() if n.op == "transpose"]
        assert len(transposes) == 1
        _same_outputs(g, out)

    def test_identity_as_output_keeps_its_name(self):
        # Declared output ids are the module's public contract: an identity
        # the graph returns must survive simplification under its own id
        # (interior identities are still erased, see test_removes_identity).
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        r = b.op("relu", x)
        ident = b.op("identity", r)
        g = b.build(ident)
        out = simplify(g)
        assert out.outputs == g.outputs == (ident.id,)
        _same_outputs(g, out)
