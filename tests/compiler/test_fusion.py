"""Tests for the fusion planner's invariants and pattern rules."""

import pytest
from hypothesis import given, settings

from repro.compiler.fusion import plan_fusion
from repro.ir import GraphBuilder
from tests.strategies import random_graphs


def _groups_by_member(groups):
    out = {}
    for g in groups:
        for nid in g.node_ids:
            out[nid] = g
    return out


class TestFusionRules:
    def test_dense_absorbs_elemwise_chain(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 8))
        w = b.const((4, 8))
        bias = b.const((4,))
        y = b.op("relu", b.op("bias_add", b.op("dense", x, w), bias))
        g = b.build(y)
        groups = plan_fusion(g)
        assert len(groups) == 1
        assert g.node(groups[0].anchor_id).op == "dense"

    def test_opaque_never_fuses(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 5, 8))
        w_ih = b.const((16, 8))
        w_hh = b.const((16, 4))
        bias = b.const((16,))
        h = b.op("lstm", x, w_ih, w_hh, bias, hidden_size=4,
                 return_sequences=False)
        y = b.op("tanh", h)
        g = b.build(y)
        groups = plan_fusion(g)
        assert len(groups) == 2

    def test_two_out_fusable_do_not_merge(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 8))
        w1 = b.const((8, 8))
        w2 = b.const((4, 8))
        y = b.op("dense", b.op("dense", x, w1), w2)
        g = b.build(y)
        assert len(plan_fusion(g)) == 2

    def test_fanout_blocks_fusion(self):
        # dense feeds two consumers: neither may fold it in.
        b = GraphBuilder("g")
        x = b.input("x", (1, 8))
        w = b.const((8, 8))
        d = b.op("dense", x, w)
        g = b.build(b.op("add", b.op("relu", d), b.op("tanh", d)))
        groups = _groups_by_member(plan_fusion(g))
        assert groups[d.id].node_ids == [d.id]

    def test_graph_output_not_absorbed(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 8))
        w = b.const((4, 8))
        d = b.op("dense", x, w)
        r = b.op("relu", d)
        g = b.build(d, r)  # dense itself is an output
        groups = _groups_by_member(plan_fusion(g))
        assert groups[d.id] is not groups[r.id]

    def test_elemwise_chain_fuses(self, chain_graph):
        groups = plan_fusion(chain_graph)
        assert len(groups) == 1
        assert groups[0].size == 4

    def test_reduce_absorbs_into_elemwise_group(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 8))
        y = b.op("softmax", b.op("relu", x), axis=-1)
        g = b.build(y)
        groups = plan_fusion(g)
        assert len(groups) == 1
        assert g.node(groups[0].anchor_id).op == "softmax"

    def test_reduce_does_not_absorb_into_out_fusable(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 8))
        w = b.const((4, 8))
        y = b.op("softmax", b.op("dense", x, w), axis=-1)
        g = b.build(y)
        assert len(plan_fusion(g)) == 2

    def test_injective_fuses_with_elemwise(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 8))
        y = b.op("reshape", b.op("relu", x), shape=(16,))
        g = b.build(y)
        assert len(plan_fusion(g)) == 1


class TestFusionInvariants:
    @settings(max_examples=40, deadline=None)
    @given(random_graphs())
    def test_partition_of_op_nodes(self, graph):
        groups = plan_fusion(graph)
        covered = [nid for g in groups for nid in g.node_ids]
        op_ids = {n.id for n in graph.op_nodes()}
        assert len(covered) == len(set(covered))  # no node in two groups
        assert set(covered) == op_ids  # every op covered

    @settings(max_examples=40, deadline=None)
    @given(random_graphs())
    def test_single_output_per_group(self, graph):
        groups = plan_fusion(graph)
        for group in groups:
            members = set(group.node_ids)
            escaping = set()
            for nid in members:
                if any(c not in members for c in graph.consumers(nid)):
                    escaping.add(nid)
                if nid in graph.outputs:
                    escaping.add(nid)
            assert escaping <= {group.output_id}

    @settings(max_examples=40, deadline=None)
    @given(random_graphs())
    def test_groups_are_connected_and_acyclic(self, graph):
        # A group's members must form a contiguous chain in topo order with
        # no path leaving and re-entering the group.
        topo = {nid: i for i, nid in enumerate(graph.topo_order())}
        for group in plan_fusion(graph):
            members = set(group.node_ids)
            for nid in members:
                # any member's external consumer must not feed back in
                for c in graph.consumers(nid):
                    if c not in members:
                        # every path from c stays outside the group
                        stack, seen = [c], set()
                        while stack:
                            cur = stack.pop()
                            if cur in seen:
                                continue
                            seen.add(cur)
                            assert cur not in members
                            stack.extend(graph.consumers(cur))
