"""Tests for lowering and CompiledModule execution."""

import numpy as np
import pytest

from repro.compiler import (
    CPU_TARGET,
    GPU_TARGET,
    compile_graph,
    lower,
    plan_fusion,
)
from repro.errors import ExecutionError
from repro.ir import GraphBuilder, make_inputs, run_graph
from repro.ir.ops import OpKind


class TestLowering:
    def test_module_matches_interpreter(self, diamond_graph):
        mod = lower(diamond_graph, CPU_TARGET)
        feeds = make_inputs(diamond_graph)
        np.testing.assert_allclose(
            mod.run(feeds)[0], run_graph(diamond_graph, feeds)[0], rtol=1e-5
        )

    def test_kernels_in_executable_order(self, tiny_model):
        mod = lower(tiny_model, CPU_TARGET)
        produced = set(mod.input_ids) | {n.id for n in tiny_model.const_nodes()}
        for kernel in mod.kernels:
            for src in kernel.input_ids:
                assert src in produced, f"kernel consumes unproduced {src}"
            produced.add(kernel.output_id)

    def test_unfused_has_one_kernel_per_op(self, diamond_graph):
        mod = lower(diamond_graph, CPU_TARGET, fuse=False)
        assert len(mod.kernels) == len(diamond_graph.op_nodes())

    def test_fused_has_fewer_launches(self, tiny_model):
        fused = lower(tiny_model, CPU_TARGET)
        unfused = lower(tiny_model, CPU_TARGET, fuse=False)
        assert fused.total_launches() < unfused.total_launches()
        assert fused.total_flops() == pytest.approx(unfused.total_flops())

    def test_target_recorded(self, diamond_graph):
        assert lower(diamond_graph, GPU_TARGET).target.is_gpu
        assert all(
            k.target_name == "gpu"
            for k in lower(diamond_graph, GPU_TARGET).kernels
        )

    def test_missing_input_raises(self, diamond_graph):
        mod = lower(diamond_graph, CPU_TARGET)
        with pytest.raises(ExecutionError):
            mod.run({})

    def test_params_cached(self, tiny_model):
        mod = lower(tiny_model, CPU_TARGET)
        assert mod.params is mod.params


class TestKernelCosts:
    def _fused_dense_module(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 8))
        w = b.const((4, 8))
        bias = b.const((4,))
        y = b.op("relu", b.op("bias_add", b.op("dense", x, w), bias))
        return b.build(y)

    def test_flops_aggregate_over_group(self):
        g = self._fused_dense_module()
        mod = lower(g, CPU_TARGET)
        (kernel,) = mod.kernels
        dense_flops = 2 * 2 * 4 * 8
        elemwise = 2 * 4 * 2  # bias_add + relu over (2,4)
        assert kernel.cost.flops == pytest.approx(dense_flops + elemwise)

    def test_bytes_in_counts_external_only(self):
        g = self._fused_dense_module()
        (kernel,) = lower(g, CPU_TARGET).kernels
        # x (2x8) + w (4x8) + bias (4) floats
        assert kernel.cost.bytes_in == (16 + 32 + 4) * 4
        assert kernel.cost.bytes_out == 2 * 4 * 4

    def test_anchor_kind_used(self):
        g = self._fused_dense_module()
        (kernel,) = lower(g, CPU_TARGET).kernels
        assert kernel.cost.kind is OpKind.GEMM

    def test_lstm_kernel_steps(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 9, 4))
        w_ih = b.const((16, 4))
        w_hh = b.const((16, 4))
        bias = b.const((16,))
        y = b.op("lstm", x, w_ih, w_hh, bias, hidden_size=4)
        mod = lower(b.build(y), GPU_TARGET)
        (kernel,) = mod.kernels
        assert kernel.cost.sequential_steps == 9
        assert kernel.cost.total_launches == 18

    def test_duplicate_external_input_counted_once(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 4))
        y = b.op("add", x, x)
        (kernel,) = lower(b.build(y), CPU_TARGET).kernels
        assert kernel.cost.bytes_in == 2 * 4 * 4
        assert kernel.input_ids == ("x",)


class TestCompileGraph:
    def test_pass_trace_recorded(self, diamond_graph):
        res = compile_graph(diamond_graph, CPU_TARGET)
        names = [r.name for r in res.pass_trace]
        assert "simplify" in names and "cse" in names

    def test_opt_level_zero_skips_passes(self, diamond_graph):
        res = compile_graph(diamond_graph, CPU_TARGET, opt_level=0)
        assert res.pass_trace == ()

    def test_optimization_preserves_semantics(self, tiny_model):
        feeds = make_inputs(tiny_model)
        ref = run_graph(tiny_model, feeds)
        for opt_level in (0, 1, 2):
            mod = compile_graph(tiny_model, CPU_TARGET, opt_level=opt_level).module
            got = mod.run(feeds)
            for a, b in zip(ref, got):
                np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-5)

    def test_param_seed_controls_weights(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 4))
        w = b.const((4, 4), name="w")
        g = b.build(b.op("dense", x, w))
        m1 = compile_graph(g, CPU_TARGET, param_seed=1).module
        m2 = compile_graph(g, CPU_TARGET, param_seed=2).module
        feeds = make_inputs(g)
        assert not np.allclose(m1.run(feeds)[0], m2.run(feeds)[0])
