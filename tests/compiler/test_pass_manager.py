"""Tests for the pass manager."""

import pytest

from repro.compiler.pass_manager import PassManager, default_passes
from repro.errors import CompilerError
from repro.ir import GraphBuilder


class TestPassManager:
    def test_trace_counts(self, diamond_graph):
        pm = PassManager(default_passes(2))
        pm.run(diamond_graph)
        assert len(pm.trace) == len(default_passes(2))
        assert all(r.nodes_before >= r.nodes_after for r in pm.trace)

    def test_removed_property(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        live = b.op("relu", x)
        b.op("tanh", x)  # dead
        g = b.build(live)
        pm = PassManager(default_passes(1))
        pm.run(g)
        assert sum(r.removed for r in pm.trace) == 1

    def test_failing_pass_wrapped(self, diamond_graph):
        def boom(graph):
            raise RuntimeError("nope")

        pm = PassManager([("boom", boom)])
        with pytest.raises(CompilerError, match="boom"):
            pm.run(diamond_graph)

    def test_level_ordering(self):
        assert len(default_passes(0)) == 0
        assert len(default_passes(1)) < len(default_passes(2))

    def test_result_validates(self, tiny_model):
        pm = PassManager(default_passes(2))
        out = pm.run(tiny_model)
        out.validate()
