"""Property tests for the signature-keyed native kernel cache.

Three invariants the rest of the stack leans on:

1. *Warm means warm* — the same kernel signature is never compiled
   twice, whether the hit comes from the in-process memo or the on-disk
   ``.so`` store of a previous process.
2. *Signatures track numerics* — anything that can change the compiled
   code (shape, dtype, op attrs, renderer version, GEMM tile) changes
   the signature; anything that can't (graph/node names, target name)
   doesn't.
3. *Corruption heals* — a truncated or garbage ``.so`` is evicted and
   rebuilt on the next load instead of crashing the engine.

Tests that need an actual ``cc`` are gated on :func:`native_available`;
signature tests are pure Python and always run.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

import repro

from repro.compiler.fusion import plan_fusion
from repro.compiler.lowering import build_kernel
from repro.compiler.native import (
    NativeCache,
    NativeOptions,
    build_native_kernel,
    kernel_signature,
    native_available,
)
from repro.compiler.native.cache import variant_signature
from repro.compiler.native.runtime import ENV_DISABLE, find_compiler
from repro.compiler.pass_manager import PassManager, default_passes
from repro.compiler.target import Target
from repro.ir.builder import GraphBuilder
from repro.ir.dtype import FLOAT32, FLOAT64

needs_cc = pytest.mark.skipif(
    not native_available(), reason="no C compiler on PATH"
)


def _elementwise_graph(name="cachetest", shape=(4, 8), dtype=FLOAT32):
    b = GraphBuilder(name)
    x = b.input("x", shape, dtype=dtype)
    y = b.input("y", shape, dtype=dtype)
    z = b.op("relu", b.op("add", x, y))
    return b.build(z)


def _dense_graph(name="densetest"):
    b = GraphBuilder(name)
    x = b.input("x", (8, 16))
    w = b.const((4, 16), name="w")
    bias = b.const((4,), name="bias")
    z = b.op("bias_add", b.op("dense", x, w), bias)
    return b.build(z)


def _first_group(graph):
    """(optimized_graph, group, external) for the first fusion group,
    computing externals exactly as lowering does."""
    opt = PassManager(default_passes(2)).run(graph)
    group = plan_fusion(opt)[0]
    members = set(group.node_ids)
    external, seen = [], set()
    for nid in group.node_ids:
        for src in opt.node(nid).inputs:
            if src not in members and src not in seen:
                seen.add(src)
                external.append(src)
    return opt, group, external


def _build(graph, cache, **opt_kwargs):
    opt, group, external = _first_group(graph)
    options = NativeOptions(cache=cache, **opt_kwargs)
    return build_native_kernel(opt, group, external, options)


# ---------------------------------------------------------------------------
# Signature properties (pure Python, no compiler required)
# ---------------------------------------------------------------------------


def test_signature_ignores_graph_and_node_names():
    sig_a = kernel_signature(*_first_group(_elementwise_graph("alpha")))
    sig_b = kernel_signature(*_first_group(_elementwise_graph("beta")))
    assert sig_a == sig_b


def test_signature_changes_on_shape():
    base = kernel_signature(*_first_group(_elementwise_graph(shape=(4, 8))))
    other = kernel_signature(*_first_group(_elementwise_graph(shape=(4, 9))))
    assert base != other


def test_signature_changes_on_dtype():
    f32 = kernel_signature(*_first_group(_elementwise_graph()))
    f64 = kernel_signature(
        *_first_group(_elementwise_graph(dtype=FLOAT64))
    )
    assert f32 != f64


def test_signature_changes_on_renderer_version_bump():
    opt, group, external = _first_group(_elementwise_graph())
    v1 = kernel_signature(opt, group, external, renderer_version=1)
    v2 = kernel_signature(opt, group, external, renderer_version=2)
    assert v1 != v2


def test_variant_signatures_distinct_per_tile():
    base = kernel_signature(*_first_group(_dense_graph()))
    assert variant_signature(base, (4, 4)) != variant_signature(base, (8, 2))
    assert variant_signature(base, (4, 4)).startswith(base)


# ---------------------------------------------------------------------------
# Cache behaviour (requires cc)
# ---------------------------------------------------------------------------


@needs_cc
def test_same_signature_never_recompiles(tmp_path):
    cache = NativeCache(root=tmp_path)
    graph = _elementwise_graph()
    k1 = _build(graph, cache)
    assert k1 is not None
    assert cache.stats.compiles == 1

    # Same process: served from the loaded-library memo.
    k2 = _build(_elementwise_graph("renamed"), cache)
    assert k2 is not None and k2.signature == k1.signature
    assert cache.stats.compiles == 1
    assert cache.stats.memo_hits == 1

    # New process (fresh cache object, same root): served from disk.
    cold = NativeCache(root=tmp_path)
    k3 = _build(graph, cold)
    assert k3 is not None
    assert cold.stats.compiles == 0
    assert cold.stats.disk_hits == 1


@needs_cc
def test_kernel_matches_numpy_closure(tmp_path):
    graph = _elementwise_graph()
    opt, group, external = _first_group(graph)
    native = build_native_kernel(
        opt, group, external, NativeOptions(cache=NativeCache(root=tmp_path))
    )
    assert native is not None and native.exact
    numpy_kernel = build_kernel(opt, group, Target("cpu"))
    rng = np.random.default_rng(0)
    args = [
        rng.standard_normal(opt.node(nid).ty.shape, dtype=np.float32)
        for nid in external
    ]
    np.testing.assert_array_equal(native(args), numpy_kernel.fn(args))


@needs_cc
def test_corrupted_so_is_evicted_and_rebuilt(tmp_path):
    cache = NativeCache(root=tmp_path)
    graph = _elementwise_graph()
    k1 = _build(graph, cache)
    assert k1 is not None

    # Corrupt via unlink + rewrite (a new inode, like a torn copy or a
    # disk error would leave) — never truncate in place, because the
    # builder process still has the original inode mapped.
    so = cache.object_path(k1.signature)
    so.unlink()
    so.write_bytes(b"this is not an ELF shared object")

    # dlopen dedupes by pathname inside one process, so the corrupted
    # entry can only be observed by a genuinely fresh process.  It must
    # evict, recompile, and still compute correctly.
    script = textwrap.dedent(
        f"""
        import json
        import numpy as np
        from repro.compiler.fusion import plan_fusion
        from repro.compiler.native import (
            NativeCache, NativeOptions, build_native_kernel,
        )
        from repro.compiler.pass_manager import PassManager, default_passes
        from repro.ir.builder import GraphBuilder

        b = GraphBuilder("cachetest")
        x = b.input("x", (4, 8))
        y = b.input("y", (4, 8))
        z = b.op("relu", b.op("add", x, y))
        graph = PassManager(default_passes(2)).run(b.build(z))
        group = plan_fusion(graph)[0]
        members = set(group.node_ids)
        external, seen = [], set()
        for nid in group.node_ids:
            for src in graph.node(nid).inputs:
                if src not in members and src not in seen:
                    seen.add(src)
                    external.append(src)
        cache = NativeCache(root={str(tmp_path)!r})
        k = build_native_kernel(graph, group, external, NativeOptions(cache=cache))
        assert k is not None
        a = np.ones((4, 8), dtype=np.float32)
        np.testing.assert_array_equal(k([a, -2 * a]), np.zeros((4, 8), np.float32))
        print(json.dumps(cache.stats.snapshot()))
        """
    )
    src_dir = Path(repro.__file__).resolve().parents[1]
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": str(src_dir)},
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    stats = json.loads(proc.stdout.strip().splitlines()[-1])
    assert stats["evictions"] == 1
    assert stats["compiles"] == 1
    assert stats["disk_hits"] == 0


@needs_cc
def test_autotune_persists_choice_and_warm_runs_skip_search(tmp_path):
    cache = NativeCache(root=tmp_path)
    graph = _dense_graph()
    k1 = _build(graph, cache, autotune=True)
    assert k1 is not None
    assert cache.stats.autotunes == 1
    base = kernel_signature(*_first_group(graph))
    meta = cache.read_meta(base)
    assert meta is not None and tuple(meta["tile"]) == k1.rendered.tile

    # Warm process: the persisted meta short-circuits the search and the
    # chosen variant loads from disk — zero compiles, zero re-tunes.
    cold = NativeCache(root=tmp_path)
    k2 = _build(graph, cold, autotune=True)
    assert k2 is not None
    assert k2.signature == k1.signature
    assert cold.stats.autotunes == 0
    assert cold.stats.compiles == 0


@needs_cc
def test_explicit_tile_bypasses_autotune(tmp_path):
    cache = NativeCache(root=tmp_path)
    kernel = _build(_dense_graph(), cache, autotune=True, tile=(2, 8))
    assert kernel is not None
    assert kernel.rendered.tile == (2, 8)
    assert kernel.signature.endswith("_t2x8")
    assert cache.stats.autotunes == 0


def test_disable_env_forces_numpy_fallback(monkeypatch):
    monkeypatch.setenv(ENV_DISABLE, "1")
    find_compiler.cache_clear()
    try:
        assert not native_available()
        with pytest.warns(RuntimeWarning, match="falls back to NumPy"):
            import repro.compiler.native as native_mod

            native_mod._warned_no_cc = False
            opt, group, external = _first_group(_elementwise_graph())
            assert build_native_kernel(opt, group, external) is None
        # Lowering keeps the NumPy closure rather than erroring out.
        kernel = build_kernel(opt, group, Target("cpu", backend="native"))
        assert kernel.backend == "numpy"
    finally:
        monkeypatch.delenv(ENV_DISABLE)
        find_compiler.cache_clear()
