"""Scheduler playground: watch greedy-correction work, step by step.

Reproduces the §VI-C comparison on the Siamese network and prints the
correction trace — which subgraphs moved between devices and how much
end-to-end latency each swap bought.

Run:  python examples/scheduler_playground.py
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table
from repro.core import (
    CompilerAwareProfiler,
    GreedyCorrectionScheduler,
    partition_graph,
)
from repro.core.placement import build_hetero_plan
from repro.core.schedulers import (
    exhaustive_placement,
    random_placement,
    round_robin_placement,
)
from repro.devices import default_machine
from repro.models import build_model
from repro.runtime import simulate


def main() -> None:
    machine = default_machine(noisy=False)
    graph = build_model("siamese")
    partition = partition_graph(graph)

    print(f"Model: {graph.name}")
    for phase in partition.phases:
        kind = phase.type.value
        members = ", ".join(
            f"{sg.id}({len(sg.node_ids)} ops)" for sg in phase.subgraphs
        )
        print(f"  phase {phase.index} [{kind}]: {members}")

    profiler = CompilerAwareProfiler(machine=machine, sample_runs=100)
    profiles = profiler.profile_partition(partition)
    rows = [
        {
            "subgraph": sid,
            "cpu_ms": p.time_on("cpu") * 1e3,
            "gpu_ms": p.time_on("gpu") * 1e3,
            "cpu_p99_ms": p.stats["cpu"].p99_ms,
            "out_KB": p.bytes_out / 1024,
        }
        for sid, p in profiles.items()
    ]
    print("\n" + format_table(rows, title="Compiler-aware profiles (100 sampled runs)"))

    def measure(placement):
        plan = build_hetero_plan(graph, partition, profiles, placement)
        return simulate(plan, machine).latency

    rng = np.random.default_rng(0)
    rand = random_placement(partition, rng)
    rr = round_robin_placement(partition)
    scheduler = GreedyCorrectionScheduler(machine=machine)
    greedy = scheduler.schedule(graph, partition, profiles)
    rand_corr = scheduler.schedule(graph, partition, profiles, initial=rand)
    _, ideal = exhaustive_placement(graph, partition, profiles, machine)

    comparison = [
        {"scheme": "Random", "latency_ms": measure(rand) * 1e3},
        {"scheme": "Round-Robin", "latency_ms": measure(rr) * 1e3},
        {"scheme": "Random+Correction", "latency_ms": rand_corr.latency * 1e3},
        {"scheme": "Greedy+Correction", "latency_ms": greedy.latency * 1e3},
        {"scheme": "Ideal (exhaustive)", "latency_ms": ideal * 1e3},
    ]
    print("\n" + format_table(comparison, title="Scheduling policies (Fig 13 style)"))

    print("\nCorrection trace starting from the random placement:")
    if not rand_corr.corrections:
        print("  (random start was already locally optimal)")
    for step in rand_corr.corrections:
        print(
            f"  phase {step.phase_index}: "
            f"{step.moved_to_gpu or '-'} -> gpu, "
            f"{step.moved_to_cpu or '-'} -> cpu   "
            f"{step.latency_before * 1e3:.3f} ms -> {step.latency_after * 1e3:.3f} ms"
        )
    print(
        f"\nGreedy init needed {len(greedy.corrections)} correction step(s) and "
        f"{greedy.measurements} latency measurements; random init needed "
        f"{len(rand_corr.corrections)} step(s) and {rand_corr.measurements}."
    )


if __name__ == "__main__":
    main()
