"""Quickstart: build a model, let DUET schedule it across CPU and GPU.

Builds a small two-branch network (a GPU-friendly convolutional branch and
a CPU-friendly recurrent branch), runs the full DUET pipeline — partition,
compiler-aware profiling, greedy-correction scheduling — and executes one
inference numerically.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_hetero_timeline, format_table
from repro.core import DuetEngine
from repro.devices import default_machine
from repro.ir import GraphBuilder, make_inputs
from repro.models.common import conv_bn_relu, dense_layer, last_timestep, lstm_layer


def build_two_branch_model():
    """An image branch (conv) and a text branch (LSTM), joined by a head."""
    b = GraphBuilder("two_branch_demo")

    image = b.input("image", (1, 3, 64, 64))
    text = b.input("text", (1, 50, 128))

    # Conv branch: three conv blocks + global pooling.
    y = image
    for i, ch in enumerate((32, 64, 128)):
        y = conv_bn_relu(b, y, ch, 3, 2, 1, f"conv{i}")
    y = b.op("global_avg_pool2d", y)
    img_feat = b.op("reshape", y, shape=(1, 128))

    # Recurrent branch: one LSTM, last hidden state.
    seq = lstm_layer(b, text, 128, "lstm", return_sequences=True)
    txt_feat = last_timestep(b, seq)

    joint = b.op("concat", img_feat, txt_feat, axis=1)
    head = dense_layer(b, joint, 64, "head")
    logits = dense_layer(b, head, 10, "out", activation=None)
    return b.build(b.op("softmax", logits, axis=-1))


def main() -> None:
    graph = build_two_branch_model()
    print(f"Model: {graph.name} ({len(graph.op_nodes())} ops, "
          f"{graph.total_flops() / 1e6:.1f} MFLOPs)\n")

    engine = DuetEngine(machine=default_machine(noisy=False))
    opt = engine.optimize(graph)

    rows = []
    for sg in opt.partition.subgraphs:
        prof = opt.profiles[sg.id]
        rows.append(
            {
                "subgraph": sg.id,
                "ops": len(sg.node_ids),
                "cpu_ms": prof.time_on("cpu") * 1e3,
                "gpu_ms": prof.time_on("gpu") * 1e3,
                "placed_on": opt.placement[sg.id],
            }
        )
    print(format_table(rows, title="Compiler-aware profile and placement"))

    print(
        f"\nDUET latency:    {opt.latency * 1e3:.3f} ms"
        f"\nTVM-CPU latency: {opt.single_device_latency['cpu'] * 1e3:.3f} ms"
        f"\nTVM-GPU latency: {opt.single_device_latency['gpu'] * 1e3:.3f} ms"
        f"\nFallback used:   {opt.fallback_device or 'no — co-execution wins'}"
    )

    # Execute one real inference (NumPy numerics flow through the plan).
    feeds = make_inputs(graph, seed=42)
    result = engine.run(opt, inputs=feeds)
    probs = result.outputs[0]
    print(f"\nInference output: class {int(np.argmax(probs))} "
          f"(p = {float(probs.max()):.3f}); simulated latency "
          f"{result.latency * 1e3:.3f} ms, "
          f"{len(result.transfers)} PCIe transfer(s)\n")
    print(format_hetero_timeline(result, title="Execution timeline"))


if __name__ == "__main__":
    main()
