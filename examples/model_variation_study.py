"""Model-variation study: how DUET adapts as architects change a model.

The paper's §VI-D scenario: model scientists keep changing depths and
batch sizes, and the inference stack must re-optimize automatically.  This
sweeps RNN layers, CNN depth, FFN depth, and batch size (Figs. 14-17) and
prints each series.

Run:  python examples/model_variation_study.py
"""

from __future__ import annotations

from repro.bench import (
    fig14_rnn_layers,
    fig15_cnn_depth,
    fig16_ffn_depth,
    fig17_batch_size,
    format_table,
)
from repro.devices import default_machine


def main() -> None:
    machine = default_machine(noisy=False)
    for title, fn in (
        ("Fig 14 — stacked RNN layers (1/2/4/8)", fig14_rnn_layers),
        ("Fig 15 — ResNet encoder depth (18/34/50/101)", fig15_cnn_depth),
        ("Fig 16 — FFN hidden layers (1/2/4/8)", fig16_ffn_depth),
        ("Fig 17 — batch size (2..32)", fig17_batch_size),
    ):
        rows = fn(machine)
        print(format_table(rows, title=title))
        print()

    print(
        "Reading the shapes:\n"
        "  - RNN depth hurts the GPU most (sequential steps underutilize it);\n"
        "  - CNN depth hurts the CPU most (convolutions want the GPU);\n"
        "  - FFN depth barely matters (GEMMs are fast everywhere);\n"
        "  - larger batches erode DUET's edge (the GPU saturates on its own)."
    )


if __name__ == "__main__":
    main()
