"""Serving a Wide-and-Deep recommender under a latency SLA.

The paper's motivating scenario (§I, §VI-B): a recommender model combining
wide features, an FFN, an LSTM over user history, and a ResNet image
encoder must answer in a few milliseconds.  This example compares every
baseline against DUET and reports the tail-latency percentiles an online
service cares about.

Run:  python examples/recommender_serving.py
"""

from __future__ import annotations

from repro.baselines import TVMLikeBaseline, pytorch_like, tensorflow_like
from repro.bench import format_bars, format_table
from repro.core import DuetEngine
from repro.devices import default_machine
from repro.models import WideDeepConfig, build_wide_deep

SLA_MS = 5.0
N_RUNS = 3000


def main() -> None:
    graph = build_wide_deep(WideDeepConfig())
    machine = default_machine(noisy=True)
    engine = DuetEngine(machine=machine)

    print("Optimizing Wide-and-Deep with DUET ...")
    opt = engine.optimize(graph)
    print(f"  placement: {opt.placement}")
    print(f"  correction steps applied: {len(opt.schedule.corrections)}\n")

    rows = []
    for baseline in (
        pytorch_like("cpu", machine),
        pytorch_like("gpu", machine),
        tensorflow_like("cpu", machine),
        tensorflow_like("gpu", machine),
        TVMLikeBaseline("cpu", machine),
        TVMLikeBaseline("gpu", machine),
    ):
        stats = baseline.latency_stats(graph, n_runs=N_RUNS)
        rows.append(
            {
                "system": baseline.name,
                "mean_ms": stats.mean_ms,
                "p50_ms": stats.p50_ms,
                "p99_ms": stats.p99_ms,
                "p999_ms": stats.p999_ms,
                "meets_SLA_p99": "yes" if stats.p99_ms <= SLA_MS else "no",
            }
        )
    duet_stats = engine.latency_stats(opt, n_runs=N_RUNS)
    rows.append(
        {
            "system": "DUET",
            "mean_ms": duet_stats.mean_ms,
            "p50_ms": duet_stats.p50_ms,
            "p99_ms": duet_stats.p99_ms,
            "p999_ms": duet_stats.p999_ms,
            "meets_SLA_p99": "yes" if duet_stats.p99_ms <= SLA_MS else "no",
        }
    )

    print(format_table(rows, title=f"Serving latency over {N_RUNS} runs (SLA: P99 <= {SLA_MS} ms)"))
    print()
    print(format_bars(rows, "system", "p99_ms", title="P99 latency (ms)"))

    best_baseline = min(rows[:-1], key=lambda r: r["p99_ms"])
    print(
        f"\nDUET improves P99 by "
        f"{best_baseline['p99_ms'] / duet_stats.p99_ms:.2f}x over the best "
        f"single-device system ({best_baseline['system']})."
    )


if __name__ == "__main__":
    main()
