"""Adaptive serving: DUET re-schedules itself when the machine drifts.

Serves 80 Wide&Deep requests.  From request 25 a co-tenant steals most of
the CPU (4x slowdown); around request 55 it leaves again.  Watch the
adaptive engine's latency track the environment while a static plan stays
stuck with its offline decision.

Run:  python examples/adaptive_serving.py
"""

from __future__ import annotations

from repro.core import AdaptiveDuetEngine, DuetEngine
from repro.devices import Machine, default_machine, scale_device
from repro.models import build_model
from repro.runtime import simulate


def main() -> None:
    base = default_machine(noisy=False)
    contended = Machine(
        cpu=scale_device(base.cpu, 4.0), gpu=base.gpu,
        interconnect=base.interconnect,
    )
    graph = build_model("wide_deep")

    adaptive = AdaptiveDuetEngine(base_machine=base, cooldown=5)
    adaptive.start(graph)
    static_plan = DuetEngine(machine=base).optimize(graph).plan

    print("request | environment | adaptive (ms) | static (ms) | note")
    print("-" * 68)
    for i in range(80):
        if i < 25:
            machine, env = base, "nominal  "
        elif i < 55:
            machine, env = contended, "contended"
        else:
            machine, env = base, "recovered"
        rec = adaptive.serve_one(machine)
        static_ms = simulate(static_plan, machine).latency * 1e3
        note = ""
        if rec.adapted:
            note = (
                f"ADAPTED: cpu belief x{rec.assumed_slowdown['cpu']:.2f}, "
                f"placement {sorted(rec.placement.items())}"
            )
        if i % 5 == 0 or rec.adapted:
            print(
                f"{rec.index:7d} | {env} | {rec.latency * 1e3:13.2f} | "
                f"{static_ms:11.2f} | {note}"
            )

    print(
        f"\n{adaptive.adaptations} adaptations total; final machine belief: "
        f"cpu x{adaptive.assumed_slowdown['cpu']:.2f}, "
        f"gpu x{adaptive.assumed_slowdown['gpu']:.2f}"
    )


if __name__ == "__main__":
    main()
