"""Multi-task NLU serving with MT-DNN: one encoder, many heads.

MT-DNN (paper Fig. 3) runs a shared transformer trunk and several
independent task heads.  DUET spreads the heads across CPU and GPU so they
finish concurrently, and sends each trunk phase to whichever device runs
it faster.  This example shows the per-phase decisions and verifies the
numeric outputs against the reference interpreter.

Run:  python examples/multitask_nlu.py
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table
from repro.core import DuetEngine, PhaseType
from repro.devices import default_machine
from repro.ir import make_inputs, run_graph
from repro.models import MTDNNConfig, build_mtdnn


def main() -> None:
    cfg = MTDNNConfig()
    graph = build_mtdnn(cfg)
    print(
        f"MT-DNN: {cfg.num_layers} encoder layers, {cfg.num_tasks} task heads, "
        f"seq_len {cfg.seq_len}, d_model {cfg.d_model}\n"
    )

    engine = DuetEngine(machine=default_machine(noisy=False))
    opt = engine.optimize(graph)

    rows = []
    for phase in opt.partition.phases:
        for sg in phase.subgraphs:
            prof = opt.profiles[sg.id]
            rows.append(
                {
                    "phase": phase.index,
                    "type": "multi" if phase.type is PhaseType.MULTI_PATH else "seq",
                    "subgraph": sg.id,
                    "cpu_ms": prof.time_on("cpu") * 1e3,
                    "gpu_ms": prof.time_on("gpu") * 1e3,
                    "device": opt.placement[sg.id],
                }
            )
    print(format_table(rows, title="Per-phase placement"))

    heads = [r for r in rows if r["phase"] == opt.partition.phases[-1].index]
    devices = {r["device"] for r in heads}
    print(
        f"\nTask heads run on: {sorted(devices)} "
        f"({'split across devices' if len(devices) == 2 else 'one device'})"
    )
    print(
        f"DUET {opt.latency * 1e3:.3f} ms vs TVM-GPU "
        f"{opt.single_device_latency['gpu'] * 1e3:.3f} ms vs TVM-CPU "
        f"{opt.single_device_latency['cpu'] * 1e3:.3f} ms"
    )

    # Verify heterogeneous execution numerically on the tiny variant.
    tiny = build_mtdnn(
        MTDNNConfig(
            seq_len=8, vocab_size=100, d_model=16, num_heads=2, d_ff=32,
            num_layers=2, num_tasks=3, head_hidden=16, head_classes=4,
        )
    )
    tiny_opt = engine.optimize(tiny)
    feeds = make_inputs(tiny)
    result = engine.run(tiny_opt, inputs=feeds)
    ref = run_graph(tiny, feeds)
    for got, want in zip(result.outputs, ref):
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)
    print(
        f"\nNumeric check (tiny variant): {len(ref)} task outputs match the "
        "reference interpreter bit-for-bit tolerances."
    )


if __name__ == "__main__":
    main()
