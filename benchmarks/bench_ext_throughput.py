"""Extension: serving throughput under a closed-loop request stream.

The paper optimizes single-request latency; a serving deployment also
gains *throughput* from DUET because consecutive requests pipeline across
the two devices (request r's RNN on CPU overlaps request r+1's CNN on
GPU).  Measured: requests/second over a 100-request burst for each
system.
"""

from conftest import emit

from repro.bench import closed_loop_burst, format_table
from repro.core import DuetEngine
from repro.models import build_model
from repro.runtime.single import single_device_plan

N_REQUESTS = 100


def _run(machine):
    engine = DuetEngine(machine=machine)
    rows = []
    for name in ("wide_deep", "siamese", "mtdnn"):
        graph = build_model(name)
        opt = engine.optimize(graph)
        plans = {
            "TVM-CPU": single_device_plan(engine.compiler.compile_cpu(graph), "cpu"),
            "TVM-GPU": single_device_plan(engine.compiler.compile_gpu(graph), "gpu"),
            "DUET": opt.plan,
        }
        for system, plan in plans.items():
            stream = closed_loop_burst(plan, machine, n_requests=N_REQUESTS)
            rows.append(
                {
                    "model": name,
                    "system": system,
                    "throughput_rps": stream.throughput,
                    "mean_latency_ms": stream.mean_latency * 1e3,
                }
            )
    return rows


def test_ext_pipelined_throughput(benchmark, machine):
    rows = benchmark.pedantic(_run, args=(machine,), rounds=1, iterations=1)
    emit(
        format_table(
            rows, title=f"Extension — throughput over {N_REQUESTS}-request burst"
        )
    )

    for model in {r["model"] for r in rows}:
        tp = {
            r["system"]: r["throughput_rps"]
            for r in rows
            if r["model"] == model
        }
        # Pipelining across devices outruns either device alone.
        assert tp["DUET"] > max(tp["TVM-CPU"], tp["TVM-GPU"]), model
