"""Extension: multi-level partitioning (the paper's footnote-1 future work).

The paper leaves nested partitioning as future work, predicting lower
granularity and more communication.  Measured here: on Wide&Deep and
Siamese the extra units buy nothing (branches are internally sequential),
but on MT-DNN splitting the attention blocks' internal q/k/v parallelism
yields a further ~7% latency cut — the correction step prunes any split
that would add net communication, so nesting never hurts.
"""

from conftest import emit

from repro.bench import format_table
from repro.core import (
    CompilerAwareProfiler,
    GreedyCorrectionScheduler,
    partition_graph,
    partition_graph_nested,
)
from repro.models import build_model


def _run(machine):
    scheduler = GreedyCorrectionScheduler(machine=machine)
    rows = []
    for name in ("wide_deep", "siamese", "mtdnn"):
        graph = build_model(name)
        out = {}
        for label, part in (
            ("one_level", partition_graph(graph)),
            ("nested", partition_graph_nested(graph, max_depth=1)),
        ):
            profiles = CompilerAwareProfiler(machine=machine).profile_partition(part)
            result = scheduler.schedule(graph, part, profiles)
            out[label] = (len(part.subgraphs), result.latency)
        rows.append(
            {
                "model": name,
                "subgraphs_1lvl": out["one_level"][0],
                "subgraphs_nested": out["nested"][0],
                "latency_1lvl_ms": out["one_level"][1] * 1e3,
                "latency_nested_ms": out["nested"][1] * 1e3,
                "gain": out["one_level"][1] / out["nested"][1],
            }
        )
    return rows


def test_ext_nested_partitioning(benchmark, machine):
    rows = benchmark.pedantic(_run, args=(machine,), rounds=1, iterations=1)
    emit(format_table(rows, title="Extension — one-level vs nested partitioning"))

    by = {r["model"]: r for r in rows}
    for r in rows:
        assert r["latency_nested_ms"] <= r["latency_1lvl_ms"] * 1.02
    # MT-DNN's attention blocks expose internal parallelism worth taking.
    assert by["mtdnn"]["gain"] > 1.03
    assert by["mtdnn"]["subgraphs_nested"] > by["mtdnn"]["subgraphs_1lvl"]
