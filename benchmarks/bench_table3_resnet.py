"""Table III: traditional sequential models (ResNet-50, VGG-16, SqueezeNet).

Paper: DUET offers the same performance as the best-performing baseline
(TVM-GPU) — the models are sequential (or, for SqueezeNet's fire modules,
branch-parallel but single-device-preferring), so DUET falls back to
single-device execution rather than pay communication for no parallelism.
"""

from conftest import emit

from repro.bench import format_table, table3_resnet


def test_table3_traditional_fallback(benchmark, machine):
    rows = benchmark.pedantic(
        table3_resnet, kwargs={"machine": machine}, rounds=1, iterations=1
    )
    emit(format_table(rows, title="Table III — traditional models (ms)"))

    for model in {r["model"] for r in rows}:
        lat = {r["system"]: r["latency_ms"] for r in rows if r["model"] == model}
        assert lat["DUET"] == min(lat.values()), model
        assert abs(lat["DUET"] - lat["TVM-GPU"]) < 1e-9 + 1e-6 * lat["TVM-GPU"]
        duet = next(
            r for r in rows if r["model"] == model and r["system"] == "DUET"
        )
        assert duet["fallback"] == "gpu", model
