"""Fig. 4: execution timeline of Wide&Deep on GPU vs CPU.

Paper observation: on GPU the RNN dominates the timeline; on CPU the CNN
does.  That contrast is the motivation for heterogeneous co-execution.
"""

from conftest import emit

from repro.bench import fig04_timeline, format_timeline


def test_fig04_timeline(benchmark, machine):
    data = benchmark.pedantic(
        fig04_timeline, kwargs={"machine": machine}, rounds=2, iterations=1
    )
    for dev in ("gpu", "cpu"):
        total = max(s["end_ms"] for s in data[dev])
        emit(
            format_timeline(
                data[dev],
                title=f"Fig 4 — Wide&Deep single-device timeline on {dev.upper()} "
                f"(total {total:.2f} ms)",
                max_rows=12,
            )
        )

    def time_of(dev, marker):
        return sum(s["duration_ms"] for s in data[dev] if marker in s["kernel"])

    # The paper's contrast: RNN is the GPU bottleneck, CNN the CPU one.
    assert time_of("gpu", "lstm") > 0.5 * time_of("gpu", "conv2d")
    assert time_of("cpu", "conv2d") > time_of("cpu", "lstm")
