"""Ablation: coarse-grained phases vs operator-level scheduling (§III-B).

Operator-granularity subgraphs cannot be fused across (each compiles
alone) and multiply the candidate CPU↔GPU hand-offs — the two costs the
paper's coarse partitioning is designed to avoid (footnote 1).
"""

from conftest import emit

from repro.bench import ablation_granularity, format_table


def test_ablation_partition_granularity(benchmark, machine):
    rows = benchmark.pedantic(
        ablation_granularity, kwargs={"machine": machine}, rounds=1, iterations=1
    )
    emit(format_table(rows, title="Ablation — coarse vs per-operator partitioning"))

    for r in rows:
        assert r["per_op_subgraphs"] > 3 * r["coarse_subgraphs"]
        assert r["per_op_ms"] >= r["coarse_ms"] * 0.999, r
    # At least one model pays a clear penalty for fine granularity.
    assert max(r["penalty"] for r in rows) > 1.25
