"""Table II: per-subgraph computation cost and final placement decisions.

Paper's Wide&Deep row: RNN subgraph 2.4 ms CPU / 6.4 ms GPU → placed on
CPU; CNN subgraph 14.9 ms CPU / 0.9 ms GPU → placed on GPU.
"""

from conftest import emit

from repro.bench import format_table, table2_breakdown


def test_table2_breakdown(benchmark, machine):
    rows = benchmark.pedantic(
        table2_breakdown, kwargs={"machine": machine}, rounds=2, iterations=1
    )
    emit(
        format_table(
            rows, title="Table II — subgraph costs (ms) and placements"
        )
    )

    wd = [r for r in rows if r["model"] == "wide_deep"]
    rnn = max(wd, key=lambda r: r["gpu_ms"] - r["cpu_ms"])  # GPU-hostile
    cnn = max(wd, key=lambda r: r["cpu_ms"] - r["gpu_ms"])  # CPU-hostile
    assert rnn["placement"] == "cpu"
    assert cnn["placement"] == "gpu"
    # Magnitudes near the paper's Table II.
    assert 1.0 < rnn["cpu_ms"] < 6.0 and 4.0 < rnn["gpu_ms"] < 12.0
    assert 7.0 < cnn["cpu_ms"] < 30.0 and 0.4 < cnn["gpu_ms"] < 3.0
