"""Ablation: compiler-aware vs compiler-unaware profiling (§IV-B).

The naive arm feeds the scheduler per-operator (unfused) timings — what a
framework profiler reports.  On the `fusion_sensitive` workload the
unfused timings invert a branch's device preference, so the naive
scheduler parks it on the wrong device.
"""

from conftest import emit

from repro.bench import ablation_profiling, format_table


def test_ablation_compiler_aware_profiling(benchmark, machine):
    rows = benchmark.pedantic(
        ablation_profiling, kwargs={"machine": machine}, rounds=1, iterations=1
    )
    emit(format_table(rows, title="Ablation — compiler-aware vs naive profiling"))

    by = {r["model"]: r for r in rows}
    # Aware profiling is never worse...
    for r in rows:
        assert r["aware_ms"] <= r["naive_ms"] + 1e-9
    # ...and strictly better where fusion flips the device preference.
    fs = by["fusion_sensitive"]
    assert fs["decisions_differ"]
    assert fs["penalty"] > 1.05
