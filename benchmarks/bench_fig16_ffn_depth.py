"""Fig. 16: Wide&Deep with 1/2/4/8 hidden layers in the Deep (FFN) branch.

Paper shape: latency barely moves — FFN layers are GEMMs, fast on both
devices, so the branch never becomes the bottleneck.
"""

from conftest import emit

from repro.bench import fig16_ffn_depth, format_table


def test_fig16_ffn_depth_sweep(benchmark, machine):
    rows = benchmark.pedantic(
        fig16_ffn_depth, kwargs={"machine": machine}, rounds=1, iterations=1
    )
    emit(format_table(rows, title="Fig 16 — varying FFN hidden layers"))

    for key in ("tvm_cpu_ms", "tvm_gpu_ms", "duet_ms"):
        lo = min(r[key] for r in rows)
        hi = max(r[key] for r in rows)
        assert hi < lo * 1.3, key  # "does not change much"
    for r in rows:
        assert r["speedup_vs_gpu"] >= 1.0
