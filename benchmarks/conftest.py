"""Benchmark fixtures: shared machines and a table printer."""

from __future__ import annotations

import pytest

from repro.devices import default_machine


@pytest.fixture(scope="session")
def machine():
    """Noiseless machine (mean latencies) for deterministic benches."""
    return default_machine(noisy=False)


@pytest.fixture(scope="session")
def noisy_machine():
    """Noisy machine for tail-latency benches."""
    return default_machine(noisy=True)


def emit(text: str) -> None:
    """Print a result table so `pytest -s benchmarks/` shows the figures."""
    print("\n" + text + "\n")
