"""Fig. 5: CPU↔GPU point-to-point transfer latency vs message size.

Paper shape: latency grows almost linearly with message size; small
messages sit on a fixed-latency floor far below typical NN operator
execution times.
"""

from conftest import emit

from repro.bench import fig05_comm, format_table


def test_fig05_comm(benchmark, machine):
    rows = benchmark.pedantic(
        fig05_comm, kwargs={"machine": machine}, rounds=3, iterations=1
    )
    emit(format_table(rows[::3], title="Fig 5 — PCIe transfer cost (every 3rd size)"))

    latencies = [r["latency_ms"] for r in rows]
    assert latencies == sorted(latencies)
    # Linear regime: doubling a large message doubles its latency.
    big = [r for r in rows if r["bytes"] >= 2**24]
    assert big[1]["latency_ms"] / big[0]["latency_ms"] > 1.8
    # Floor: a 1 KiB message costs ~the base latency, in microseconds.
    assert rows[0]["latency_ms"] < 0.1
