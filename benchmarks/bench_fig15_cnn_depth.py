"""Fig. 15: Wide&Deep with ResNet-18/34/50/101 CNN encoders.

Paper shape: TVM-CPU degrades fastest (conv is CPU-hostile); DUET's
latency stays almost flat while the CNN (on GPU) is hidden behind the RNN
(on CPU), then grows once the CNN dominates.
"""

from conftest import emit

from repro.bench import fig15_cnn_depth, format_table


def test_fig15_cnn_depth_sweep(benchmark, machine):
    rows = benchmark.pedantic(
        fig15_cnn_depth, kwargs={"machine": machine}, rounds=1, iterations=1
    )
    emit(format_table(rows, title="Fig 15 — varying CNN (ResNet) depth"))

    cpu_growth = rows[-1]["tvm_cpu_ms"] / rows[0]["tvm_cpu_ms"]
    gpu_growth = rows[-1]["tvm_gpu_ms"] / rows[0]["tvm_gpu_ms"]
    assert cpu_growth > gpu_growth
    # DUET nearly flat while the CNN hides behind the RNN: 18 -> 34 grows
    # far less than the CPU baseline does.
    duet_small_growth = rows[1]["duet_ms"] / rows[0]["duet_ms"]
    assert duet_small_growth < 1.25
    for r in rows:
        assert r["speedup_vs_gpu"] >= 1.0
        assert r["speedup_vs_cpu"] >= 1.0
