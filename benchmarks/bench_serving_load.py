"""Serving-layer load benchmark: batched vs. unbatched closed loop.

Drives the real multi-threaded serving frontend (not the stream
simulator) with a closed loop of concurrent clients over a stack-safe
test-scale model, in two arms:

* **unbatched** — ``batching=False``: every request is its own dispatch;
* **batched** — dynamic batching on: compatible queued requests execute
  as one concatenated stacked dispatch.

Latency percentiles come from the metrics registry's
``duet_request_latency_seconds`` histogram — the same numbers a scrape
would see — not from ad-hoc timers; throughput comes from the shared
closed-loop load generator.  Batching must win ≥ 1.5x at concurrency 8:
one NumPy kernel invocation per op for the whole batch amortizes the
per-request dispatch overhead that dominates at test scale.
"""

from conftest import emit

from repro.bench import elementwise_chain, format_table, run_closed_loop
from repro.core import DuetEngine
from repro.ir import make_inputs
from repro.serving import ServingConfig

N_REQUESTS = 400
CONCURRENCY = 8
MIN_SPEEDUP = 1.5


def _serve_arm(engine, opt, feeds, *, batching, n_requests, concurrency):
    """One closed-loop arm; returns (LoadResult, latency-histogram snapshot)."""
    config = ServingConfig(
        queue_capacity=max(64, 2 * concurrency),
        batching=batching,
        max_batch_size=concurrency,
        max_linger_s=2e-3,
        pool_size=1,
    )
    with engine.serve(opt, config=config) as frontend:
        frontend.request(feeds)  # warm-up: weights + arena, paid once
        load = run_closed_loop(
            lambda i: frontend.request(feeds),
            n_requests=n_requests,
            concurrency=concurrency,
        )
        hist = frontend.registry.histogram(
            "duet_request_latency_seconds"
        ).snapshot(model="default")
    return load, hist


def _run(n_requests=N_REQUESTS, concurrency=CONCURRENCY):
    engine = DuetEngine()
    graph = elementwise_chain(batch=4, width=64, depth=6)
    opt = engine.optimize(graph)
    feeds = make_inputs(graph, seed=0)
    rows = []
    results = {}
    for arm, batching in (("unbatched", False), ("batched", True)):
        load, hist = _serve_arm(
            engine,
            opt,
            feeds,
            batching=batching,
            n_requests=n_requests,
            concurrency=concurrency,
        )
        results[arm] = load
        rows.append(
            {
                "arm": arm,
                "throughput_rps": load.throughput_rps,
                "p50_ms": hist.quantile(0.50) * 1e3,
                "p95_ms": hist.quantile(0.95) * 1e3,
                "p99_ms": hist.quantile(0.99) * 1e3,
                "errors": load.n_errors,
            }
        )
    return rows, results


def test_serving_batched_throughput(benchmark):
    rows, results = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        format_table(
            rows,
            title=(
                f"Serving load — {N_REQUESTS} requests, "
                f"{CONCURRENCY} closed-loop clients"
            ),
        )
    )
    for arm, load in results.items():
        assert load.n_errors == 0, (arm, load)
        assert load.n_requests == N_REQUESTS, (arm, load)
    speedup = (
        results["batched"].throughput_rps / results["unbatched"].throughput_rps
    )
    emit(f"batched/unbatched speedup: {speedup:.2f}x")
    assert speedup >= MIN_SPEEDUP, speedup
