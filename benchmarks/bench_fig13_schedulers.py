"""Fig. 13: scheduling-algorithm comparison on Wide&Deep.

Paper shape: Random and Round-Robin are clearly worse; both
correction-based schemes approach the optimum; Greedy+Correction matches
the exhaustively-found Ideal schedule.
"""

from conftest import emit

from repro.bench import fig13_schedulers, format_bars, format_table


def test_fig13_scheduler_comparison(benchmark, machine):
    rows = benchmark.pedantic(
        fig13_schedulers,
        kwargs={"machine": machine, "n_random": 20},
        rounds=1,
        iterations=1,
    )
    emit(format_table(rows, title="Fig 13 — scheduling algorithms (Wide&Deep)"))
    emit(format_bars(rows, "scheme", "latency_ms", title="Fig 13 — latency (ms)"))

    lat = {r["scheme"]: r["latency_ms"] for r in rows}
    assert lat["Random"] > 1.5 * lat["Greedy+Correction"]
    assert lat["Round-Robin"] >= lat["Greedy+Correction"] * 0.999
    assert lat["Random+Correction"] <= lat["Round-Robin"] * 1.001
    # §VI-C: greedy-correction finds the exact optimum on this instance.
    assert abs(lat["Greedy+Correction"] - lat["Ideal"]) < 1e-9 * max(
        lat["Ideal"], 1.0
    ) + 1e-6
