"""Session-reuse benchmark: EngineSession vs per-call engine runs.

The serving claim behind the unified runtime core: one scheduling decision
should be executed many times over many requests without re-entering the
scheduler.  Two comparisons on a mid-size zoo model (Wide&Deep, test-scale
config so CI measures dispatch overhead rather than raw kernel FLOPs;
its plan co-executes 5 tasks across both devices, so the session path
resolves real cross-device feeds):

1. **Amortization** — serving N requests through one ``engine.session()``
   (optimize once, arena-backed dispatch per request) versus the per-call
   baseline of ``engine.optimize(graph)`` + ``engine.run(opt, inputs)``
   for every request.  Session reuse must win by a wide margin: the
   partition/profile/schedule pipeline is paid once instead of N times.
2. **Steady state** — per-request dispatch through a warm session versus
   ``engine.run`` on an already-held optimization.  Kernel compute
   dominates both, so this is a guardrail, not a speedup claim: the
   session (which also buys stable arena storage and a tracing hook) must
   stay within a small factor of the bare run, and its arena must stop
   allocating after warmup.

Outputs stay bit-identical to a fresh ``DuetEngine.run`` throughout.
"""

import time

import numpy as np
from conftest import emit

from repro.bench import format_table
from repro.core import DuetEngine
from repro.ir import make_inputs
from repro.models import build_model

N_REQUESTS = 30
MODEL = "wide_deep"


def test_session_reuse_beats_per_call_runs(machine):
    graph = build_model(MODEL, tiny=True)
    feeds = make_inputs(graph)
    engine = DuetEngine(machine=machine)

    # Baseline: the pre-session serving loop — every request re-enters the
    # whole optimize pipeline before executing.
    t0 = time.perf_counter()
    baseline_outputs = None
    for _ in range(N_REQUESTS):
        opt = engine.optimize(graph)
        result = engine.run(opt, feeds)
        baseline_outputs = result.outputs
    per_call_s = (time.perf_counter() - t0) / N_REQUESTS

    # Session: optimize once, then serve.  The first request materializes
    # the parameters (DUET loads weights once) — that is setup, not
    # steady-state serving cost.
    t0 = time.perf_counter()
    session = engine.session(graph)
    session.run(feeds)
    setup_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    results = session.run_many([feeds] * N_REQUESTS)
    session_s = (time.perf_counter() - t0) / N_REQUESTS

    # Steady state: engine.run on a held optimization vs warm session.
    opt = session.opt
    t0 = time.perf_counter()
    for _ in range(N_REQUESTS):
        engine.run(opt, feeds)
    held_run_s = (time.perf_counter() - t0) / N_REQUESTS

    allocations_before = session.arena.allocations
    session.run(feeds)
    allocations_after = session.arena.allocations

    emit(
        format_table(
            [
                {
                    "path": "optimize+run per request",
                    "per_request_ms": per_call_s * 1e3,
                    "vs_session": per_call_s / session_s,
                },
                {
                    "path": "engine.run (held opt)",
                    "per_request_ms": held_run_s * 1e3,
                    "vs_session": held_run_s / session_s,
                },
                {
                    "path": "EngineSession.run",
                    "per_request_ms": session_s * 1e3,
                    "vs_session": 1.0,
                },
            ],
            title=(
                f"Session reuse — {MODEL} (tiny), {N_REQUESTS} requests "
                f"(session setup {setup_s * 1e3:.1f} ms, paid once)"
            ),
        )
    )

    # The serving claim: session reuse beats per-call engine runs by a
    # wide margin — the optimize pipeline is amortized away.
    assert per_call_s >= 2 * session_s, (per_call_s, session_s)
    # Steady-state guardrail: arena-backed dispatch stays within a small
    # factor of a bare engine.run on a held optimization (kernel compute
    # dominates both; the session additionally buys stable buffers).
    assert session_s <= 2.0 * held_run_s, (session_s, held_run_s)
    # Arena stops allocating once warm.
    assert allocations_after == allocations_before, (
        allocations_before,
        allocations_after,
    )
    # Bit-identical outputs to the per-call baseline.
    for got, want in zip(results[-1].outputs, baseline_outputs):
        np.testing.assert_array_equal(got, want)


def test_session_tracing_hook_is_cheap_and_complete(machine):
    graph = build_model(MODEL, tiny=True)
    feeds = make_inputs(graph)
    engine = DuetEngine(machine=machine)
    events = []
    session = engine.session(graph, trace_sink=events.append)
    session.run(feeds)
    n_tasks = len(session.plan.tasks)
    starts = [e for e in events if e.kind == "task-start"]
    finishes = [e for e in events if e.kind == "task-finish"]
    assert len(starts) == n_tasks
    assert len(finishes) == n_tasks
    emit(
        f"structured trace: {len(events)} events for {n_tasks} tasks "
        f"({MODEL})"
    )
