"""Extension: online re-scheduling under runtime interference.

The paper's correction step targets "unpredictable variations at run
time" but is applied once, offline.  This extension serves a request
stream through DUET while a co-tenant steals CPU capacity mid-stream
(4x slowdown from request 20): the adaptive engine detects the drift from
observed task durations, re-profiles under its updated machine belief,
and re-schedules — the static plan keeps paying contended-CPU prices.
"""

from conftest import emit

from repro.bench import format_table
from repro.core import AdaptiveDuetEngine, DuetEngine
from repro.devices import Machine, scale_device
from repro.models import build_model
from repro.runtime import simulate


def _run(machine):
    contended = Machine(
        cpu=scale_device(machine.cpu, 4.0),
        gpu=machine.gpu,
        interconnect=machine.interconnect,
    )
    graph = build_model("wide_deep")
    adaptive = AdaptiveDuetEngine(base_machine=machine, cooldown=5)
    adaptive.start(graph)
    static_plan = DuetEngine(machine=machine).optimize(graph).plan

    records = []
    for i in range(70):
        true = machine if i < 20 else contended
        rec = adaptive.serve_one(true)
        records.append(rec)

    def avg(lo, hi):
        xs = [r.latency for r in records[lo:hi]]
        return sum(xs) / len(xs) * 1e3

    return {
        "nominal_ms": avg(0, 20),
        "drifted_pre_adapt_ms": records[20].latency * 1e3,
        "drifted_post_adapt_ms": avg(50, 70),
        "static_under_drift_ms": simulate(static_plan, contended).latency * 1e3,
        "adaptations": adaptive.adaptations,
        "final_cpu_belief": adaptive.assumed_slowdown["cpu"],
    }


def test_ext_online_adaptation(benchmark, machine):
    row = benchmark.pedantic(_run, args=(machine,), rounds=1, iterations=1)
    emit(format_table([row], title="Extension — online adaptation (Wide&Deep, CPU x4 contention)"))

    assert row["adaptations"] >= 1
    # Adapted stream beats the static plan under the same contention.
    assert row["drifted_post_adapt_ms"] < row["static_under_drift_ms"] * 0.95
    # Belief lands near the injected 4x factor.
    assert 2.5 < row["final_cpu_belief"] < 6.0
