"""Mesh scaling: zoo models across 2/3/4-device meshes.

Expected shape: models with phases of 3+ independent subgraphs (mtdnn's
task heads, wide_deep's towers) pick up real speedup when a second GPU
joins the mesh, while chain-dominated models stay flat at ~1.0x — extra
devices cost nothing but buy nothing.  The scoreboard prices each rung
with the best policy's plan, so it reflects what the scheduler actually
achieves, not an idealized bound.
"""

from conftest import emit

from repro.bench import best_scaling_model, mesh_scoreboard, run_mesh_scaling


def test_mesh_scaling(benchmark):
    rows = benchmark.pedantic(
        run_mesh_scaling,
        kwargs={"device_counts": (2, 3, 4)},
        rounds=1,
        iterations=1,
    )
    emit(mesh_scoreboard(rows))
    model, speedup = best_scaling_model(rows, devices=3)
    emit(f"best 3-device scaler: {model} ({speedup:.3f}x vs 2-device best)")

    # Every (model, mesh size) rung produced a row.
    models = {r["model"] for r in rows}
    sizes = {r["devices"] for r in rows}
    assert sizes == {2, 3, 4}
    assert len(rows) == len(models) * len(sizes)

    # Growing the mesh never hurts: the 2-device machine's placements all
    # remain available, so the best makespan is monotone non-increasing.
    for name in models:
        by_size = sorted(
            (r["devices"], r["makespan_ms"]) for r in rows if r["model"] == name
        )
        for (_, prev), (_, cur) in zip(by_size, by_size[1:]):
            assert cur <= prev * 1.0001

    # The tentpole claim: at least one zoo model exploits the third device.
    assert speedup > 1.0
