"""Chaos benchmark: resilient execution recovers correctly and cheaply.

Three claims about the resilient execution path:

1. **Recovery correctness** — under a deterministic chaos cocktail
   (transient kernel faults, a poisoned transfer, then a permanent GPU
   loss mid-run) the inference still completes with outputs matching the
   reference interpreter, and the report records the full failover event
   chain, reproducibly under a fixed seed.
2. **Degradation restart** — a device lost before any subgraph completes
   restarts on the standing single-device plan and still matches the
   reference.
3. **No-fault overhead** — with no faults injected, the resilient path
   costs < 5% wall-clock over the plain threaded executor (best-of-N to
   filter scheduler noise, with a small absolute floor because these
   tiny-model runs are only milliseconds long).
"""

import time

import numpy as np
from conftest import emit

from repro.bench import format_table
from repro.core import CompilerAwareProfiler, DuetEngine, partition_graph
from repro.core.placement import build_hetero_plan
from repro.ir import make_inputs, run_graph
from repro.models import build_model
from repro.runtime import (
    ResilienceConfig,
    ResilientExecutor,
    RetryPolicy,
    ThreadedExecutor,
)
from repro.runtime.faults import (
    DeviceLoss,
    FaultInjector,
    FaultPlan,
    KernelFault,
    TransferFault,
)

N_REPS = 30
MAX_OVERHEAD_FRAC = 0.05
ABS_FLOOR_S = 0.002  # tiny-model runs are ~ms; allow 2ms absolute slack


def _mixed_plan(machine):
    graph = build_model("siamese", tiny=True)
    partition = partition_graph(graph)
    profiles = CompilerAwareProfiler(machine=machine).profile_partition(partition)
    placement = {
        sg.id: ("cpu" if i == 0 else "gpu")
        for i, sg in enumerate(partition.subgraphs)
    }
    return graph, build_hetero_plan(graph, partition, profiles, placement)


def _best_of(fn, reps):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_chaos_recovery_correct_and_cheap(machine):
    graph, plan = _mixed_plan(machine)
    feeds = make_inputs(graph)
    ref = run_graph(graph, feeds)
    cpu_root = plan.tasks[0].task_id
    gpu_tasks = [t.task_id for t in plan.tasks if t.device == "gpu"]
    # The first gpu task consumes host-resident model inputs, so its
    # external feed crosses devices — poison that transfer.
    gpu_root = next(
        t for t in plan.tasks
        if t.device == "gpu"
        and all(s.kind == "external" for s in t.sources.values())
    )
    crossing_ref = next(iter(gpu_root.sources.values())).ref

    # ------------------------------------------------------------------
    # 1. Recovery correctness under a chaos cocktail.
    cocktail = FaultPlan(
        kernel_faults=(KernelFault(cpu_root, fail_attempts=2),),
        transfer_faults=(TransferFault(crossing_ref, "gpu", mode="corrupt"),),
        device_losses=(DeviceLoss("gpu", at_task=gpu_tasks[-1]),),
        seed=42,
    )
    config = ResilienceConfig(
        retry=RetryPolicy(max_attempts=4, backoff_base_s=1e-4), seed=42
    )

    def chaos_run():
        return ResilientExecutor(
            plan, config, FaultInjector(cocktail)
        ).run(feeds)

    report = chaos_run()
    assert report.completed
    assert report.degraded_device == "cpu"
    for got, want in zip(report.outputs, ref):
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)
    kinds = [e.kind for e in report.events]
    assert "device-lost" in kinds and "failover-migrate" in kinds
    assert report.counters["faults"] >= 3  # 2 kernel faults + corruption
    assert report.counters["device_losses"] == 1
    # Reproducible under the fixed seed.
    again = chaos_run()
    assert [e.kind for e in again.events] == kinds
    assert again.counters == report.counters
    for x, y in zip(report.outputs, again.outputs):
        np.testing.assert_array_equal(x, y)

    # ------------------------------------------------------------------
    # 2. Degradation restart via the engine's standing plans.
    engine = DuetEngine(machine=machine)
    opt = engine.optimize(graph)
    import dataclasses

    opt = dataclasses.replace(opt, plan=plan, fallback_device=None)
    restart_report = engine.run_resilient(
        opt,
        feeds,
        faults=FaultPlan(
            device_losses=(DeviceLoss("gpu", at_task=gpu_tasks[0]),),
        ),
    )
    assert restart_report.completed
    assert restart_report.degraded_device == "cpu"
    for got, want in zip(restart_report.outputs, ref):
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)

    # ------------------------------------------------------------------
    # 3. No-fault overhead of the resilient path.
    threaded = ThreadedExecutor(plan)
    resilient = ResilientExecutor(plan)
    # Warm both paths (parameter materialization, thread start costs).
    threaded.run(feeds)
    resilient.run(feeds)
    t_threaded = _best_of(lambda: threaded.run(feeds), N_REPS)
    t_resilient = _best_of(lambda: resilient.run(feeds), N_REPS)
    overhead = t_resilient - t_threaded

    emit(
        format_table(
            [
                {
                    "executor": "threaded",
                    "best_of_n_ms": t_threaded * 1e3,
                    "chaos_events": "-",
                },
                {
                    "executor": "resilient (no faults)",
                    "best_of_n_ms": t_resilient * 1e3,
                    "chaos_events": "0",
                },
                {
                    "executor": "resilient (chaos cocktail)",
                    "best_of_n_ms": report.wall_time_s * 1e3,
                    "chaos_events": str(len(report.events)),
                },
            ],
            title=(
                f"Chaos resilience — siamese(tiny), best of {N_REPS}; "
                "recovery from 2 kernel faults + 1 poisoned transfer + "
                "GPU loss"
            ),
        )
    )

    assert overhead < max(MAX_OVERHEAD_FRAC * t_threaded, ABS_FLOOR_S), (
        f"resilient no-fault overhead {overhead * 1e3:.3f}ms over "
        f"threaded {t_threaded * 1e3:.3f}ms exceeds budget"
    )
