"""Serving resilience benchmark: availability and p99 under scripted chaos.

The throughput benchmarks measure the serving layer at its best; this one
measures it at its worst.  A scripted fault schedule — healthy baseline,
transient kernel faults, latency stalls, a full device outage, then
recovery — runs against a live fault-injected frontend, and the
per-phase scoreboard becomes the artifact: availability (% of attempted
requests answered successfully within deadline) and p99 client latency
during *each* fault regime, so the bench trajectory captures resilience,
not just peak throughput.

Assertions are the resilience invariants, deliberately loose on timing
(CI wall clocks are noisy) and strict on correctness:

* every admitted request reaches exactly one terminal state (no hung
  futures, no unaccounted outcomes);
* every successful response is bit-identical to a solo session;
* availability stays above zero during the outage — the lane keeps
  serving from the survivor's degradation plan;
* post-recovery throughput returns to >= 50% of baseline (the harness's
  production bar is 80%; the bench bar is looser because shared CI boxes
  throttle mid-run).
"""

from conftest import emit

from repro.bench import default_chaos_schedule, run_chaos_serve

PHASE_S = 0.6
CONCURRENCY = 4
POOL_SIZE = 2
BENCH_RECOVERY_FLOOR = 0.5


def _run(phase_s=PHASE_S):
    return run_chaos_serve(
        schedule=default_chaos_schedule(phase_s=phase_s),
        concurrency=CONCURRENCY,
        pool_size=POOL_SIZE,
        recovery_threshold=BENCH_RECOVERY_FLOOR,
        collect_metrics=False,
    )


def test_chaos_phases_report_availability_and_p99():
    report = _run()
    emit(report.render())

    failures = report.invariant_failures()
    assert not failures, failures

    # The scoreboard itself must be complete: five phases, each with
    # traffic, and the correctness counters empty.
    assert [p.name for p in report.phases] == [
        "baseline", "transient", "stall", "outage", "recovery",
    ]
    for phase in report.phases:
        assert phase.submitted > 0, f"phase {phase.name!r} saw no traffic"
    assert report.hung_futures == 0
    assert report.mismatches == 0
    assert report.unaccounted == 0

    # Availability through the outage is the headline number: the lane
    # must answer from the surviving device, not just reject fast.
    outage = report.phase("outage")
    assert outage.counts["ok"] > 0
    # p99 is only meaningful where requests succeeded.
    for phase in report.phases:
        if phase.counts["ok"]:
            assert phase.p99_ms() > 0.0
