"""Extension: analytic DP placement vs measured greedy-correction.

§IV-C mentions that placement could be computed analytically with dynamic
programming over profiled compute + communication costs (ref [24]) and
argues for measured refinement instead.  Measured here: DP ties
greedy-correction wherever its barrier/immediate-predecessor assumptions
hold, and loses once the executor's real cross-phase overlap diverges
from the analytic model (the nested MT-DNN partition).
"""

from conftest import emit

from repro.bench import format_table
from repro.core import (
    CompilerAwareProfiler,
    GreedyCorrectionScheduler,
    build_hetero_plan,
    partition_graph,
    partition_graph_nested,
)
from repro.core.schedulers import dp_placement
from repro.models import build_model
from repro.runtime import simulate


def _run(machine):
    scheduler = GreedyCorrectionScheduler(machine=machine)
    rows = []
    cases = [
        ("wide_deep", False),
        ("siamese", False),
        ("mtdnn", False),
        ("mtdnn", True),
    ]
    for name, nested in cases:
        graph = build_model(name).pruned()
        part = (
            partition_graph_nested(graph, max_depth=1)
            if nested
            else partition_graph(graph)
        )
        profiles = CompilerAwareProfiler(machine=machine).profile_partition(part)
        placement, est = dp_placement(graph, part, profiles, machine)
        dp_true = simulate(
            build_hetero_plan(graph, part, profiles, placement), machine
        ).latency
        gc = scheduler.schedule(graph, part, profiles)
        rows.append(
            {
                "case": f"{name}{' (nested)' if nested else ''}",
                "dp_estimate_ms": est * 1e3,
                "dp_true_ms": dp_true * 1e3,
                "greedy_corr_ms": gc.latency * 1e3,
                "dp_gap": dp_true / gc.latency,
            }
        )
    return rows


def test_ext_dp_vs_measured_correction(benchmark, machine):
    rows = benchmark.pedantic(_run, args=(machine,), rounds=1, iterations=1)
    emit(format_table(rows, title="Extension — analytic DP vs measured correction"))

    by = {r["case"]: r for r in rows}
    # DP ties on the flat partitions...
    for case in ("wide_deep", "siamese", "mtdnn"):
        assert 0.999 <= by[case]["dp_gap"] <= 1.001, case
    # ...and leaves time on the table once cross-phase overlap matters.
    assert by["mtdnn (nested)"]["dp_gap"] > 1.02
