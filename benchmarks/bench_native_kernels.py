"""Native C backend vs NumPy closures over the model zoo.

Acceptance criteria for the native backend, asserted rather than merely
reported:

* native beats NumPy on a CNN (vgg) and an FFN (mtdnn) zoo model;
* every zoo kernel dispatches native (full renderer coverage);
* observed drift stays within the two-class ULP policy budget;
* re-running the scoreboard against the same cache compiles nothing
  (warm cache really is warm);
* the differential oracle stays green with ``backend="native"`` on the
  same models the scoreboard times.
"""

import pytest
from conftest import emit

from repro.bench import format_table, native_scoreboard
from repro.compiler.native import (
    NativeCache,
    NativeOptions,
    native_available,
)
from repro.devices import default_machine
from repro.models import build_model
from repro.testing.oracle import run_differential

pytestmark = pytest.mark.skipif(
    not native_available(), reason="native backend needs a C compiler"
)


@pytest.fixture(scope="module")
def cache(tmp_path_factory):
    """Dedicated cache root so compile counters belong to this bench."""
    return NativeCache(root=tmp_path_factory.mktemp("native_bench_cache"))


def test_native_scoreboard(benchmark, cache):
    options = NativeOptions(cache=cache, autotune=True)
    rows = benchmark.pedantic(
        native_scoreboard,
        kwargs={"native": options, "repeats": 9},
        rounds=1,
        iterations=1,
    )
    emit(format_table(rows, title="Native backend vs NumPy (tiny zoo)"))

    by_model = {r["model"]: r for r in rows}
    # The headline claim: compiled C beats BLAS-backed NumPy on a CNN
    # (vgg: im2col conv + autotuned GEMM) and an FFN (mtdnn: dense
    # chains), not just on tiny elementwise models.
    assert by_model["vgg"]["speedup"] > 1.0, by_model["vgg"]
    assert by_model["mtdnn"]["speedup"] > 1.0, by_model["mtdnn"]

    for row in rows:
        covered, total = row["kernels"].split("/")
        assert covered == total, f"{row['model']}: fell back to NumPy kernels"
        assert row["max_ulp"] <= row["ulp_budget"], row

    cold = cache.stats.snapshot()
    assert cold["compiles"] > 0

    # Warm pass: identical signatures, so the cache must serve every
    # kernel from the memo/disk without a single new compile or re-tune.
    native_scoreboard(native=options, repeats=1)
    warm = cache.stats.snapshot()
    assert warm["compiles"] == cold["compiles"], (cold, warm)
    assert warm["autotunes"] == cold["autotunes"], (cold, warm)
    emit(format_table([warm], title="Cache stats after warm re-run"))


@pytest.mark.parametrize("model", ["vgg", "mtdnn"])
def test_oracle_green_on_native_backend(machine, model):
    report = run_differential(
        build_model(model, tiny=True), machine=machine, backend="native"
    )
    assert report.ok, report.summary()
