"""Fig. 12: P50/P99/P99.9 tail latency, TVM-GPU vs DUET.

Paper: DUET wins 1.3-2.4x at P99 and 1.1-2.1x at P99.9; P99.9 gains are
smaller because PCIe transfers add variance.
"""

from conftest import emit

from repro.bench import fig12_tail, format_table


def test_fig12_tail_latency(benchmark, noisy_machine):
    # The paper's full 5000 runs (§VI-A): affordable now that sampling is
    # batched, and the P99.9 estimate needs them to be stable.
    rows = benchmark.pedantic(
        fig12_tail,
        kwargs={"machine": noisy_machine, "n_runs": 5000},
        rounds=1,
        iterations=1,
    )
    emit(format_table(rows, title="Fig 12 — tail latency (ms), 5000 runs"))

    for model in {r["model"] for r in rows}:
        duet = next(
            r for r in rows if r["model"] == model and r["system"] == "DUET"
        )
        gpu = next(
            r for r in rows if r["model"] == model and r["system"] == "TVM-GPU"
        )
        for key in ("p50_ms", "p99_ms", "p999_ms"):
            assert duet[key] <= gpu[key], (model, key)
        s99 = gpu["p99_ms"] / duet["p99_ms"]
        s999 = gpu["p999_ms"] / duet["p999_ms"]
        assert 1.0 <= s99 <= 4.0, (model, s99)
        # The P99.9 speedup does not exceed the P99 speedup by much: the
        # interconnect noise eats into the deep tail (paper §VI-B).
        assert s999 <= s99 * 1.2, (model, s99, s999)
