"""Scheduling-overhead benchmark: memoized oracle + vectorized sampling.

Two claims about the scheduling fast path:

1. The memoized latency oracle cuts simulator invocations at least 2x on a
   realistic scheduling workload — greedy-correction plus Random+Correction
   restarts (paper §VI-C) on Wide&Deep sharing one oracle — while producing
   bit-identical placements and latencies to the uncached path.
2. Batched sampling (``simulate_batch``) makes the paper's 5000-run latency
   distribution at least 2x faster than the old one-simulation-per-run
   loop, with matching percentiles.
"""

import time

import numpy as np
from conftest import emit

from repro.bench import format_table
from repro.core import (
    CompilerAwareProfiler,
    DuetEngine,
    GreedyCorrectionScheduler,
    LatencyOracle,
    partition_graph,
)
from repro.core.schedulers.random_sched import random_placement
from repro.models import build_model
from repro.runtime import (
    measure_latency,
    measure_latency_batch,
    simulate,
    simulate_batch,
)

N_RESTARTS = 6


def _schedule_workload(machine, graph, partition, profiles, cache):
    """Greedy schedule + Random+Correction restarts on one shared oracle."""
    oracle = LatencyOracle(graph, partition, profiles, machine, cache=cache)
    scheduler = GreedyCorrectionScheduler(machine=machine)
    results = [scheduler.schedule(graph, partition, profiles, oracle=oracle)]
    rng = np.random.default_rng(0)
    for _ in range(N_RESTARTS):
        initial = random_placement(partition, rng)
        results.append(
            scheduler.schedule(
                graph, partition, profiles, initial=initial, oracle=oracle
            )
        )
    return results, oracle


def test_oracle_cache_cuts_simulations(machine):
    graph = build_model("wide_deep")
    partition = partition_graph(graph)
    profiles = CompilerAwareProfiler(machine=machine).profile_partition(partition)

    cached_results, cached = _schedule_workload(
        machine, graph, partition, profiles, cache=True
    )
    uncached_results, uncached = _schedule_workload(
        machine, graph, partition, profiles, cache=False
    )

    rows = [
        {
            "oracle": name,
            "simulations": oracle.misses,
            "cache_hits": oracle.hits,
            "best_latency_ms": min(r.latency for r in results) * 1e3,
        }
        for name, results, oracle in (
            ("memoized", cached_results, cached),
            ("uncached", uncached_results, uncached),
        )
    ]
    emit(
        format_table(
            rows,
            title=(
                "Scheduling overhead — greedy + "
                f"{N_RESTARTS} Random+Correction restarts, Wide&Deep"
            ),
        )
    )

    # The cache must not change a single scheduling decision.
    for a, b in zip(cached_results, uncached_results):
        assert a.placement == b.placement
        assert a.latency == b.latency
        assert a.initial_latency == b.initial_latency
        assert a.corrections == b.corrections
    # >= 2x fewer simulator invocations, and the counters add up.
    assert uncached.misses >= 2 * cached.misses, (uncached.misses, cached.misses)
    assert cached.hits + cached.misses == uncached.hits + uncached.misses
    assert all(r.cache_hits > 0 for r in cached_results[1:])


def test_batched_latency_stats_speedup(noisy_machine):
    engine = DuetEngine(machine=noisy_machine)
    opt = engine.optimize(build_model("wide_deep"))
    n_runs, warmup, seed = 5000, 50, 0

    t0 = time.perf_counter()
    scalar = measure_latency(
        lambda rng: simulate(opt.plan, noisy_machine, rng=rng).latency,
        n_runs=n_runs,
        warmup=warmup,
        seed=seed,
    )
    scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = engine.latency_stats(opt, n_runs=n_runs, warmup=warmup, seed=seed)
    batched_s = time.perf_counter() - t0

    emit(
        format_table(
            [
                {
                    "path": "scalar loop",
                    "wall_s": scalar_s,
                    "p50_ms": scalar.p50_ms,
                    "p99_ms": scalar.p99_ms,
                },
                {
                    "path": "batched",
                    "wall_s": batched_s,
                    "p50_ms": batched.p50_ms,
                    "p99_ms": batched.p99_ms,
                },
            ],
            title=f"latency_stats(n_runs={n_runs}) — Wide&Deep, noisy machine",
        )
    )

    assert scalar_s >= 2 * batched_s, (scalar_s, batched_s)
    # Same seeded distribution, up to sampling-order rearrangement.
    assert abs(batched.mean - scalar.mean) <= 0.02 * scalar.mean
    assert abs(batched.p50 - scalar.p50) <= 0.02 * scalar.p50
    assert abs(batched.p99 - scalar.p99) <= 0.05 * scalar.p99
    # Batched sampling itself is seed-deterministic.
    again = engine.latency_stats(opt, n_runs=n_runs, warmup=warmup, seed=seed)
    assert again == batched
