"""Mixed-priority SLO benchmark: the issue's acceptance scoreboard.

A critical tenant (paced, interactive, with a p99 SLO target) shares one
serving lane with a best-effort flood.  The two-sided promise under
test: the critical tenant's p99 meets its SLO with **zero** misses —
strict priority plus phase-boundary preemption bound its queueing — and
the best-effort tenant still gets at least 70% of the throughput it
achieves with the lane to itself, because WFQ plus the anti-starvation
escape keep bulk traffic flowing rather than starving it outright.

Correctness rides along: every successful response, preempted or not,
must be bit-identical to a solo :class:`~repro.runtime.session
.EngineSession` run, and the run must actually observe phase-boundary
preemptions (a quiet lane proves nothing).

The short arm is the CI ``slo-smoke`` shape; the ``slow`` arm runs the
same mix longer and with more flood clients for tighter percentiles.
"""

import pytest

from conftest import emit

from repro.bench import run_slo_mix

DURATION_S = 1.5
CRITICAL_SLO_S = 0.25
BE_THRESHOLD = 0.7


def _check(report):
    emit(report.render())
    failures = report.invariant_failures()
    assert not failures, failures

    crit = report.tenant("critical")
    be = report.tenant("best_effort")
    # Both tenants saw traffic and the scoreboard is complete.
    assert crit.submitted > 0 and be.submitted > 0
    assert crit.counts["ok"] > 0 and be.counts["ok"] > 0
    # The headline numbers, restated explicitly: critical p99 within its
    # SLO with zero misses, best-effort >= 70% of isolated throughput,
    # preemption exercised, every response bit-identical.
    assert crit.p99_s() <= CRITICAL_SLO_S
    assert crit.slo_misses == 0
    assert report.slo_miss_metric["critical"] == 0
    assert report.be_ratio >= BE_THRESHOLD
    assert report.preemptions >= 1
    assert report.mismatches == 0
    assert report.hung_futures == 0


def test_slo_mix_scoreboard():
    _check(
        run_slo_mix(
            duration_s=DURATION_S,
            critical_slo_s=CRITICAL_SLO_S,
            be_threshold=BE_THRESHOLD,
        )
    )


@pytest.mark.slow
def test_slo_mix_scoreboard_sustained():
    """Longer mix with a heavier flood: tighter percentiles, same bars."""
    _check(
        run_slo_mix(
            duration_s=6.0,
            best_effort_clients=6,
            critical_clients=2,
            critical_think_s=0.12,  # two callers, same ~17% lane demand
            critical_slo_s=CRITICAL_SLO_S,
            be_threshold=BE_THRESHOLD,
        )
    )
