"""Ablation: greedy initialization alone vs greedy + measured correction.

On the paper's workloads greedy is already near-optimal (their device
contrasts are extreme); on the communication-heavy workload only the
measured correction step (§IV-C step 3) can see the PCIe cost and fix the
placement.
"""

from conftest import emit

from repro.bench import ablation_correction, format_table


def test_ablation_correction_step(benchmark, machine):
    rows = benchmark.pedantic(
        ablation_correction, kwargs={"machine": machine}, rounds=1, iterations=1
    )
    emit(format_table(rows, title="Ablation — greedy-only vs greedy+correction"))

    by = {r["model"]: r for r in rows}
    for r in rows:
        assert r["corrected_ms"] <= r["greedy_only_ms"] + 1e-9
        if r["ideal_ms"] != "-":
            assert r["corrected_ms"] <= float(r["ideal_ms"]) * 1.001
    ch = by["comm_heavy"]
    assert ch["swaps"] >= 1
    assert ch["gain"] > 1.5  # correction pays for itself decisively
