"""Scheduler tournament: every policy x every model, lazy vs. overlap.

Expected shape: the measurement-driven policies (dp / greedy / heft)
cluster at the optimum on the regular zoo models; random and round-robin
trail.  On the transfer-bound stress model the overlap column shows the
double-buffered transfer discipline recovering the PCIe time the lazy
link discipline wastes queueing an 8 MB input behind a late tensor.
"""

from conftest import emit

from repro.bench import league_table, run_tournament, tournament_winner


def test_tournament_league(benchmark, machine):
    rows = benchmark.pedantic(
        run_tournament,
        kwargs={"machine": machine},
        rounds=1,
        iterations=1,
    )
    emit(league_table(rows))
    lazy_winner = tournament_winner(rows)
    overlap_winner = tournament_winner(rows, column="overlap_ms")
    emit(
        f"league winners — lazy: {lazy_winner}, "
        f"overlapped: {overlap_winner}"
    )

    # Every policy plays every model (forfeits appear as NaN rows).
    models = {r["model"] for r in rows}
    policies = {r["policy"] for r in rows}
    assert len(models) >= 4 and len(policies) >= 5
    assert len(rows) == len(models) * len(policies)

    # Overlap never hurts a placement and wins on the transfer-bound model.
    assert all(
        r["overlap_ms"] <= r["latency_ms"] + 1e-9
        for r in rows
        if r["latency_ms"] == r["latency_ms"]  # skip NaN forfeits
    )
    gains = [
        r["overlap_gain_pct"] for r in rows if r["model"] == "xfer_bound"
    ]
    assert max(gains) > 20.0
