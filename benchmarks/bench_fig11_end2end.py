"""Fig. 11: end-to-end latency of PyTorch/TF/TVM (CPU & GPU) vs DUET.

Paper claims reproduced in shape:
* DUET 1.5-2.3x faster than TVM-GPU and 1.3-15.9x faster than TVM-CPU;
* DUET 2.1-8.4x faster than frameworks on GPU, 2.3-18.8x on CPU.
"""

from conftest import emit

from repro.bench import fig11_end2end, format_bars, format_table


def test_fig11_end2end(benchmark, machine):
    rows = benchmark.pedantic(
        fig11_end2end, kwargs={"machine": machine}, rounds=2, iterations=1
    )
    emit(format_table(rows, title="Fig 11 — end-to-end latency (ms)"))
    for model in ("wide_deep", "siamese", "mtdnn"):
        subset = [r for r in rows if r["model"] == model]
        emit(format_bars(subset, "system", "latency_ms", title=f"Fig 11 — {model}"))

    by = {(r["model"], r["system"]): r for r in rows}
    for model in ("wide_deep", "siamese", "mtdnn"):
        duet = by[(model, "DUET")]["latency_ms"]
        assert duet <= min(
            r["latency_ms"] for r in rows if r["model"] == model
        ), model
        # Band checks (loose envelopes around the paper's ranges).
        assert 1.2 <= by[(model, "TVM-GPU")]["speedup_vs_duet"] <= 3.5
        assert 1.2 <= by[(model, "TVM-CPU")]["speedup_vs_duet"] <= 16.0
        assert 1.8 <= by[(model, "PyTorch-GPU")]["speedup_vs_duet"] <= 9.0
        assert 2.0 <= by[(model, "PyTorch-CPU")]["speedup_vs_duet"] <= 19.0
