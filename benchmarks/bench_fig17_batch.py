"""Fig. 17: Wide&Deep at frozen batch sizes 2/4/8/16/32.

Paper shape: DUET's advantage over TVM-GPU is largest at small batch and
gradually diminishes — larger batches expose enough parallelism to keep
the GPU busy on everything.
"""

from conftest import emit

from repro.bench import fig17_batch_size, format_table


def test_fig17_batch_size_sweep(benchmark, machine):
    rows = benchmark.pedantic(
        fig17_batch_size, kwargs={"machine": machine}, rounds=1, iterations=1
    )
    emit(format_table(rows, title="Fig 17 — varying batch size"))

    speedups = [r["speedup_vs_gpu"] for r in rows]
    # Diminishing advantage: first batch size beats the last clearly.
    assert speedups[0] > speedups[-1]
    # Never worse than the best single device (fallback guards this).
    for r in rows:
        assert r["speedup_vs_gpu"] >= 1.0
    # Small-batch speedup is substantial (paper: ~1.5x at batch 2).
    assert speedups[0] >= 1.4
