"""Table I: model parameters of the evaluation workloads.

Also reports per-model graph statistics (nodes, params, GFLOPs) so the
scale of each workload is visible next to its configuration.
"""

from conftest import emit

from repro.bench import format_table, table1_rows
from repro.models import build_model


def test_table1_model_parameters(benchmark):
    rows = benchmark.pedantic(table1_rows, rounds=3, iterations=1)
    emit(format_table(rows, title="Table I — model parameters"))

    stats = []
    for name in ("wide_deep", "siamese", "mtdnn"):
        g = build_model(name)
        stats.append(
            {
                "model": name,
                "op_nodes": len(g.op_nodes()),
                "params_M": g.num_params() / 1e6,
                "gflops": g.total_flops() / 1e9,
            }
        )
    emit(format_table(stats, title="Workload scale"))

    assert [r["model"] for r in rows] == ["Wide-and-Deep", "Siamese", "MT-DNN"]
    assert all(r["batch"] == 1 for r in rows)
