"""Fig. 14: Wide&Deep with 1/2/4/8 stacked RNN layers.

Paper shape: all systems slow down as RNN depth grows, the GPU fastest
(RNN is GPU-hostile); DUET stays ahead of TVM-GPU (paper: 2.3-2.5x) and
TVM-CPU throughout.
"""

from conftest import emit

from repro.bench import fig14_rnn_layers, format_table


def test_fig14_rnn_layer_sweep(benchmark, machine):
    rows = benchmark.pedantic(
        fig14_rnn_layers, kwargs={"machine": machine}, rounds=1, iterations=1
    )
    emit(format_table(rows, title="Fig 14 — varying stacked RNN layers"))

    # Monotone growth everywhere.
    for key in ("tvm_cpu_ms", "tvm_gpu_ms", "duet_ms"):
        series = [r[key] for r in rows]
        assert series == sorted(series), key
    # GPU degrades fastest with RNN depth.
    gpu_growth = rows[-1]["tvm_gpu_ms"] / rows[0]["tvm_gpu_ms"]
    cpu_growth = rows[-1]["tvm_cpu_ms"] / rows[0]["tvm_cpu_ms"]
    assert gpu_growth > cpu_growth
    # DUET never loses to either single device.
    for r in rows:
        assert r["speedup_vs_gpu"] >= 1.0 and r["speedup_vs_cpu"] >= 1.0
        assert 1.5 <= r["speedup_vs_gpu"] <= 3.5  # paper: 2.3-2.5
