"""Single-device baselines used in the paper's evaluation."""

from repro.baselines.framework_like import (
    FrameworkBaseline,
    pytorch_like,
    tensorflow_like,
)
from repro.baselines.tvm_like import TVMLikeBaseline

__all__ = [
    "FrameworkBaseline",
    "TVMLikeBaseline",
    "pytorch_like",
    "tensorflow_like",
]
