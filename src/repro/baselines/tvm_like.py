"""TVM-like baseline: fully optimized, single-device, operators-in-sequence.

This is the paper's strongest baseline (§VI-A "Comparison framework"):
the full graph-level optimization + fusion pipeline, executed synchronously
in topological order on one device.  ``TVM-CPU`` and ``TVM-GPU`` in the
figures are exactly this executor on the two devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compiler.lowering import CompiledModule
from repro.compiler.pipeline import Compiler
from repro.compiler.target import CPU_TARGET, GPU_TARGET
from repro.devices.machine import Machine, default_machine
from repro.errors import ExecutionError
from repro.ir.graph import Graph
from repro.runtime.measurement import LatencyStats, measure_latency_batch
from repro.runtime.simulator import ExecutionResult, simulate_batch
from repro.runtime.single import run_single_device, single_device_plan

__all__ = ["TVMLikeBaseline"]


@dataclass
class TVMLikeBaseline:
    """Compile with full optimization; execute on a single device."""

    device: str  # "cpu" or "gpu"
    machine: Machine = field(default_factory=default_machine)
    compiler: Compiler = field(default_factory=Compiler)

    def __post_init__(self) -> None:
        if self.device not in ("cpu", "gpu"):
            raise ExecutionError(f"invalid device {self.device!r}")

    @property
    def name(self) -> str:
        return f"TVM-{self.device.upper()}"

    def compile(self, graph: Graph) -> CompiledModule:
        target = GPU_TARGET if self.device == "gpu" else CPU_TARGET
        return self.compiler.compile(graph, target)

    def run(
        self,
        module: CompiledModule,
        rng: np.random.Generator | None = None,
        inputs=None,
    ) -> ExecutionResult:
        return run_single_device(
            module, self.device, self.machine, rng=rng, inputs=inputs
        )

    def latency(self, graph: Graph) -> float:
        """Mean end-to-end latency (seconds)."""
        return self.run(self.compile(graph)).latency

    def latency_stats(
        self, graph: Graph, n_runs: int = 5000, warmup: int = 50, seed: int = 0
    ) -> LatencyStats:
        module = self.compile(graph)
        plan = single_device_plan(module, self.device)
        return measure_latency_batch(
            lambda rng, n: simulate_batch(plan, self.machine, rng, n),
            n_runs=n_runs,
            warmup=warmup,
            seed=seed,
        )
