"""Framework-like baselines: PyTorch / TensorFlow operators-in-sequence.

DL frameworks (paper §III-A) execute one operator at a time with *no*
cross-operator fusion, paying interpreter/dispatch overhead on every
operator launch.  The model here: compile at opt level 1 (structural
cleanups only) with fusion disabled, then charge a per-launch framework
overhead on top of each kernel's device time.

The per-op overheads are the empirically familiar magnitudes: PyTorch's
eager dispatcher costs ~15 µs per op; TensorFlow 1.x session executors
cost ~25 µs per op.  Exact values only shift the frameworks' absolute
bars — every paper claim about them ("DUET is 2.1–18.8x faster") is about
orders, which survive any reasonable choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compiler.lowering import CompiledModule
from repro.compiler.pipeline import compile_graph
from repro.compiler.target import CPU_TARGET, GPU_TARGET
from repro.devices.machine import Machine, default_machine
from repro.errors import ExecutionError
from repro.ir.graph import Graph
from repro.ir.ops import OpKind
from repro.runtime.measurement import LatencyStats, measure_latency_batch

__all__ = ["FrameworkBaseline", "pytorch_like", "tensorflow_like"]


@dataclass
class FrameworkBaseline:
    """An unfused, per-op-overhead, single-device executor.

    Attributes:
        framework: display name ("PyTorch"/"TensorFlow").
        device: execution device.
        per_op_overhead_s: host-side dispatch cost per kernel launch.
        cpu_recurrent_slowdown: extra factor on recurrent kernels when
            executing on CPU.  Framework CPU RNN cells dispatch unfused
            per-gate GEMMs and elementwise ops each timestep; DeepCPU
            (the paper's ref [47]) measured ~10x headroom over TensorFlow
            CPU RNNs, so a 3-4x penalty is conservative.  GPU RNNs go
            through cuDNN and get no penalty.
        machine: hardware model.
    """

    framework: str
    device: str
    per_op_overhead_s: float
    cpu_recurrent_slowdown: float = 1.0
    machine: Machine = field(default_factory=default_machine)

    def __post_init__(self) -> None:
        if self.device not in ("cpu", "gpu"):
            raise ExecutionError(f"invalid device {self.device!r}")

    @property
    def name(self) -> str:
        return f"{self.framework}-{self.device.upper()}"

    def compile(self, graph: Graph) -> CompiledModule:
        target = GPU_TARGET if self.device == "gpu" else CPU_TARGET
        # opt_level=1 keeps the graph numerically identical but removes
        # no-op structure; fuse=False = one kernel per operator.
        return compile_graph(graph, target, opt_level=1, fuse=False).module

    def _one_latency(
        self, module: CompiledModule, rng: np.random.Generator | None
    ) -> float:
        device = self.machine.device(self.device)
        total = 0.0
        for kernel in module.kernels:
            if rng is None:
                t = device.kernel_time(kernel.cost)
            else:
                t = device.sample_kernel_time(kernel.cost, rng)
            if self.device == "cpu" and kernel.cost.kind is OpKind.RECURRENT:
                t *= self.cpu_recurrent_slowdown
            # Dispatch overhead is paid per serially-dependent launch round
            # (an unrolled RNN dispatches every step through the framework).
            total += t + self.per_op_overhead_s * kernel.cost.sequential_steps
        if self.device == "gpu":
            link = self.machine.interconnect
            in_bytes = sum(
                module.graph.node(i).ty.size_bytes for i in module.input_ids
            )
            out_bytes = sum(t.size_bytes for t in module.graph.output_types())
            if rng is None:
                total += link.transfer_time(in_bytes) + link.transfer_time(out_bytes)
            else:
                total += link.sample_transfer_time(
                    in_bytes, rng
                ) + link.sample_transfer_time(out_bytes, rng)
        return total

    def _latency_batch(
        self, module: CompiledModule, rng: np.random.Generator, n: int
    ) -> np.ndarray:
        """Vectorized :meth:`_one_latency`: ``n`` sampled runs at once.

        Draw order matches the scalar path event-for-event (kernels in
        module order, then the two GPU transfers), so ``n == 1``
        reproduces a single scalar run bit-for-bit.
        """
        device = self.machine.device(self.device)
        total = np.zeros(n)
        for kernel in module.kernels:
            t = device.sample_kernel_time_batch(kernel.cost, rng, n)
            if self.device == "cpu" and kernel.cost.kind is OpKind.RECURRENT:
                t = t * self.cpu_recurrent_slowdown
            total += t + self.per_op_overhead_s * kernel.cost.sequential_steps
        if self.device == "gpu":
            link = self.machine.interconnect
            in_bytes = sum(
                module.graph.node(i).ty.size_bytes for i in module.input_ids
            )
            out_bytes = sum(t.size_bytes for t in module.graph.output_types())
            total += link.sample_transfer_time_batch(in_bytes, rng, n)
            total += link.sample_transfer_time_batch(out_bytes, rng, n)
        return total

    def latency(self, graph: Graph) -> float:
        """Mean end-to-end latency (seconds)."""
        return self._one_latency(self.compile(graph), rng=None)

    def latency_stats(
        self, graph: Graph, n_runs: int = 5000, warmup: int = 50, seed: int = 0
    ) -> LatencyStats:
        module = self.compile(graph)
        return measure_latency_batch(
            lambda rng, n: self._latency_batch(module, rng, n),
            n_runs=n_runs,
            warmup=warmup,
            seed=seed,
        )


def pytorch_like(device: str, machine: Machine | None = None) -> FrameworkBaseline:
    """PyTorch eager execution: ~15 µs dispatch per op, slow CPU RNN cells."""
    return FrameworkBaseline(
        framework="PyTorch",
        device=device,
        per_op_overhead_s=15e-6,
        cpu_recurrent_slowdown=3.0,
        machine=machine or default_machine(),
    )


def tensorflow_like(device: str, machine: Machine | None = None) -> FrameworkBaseline:
    """TensorFlow 1.x session execution: ~25 µs per op, slower CPU RNN cells."""
    return FrameworkBaseline(
        framework="TensorFlow",
        device=device,
        per_op_overhead_s=25e-6,
        cpu_recurrent_slowdown=4.0,
        machine=machine or default_machine(),
    )
