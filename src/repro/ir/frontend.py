"""Declarative model frontend: JSON-style layer specs → graphs.

Downstream users rarely want to hand-write builder calls; this frontend
accepts a compact dict/JSON description — the role the paper's front-end
layer plays for TensorFlow/PyTorch exports (Fig. 1) — and produces a
validated :class:`~repro.ir.graph.Graph`::

    spec = {
        "name": "two_tower",
        "inputs": [
            {"name": "image", "shape": [1, 3, 64, 64]},
            {"name": "text", "shape": [1, 50, 128]},
        ],
        "layers": [
            {"kind": "conv", "name": "c1", "input": "image",
             "channels": 32, "kernel": 3, "stride": 2, "padding": 1},
            {"kind": "global_avg_pool", "name": "img_vec", "input": "c1"},
            {"kind": "lstm", "name": "txt", "input": "text",
             "hidden": 128, "return_sequences": False},
            {"kind": "concat", "name": "joint", "inputs": ["img_vec", "txt"]},
            {"kind": "dense", "name": "out", "input": "joint",
             "units": 10, "activation": None},
            {"kind": "softmax", "name": "probs", "input": "out"},
        ],
        "outputs": ["probs"],
    }
    graph = build_from_spec(spec)

Each layer's ``input`` defaults to the previous layer, so purely
sequential models need no explicit wiring.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Mapping

from repro.errors import IRError
from repro.ir.builder import GraphBuilder, Var
from repro.ir.dtype import FLOAT32, INT64
from repro.ir.graph import Graph

__all__ = ["build_from_spec", "build_from_json", "SUPPORTED_LAYER_KINDS"]

_ACTIVATIONS = ("relu", "tanh", "sigmoid", "gelu", "leaky_relu", "exp", "abs")


class _SpecContext:
    def __init__(self, spec: Mapping[str, Any]):
        self.builder = GraphBuilder(str(spec.get("name", "spec_model")))
        self.values: dict[str, Var] = {}
        self.last: str | None = None

    def resolve(self, layer: Mapping[str, Any], key: str = "input") -> Var:
        name = layer.get(key, self.last)
        if name is None:
            raise IRError(
                f"layer {layer.get('name', layer.get('kind'))!r} has no "
                f"{key!r} and no previous layer to default to"
            )
        if name not in self.values:
            raise IRError(f"unknown layer/input reference {name!r}")
        return self.values[name]

    def resolve_many(self, layer: Mapping[str, Any]) -> list[Var]:
        names = layer.get("inputs")
        if not names:
            raise IRError(
                f"layer {layer.get('name')!r} requires an 'inputs' list"
            )
        return [self.resolve({"input": n}) for n in names]


def _layer_dense(ctx: _SpecContext, layer: Mapping[str, Any]) -> Var:
    from repro.models.common import dense_layer

    return dense_layer(
        ctx.builder,
        ctx.resolve(layer),
        int(layer["units"]),
        prefix=layer["name"],
        activation=layer.get("activation", "relu"),
    )


def _layer_mlp(ctx: _SpecContext, layer: Mapping[str, Any]) -> Var:
    from repro.models.common import mlp

    return mlp(
        ctx.builder,
        ctx.resolve(layer),
        [int(u) for u in layer["hidden"]],
        prefix=layer["name"],
        activation=layer.get("activation", "relu"),
        final_activation=layer.get("final_activation"),
    )


def _layer_lstm(ctx: _SpecContext, layer: Mapping[str, Any]) -> Var:
    from repro.models.common import last_timestep, stacked_lstm

    seq = stacked_lstm(
        ctx.builder,
        ctx.resolve(layer),
        int(layer["hidden"]),
        int(layer.get("layers", 1)),
        prefix=layer["name"],
        return_sequences=True,
    )
    if bool(layer.get("return_sequences", False)):
        return seq
    return last_timestep(ctx.builder, seq)


def _layer_conv(ctx: _SpecContext, layer: Mapping[str, Any]) -> Var:
    from repro.models.common import conv_bn_relu

    return conv_bn_relu(
        ctx.builder,
        ctx.resolve(layer),
        int(layer["channels"]),
        int(layer.get("kernel", 3)),
        int(layer.get("stride", 1)),
        int(layer.get("padding", 1)),
        prefix=layer["name"],
        relu=bool(layer.get("relu", True)),
    )


def _layer_resnet(ctx: _SpecContext, layer: Mapping[str, Any]) -> Var:
    from repro.models.resnet import ResNetConfig, resnet_backbone

    x = ctx.resolve(layer)
    cfg = ResNetConfig(
        depth=int(layer.get("depth", 18)),
        batch=x.shape[0],
        image_size=x.shape[2],
    )
    return resnet_backbone(ctx.builder, x, cfg, prefix=layer["name"])


def _layer_transformer(ctx: _SpecContext, layer: Mapping[str, Any]) -> Var:
    from repro.models.common import transformer_encoder_layer

    y = ctx.resolve(layer)
    for i in range(int(layer.get("layers", 1))):
        y = transformer_encoder_layer(
            ctx.builder,
            y,
            num_heads=int(layer.get("heads", 4)),
            d_ff=int(layer.get("d_ff", 4 * y.shape[-1])),
            prefix=f"{layer['name']}_l{i}",
        )
    return y


def _layer_embedding(ctx: _SpecContext, layer: Mapping[str, Any]) -> Var:
    b = ctx.builder
    table = b.const(
        (int(layer["vocab"]), int(layer["dim"])),
        name=f"{layer['name']}_table",
        init_scale=0.02,
    )
    return b.op("embedding", table, ctx.resolve(layer))


def _layer_concat(ctx: _SpecContext, layer: Mapping[str, Any]) -> Var:
    return ctx.builder.op(
        "concat", *ctx.resolve_many(layer), axis=int(layer.get("axis", -1))
    )


def _layer_pool(ctx: _SpecContext, layer: Mapping[str, Any]) -> Var:
    k = int(layer.get("size", 2))
    s = int(layer.get("stride", k))
    return ctx.builder.op(
        "max_pool2d", ctx.resolve(layer), pool_size=(k, k), strides=(s, s),
        padding=(int(layer.get("padding", 0)),) * 2,
    )


def _layer_gap(ctx: _SpecContext, layer: Mapping[str, Any]) -> Var:
    b = ctx.builder
    y = b.op("global_avg_pool2d", ctx.resolve(layer))
    n, c = y.shape[0], y.shape[1]
    return b.op("reshape", y, shape=(n, c))


def _layer_flatten(ctx: _SpecContext, layer: Mapping[str, Any]) -> Var:
    return ctx.builder.op("flatten", ctx.resolve(layer))


def _layer_softmax(ctx: _SpecContext, layer: Mapping[str, Any]) -> Var:
    return ctx.builder.op(
        "softmax", ctx.resolve(layer), axis=int(layer.get("axis", -1))
    )


def _layer_activation(ctx: _SpecContext, layer: Mapping[str, Any]) -> Var:
    op = str(layer["kind"])
    return ctx.builder.op(op, ctx.resolve(layer))


def _layer_add(ctx: _SpecContext, layer: Mapping[str, Any]) -> Var:
    lhs, rhs = ctx.resolve_many(layer)
    return ctx.builder.op("add", lhs, rhs)


_LAYERS: dict[str, Callable[[_SpecContext, Mapping[str, Any]], Var]] = {
    "dense": _layer_dense,
    "mlp": _layer_mlp,
    "lstm": _layer_lstm,
    "conv": _layer_conv,
    "resnet": _layer_resnet,
    "transformer": _layer_transformer,
    "embedding": _layer_embedding,
    "concat": _layer_concat,
    "max_pool": _layer_pool,
    "global_avg_pool": _layer_gap,
    "flatten": _layer_flatten,
    "softmax": _layer_softmax,
    "add": _layer_add,
    **{act: _layer_activation for act in _ACTIVATIONS},
}

SUPPORTED_LAYER_KINDS = tuple(sorted(_LAYERS))


def build_from_spec(spec: Mapping[str, Any]) -> Graph:
    """Build a graph from a declarative layer spec (see module docstring)."""
    if "inputs" not in spec or not spec["inputs"]:
        raise IRError("spec requires a non-empty 'inputs' list")
    if "layers" not in spec or not spec["layers"]:
        raise IRError("spec requires a non-empty 'layers' list")

    ctx = _SpecContext(spec)
    for inp in spec["inputs"]:
        dtype = INT64 if inp.get("dtype") == "int64" else FLOAT32
        name = str(inp["name"])
        ctx.values[name] = ctx.builder.input(
            name, tuple(int(d) for d in inp["shape"]), dtype=dtype
        )
    if len(spec["inputs"]) == 1:
        # A single-input model's first layer may omit its 'input'.
        ctx.last = str(spec["inputs"][0]["name"])

    for i, layer in enumerate(spec["layers"]):
        kind = str(layer.get("kind", ""))
        fn = _LAYERS.get(kind)
        if fn is None:
            raise IRError(
                f"unknown layer kind {kind!r}; supported: "
                f"{', '.join(SUPPORTED_LAYER_KINDS)}"
            )
        layer = dict(layer)
        layer.setdefault("name", f"{kind}_{i}")
        name = str(layer["name"])
        if name in ctx.values:
            raise IRError(f"duplicate layer name {name!r}")
        ctx.values[name] = fn(ctx, layer)
        ctx.last = name

    outputs = spec.get("outputs") or [ctx.last]
    out_vars = []
    for out in outputs:
        if out not in ctx.values:
            raise IRError(f"unknown output {out!r}")
        out_vars.append(ctx.values[out])
    return ctx.builder.build(*out_vars)


def build_from_json(text: str) -> Graph:
    """Build a graph from a JSON document of the spec format."""
    try:
        spec = json.loads(text)
    except json.JSONDecodeError as exc:
        raise IRError(f"invalid model spec JSON: {exc}") from exc
    return build_from_spec(spec)
