"""Tensor-program IR: dtypes, operators, graphs, builder, interpreter."""

from repro.ir.builder import GraphBuilder, Var
from repro.ir.frontend import (
    SUPPORTED_LAYER_KINDS,
    build_from_json,
    build_from_spec,
)
from repro.ir.dtype import (
    BOOL,
    FLOAT32,
    FLOAT64,
    INT32,
    INT64,
    DType,
    TensorType,
)
from repro.ir.graph import Graph
from repro.ir.interpreter import make_inputs, run_graph
from repro.ir.node import Initializer, Node, NodeKind
from repro.ir.printer import format_graph

__all__ = [
    "BOOL",
    "FLOAT32",
    "FLOAT64",
    "INT32",
    "INT64",
    "DType",
    "TensorType",
    "Graph",
    "GraphBuilder",
    "SUPPORTED_LAYER_KINDS",
    "build_from_json",
    "build_from_spec",
    "Var",
    "Initializer",
    "Node",
    "NodeKind",
    "format_graph",
    "make_inputs",
    "run_graph",
]
