"""Fluent graph construction API.

Example::

    bld = GraphBuilder("toy")
    x = bld.input("x", (1, 64))
    w = bld.const((32, 64), name="w")
    y = bld.op("relu", bld.op("dense", x, w))
    graph = bld.build(y)

The builder performs shape inference on every :meth:`op` call, so malformed
graphs fail at construction time with a precise error.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import IRError
from repro.ir.dtype import FLOAT32, DType, TensorType
from repro.ir.graph import Graph
from repro.ir.node import Initializer, Node, NodeKind
from repro.ir.ops import get_op

__all__ = ["Var", "GraphBuilder"]


@dataclass(frozen=True)
class Var:
    """Handle to a node under construction: its id and output type."""

    id: str
    ty: TensorType

    @property
    def shape(self) -> tuple[int, ...]:
        return self.ty.shape


class GraphBuilder:
    """Incrementally builds a validated :class:`~repro.ir.graph.Graph`."""

    def __init__(self, name: str):
        self.name = name
        self._nodes: list[Node] = []
        self._ids: set[str] = set()
        self._counter = itertools.count()

    def _fresh_id(self, hint: str) -> str:
        nid = f"{hint}_{next(self._counter)}"
        while nid in self._ids:
            nid = f"{hint}_{next(self._counter)}"
        return nid

    def _add(self, node: Node) -> Var:
        if node.id in self._ids:
            raise IRError(f"duplicate node id {node.id!r}")
        self._ids.add(node.id)
        self._nodes.append(node)
        return Var(node.id, node.ty)

    # ------------------------------------------------------------------
    # leaves
    # ------------------------------------------------------------------

    def input(
        self, name: str, shape: Iterable[int], dtype: DType = FLOAT32
    ) -> Var:
        """Declare a placeholder input."""
        return self._add(
            Node(id=name, kind=NodeKind.INPUT, ty=TensorType(tuple(shape), dtype))
        )

    def const(
        self,
        shape: Iterable[int],
        dtype: DType = FLOAT32,
        init: Initializer = Initializer.NORMAL,
        name: str | None = None,
        **attrs: object,
    ) -> Var:
        """Declare a parameter tensor with a lazy initializer."""
        nid = name if name is not None else self._fresh_id("const")
        return self._add(
            Node(
                id=nid,
                kind=NodeKind.CONST,
                ty=TensorType(tuple(shape), dtype),
                attrs=dict(attrs),
                init=init,
            )
        )

    def literal(self, value: np.ndarray, name: str | None = None) -> Var:
        """Declare a constant with an explicit (small) payload."""
        value = np.asarray(value)
        nid = name if name is not None else self._fresh_id("lit")
        ty = TensorType(value.shape if value.shape else (1,), FLOAT32)
        if not value.shape:
            value = value.reshape(1)
        from repro.ir.dtype import dtype_from_name

        ty = TensorType(value.shape, dtype_from_name(str(value.dtype)))
        return self._add(
            Node(
                id=nid,
                kind=NodeKind.CONST,
                ty=ty,
                init=Initializer.LITERAL,
                literal=value,
            )
        )

    # ------------------------------------------------------------------
    # operators
    # ------------------------------------------------------------------

    def op(self, op_name: str, *inputs: Var, name: str | None = None, **attrs: object) -> Var:
        """Apply an operator; shape inference runs immediately."""
        spec = get_op(op_name)
        if spec.arity is not None and len(inputs) != spec.arity:
            raise IRError(
                f"{op_name} expects {spec.arity} inputs, got {len(inputs)}"
            )
        in_types = [v.ty for v in inputs]
        out_ty = spec.infer_type(in_types, attrs)
        nid = name if name is not None else self._fresh_id(op_name)
        return self._add(
            Node(
                id=nid,
                kind=NodeKind.OP,
                ty=out_ty,
                op=op_name,
                inputs=tuple(v.id for v in inputs),
                attrs=dict(attrs),
            )
        )

    # ------------------------------------------------------------------
    # finalize
    # ------------------------------------------------------------------

    def build(self, *outputs: Var) -> Graph:
        """Finish construction and validate the graph."""
        if not outputs:
            raise IRError("build() requires at least one output Var")
        return Graph(self.name, self._nodes, [v.id for v in outputs])
