"""The computation graph: a DAG of tensor operators with adjacency lists.

This mirrors the paper's §V: the Relay-style expression IR is translated to
an adjacency-list graph representation that partitioning and scheduling work
on.  Nodes are stored in insertion order (which is always a valid topological
order for graphs built through :class:`~repro.ir.builder.GraphBuilder`), and
both predecessor and consumer adjacency is available.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.errors import GraphValidationError, IRError
from repro.ir.dtype import TensorType
from repro.ir.node import Node
from repro.ir.ops import get_op

__all__ = ["Graph"]


class Graph:
    """A directed acyclic computation graph.

    Args:
        name: human-readable model name.
        nodes: nodes in any order; ids must be unique.
        outputs: ids of the nodes whose values the graph returns.
    """

    def __init__(self, name: str, nodes: Iterable[Node], outputs: Iterable[str]):
        self.name = name
        self._nodes: dict[str, Node] = {}
        for node in nodes:
            if node.id in self._nodes:
                raise GraphValidationError(f"duplicate node id {node.id!r}")
            self._nodes[node.id] = node
        self.outputs: tuple[str, ...] = tuple(outputs)
        if not self.outputs:
            raise GraphValidationError("graph must declare at least one output")
        self._consumers: dict[str, tuple[str, ...]] | None = None
        self._topo: tuple[str, ...] | None = None
        self.validate()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def node(self, node_id: str) -> Node:
        """Fetch a node by id."""
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise IRError(f"unknown node id {node_id!r}") from exc

    @property
    def nodes(self) -> Mapping[str, Node]:
        """Read-only view of all nodes keyed by id."""
        return dict(self._nodes)

    def input_nodes(self) -> list[Node]:
        """Placeholder nodes, in insertion order."""
        return [n for n in self._nodes.values() if n.is_input]

    def const_nodes(self) -> list[Node]:
        """Constant/parameter nodes, in insertion order."""
        return [n for n in self._nodes.values() if n.is_const]

    def op_nodes(self) -> list[Node]:
        """Operator nodes, in insertion order."""
        return [n for n in self._nodes.values() if n.is_op]

    def output_types(self) -> list[TensorType]:
        """Types of the declared outputs."""
        return [self.node(o).ty for o in self.outputs]

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------

    def predecessors(self, node_id: str) -> tuple[str, ...]:
        """Ids of the nodes feeding ``node_id`` (positional, may repeat)."""
        return self.node(node_id).inputs

    def consumers(self, node_id: str) -> tuple[str, ...]:
        """Ids of the nodes that consume ``node_id``'s output."""
        if self._consumers is None:
            cons: dict[str, list[str]] = {nid: [] for nid in self._nodes}
            for node in self._nodes.values():
                for src in node.inputs:
                    # A node may consume the same value twice; record once
                    # per edge so fan-out counts are exact.
                    cons[src].append(node.id)
            self._consumers = {k: tuple(v) for k, v in cons.items()}
        return self._consumers[node_id]

    def topo_order(self) -> tuple[str, ...]:
        """Node ids in a deterministic topological order (Kahn's algorithm,
        ties broken by insertion order)."""
        if self._topo is not None:
            return self._topo
        indegree = {nid: 0 for nid in self._nodes}
        for node in self._nodes.values():
            for src in node.inputs:
                indegree[node.id] += 1
                if src not in self._nodes:
                    raise GraphValidationError(
                        f"node {node.id!r} references unknown input {src!r}"
                    )
        order: list[str] = []
        ready = deque(nid for nid in self._nodes if indegree[nid] == 0)
        while ready:
            nid = ready.popleft()
            order.append(nid)
            for consumer in self.consumers(nid):
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(self._nodes):
            raise GraphValidationError("graph contains a cycle")
        self._topo = tuple(order)
        return self._topo

    # ------------------------------------------------------------------
    # validation / utilities
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raises :class:`GraphValidationError`.

        Verifies edge integrity, acyclicity, operator arity, and that every
        OP node's recorded output type matches re-inferred shape inference.
        """
        for out in self.outputs:
            if out not in self._nodes:
                raise GraphValidationError(f"unknown output node {out!r}")
        for node in self._nodes.values():
            for src in node.inputs:
                if src not in self._nodes:
                    raise GraphValidationError(
                        f"node {node.id!r} references unknown input {src!r}"
                    )
        self.topo_order()  # raises on cycles
        for node in self._nodes.values():
            if not node.is_op:
                continue
            spec = get_op(node.op)  # raises UnknownOpError
            if spec.arity is not None and len(node.inputs) != spec.arity:
                raise GraphValidationError(
                    f"{node.op} node {node.id!r} expects {spec.arity} inputs, "
                    f"got {len(node.inputs)}"
                )
            in_types = [self.node(i).ty for i in node.inputs]
            inferred = spec.infer_type(in_types, node.attrs)
            if inferred != node.ty:
                raise GraphValidationError(
                    f"node {node.id!r} ({node.op}) declares type {node.ty} "
                    f"but shape inference gives {inferred}"
                )

    def total_flops(self) -> float:
        """Total FLOPs of one forward pass."""
        total = 0.0
        for node in self.op_nodes():
            spec = get_op(node.op)
            in_types = [self.node(i).ty for i in node.inputs]
            total += spec.flops(in_types, node.ty, node.attrs)
        return total

    def num_params(self) -> int:
        """Total number of scalar parameters."""
        return sum(n.ty.num_elements for n in self.const_nodes())

    def materialize_params(self, seed: int = 0) -> dict[str, np.ndarray]:
        """Deterministically create all parameter tensors.

        Each constant gets its own generator derived from (seed, node id) so
        values do not depend on materialization order or on other nodes.
        The id is mixed in via a stable digest — ``hash(str)`` is randomized
        per process, which would make "deterministic" parameters differ
        between runs and break reproduce-from-seed everywhere.
        """
        import hashlib

        params: dict[str, np.ndarray] = {}
        for node in self.const_nodes():
            digest = hashlib.sha256(node.id.encode("utf-8")).digest()
            sub = np.random.default_rng(
                np.random.SeedSequence(
                    [seed, int.from_bytes(digest[:4], "little")]
                )
            )
            params[node.id] = node.materialize(sub)
        return params

    def with_outputs(self, outputs: Iterable[str]) -> "Graph":
        """Copy of this graph with different declared outputs."""
        return Graph(self.name, self._nodes.values(), outputs)

    def subgraph_node_ids(self) -> set[str]:
        """Ids of nodes reachable backwards from the outputs."""
        seen: set[str] = set()
        stack = list(self.outputs)
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            stack.extend(self.node(nid).inputs)
        return seen

    def pruned(self) -> "Graph":
        """Copy with nodes unreachable from the outputs removed."""
        live = self.subgraph_node_ids()
        return Graph(
            self.name,
            [n for n in self._nodes.values() if n.id in live],
            self.outputs,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Graph(name={self.name!r}, nodes={len(self._nodes)}, "
            f"outputs={list(self.outputs)})"
        )
