"""Reference interpreter: executes a graph directly with NumPy.

This is the semantic ground truth.  Compiler passes, partitioning, and the
heterogeneous executor are all tested by comparing their numeric outputs to
this interpreter on identical inputs and parameters.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import ExecutionError
from repro.ir.graph import Graph
from repro.ir.ops import get_op

__all__ = ["run_graph", "make_inputs"]


def make_inputs(graph: Graph, seed: int = 0) -> dict[str, np.ndarray]:
    """Deterministic random inputs matching the graph's placeholders."""
    rng = np.random.default_rng(seed)
    feeds: dict[str, np.ndarray] = {}
    for node in graph.input_nodes():
        np_dtype = node.ty.dtype.to_numpy()
        if np.issubdtype(np_dtype, np.integer):
            high = int(node.attrs.get("init_high", 2))
            feeds[node.id] = rng.integers(0, high, size=node.ty.shape).astype(np_dtype)
        else:
            feeds[node.id] = rng.standard_normal(node.ty.shape).astype(np_dtype)
    return feeds


def run_graph(
    graph: Graph,
    inputs: Mapping[str, np.ndarray],
    params: Mapping[str, np.ndarray] | None = None,
    seed: int = 0,
) -> list[np.ndarray]:
    """Evaluate the graph on the given inputs; returns output tensors.

    Args:
        graph: the computation graph.
        inputs: placeholder id -> value.
        params: constant id -> value; materialized from ``seed`` when omitted.
        seed: parameter seed used when ``params`` is None.
    """
    if params is None:
        params = graph.materialize_params(seed)
    env: dict[str, np.ndarray] = {}
    for node_id in graph.topo_order():
        node = graph.node(node_id)
        if node.is_input:
            if node.id not in inputs:
                raise ExecutionError(f"missing input {node.id!r}")
            value = np.asarray(inputs[node.id])
            if value.shape != node.ty.shape:
                raise ExecutionError(
                    f"input {node.id!r} has shape {value.shape}, "
                    f"expected {node.ty.shape}"
                )
            env[node.id] = value
        elif node.is_const:
            if node.id not in params:
                raise ExecutionError(f"missing parameter {node.id!r}")
            env[node.id] = np.asarray(params[node.id])
        else:
            spec = get_op(node.op)
            args = [env[i] for i in node.inputs]
            try:
                env[node.id] = spec.compute(args, node.attrs)
            except Exception as exc:  # pragma: no cover - defensive
                raise ExecutionError(
                    f"operator {node.op!r} failed at node {node.id!r}: {exc}"
                ) from exc
    return [env[o] for o in graph.outputs]
