"""JSON (de)serialization for graphs.

Round-trips the full graph structure — nodes, attrs, initializer specs, and
small literal payloads — so pre-built models can be stored, diffed, and
shipped to the profiler workers exactly the way DUET hands subgraphs to the
compiler (§IV-B treats each subgraph as a standalone model).
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.errors import IRError
from repro.ir.dtype import TensorType, dtype_from_name
from repro.ir.graph import Graph
from repro.ir.node import Initializer, Node, NodeKind

__all__ = ["graph_to_dict", "graph_from_dict", "dumps", "loads"]


def _attrs_to_json(attrs) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for k, v in attrs.items():
        if isinstance(v, tuple):
            out[k] = {"__tuple__": list(v)}
        else:
            out[k] = v
    return out


def _attrs_from_json(data: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for k, v in data.items():
        if isinstance(v, dict) and "__tuple__" in v:
            out[k] = tuple(v["__tuple__"])
        else:
            out[k] = v
    return out


def graph_to_dict(graph: Graph) -> dict[str, Any]:
    """Serialize a graph to a JSON-compatible dict."""
    nodes = []
    for node in graph.nodes.values():
        entry: dict[str, Any] = {
            "id": node.id,
            "kind": node.kind.value,
            "shape": list(node.ty.shape),
            "dtype": node.ty.dtype.name,
            "attrs": _attrs_to_json(node.attrs),
        }
        if node.is_op:
            entry["op"] = node.op
            entry["inputs"] = list(node.inputs)
        if node.is_const:
            entry["init"] = node.init.value
            if node.literal is not None:
                entry["literal"] = node.literal.tolist()
        nodes.append(entry)
    return {"name": graph.name, "nodes": nodes, "outputs": list(graph.outputs)}


def graph_from_dict(data: dict[str, Any]) -> Graph:
    """Deserialize a graph from :func:`graph_to_dict` output."""
    nodes = []
    for entry in data["nodes"]:
        kind = NodeKind(entry["kind"])
        ty = TensorType(tuple(entry["shape"]), dtype_from_name(entry["dtype"]))
        literal = None
        init = Initializer(entry.get("init", "normal"))
        if "literal" in entry:
            literal = np.asarray(entry["literal"], dtype=ty.dtype.to_numpy())
        nodes.append(
            Node(
                id=entry["id"],
                kind=kind,
                ty=ty,
                op=entry.get("op"),
                inputs=tuple(entry.get("inputs", ())),
                attrs=_attrs_from_json(entry.get("attrs", {})),
                init=init,
                literal=literal,
            )
        )
    return Graph(data["name"], nodes, data["outputs"])


def dumps(graph: Graph, indent: int | None = None) -> str:
    """Serialize a graph to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def loads(text: str) -> Graph:
    """Deserialize a graph from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise IRError(f"invalid graph JSON: {exc}") from exc
    return graph_from_dict(data)
