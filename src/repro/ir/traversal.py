"""Graph traversal utilities: reachability, levels, critical paths.

These helpers operate on node-id sets so they can be shared by the
partitioner (which reasons about phases) and the scheduler (which reasons
about critical paths through weighted DAGs, §IV-C Step 1).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable

from repro.ir.graph import Graph

__all__ = [
    "ancestors",
    "descendants",
    "are_independent",
    "node_depths",
    "critical_path",
    "weakly_connected_components",
]


def ancestors(graph: Graph, node_id: str) -> set[str]:
    """All nodes with a directed path *to* ``node_id`` (exclusive)."""
    seen: set[str] = set()
    stack = list(graph.node(node_id).inputs)
    while stack:
        nid = stack.pop()
        if nid in seen:
            continue
        seen.add(nid)
        stack.extend(graph.node(nid).inputs)
    return seen


def descendants(graph: Graph, node_id: str) -> set[str]:
    """All nodes reachable *from* ``node_id`` (exclusive)."""
    seen: set[str] = set()
    stack = list(graph.consumers(node_id))
    while stack:
        nid = stack.pop()
        if nid in seen:
            continue
        seen.add(nid)
        stack.extend(graph.consumers(nid))
    return seen


def are_independent(graph: Graph, a: Iterable[str], b: Iterable[str]) -> bool:
    """Whether no dependency path connects node set ``a`` with set ``b``."""
    set_a, set_b = set(a), set(b)
    for nid in set_a:
        if descendants(graph, nid) & set_b or ancestors(graph, nid) & set_b:
            return False
    return True


def node_depths(graph: Graph, op_only: bool = True) -> dict[str, int]:
    """Longest-path depth of each node from the graph sources.

    With ``op_only`` (default), INPUT/CONST leaves do not contribute depth,
    so depth counts operator hops only — this is what phase layering uses.
    """
    depths: dict[str, int] = {}
    for nid in graph.topo_order():
        node = graph.node(nid)
        pred_depths = [depths[p] for p in node.inputs]
        base = max(pred_depths, default=-1)
        if op_only and not node.is_op:
            depths[nid] = base  # leaves are transparent
        else:
            depths[nid] = base + 1
    return depths


def critical_path(
    graph: Graph, cost: Callable[[str], float]
) -> tuple[list[str], float]:
    """Longest (most expensive) source→sink path by node cost.

    Args:
        graph: the DAG.
        cost: node id -> cost; non-op nodes typically cost 0.

    Returns:
        (node ids along the path, in topological order; total path cost)
    """
    best: dict[str, float] = {}
    pred: dict[str, str | None] = {}
    for nid in graph.topo_order():
        node = graph.node(nid)
        incoming = [(best[p], p) for p in node.inputs]
        if incoming:
            prev_cost, prev_id = max(incoming)
        else:
            prev_cost, prev_id = 0.0, None
        best[nid] = prev_cost + cost(nid)
        pred[nid] = prev_id
    end = max(best, key=lambda nid: best[nid])
    path: list[str] = []
    cur: str | None = end
    while cur is not None:
        path.append(cur)
        cur = pred[cur]
    path.reverse()
    return path, best[end]


def weakly_connected_components(
    graph: Graph, nodes: Iterable[str]
) -> list[set[str]]:
    """Weakly-connected components of the subgraph induced by ``nodes``.

    Used by the partitioner to split a multi-path phase into its independent
    branch subgraphs.
    """
    node_set = set(nodes)
    neighbours: dict[str, set[str]] = {n: set() for n in node_set}
    for nid in node_set:
        node = graph.node(nid)
        for src in node.inputs:
            if src in node_set:
                neighbours[nid].add(src)
                neighbours[src].add(nid)
    components: list[set[str]] = []
    unvisited = set(node_set)
    while unvisited:
        start = next(iter(unvisited))
        comp: set[str] = set()
        queue = deque([start])
        while queue:
            nid = queue.popleft()
            if nid in comp:
                continue
            comp.add(nid)
            queue.extend(neighbours[nid] - comp)
        components.append(comp)
        unvisited -= comp
    # Deterministic ordering: by first node in graph topological order.
    topo_index = {nid: i for i, nid in enumerate(graph.topo_order())}
    components.sort(key=lambda c: min(topo_index[n] for n in c))
    return components
