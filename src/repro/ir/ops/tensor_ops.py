"""Data-movement operators: reshape, transpose, concat, slice, embedding.

These are ``INJECTIVE`` (index-remapping) operators; they do no arithmetic
and are modelled as memory traffic by the device cost models
(:class:`~repro.ir.ops.registry.OpKind.MEMORY`).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ShapeError, TypeCheckError
from repro.ir.dtype import TensorType
from repro.ir.ops.registry import (
    Attrs,
    OpKind,
    OpPattern,
    OpSpec,
    register_op,
)


def _zero_flops(in_types, out_type, attrs) -> float:
    return 0.0


def _reshape_infer(in_types: Sequence[TensorType], attrs: Attrs) -> TensorType:
    (data,) = in_types
    new_shape = tuple(int(d) for d in attrs["shape"])  # type: ignore[index]
    if -1 in new_shape:
        known = math.prod(d for d in new_shape if d != -1)
        if new_shape.count(-1) != 1 or data.num_elements % known != 0:
            raise ShapeError(
                f"cannot reshape {data.shape} into {new_shape}"
            )
        new_shape = tuple(
            data.num_elements // known if d == -1 else d for d in new_shape
        )
    if math.prod(new_shape) != data.num_elements:
        raise ShapeError(
            f"reshape from {data.shape} ({data.num_elements} elems) to "
            f"{new_shape} ({math.prod(new_shape)} elems) changes element count"
        )
    return data.with_shape(new_shape)


register_op(
    OpSpec(
        name="reshape",
        arity=1,
        pattern=OpPattern.INJECTIVE,
        kind=OpKind.MEMORY,
        infer_type=_reshape_infer,
        compute=lambda xs, attrs: xs[0].reshape(
            tuple(int(d) for d in attrs["shape"])
        ),
        flops=_zero_flops,
    )
)


def _flatten_infer(in_types: Sequence[TensorType], attrs: Attrs) -> TensorType:
    (data,) = in_types
    if data.rank < 1:
        raise ShapeError("flatten requires rank >= 1")
    lead = data.shape[0]
    return data.with_shape((lead, data.num_elements // lead))


register_op(
    OpSpec(
        name="flatten",
        arity=1,
        pattern=OpPattern.INJECTIVE,
        kind=OpKind.MEMORY,
        infer_type=_flatten_infer,
        compute=lambda xs, attrs: xs[0].reshape(xs[0].shape[0], -1),
        flops=_zero_flops,
    )
)


def _transpose_infer(in_types: Sequence[TensorType], attrs: Attrs) -> TensorType:
    (data,) = in_types
    axes = attrs.get("axes")
    if axes is None:
        perm = tuple(reversed(range(data.rank)))
    else:
        perm = tuple(int(a) for a in axes)  # type: ignore[union-attr]
    if sorted(perm) != list(range(data.rank)):
        raise ShapeError(f"invalid transpose axes {perm} for rank {data.rank}")
    return data.with_shape(tuple(data.shape[a] for a in perm))


register_op(
    OpSpec(
        name="transpose",
        arity=1,
        pattern=OpPattern.INJECTIVE,
        kind=OpKind.MEMORY,
        infer_type=_transpose_infer,
        compute=lambda xs, attrs: np.transpose(
            xs[0],
            tuple(int(a) for a in attrs["axes"]) if attrs.get("axes") else None,
        ),
        flops=_zero_flops,
    )
)


def _concat_infer(in_types: Sequence[TensorType], attrs: Attrs) -> TensorType:
    if not in_types:
        raise ShapeError("concat requires at least one input")
    axis = int(attrs.get("axis", 0))
    first = in_types[0]
    if axis < 0:
        axis += first.rank
    if not 0 <= axis < first.rank:
        raise ShapeError(f"concat axis {axis} out of range for rank {first.rank}")
    total = 0
    for t in in_types:
        if t.dtype != first.dtype:
            raise TypeCheckError("concat inputs must share a dtype")
        if t.rank != first.rank:
            raise ShapeError("concat inputs must share a rank")
        for d in range(first.rank):
            if d != axis and t.shape[d] != first.shape[d]:
                raise ShapeError(
                    f"concat inputs disagree on non-concat axis {d}: "
                    f"{t.shape} vs {first.shape}"
                )
        total += t.shape[axis]
    shape = list(first.shape)
    shape[axis] = total
    return first.with_shape(shape)


register_op(
    OpSpec(
        name="concat",
        arity=None,
        pattern=OpPattern.INJECTIVE,
        kind=OpKind.MEMORY,
        infer_type=_concat_infer,
        compute=lambda xs, attrs: np.concatenate(
            list(xs), axis=int(attrs.get("axis", 0))
        ),
        flops=_zero_flops,
    )
)


def _slice_infer(in_types: Sequence[TensorType], attrs: Attrs) -> TensorType:
    (data,) = in_types
    begin = tuple(int(b) for b in attrs["begin"])  # type: ignore[index]
    end = tuple(int(e) for e in attrs["end"])  # type: ignore[index]
    if len(begin) != data.rank or len(end) != data.rank:
        raise ShapeError("slice begin/end must match input rank")
    shape = []
    for b, e, d in zip(begin, end, data.shape):
        if not (0 <= b < e <= d):
            raise ShapeError(
                f"invalid slice [{b}:{e}] for dimension of size {d}"
            )
        shape.append(e - b)
    return data.with_shape(shape)


def _slice_compute(xs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    idx = tuple(
        slice(int(b), int(e)) for b, e in zip(attrs["begin"], attrs["end"])
    )
    return np.ascontiguousarray(xs[0][idx])


register_op(
    OpSpec(
        name="strided_slice",
        arity=1,
        pattern=OpPattern.INJECTIVE,
        kind=OpKind.MEMORY,
        infer_type=_slice_infer,
        compute=_slice_compute,
        flops=_zero_flops,
    )
)


def _take_infer(in_types: Sequence[TensorType], attrs: Attrs) -> TensorType:
    """Embedding lookup: table [V, D] indexed by int tensor -> [..., D]."""
    table, indices = in_types
    if table.rank != 2:
        raise ShapeError(f"embedding table must be rank 2, got {table.shape}")
    if indices.dtype.name not in ("int32", "int64"):
        raise TypeCheckError("embedding indices must be integer typed")
    return TensorType(indices.shape + (table.shape[1],), table.dtype)


register_op(
    OpSpec(
        name="embedding",
        arity=2,
        pattern=OpPattern.INJECTIVE,
        kind=OpKind.EMBEDDING,
        infer_type=_take_infer,
        compute=lambda xs, attrs: xs[0][xs[1]],
        flops=_zero_flops,
    )
)
