"""Recurrent operators: LSTM and GRU layers.

A recurrent layer is a single OPAQUE op in the graph (the compiler does not
fuse across it) but its *cost* is modelled as ``seq_len`` serially-dependent
steps of small GEMMs.  On the simulated GPU each step pays kernel-launch
overhead and exposes only batch×hidden parallelism, which is the mechanism
behind the paper's observation (§III-B, Fig. 4) that RNNs run slower on GPU
than CPU at batch size 1.

Layout convention: data is ``[batch, seq_len, input_size]``, weights follow
the PyTorch convention ``w_ih: [G*H, I]``, ``w_hh: [G*H, H]``, ``bias:
[G*H]`` with gate order (i, f, g, o) for LSTM and (r, z, n) for GRU.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.ir.dtype import TensorType
from repro.ir.ops.registry import (
    Attrs,
    OpKind,
    OpPattern,
    OpSpec,
    register_op,
)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def _rnn_infer(
    in_types: Sequence[TensorType], attrs: Attrs, gates: int
) -> TensorType:
    data, w_ih, w_hh, bias = in_types
    if data.rank != 3:
        raise ShapeError(f"recurrent data must be [B, T, I], got {data.shape}")
    b, t, i = data.shape
    hidden = int(attrs["hidden_size"])
    if w_ih.shape != (gates * hidden, i):
        raise ShapeError(
            f"w_ih must be [{gates * hidden}, {i}], got {w_ih.shape}"
        )
    if w_hh.shape != (gates * hidden, hidden):
        raise ShapeError(
            f"w_hh must be [{gates * hidden}, {hidden}], got {w_hh.shape}"
        )
    if bias.shape != (gates * hidden,):
        raise ShapeError(f"bias must be [{gates * hidden}], got {bias.shape}")
    if bool(attrs.get("return_sequences", True)):
        return data.with_shape((b, t, hidden))
    return data.with_shape((b, hidden))


def _rnn_flops(
    in_types: Sequence[TensorType], out_type: TensorType, attrs: Attrs, gates: int
) -> float:
    data = in_types[0]
    b, t, i = data.shape
    h = int(attrs["hidden_size"])
    gemm = 2.0 * gates * h * (i + h) * b
    pointwise = 12.0 * gates * h * b
    return t * (gemm + pointwise)


def _rnn_parallelism(
    in_types: Sequence[TensorType], out_type: TensorType, attrs: Attrs, gates: int
) -> float:
    # Per-step parallel work only: steps are serially dependent.
    b = in_types[0].shape[0]
    h = int(attrs["hidden_size"])
    return float(b * gates * h)


def _rnn_steps(in_types: Sequence[TensorType], attrs: Attrs) -> int:
    return int(in_types[0].shape[1])


def _lstm_compute(xs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    data, w_ih, w_hh, bias = xs
    b, t, _ = data.shape
    hidden = int(attrs["hidden_size"])
    return_sequences = bool(attrs.get("return_sequences", True))
    h = np.zeros((b, hidden), dtype=data.dtype)
    c = np.zeros((b, hidden), dtype=data.dtype)
    outputs = np.empty((b, t, hidden), dtype=data.dtype) if return_sequences else None
    for step in range(t):
        gates = data[:, step, :] @ w_ih.T + h @ w_hh.T + bias
        gi, gf, gg, go = np.split(gates, 4, axis=1)
        i_t = _sigmoid(gi)
        f_t = _sigmoid(gf)
        g_t = np.tanh(gg)
        o_t = _sigmoid(go)
        c = f_t * c + i_t * g_t
        h = o_t * np.tanh(c)
        if outputs is not None:
            outputs[:, step, :] = h
    return outputs if outputs is not None else h


register_op(
    OpSpec(
        name="lstm",
        arity=4,
        pattern=OpPattern.OPAQUE,
        kind=OpKind.RECURRENT,
        infer_type=lambda i, a: _rnn_infer(i, a, gates=4),
        compute=_lstm_compute,
        flops=lambda i, o, a: _rnn_flops(i, o, a, gates=4),
        parallelism=lambda i, o, a: _rnn_parallelism(i, o, a, gates=4),
        sequential_steps=_rnn_steps,
        kernels_per_step=2,
    )
)


def _gru_compute(xs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    data, w_ih, w_hh, bias = xs
    b, t, _ = data.shape
    hidden = int(attrs["hidden_size"])
    return_sequences = bool(attrs.get("return_sequences", True))
    h = np.zeros((b, hidden), dtype=data.dtype)
    outputs = np.empty((b, t, hidden), dtype=data.dtype) if return_sequences else None
    w_ir, w_iz, w_in = np.split(w_ih, 3, axis=0)
    w_hr, w_hz, w_hn = np.split(w_hh, 3, axis=0)
    b_r, b_z, b_n = np.split(bias, 3)
    for step in range(t):
        x = data[:, step, :]
        r = _sigmoid(x @ w_ir.T + h @ w_hr.T + b_r)
        z = _sigmoid(x @ w_iz.T + h @ w_hz.T + b_z)
        n = np.tanh(x @ w_in.T + r * (h @ w_hn.T) + b_n)
        h = (1.0 - z) * n + z * h
        if outputs is not None:
            outputs[:, step, :] = h
    return outputs if outputs is not None else h


register_op(
    OpSpec(
        name="gru",
        arity=4,
        pattern=OpPattern.OPAQUE,
        kind=OpKind.RECURRENT,
        infer_type=lambda i, a: _rnn_infer(i, a, gates=3),
        compute=_gru_compute,
        flops=lambda i, o, a: _rnn_flops(i, o, a, gates=3),
        parallelism=lambda i, o, a: _rnn_parallelism(i, o, a, gates=3),
        sequential_steps=_rnn_steps,
        kernels_per_step=2,
    )
)


def _reverse_infer(in_types: Sequence[TensorType], attrs: Attrs) -> TensorType:
    (data,) = in_types
    axis = int(attrs.get("axis", 1))
    if not -data.rank <= axis < data.rank:
        raise ShapeError(f"reverse axis {axis} out of range for rank {data.rank}")
    return data


register_op(
    OpSpec(
        name="reverse",
        arity=1,
        pattern=OpPattern.INJECTIVE,
        kind=OpKind.MEMORY,
        infer_type=_reverse_infer,
        compute=lambda xs, attrs: np.ascontiguousarray(
            np.flip(xs[0], axis=int(attrs.get("axis", 1)))
        ),
        flops=lambda i, o, a: 0.0,
    )
)
