"""Compute-heavy neural-network operators: dense, conv2d, pooling, norms.

Reference implementations use NumPy; conv2d is implemented with im2col +
GEMM so outputs are exact and reasonably fast.  FLOP and parallelism
functions feed the device cost models: convolutions expose large spatial
parallelism (GPU-friendly) while batch-1 GEMMs expose little (§III-B).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.ir.dtype import TensorType
from repro.ir.ops.registry import (
    Attrs,
    OpKind,
    OpPattern,
    OpSpec,
    register_op,
)

__all__ = ["conv2d_output_shape", "im2col"]


# ---------------------------------------------------------------------------
# dense / matmul
# ---------------------------------------------------------------------------


def _dense_infer(in_types: Sequence[TensorType], attrs: Attrs) -> TensorType:
    data, weight = in_types
    if data.rank != 2 or weight.rank != 2:
        raise ShapeError(
            f"dense expects 2-D data and weight, got {data.shape}, {weight.shape}"
        )
    if data.shape[1] != weight.shape[1]:
        raise ShapeError(
            f"dense reduction mismatch: data {data.shape} vs weight "
            f"{weight.shape} (weight layout is [out, in])"
        )
    return data.with_shape((data.shape[0], weight.shape[0]))


def _dense_flops(in_types, out_type, attrs) -> float:
    data, weight = in_types
    return 2.0 * data.shape[0] * weight.shape[0] * weight.shape[1]


register_op(
    OpSpec(
        name="dense",
        arity=2,
        pattern=OpPattern.OUT_FUSABLE,
        kind=OpKind.GEMM,
        infer_type=_dense_infer,
        compute=lambda xs, attrs: xs[0] @ xs[1].T,
        flops=_dense_flops,
    )
)


def _matmul_infer(in_types: Sequence[TensorType], attrs: Attrs) -> TensorType:
    a, b = in_types
    if a.rank != 2 or b.rank != 2 or a.shape[1] != b.shape[0]:
        raise ShapeError(f"matmul shape mismatch: {a.shape} @ {b.shape}")
    return a.with_shape((a.shape[0], b.shape[1]))


register_op(
    OpSpec(
        name="matmul",
        arity=2,
        pattern=OpPattern.OUT_FUSABLE,
        kind=OpKind.GEMM,
        infer_type=_matmul_infer,
        compute=lambda xs, attrs: xs[0] @ xs[1],
        flops=lambda i, o, a: 2.0 * i[0].shape[0] * i[0].shape[1] * i[1].shape[1],
    )
)


def _batch_matmul_infer(in_types: Sequence[TensorType], attrs: Attrs) -> TensorType:
    a, b = in_types
    if a.rank != 3 or b.rank != 3:
        raise ShapeError(f"batch_matmul expects rank-3 inputs, got {a.shape}, {b.shape}")
    if a.shape[0] != b.shape[0] or a.shape[2] != b.shape[1]:
        raise ShapeError(f"batch_matmul shape mismatch: {a.shape} @ {b.shape}")
    return a.with_shape((a.shape[0], a.shape[1], b.shape[2]))


register_op(
    OpSpec(
        name="batch_matmul",
        arity=2,
        pattern=OpPattern.OUT_FUSABLE,
        kind=OpKind.GEMM,
        infer_type=_batch_matmul_infer,
        compute=lambda xs, attrs: np.matmul(xs[0], xs[1]),
        flops=lambda i, o, a: 2.0
        * i[0].shape[0]
        * i[0].shape[1]
        * i[0].shape[2]
        * i[1].shape[2],
    )
)


# ---------------------------------------------------------------------------
# conv2d (NCHW)
# ---------------------------------------------------------------------------


def conv2d_output_shape(
    data: tuple[int, ...],
    weight: tuple[int, ...],
    strides: tuple[int, int],
    padding: tuple[int, int],
) -> tuple[int, int, int, int]:
    """Output shape of a NCHW conv with OIHW weights."""
    n, c, h, w = data
    oc, ic, kh, kw = weight
    if ic != c:
        raise ShapeError(
            f"conv2d channel mismatch: data {data} vs weight {weight}"
        )
    oh = (h + 2 * padding[0] - kh) // strides[0] + 1
    ow = (w + 2 * padding[1] - kw) // strides[1] + 1
    if oh <= 0 or ow <= 0:
        raise ShapeError(
            f"conv2d produces empty output for data {data}, kernel {weight}, "
            f"strides {strides}, padding {padding}"
        )
    return (n, oc, oh, ow)


def _conv_attrs(attrs: Attrs) -> tuple[tuple[int, int], tuple[int, int]]:
    strides = tuple(int(s) for s in attrs.get("strides", (1, 1)))
    padding = tuple(int(p) for p in attrs.get("padding", (0, 0)))
    return strides, padding  # type: ignore[return-value]


def _conv2d_infer(in_types: Sequence[TensorType], attrs: Attrs) -> TensorType:
    data, weight = in_types
    if data.rank != 4 or weight.rank != 4:
        raise ShapeError(
            f"conv2d expects NCHW data and OIHW weight, got {data.shape}, {weight.shape}"
        )
    strides, padding = _conv_attrs(attrs)
    return data.with_shape(
        conv2d_output_shape(data.shape, weight.shape, strides, padding)
    )


def im2col(
    x: np.ndarray,
    kh: int,
    kw: int,
    strides: tuple[int, int],
    padding: tuple[int, int],
) -> np.ndarray:
    """Unfold NCHW input into [N, C*KH*KW, OH*OW] patches."""
    n, c, h, w = x.shape
    ph, pw = padding
    sh, sw = strides
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    # Strided view: [N, C, KH, KW, OH, OW]
    s0, s1, s2, s3 = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, oh, ow),
        strides=(s0, s1, s2, s3, s2 * sh, s3 * sw),
        writeable=False,
    )
    return view.reshape(n, c * kh * kw, oh * ow)


def _conv2d_compute(xs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    data, weight = xs
    strides, padding = _conv_attrs(attrs)
    oc, ic, kh, kw = weight.shape
    n, _, _, _ = data.shape
    _, _, oh, ow = conv2d_output_shape(data.shape, weight.shape, strides, padding)
    cols = im2col(data, kh, kw, strides, padding)  # [N, IC*KH*KW, OH*OW]
    w2 = weight.reshape(oc, ic * kh * kw)
    out = np.einsum("ok,nkp->nop", w2, cols, optimize=True)
    return np.ascontiguousarray(out.reshape(n, oc, oh, ow))


def _conv2d_flops(in_types, out_type, attrs) -> float:
    weight = in_types[1]
    _, ic, kh, kw = weight.shape
    return 2.0 * out_type.num_elements * ic * kh * kw


def _conv2d_parallelism(in_types, out_type, attrs) -> float:
    # Implicit-GEMM convolution kernels tile over the k×k reduction window
    # as well as the output elements, so late, spatially-small layers still
    # expose enough parallel work to keep a GPU reasonably busy.
    _, _, kh, kw = in_types[1].shape
    return float(out_type.num_elements * kh * kw)


register_op(
    OpSpec(
        name="conv2d",
        arity=2,
        pattern=OpPattern.OUT_FUSABLE,
        kind=OpKind.CONV,
        infer_type=_conv2d_infer,
        compute=_conv2d_compute,
        flops=_conv2d_flops,
        parallelism=_conv2d_parallelism,
    )
)


# ---------------------------------------------------------------------------
# pooling
# ---------------------------------------------------------------------------


def _pool_infer(in_types: Sequence[TensorType], attrs: Attrs) -> TensorType:
    (data,) = in_types
    if data.rank != 4:
        raise ShapeError(f"pooling expects NCHW input, got {data.shape}")
    k = tuple(int(v) for v in attrs.get("pool_size", (2, 2)))
    strides = tuple(int(v) for v in attrs.get("strides", k))
    padding = tuple(int(v) for v in attrs.get("padding", (0, 0)))
    n, c, h, w = data.shape
    oh = (h + 2 * padding[0] - k[0]) // strides[0] + 1
    ow = (w + 2 * padding[1] - k[1]) // strides[1] + 1
    if oh <= 0 or ow <= 0:
        raise ShapeError(f"pooling produces empty output for input {data.shape}")
    return data.with_shape((n, c, oh, ow))


def _pool_patches(xs: Sequence[np.ndarray], attrs: Attrs, pad_value: float) -> np.ndarray:
    (data,) = xs
    k = tuple(int(v) for v in attrs.get("pool_size", (2, 2)))
    strides = tuple(int(v) for v in attrs.get("strides", k))
    padding = tuple(int(v) for v in attrs.get("padding", (0, 0)))
    n, c, h, w = data.shape
    ph, pw = padding
    if ph or pw:
        data = np.pad(
            data, ((0, 0), (0, 0), (ph, ph), (pw, pw)), constant_values=pad_value
        )
    oh = (h + 2 * ph - k[0]) // strides[0] + 1
    ow = (w + 2 * pw - k[1]) // strides[1] + 1
    s0, s1, s2, s3 = data.strides
    view = np.lib.stride_tricks.as_strided(
        data,
        shape=(n, c, oh, ow, k[0], k[1]),
        strides=(s0, s1, s2 * strides[0], s3 * strides[1], s2, s3),
        writeable=False,
    )
    return view


register_op(
    OpSpec(
        name="max_pool2d",
        arity=1,
        pattern=OpPattern.OUT_FUSABLE,
        kind=OpKind.REDUCTION,
        infer_type=_pool_infer,
        compute=lambda xs, attrs: _pool_patches(xs, attrs, -np.inf).max(axis=(4, 5)),
        flops=lambda i, o, a: float(
            o.num_elements
            * int(a.get("pool_size", (2, 2))[0])
            * int(a.get("pool_size", (2, 2))[1])
        ),
    )
)

register_op(
    OpSpec(
        name="avg_pool2d",
        arity=1,
        pattern=OpPattern.OUT_FUSABLE,
        kind=OpKind.REDUCTION,
        infer_type=_pool_infer,
        compute=lambda xs, attrs: _pool_patches(xs, attrs, 0.0).mean(axis=(4, 5)),
        flops=lambda i, o, a: float(
            o.num_elements
            * int(a.get("pool_size", (2, 2))[0])
            * int(a.get("pool_size", (2, 2))[1])
        ),
    )
)


def _gap_infer(in_types: Sequence[TensorType], attrs: Attrs) -> TensorType:
    (data,) = in_types
    if data.rank != 4:
        raise ShapeError(f"global_avg_pool2d expects NCHW, got {data.shape}")
    n, c, _, _ = data.shape
    return data.with_shape((n, c, 1, 1))


register_op(
    OpSpec(
        name="global_avg_pool2d",
        arity=1,
        pattern=OpPattern.OUT_FUSABLE,
        kind=OpKind.REDUCTION,
        infer_type=_gap_infer,
        compute=lambda xs, attrs: xs[0].mean(axis=(2, 3), keepdims=True),
        flops=lambda i, o, a: float(i[0].num_elements),
        parallelism=lambda i, o, a: float(i[0].num_elements),
    )
)


# ---------------------------------------------------------------------------
# normalization (inference form)
# ---------------------------------------------------------------------------


def _batch_norm_infer(in_types: Sequence[TensorType], attrs: Attrs) -> TensorType:
    data, gamma, beta, mean, var = in_types
    c = data.shape[1]
    for t, nm in ((gamma, "gamma"), (beta, "beta"), (mean, "mean"), (var, "var")):
        if t.shape != (c,):
            raise ShapeError(f"batch_norm {nm} must have shape ({c},), got {t.shape}")
    return data


def _batch_norm_compute(xs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    data, gamma, beta, mean, var = xs
    eps = float(attrs.get("epsilon", 1e-5))
    view = (1, -1) + (1,) * (data.ndim - 2)
    scale = (gamma / np.sqrt(var + eps)).reshape(view)
    shift = (beta - mean * gamma / np.sqrt(var + eps)).reshape(view)
    return data * scale + shift


register_op(
    OpSpec(
        name="batch_norm",
        arity=5,
        pattern=OpPattern.BROADCAST,
        kind=OpKind.ELEMWISE,
        infer_type=_batch_norm_infer,
        compute=_batch_norm_compute,
        flops=lambda i, o, a: 2.0 * o.num_elements,
    )
)


def _layer_norm_infer(in_types: Sequence[TensorType], attrs: Attrs) -> TensorType:
    data, gamma, beta = in_types
    d = data.shape[-1]
    if gamma.shape != (d,) or beta.shape != (d,):
        raise ShapeError(
            f"layer_norm gamma/beta must have shape ({d},), got "
            f"{gamma.shape}/{beta.shape}"
        )
    return data


def _layer_norm_compute(xs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    data, gamma, beta = xs
    eps = float(attrs.get("epsilon", 1e-5))
    mean = data.mean(axis=-1, keepdims=True)
    var = data.var(axis=-1, keepdims=True)
    return (data - mean) / np.sqrt(var + eps) * gamma + beta


register_op(
    OpSpec(
        name="layer_norm",
        arity=3,
        pattern=OpPattern.REDUCE,
        kind=OpKind.REDUCTION,
        infer_type=_layer_norm_infer,
        compute=_layer_norm_compute,
        flops=lambda i, o, a: 8.0 * o.num_elements,
    )
)


# ---------------------------------------------------------------------------
# depthwise conv2d (MobileNet-style separable convolutions)
# ---------------------------------------------------------------------------


def _depthwise_infer(in_types: Sequence[TensorType], attrs: Attrs) -> TensorType:
    data, weight = in_types
    if data.rank != 4 or weight.rank != 4:
        raise ShapeError(
            f"depthwise_conv2d expects NCHW data and C1HW weight, got "
            f"{data.shape}, {weight.shape}"
        )
    c, one, kh, kw = weight.shape
    if c != data.shape[1] or one != 1:
        raise ShapeError(
            f"depthwise weight must be [{data.shape[1]}, 1, kh, kw], got "
            f"{weight.shape}"
        )
    strides, padding = _conv_attrs(attrs)
    n, _, h, w = data.shape
    oh = (h + 2 * padding[0] - kh) // strides[0] + 1
    ow = (w + 2 * padding[1] - kw) // strides[1] + 1
    if oh <= 0 or ow <= 0:
        raise ShapeError("depthwise_conv2d produces empty output")
    return data.with_shape((n, c, oh, ow))


def _depthwise_compute(xs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    data, weight = xs
    strides, padding = _conv_attrs(attrs)
    c, _, kh, kw = weight.shape
    n, _, h, w = data.shape
    ph, pw = padding
    sh, sw = strides
    if ph or pw:
        data = np.pad(data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    s0, s1, s2, s3 = data.strides
    view = np.lib.stride_tricks.as_strided(
        data,
        shape=(n, c, kh, kw, oh, ow),
        strides=(s0, s1, s2, s3, s2 * sh, s3 * sw),
        writeable=False,
    )
    patches = view.reshape(n, c, kh * kw, oh, ow)
    out = np.einsum(
        "nckij,ck->ncij", patches, weight.reshape(c, kh * kw), optimize=True
    )
    return np.ascontiguousarray(out)


register_op(
    OpSpec(
        name="depthwise_conv2d",
        arity=2,
        pattern=OpPattern.OUT_FUSABLE,
        kind=OpKind.CONV,
        infer_type=_depthwise_infer,
        compute=_depthwise_compute,
        flops=lambda i, o, a: 2.0
        * o.num_elements
        * i[1].shape[2]
        * i[1].shape[3],
        parallelism=lambda i, o, a: float(
            o.num_elements * i[1].shape[2] * i[1].shape[3]
        ),
    )
)
