"""Reduction operators: softmax, sum/mean/max, argmax, log_softmax."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.ir.dtype import INT64, TensorType
from repro.ir.ops.registry import (
    Attrs,
    OpKind,
    OpPattern,
    OpSpec,
    register_op,
)


def _axis_of(attrs: Attrs, rank: int) -> int:
    axis = int(attrs.get("axis", -1))
    if axis < 0:
        axis += rank
    if not 0 <= axis < rank:
        raise ShapeError(f"axis {attrs.get('axis')} out of range for rank {rank}")
    return axis


def _same_type(in_types: Sequence[TensorType], attrs: Attrs) -> TensorType:
    _axis_of(attrs, in_types[0].rank)  # validate only
    return in_types[0]


def _softmax(xs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    x = xs[0]
    axis = int(attrs.get("axis", -1))
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


register_op(
    OpSpec(
        name="softmax",
        arity=1,
        pattern=OpPattern.REDUCE,
        kind=OpKind.REDUCTION,
        infer_type=_same_type,
        compute=_softmax,
        flops=lambda i, o, a: 12.0 * o.num_elements,
    )
)


def _log_softmax(xs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    x = xs[0]
    axis = int(attrs.get("axis", -1))
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


register_op(
    OpSpec(
        name="log_softmax",
        arity=1,
        pattern=OpPattern.REDUCE,
        kind=OpKind.REDUCTION,
        infer_type=_same_type,
        compute=_log_softmax,
        flops=lambda i, o, a: 14.0 * o.num_elements,
    )
)


def _reduce_infer(in_types: Sequence[TensorType], attrs: Attrs) -> TensorType:
    (data,) = in_types
    axis = _axis_of(attrs, data.rank)
    keepdims = bool(attrs.get("keepdims", False))
    shape = list(data.shape)
    if keepdims:
        shape[axis] = 1
    else:
        del shape[axis]
    if not shape:
        shape = [1]
    return data.with_shape(shape)


def _input_parallelism(in_types, out_type, attrs) -> float:
    # Reductions are tree-parallel over their *input*: a sum over N
    # elements exposes ~N parallel work items, even when the output is a
    # single scalar.
    return float(in_types[0].num_elements)


def _make_reduce(name: str, np_fn) -> None:
    def compute(xs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
        axis = int(attrs.get("axis", -1))
        keepdims = bool(attrs.get("keepdims", False))
        out = np_fn(xs[0], axis=axis, keepdims=keepdims)
        return np.atleast_1d(out)

    register_op(
        OpSpec(
            name=name,
            arity=1,
            pattern=OpPattern.REDUCE,
            kind=OpKind.REDUCTION,
            infer_type=_reduce_infer,
            compute=compute,
            flops=lambda i, o, a: float(i[0].num_elements),
            parallelism=_input_parallelism,
        )
    )


_make_reduce("reduce_sum", np.sum)
_make_reduce("reduce_mean", np.mean)
_make_reduce("reduce_max", np.max)
_make_reduce("reduce_min", np.min)


def _argmax_infer(in_types: Sequence[TensorType], attrs: Attrs) -> TensorType:
    (data,) = in_types
    axis = _axis_of(attrs, data.rank)
    shape = list(data.shape)
    del shape[axis]
    if not shape:
        shape = [1]
    return TensorType(shape, INT64)


register_op(
    OpSpec(
        name="argmax",
        arity=1,
        pattern=OpPattern.REDUCE,
        kind=OpKind.REDUCTION,
        infer_type=_argmax_infer,
        compute=lambda xs, attrs: np.atleast_1d(
            np.argmax(xs[0], axis=int(attrs.get("axis", -1)))
        ).astype(np.int64),
        flops=lambda i, o, a: float(i[0].num_elements),
        parallelism=lambda i, o, a: float(i[0].num_elements),
    )
)
