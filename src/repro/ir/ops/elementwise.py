"""Elementwise and broadcast operators.

These are the cheap, memory-bound operators that the fusion pass folds into
their producers (pattern ``ELEMWISE`` / ``BROADCAST``).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import ShapeError, TypeCheckError
from repro.ir.dtype import TensorType
from repro.ir.ops.registry import (
    Attrs,
    OpKind,
    OpPattern,
    OpSpec,
    register_op,
)

__all__ = ["broadcast_types"]


def broadcast_types(in_types: Sequence[TensorType], attrs: Attrs) -> TensorType:
    """Shape inference for NumPy-style broadcasting binary ops."""
    a, b = in_types
    if a.dtype != b.dtype:
        raise TypeCheckError(
            f"dtype mismatch in broadcast op: {a.dtype} vs {b.dtype}"
        )
    try:
        shape = np.broadcast_shapes(a.shape, b.shape)
    except ValueError as exc:
        raise ShapeError(
            f"shapes {a.shape} and {b.shape} are not broadcastable"
        ) from exc
    return TensorType(shape, a.dtype)


def _same_type(in_types: Sequence[TensorType], attrs: Attrs) -> TensorType:
    """Shape inference for unary ops: output type equals input type."""
    return in_types[0]


def _register_binary(name: str, fn: Callable[[np.ndarray, np.ndarray], np.ndarray]) -> None:
    register_op(
        OpSpec(
            name=name,
            arity=2,
            pattern=OpPattern.BROADCAST,
            kind=OpKind.ELEMWISE,
            infer_type=broadcast_types,
            compute=lambda xs, attrs, _fn=fn: _fn(xs[0], xs[1]),
        )
    )


def _register_unary(
    name: str, fn: Callable[[np.ndarray], np.ndarray], flops_per_elem: float = 1.0
) -> None:
    register_op(
        OpSpec(
            name=name,
            arity=1,
            pattern=OpPattern.ELEMWISE,
            kind=OpKind.ELEMWISE,
            infer_type=_same_type,
            compute=lambda xs, attrs, _fn=fn: _fn(xs[0]),
            flops=lambda i, o, a, _c=flops_per_elem: _c * o.num_elements,
        )
    )


_register_binary("add", np.add)
_register_binary("subtract", np.subtract)
_register_binary("multiply", np.multiply)
_register_binary("divide", np.divide)
_register_binary("maximum", np.maximum)
_register_binary("minimum", np.minimum)

_register_unary("relu", lambda x: np.maximum(x, 0))
_register_unary("negative", np.negative)
_register_unary("abs", np.abs)
_register_unary("sqrt", np.sqrt, flops_per_elem=4.0)
_register_unary("exp", np.exp, flops_per_elem=8.0)
_register_unary("log", np.log, flops_per_elem=8.0)
_register_unary(
    "sigmoid", lambda x: 1.0 / (1.0 + np.exp(-x)), flops_per_elem=10.0
)
_register_unary("tanh", np.tanh, flops_per_elem=10.0)
_register_unary(
    "gelu",
    lambda x: 0.5 * x * (1.0 + np.tanh(0.7978845608028654 * (x + 0.044715 * x**3))),
    flops_per_elem=14.0,
)
_register_unary("identity", lambda x: x.copy(), flops_per_elem=0.0)


def _leaky_relu(xs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    alpha = float(attrs.get("alpha", 0.01))
    x = xs[0]
    return np.where(x >= 0, x, alpha * x)


register_op(
    OpSpec(
        name="leaky_relu",
        arity=1,
        pattern=OpPattern.ELEMWISE,
        kind=OpKind.ELEMWISE,
        infer_type=_same_type,
        compute=_leaky_relu,
        flops=lambda i, o, a: 2.0 * o.num_elements,
    )
)


def _clip(xs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    return np.clip(xs[0], float(attrs["min"]), float(attrs["max"]))


register_op(
    OpSpec(
        name="clip",
        arity=1,
        pattern=OpPattern.ELEMWISE,
        kind=OpKind.ELEMWISE,
        infer_type=_same_type,
        compute=_clip,
        flops=lambda i, o, a: 2.0 * o.num_elements,
    )
)


def _bias_add_infer(in_types: Sequence[TensorType], attrs: Attrs) -> TensorType:
    data, bias = in_types
    if bias.rank != 1:
        raise ShapeError(f"bias must be rank 1, got {bias.shape}")
    axis = int(attrs.get("axis", -1))
    dim = data.shape[axis]
    if bias.shape[0] != dim:
        raise ShapeError(
            f"bias length {bias.shape[0]} does not match data axis {axis} "
            f"of shape {data.shape}"
        )
    return data


def _bias_add(xs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    data, bias = xs
    axis = int(attrs.get("axis", -1))
    if axis < 0:
        axis += data.ndim
    view = [1] * data.ndim
    view[axis] = bias.shape[0]
    return data + bias.reshape(view)


register_op(
    OpSpec(
        name="bias_add",
        arity=2,
        pattern=OpPattern.BROADCAST,
        kind=OpKind.ELEMWISE,
        infer_type=_bias_add_infer,
        compute=_bias_add,
    )
)
