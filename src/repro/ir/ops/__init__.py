"""Operator definitions.

Importing this package registers every built-in operator with the global
registry (see :mod:`repro.ir.ops.registry`).
"""

from repro.ir.ops.registry import (
    OpKind,
    OpPattern,
    OpSpec,
    get_op,
    has_op,
    list_ops,
    register_op,
)

# Importing these modules registers their operators as a side effect.
from repro.ir.ops import elementwise as _elementwise  # noqa: F401
from repro.ir.ops import nn as _nn  # noqa: F401
from repro.ir.ops import recurrent as _recurrent  # noqa: F401
from repro.ir.ops import reduction as _reduction  # noqa: F401
from repro.ir.ops import tensor_ops as _tensor_ops  # noqa: F401

__all__ = [
    "OpKind",
    "OpPattern",
    "OpSpec",
    "get_op",
    "has_op",
    "list_ops",
    "register_op",
]
