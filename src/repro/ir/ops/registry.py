"""Operator registry.

Every tensor operator known to the IR is described by an :class:`OpSpec`:
shape inference, a NumPy reference implementation, a FLOP-count function,
an intra-operator parallelism estimate, and metadata used by the compiler
(fusion pattern) and by the device cost models (op kind, sequential steps).

Operators register themselves at import time via :func:`register_op`; the
concrete definitions live in the sibling modules (``nn``, ``elementwise``,
``tensor_ops``, ``reduction``, ``recurrent``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.errors import UnknownOpError
from repro.ir.dtype import TensorType

__all__ = [
    "OpPattern",
    "OpKind",
    "OpSpec",
    "register_op",
    "get_op",
    "has_op",
    "list_ops",
]

Attrs = Mapping[str, object]
InferFn = Callable[[Sequence[TensorType], Attrs], TensorType]
ComputeFn = Callable[[Sequence[np.ndarray], Attrs], np.ndarray]
FlopsFn = Callable[[Sequence[TensorType], TensorType, Attrs], float]
ParallelismFn = Callable[[Sequence[TensorType], TensorType, Attrs], float]
StepsFn = Callable[[Sequence[TensorType], Attrs], int]


class OpPattern(enum.Enum):
    """Fusion pattern, mirroring the classic TVM operator taxonomy.

    The fusion pass uses the pattern to decide which neighbouring
    operators may be merged into one kernel.
    """

    ELEMWISE = "elemwise"  # one-to-one over elements (relu, add with equal shapes)
    BROADCAST = "broadcast"  # elementwise with broadcasting (bias_add)
    INJECTIVE = "injective"  # injective index remap (reshape, transpose, concat)
    REDUCE = "reduce"  # reductions (sum, softmax)
    OUT_FUSABLE = "out_fusable"  # complex op whose *output* can absorb elemwise (dense, conv)
    OPAQUE = "opaque"  # never fused (lstm, input, const)


class OpKind(enum.Enum):
    """Computational category used by device cost models.

    Devices apply kind-specific efficiency factors: e.g. convolutions reach
    a much smaller fraction of CPU peak FLOPs than large GEMMs do, and
    recurrent steps on GPU pay per-step kernel-launch overhead.
    """

    GEMM = "gemm"
    CONV = "conv"
    ELEMWISE = "elemwise"
    REDUCTION = "reduction"
    MEMORY = "memory"  # data movement only (reshape, transpose, concat)
    RECURRENT = "recurrent"
    EMBEDDING = "embedding"


def _default_flops(
    in_types: Sequence[TensorType], out_type: TensorType, attrs: Attrs
) -> float:
    """Default FLOP count: one op per output element."""
    return float(out_type.num_elements)


def _default_parallelism(
    in_types: Sequence[TensorType], out_type: TensorType, attrs: Attrs
) -> float:
    """Default parallelism: every output element is independent."""
    return float(out_type.num_elements)


def _default_steps(in_types: Sequence[TensorType], attrs: Attrs) -> int:
    """Default: the op is a single device kernel (no sequential chain)."""
    return 1


@dataclass(frozen=True)
class OpSpec:
    """Complete description of one tensor operator.

    Attributes:
        name: unique operator name (e.g. ``"conv2d"``).
        arity: number of inputs, or ``None`` for variadic ops (``concat``).
        pattern: fusion pattern for the compiler.
        kind: computational category for device cost models.
        infer_type: shape/dtype inference from input types + attrs.
        compute: NumPy reference implementation.
        flops: floating-point operation count.
        parallelism: degree of independent intra-op data parallelism;
            drives the GPU utilization model (batch-1 RNN steps expose very
            little, convolutions expose a lot — §III-B of the paper).
        sequential_steps: number of serially-dependent kernel launches the
            op lowers to (``seq_len`` for recurrent layers, 1 otherwise).
        kernels_per_step: distinct device kernels launched per step.
    """

    name: str
    arity: int | None
    pattern: OpPattern
    kind: OpKind
    infer_type: InferFn
    compute: ComputeFn
    flops: FlopsFn = _default_flops
    parallelism: ParallelismFn = _default_parallelism
    sequential_steps: StepsFn = _default_steps
    kernels_per_step: int = 1


_REGISTRY: dict[str, OpSpec] = {}


def register_op(spec: OpSpec) -> OpSpec:
    """Register an operator spec; raises on duplicate names."""
    if spec.name in _REGISTRY:
        raise ValueError(f"operator {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_op(name: str) -> OpSpec:
    """Fetch a registered operator spec by name."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise UnknownOpError(f"unknown operator {name!r}") from exc


def has_op(name: str) -> bool:
    """Whether an operator with this name is registered."""
    return name in _REGISTRY


def list_ops() -> list[str]:
    """Sorted names of all registered operators."""
    return sorted(_REGISTRY)
