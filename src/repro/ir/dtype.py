"""Scalar dtypes and tensor types for the graph IR.

The IR is deliberately small: a tensor type is a concrete shape plus a
scalar dtype.  Shapes are fully static (the paper freezes batch size before
compilation because TVM did not support dynamic batch at the time, §VI-D),
which keeps shape inference, FLOP counting, and transfer-size estimation
exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import ShapeError

__all__ = ["DType", "TensorType", "normalize_shape"]


@dataclass(frozen=True)
class DType:
    """A scalar element type.

    Attributes:
        name: canonical name, e.g. ``"float32"``.
        bits: storage width in bits.
    """

    name: str
    bits: int

    @property
    def bytes(self) -> int:
        """Storage size of one element in bytes."""
        return self.bits // 8

    def to_numpy(self) -> np.dtype:
        """The equivalent NumPy dtype."""
        return np.dtype(self.name)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


FLOAT32 = DType("float32", 32)
FLOAT64 = DType("float64", 64)
INT32 = DType("int32", 32)
INT64 = DType("int64", 64)
BOOL = DType("bool", 8)

_DTYPES = {d.name: d for d in (FLOAT32, FLOAT64, INT32, INT64, BOOL)}


def dtype_from_name(name: str) -> DType:
    """Look up a :class:`DType` by canonical name."""
    try:
        return _DTYPES[name]
    except KeyError as exc:
        raise ShapeError(f"unknown dtype {name!r}") from exc


def normalize_shape(shape: Iterable[int]) -> tuple[int, ...]:
    """Validate and canonicalize a shape to a tuple of positive ints."""
    out = tuple(int(d) for d in shape)
    for d in out:
        if d <= 0:
            raise ShapeError(f"shape dimensions must be positive, got {out}")
    return out


@dataclass(frozen=True)
class TensorType:
    """A concrete tensor type: static shape + scalar dtype."""

    shape: tuple[int, ...]
    dtype: DType = FLOAT32

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", normalize_shape(self.shape))

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        """Total number of scalar elements."""
        return math.prod(self.shape) if self.shape else 1

    @property
    def size_bytes(self) -> int:
        """Storage footprint in bytes (dense layout)."""
        return self.num_elements * self.dtype.bytes

    def with_shape(self, shape: Iterable[int]) -> "TensorType":
        """A copy of this type with a different shape."""
        return TensorType(tuple(shape), self.dtype)

    def __str__(self) -> str:
        dims = ", ".join(str(d) for d in self.shape)
        return f"Tensor[({dims}), {self.dtype}]"
