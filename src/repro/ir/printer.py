"""Relay-style textual printer for graphs.

Produces a human-readable, BNF-flavoured listing of a graph (cf. paper §V,
Listing 1): one ``let``-binding per operator in topological order.
"""

from __future__ import annotations

from repro.ir.graph import Graph

__all__ = ["format_graph"]


def _fmt_attrs(attrs) -> str:
    if not attrs:
        return ""
    items = ", ".join(f"{k}={v!r}" for k, v in sorted(attrs.items()))
    return f" {{{items}}}"


def format_graph(graph: Graph) -> str:
    """Render the graph as Relay-like pseudocode."""
    lines = [f"fn {graph.name}("]
    for node in graph.input_nodes():
        lines.append(f"  %{node.id}: {node.ty},")
    lines.append(") {")
    for node in graph.const_nodes():
        lines.append(f"  param %{node.id}: {node.ty};  // {node.init.value}")
    for nid in graph.topo_order():
        node = graph.node(nid)
        if not node.is_op:
            continue
        args = ", ".join(f"%{i}" for i in node.inputs)
        lines.append(
            f"  let %{node.id}: {node.ty} = {node.op}({args}){_fmt_attrs(node.attrs)};"
        )
    outs = ", ".join(f"%{o}" for o in graph.outputs)
    lines.append(f"  ({outs})")
    lines.append("}")
    return "\n".join(lines)
