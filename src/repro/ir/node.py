"""Graph nodes.

A node is either a placeholder (``INPUT``), a parameter/constant (``CONST``),
or an operator application (``OP``).  Every node produces exactly one tensor;
multi-output constructs (e.g. bidirectional RNNs) are expressed with several
nodes.  Constants carry an *initializer spec* instead of materialized data so
that timing-only simulation never has to allocate large weight tensors; the
runtime materializes parameters lazily and deterministically from a seed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.errors import IRError
from repro.ir.dtype import TensorType

__all__ = ["NodeKind", "Initializer", "Node"]


class NodeKind(enum.Enum):
    """What a graph node is: placeholder, parameter, or operator."""

    INPUT = "input"
    CONST = "const"
    OP = "op"


class Initializer(enum.Enum):
    """How a CONST node's data is materialized."""

    NORMAL = "normal"  # N(0, scale) from the graph seed
    ZEROS = "zeros"
    ONES = "ones"
    UNIFORM_INT = "uniform_int"  # integer in [0, high) — for index tensors
    LITERAL = "literal"  # small literal payload carried on the node


@dataclass(frozen=True)
class Node:
    """One vertex of the computation DAG.

    Attributes:
        id: unique identifier within its graph.
        kind: INPUT / CONST / OP.
        op: operator name for OP nodes, ``None`` otherwise.
        inputs: ids of argument nodes, in positional order.
        attrs: operator attributes (static configuration).
        ty: the node's output tensor type.
        init: initializer spec for CONST nodes.
        literal: literal payload for ``Initializer.LITERAL`` constants.
    """

    id: str
    kind: NodeKind
    ty: TensorType
    op: str | None = None
    inputs: tuple[str, ...] = ()
    attrs: Mapping[str, object] = field(default_factory=dict)
    init: Initializer = Initializer.NORMAL
    literal: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.kind is NodeKind.OP and not self.op:
            raise IRError(f"OP node {self.id!r} must name an operator")
        if self.kind is not NodeKind.OP and self.op:
            raise IRError(f"{self.kind.value} node {self.id!r} must not name an operator")
        if self.kind is not NodeKind.OP and self.inputs:
            raise IRError(f"{self.kind.value} node {self.id!r} cannot have inputs")
        if self.init is Initializer.LITERAL and self.literal is None:
            raise IRError(f"LITERAL const {self.id!r} is missing its payload")

    @property
    def is_op(self) -> bool:
        return self.kind is NodeKind.OP

    @property
    def is_input(self) -> bool:
        return self.kind is NodeKind.INPUT

    @property
    def is_const(self) -> bool:
        return self.kind is NodeKind.CONST

    def with_inputs(self, inputs: tuple[str, ...]) -> "Node":
        """Copy of this node with rewired inputs."""
        return Node(
            id=self.id,
            kind=self.kind,
            ty=self.ty,
            op=self.op,
            inputs=inputs,
            attrs=self.attrs,
            init=self.init,
            literal=self.literal,
        )

    def with_id(self, new_id: str) -> "Node":
        """Copy of this node under a different id."""
        return Node(
            id=new_id,
            kind=self.kind,
            ty=self.ty,
            op=self.op,
            inputs=self.inputs,
            attrs=self.attrs,
            init=self.init,
            literal=self.literal,
        )

    def materialize(self, rng: np.random.Generator) -> np.ndarray:
        """Create this CONST node's data from the given generator."""
        if not self.is_const:
            raise IRError(f"cannot materialize non-const node {self.id!r}")
        np_dtype = self.ty.dtype.to_numpy()
        if self.init is Initializer.LITERAL:
            assert self.literal is not None
            return self.literal.astype(np_dtype, copy=False)
        if self.init is Initializer.ZEROS:
            return np.zeros(self.ty.shape, dtype=np_dtype)
        if self.init is Initializer.ONES:
            return np.ones(self.ty.shape, dtype=np_dtype)
        if self.init is Initializer.UNIFORM_INT:
            high = int(self.attrs.get("init_high", 2))
            return rng.integers(0, high, size=self.ty.shape).astype(np_dtype)
        scale = float(self.attrs.get("init_scale", 0.05))
        return (rng.standard_normal(self.ty.shape) * scale).astype(np_dtype)
