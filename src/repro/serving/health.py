"""Health tracking for serving lanes: slot states, device loss, shedding.

Three small, thread-safe pieces the frontend composes:

* :class:`SlotHealth` — one worker slot's health record: consecutive
  request failures plus a state machine over

  ::

      healthy ──DeviceLostError──▶ quarantined ──rebuild ok──▶ degraded
         ▲                                                        │
         └───────────── restore_device + rebuild ─────────────────┘

  A *quarantined* slot is out of service while its
  :class:`~repro.runtime.session.EngineSession` is rebuilt onto a
  surviving device's standing degradation plan; a *degraded* slot serves
  correctly (bit-identical outputs — the plans differ only in placement)
  but without co-execution.  ``restore_device`` rebuilds degraded slots
  back onto the primary plan in the background and swaps them in at a
  batch boundary.

* :class:`LaneHealth` — the lane-wide set of lost devices, shared by
  every slot so the first slot to observe a loss spares the others a
  doomed dispatch.

* :class:`AdaptiveShedder` — an EWMA of observed queue wait and
  admission-to-completion sojourn.  At submit time the frontend asks
  whether a request's deadline is meetable given what the lane has
  *actually* been delivering; unmeetable work is shed immediately with
  :class:`~repro.errors.LoadShedError` instead of expiring in the queue.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import ExecutionError

__all__ = [
    "SLOT_HEALTHY",
    "SLOT_QUARANTINED",
    "SLOT_DEGRADED",
    "SLOT_STATE_CODES",
    "HealthConfig",
    "SlotHealth",
    "LaneHealth",
    "AdaptiveShedder",
    "TenantAwareShedder",
]

SLOT_HEALTHY = "healthy"
SLOT_QUARANTINED = "quarantined"
SLOT_DEGRADED = "degraded"

#: Numeric encoding of slot states for the ``duet_slot_state`` gauge.
SLOT_STATE_CODES = {
    SLOT_HEALTHY: 0,
    SLOT_QUARANTINED: 1,
    SLOT_DEGRADED: 2,
}


@dataclass(frozen=True)
class HealthConfig:
    """Knobs of the lane health machinery.

    Attributes:
        enabled: quarantine/rebuild slots on device loss.  Off, a
            :class:`~repro.errors.DeviceLostError` simply fails the
            request (the pre-resilience behaviour).
        failure_threshold: consecutive per-slot request failures at which
            the slot is *reported* unhealthy (surfaced through the
            ``duet_slot_consecutive_failures`` gauge; the per-model
            circuit breaker is the actor that rejects).
    """

    enabled: bool = True
    failure_threshold: int = 5

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ExecutionError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )


class SlotHealth:
    """Health record of one worker slot (owned by the slot's worker
    thread; state reads from other threads are advisory)."""

    def __init__(self) -> None:
        self.state = SLOT_HEALTHY
        self.consecutive_failures = 0
        self.degraded_device: str | None = None
        self.quarantines = 0
        self.rebuilds = 0

    def record_success(self) -> None:
        self.consecutive_failures = 0

    def record_failure(self) -> int:
        """Count one terminal request failure; returns the streak length."""
        self.consecutive_failures += 1
        return self.consecutive_failures

    def quarantine(self) -> None:
        self.state = SLOT_QUARANTINED
        self.quarantines += 1

    def mark_degraded(self, device: str) -> None:
        """The slot now serves from ``device``'s degradation plan."""
        self.state = SLOT_DEGRADED
        self.degraded_device = device
        self.rebuilds += 1

    def mark_healthy(self) -> None:
        """The slot is back on the primary plan."""
        self.state = SLOT_HEALTHY
        self.degraded_device = None
        self.consecutive_failures = 0
        self.rebuilds += 1


class LaneHealth:
    """Lane-wide lost-device set, shared across a lane's worker slots."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._lost: set[str] = set()

    def mark_lost(self, device: str) -> bool:
        """Record a device loss; returns True when newly observed."""
        with self._lock:
            newly = device not in self._lost
            self._lost.add(device)
            return newly

    def revive(self, device: str) -> bool:
        """Forget a device loss; returns True when it was recorded."""
        with self._lock:
            was = device in self._lost
            self._lost.discard(device)
            return was

    def is_lost(self, device: str) -> bool:
        with self._lock:
            return device in self._lost

    @property
    def lost_devices(self) -> frozenset[str]:
        with self._lock:
            return frozenset(self._lost)


class AdaptiveShedder:
    """EWMA-based deadline feasibility check for admission-time shedding.

    Observes each completed request's queue wait and total sojourn
    (admission → completion), keeps exponentially weighted means, and
    predicts the next request's sojourn.  Before ``warmup`` observations
    the shedder abstains — no prediction, no shedding — so a cold lane
    never rejects its first requests on zero evidence.

    Args:
        alpha: EWMA smoothing factor in (0, 1]; higher reacts faster.
        warmup: observations required before predictions are offered.
    """

    def __init__(self, alpha: float = 0.2, warmup: int = 8):
        if not 0.0 < alpha <= 1.0:
            raise ExecutionError(f"alpha must be in (0, 1], got {alpha}")
        if warmup < 1:
            raise ExecutionError(f"warmup must be >= 1, got {warmup}")
        self.alpha = alpha
        self.warmup = warmup
        self._lock = threading.Lock()
        self._samples = 0
        self._queue_wait_s = 0.0
        self._sojourn_s = 0.0

    def observe(self, queue_wait_s: float, sojourn_s: float) -> None:
        """Record one completed request's timings."""
        queue_wait_s = max(0.0, queue_wait_s)
        sojourn_s = max(0.0, sojourn_s)
        with self._lock:
            if self._samples == 0:
                self._queue_wait_s = queue_wait_s
                self._sojourn_s = sojourn_s
            else:
                a = self.alpha
                self._queue_wait_s += a * (queue_wait_s - self._queue_wait_s)
                self._sojourn_s += a * (sojourn_s - self._sojourn_s)
            self._samples += 1

    def predicted_sojourn_s(self) -> float | None:
        """Predicted admission-to-completion time; None before warmup."""
        with self._lock:
            if self._samples < self.warmup:
                return None
            return self._sojourn_s

    def predicted_queue_wait_s(self) -> float | None:
        """Predicted admission-to-dequeue wait; None before warmup."""
        with self._lock:
            if self._samples < self.warmup:
                return None
            return self._queue_wait_s

    def unmeetable(self, deadline_s: float, margin: float = 1.0) -> float | None:
        """Whether a ``deadline_s`` budget is predicted unmeetable.

        Returns the offending prediction (sojourn * margin, in seconds)
        when the deadline should be shed, else ``None`` — also ``None``
        while warming up.
        """
        predicted = self.predicted_sojourn_s()
        if predicted is None:
            return None
        predicted *= margin
        return predicted if predicted > deadline_s else None


class TenantAwareShedder:
    """Per-tenant adaptive shedding with an oracle-seeded service prior.

    Extends :class:`AdaptiveShedder` semantics across tenants:

    * each tenant gets its own EWMA of queue wait and sojourn (a
      best-effort tenant's inflated sojourns must not shed a critical
      tenant whose observed latency is fine — and vice versa);
    * one *shared* service-time EWMA (``sojourn - queue wait``) is kept
      across tenants, seeded from the scheduler's
      :class:`~repro.core.scheduler.LatencyOracle`-derived estimate
      (``DuetOptimization.latency``) so predictions have an anchor
      before any traffic arrives.  The oracle estimate is simulated
      device time, not host wall time, so it is a *prior*, not a pin:
      the EWMA converges onto observed service within a few requests;
    * :meth:`unmeetable` takes the requesting tenant and the admission
      queue's current ``backlog_ahead`` for it (items that would be
      served first), adding a contention term ``backlog * service``.
      Backlog-ahead is monotone in priority tier, so at equal load a
      critical request is never predicted a longer sojourn — and hence
      never shed — in favor of a best-effort one.

    For a warm tenant with an empty queue the prediction degenerates to
    exactly the tenant's sojourn EWMA — the single-tenant behaviour of
    :class:`AdaptiveShedder`.
    """

    DEFAULT_TENANT = "default"

    def __init__(
        self,
        alpha: float = 0.2,
        warmup: int = 8,
        service_prior_s: float = 0.0,
    ):
        if not 0.0 < alpha <= 1.0:
            raise ExecutionError(f"alpha must be in (0, 1], got {alpha}")
        if warmup < 1:
            raise ExecutionError(f"warmup must be >= 1, got {warmup}")
        if service_prior_s < 0:
            raise ExecutionError(
                f"service_prior_s must be >= 0, got {service_prior_s}"
            )
        self.alpha = alpha
        self.warmup = warmup
        self.service_prior_s = service_prior_s
        self._lock = threading.Lock()
        self._samples = 0
        self._service_s = service_prior_s
        self._tenants: dict[str, AdaptiveShedder] = {}

    def _tenant(self, tenant: str | None) -> AdaptiveShedder:
        name = tenant or self.DEFAULT_TENANT
        shedder = self._tenants.get(name)
        if shedder is None:
            shedder = self._tenants[name] = AdaptiveShedder(
                alpha=self.alpha, warmup=self.warmup
            )
        return shedder

    def observe(
        self,
        queue_wait_s: float,
        sojourn_s: float,
        tenant: str | None = None,
    ) -> None:
        """Record one completed request's timings for ``tenant``."""
        self._tenant(tenant).observe(queue_wait_s, sojourn_s)
        service = max(0.0, sojourn_s - queue_wait_s)
        with self._lock:
            if self._samples == 0 and self.service_prior_s == 0.0:
                self._service_s = service
            else:
                # A nonzero oracle prior is blended away rather than
                # replaced: it anchored cold-start predictions and the
                # EWMA walks from it to the observed service time.
                self._service_s += self.alpha * (service - self._service_s)
            self._samples += 1

    def service_estimate_s(self) -> float:
        """Current service-time estimate (oracle prior until traffic)."""
        with self._lock:
            return self._service_s

    def predicted_sojourn_s(self, tenant: str | None = None) -> float | None:
        """``tenant``'s EWMA sojourn; None before its warmup."""
        return self._tenant(tenant).predicted_sojourn_s()

    def predicted_queue_wait_s(
        self, tenant: str | None = None
    ) -> float | None:
        """``tenant``'s EWMA queue wait; None before its warmup."""
        return self._tenant(tenant).predicted_queue_wait_s()

    def unmeetable(
        self,
        deadline_s: float,
        margin: float = 1.0,
        tenant: str | None = None,
        backlog_ahead: int = 0,
    ) -> float | None:
        """Whether ``tenant``'s deadline is predicted unmeetable.

        Prediction = (tenant sojourn EWMA, or the shared service
        estimate for a tenant still warming up) + ``backlog_ahead`` *
        service estimate, scaled by ``margin``.  Returns the offending
        prediction, or None to admit.  A fully cold lane (fewer than
        ``warmup`` observations across *all* tenants) abstains entirely,
        matching :class:`AdaptiveShedder`.
        """
        base = self._tenant(tenant).predicted_sojourn_s()
        with self._lock:
            if base is None:
                if self._samples < self.warmup:
                    return None
                base = self._service_s
            predicted = (base + backlog_ahead * self._service_s) * margin
        return predicted if predicted > deadline_s else None
