"""Multi-tenant serving: admission control, dynamic batching, metrics.

The front door of the engine (ROADMAP north-star): a
:class:`ServingFrontend` owns per-model session pools behind bounded
admission queues, coalesces compatible requests into dynamic batches —
executing stack-safe plans as one concatenated dispatch, everything else
request by request, both bit-identical to a solo
:class:`~repro.runtime.session.EngineSession` — and reports what the
engine is doing through a :class:`MetricsRegistry` with Prometheus-style
text exposition.
"""

from repro.serving.batcher import (
    STACK_SAFE_AXIS_OPS,
    STACK_SAFE_ELEMENTWISE,
    BatchConfig,
    StackDecision,
    analyze_stack_safety,
    collect_batch,
    request_signature,
    run_stacked,
)
from repro.serving.frontend import (
    ServeFuture,
    ServeResult,
    ServingConfig,
    ServingFrontend,
)
from repro.serving.metrics import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    parse_exposition,
    validate_buckets,
)

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "LATENCY_BUCKETS_S",
    "STACK_SAFE_AXIS_OPS",
    "STACK_SAFE_ELEMENTWISE",
    "BatchConfig",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "ServeFuture",
    "ServeResult",
    "ServingConfig",
    "ServingFrontend",
    "StackDecision",
    "analyze_stack_safety",
    "collect_batch",
    "parse_exposition",
    "request_signature",
    "run_stacked",
    "validate_buckets",
]
