"""Multi-tenant serving: admission control, dynamic batching, metrics.

The front door of the engine (ROADMAP north-star): a
:class:`ServingFrontend` owns per-model session pools behind bounded
admission queues, coalesces compatible requests into dynamic batches —
executing stack-safe plans as one concatenated dispatch, everything else
request by request, both bit-identical to a solo
:class:`~repro.runtime.session.EngineSession` — and reports what the
engine is doing through a :class:`MetricsRegistry` with Prometheus-style
text exposition.

A resilience layer keeps the lanes healthy under faults: health-checked
worker slots that quarantine and rebuild onto surviving devices on
device loss (:mod:`repro.serving.health`), per-model circuit breakers
(:mod:`repro.serving.breaker`), and deadline-aware admission with
adaptive load shedding.
"""

from repro.serving.batcher import (
    STACK_SAFE_AXIS_OPS,
    STACK_SAFE_ELEMENTWISE,
    BatchConfig,
    StackDecision,
    analyze_stack_safety,
    collect_batch,
    request_signature,
    run_stacked,
)
from repro.serving.breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BREAKER_STATE_CODES,
    BreakerConfig,
    CircuitBreaker,
)
from repro.serving.frontend import (
    ServeFuture,
    ServeResult,
    ServingConfig,
    ServingFrontend,
)
from repro.serving.health import (
    SLOT_DEGRADED,
    SLOT_HEALTHY,
    SLOT_QUARANTINED,
    SLOT_STATE_CODES,
    AdaptiveShedder,
    HealthConfig,
    LaneHealth,
    SlotHealth,
    TenantAwareShedder,
)
from repro.serving.tenants import (
    DEFAULT_TENANT,
    PRIORITY_CLASSES,
    PRIORITY_TIERS,
    TenantConfig,
    TenantRegistry,
)
from repro.serving.wfq import WFQAdmissionQueue
from repro.serving.metrics import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    parse_exposition,
    validate_buckets,
)

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "DEFAULT_TENANT",
    "PRIORITY_CLASSES",
    "PRIORITY_TIERS",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BREAKER_STATE_CODES",
    "LATENCY_BUCKETS_S",
    "SLOT_DEGRADED",
    "SLOT_HEALTHY",
    "SLOT_QUARANTINED",
    "SLOT_STATE_CODES",
    "STACK_SAFE_AXIS_OPS",
    "STACK_SAFE_ELEMENTWISE",
    "AdaptiveShedder",
    "BatchConfig",
    "BreakerConfig",
    "CircuitBreaker",
    "Counter",
    "Gauge",
    "HealthConfig",
    "Histogram",
    "HistogramSnapshot",
    "LaneHealth",
    "MetricsRegistry",
    "ServeFuture",
    "ServeResult",
    "ServingConfig",
    "ServingFrontend",
    "SlotHealth",
    "StackDecision",
    "TenantAwareShedder",
    "TenantConfig",
    "TenantRegistry",
    "WFQAdmissionQueue",
    "analyze_stack_safety",
    "collect_batch",
    "parse_exposition",
    "request_signature",
    "run_stacked",
    "validate_buckets",
]
