"""Per-model circuit breakers: fail fast when a lane keeps failing.

A lane whose requests fail persistently — a wedged kernel, a lost device
without a usable degradation plan, poisoned weights — should not keep
burning queue slots and worker time on work that is going to fail anyway.
A :class:`CircuitBreaker` watches terminal request outcomes and moves
through the classic three states:

* **closed** — normal operation; every request is admitted.  Consecutive
  failures are counted (any success resets the count); reaching
  ``failure_threshold`` trips the breaker.
* **open** — every request is rejected immediately with
  :class:`~repro.errors.CircuitOpenError` (a structured, retryable
  signal, not a timeout).  After ``recovery_timeout_s`` the breaker
  moves to half-open.
* **half-open** — up to ``half_open_probes`` in-flight probe requests
  are admitted.  ``success_threshold`` probe successes close the
  breaker; any probe failure reopens it (restarting the recovery
  timeout).

The breaker is deliberately oblivious to *why* requests fail — retries,
failover, and slot rebuilds all happen below it; it only sees the
terminal outcome per request.  Shed or expired requests never count:
they say something about load, not about the lane's health, so the
frontend reports them to the breaker as *discards* (which merely release
a half-open probe slot).

Everything is thread-safe and clock-injectable so tests (and the
deterministic metrics suite) can drive state transitions without
sleeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import ExecutionError

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "BREAKER_STATE_CODES",
    "BreakerConfig",
    "CircuitBreaker",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: Numeric encoding of breaker states for the ``duet_breaker_state``
#: gauge (stable across runs so expositions pin byte-identically).
BREAKER_STATE_CODES = {
    BREAKER_CLOSED: 0,
    BREAKER_HALF_OPEN: 1,
    BREAKER_OPEN: 2,
}


@dataclass(frozen=True)
class BreakerConfig:
    """Knobs of one lane's circuit breaker.

    Attributes:
        failure_threshold: consecutive request failures (in the closed
            state) that trip the breaker open.
        recovery_timeout_s: how long an open breaker rejects before
            admitting half-open probes.
        half_open_probes: probe requests allowed in flight at once while
            half-open; the rest are rejected.
        success_threshold: probe successes required to close again.
    """

    failure_threshold: int = 5
    recovery_timeout_s: float = 1.0
    half_open_probes: int = 1
    success_threshold: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ExecutionError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.recovery_timeout_s < 0:
            raise ExecutionError(
                f"recovery_timeout_s must be >= 0, got {self.recovery_timeout_s}"
            )
        if self.half_open_probes < 1:
            raise ExecutionError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )
        if self.success_threshold < 1:
            raise ExecutionError(
                f"success_threshold must be >= 1, got {self.success_threshold}"
            )


class CircuitBreaker:
    """Thread-safe closed → open → half-open breaker for one lane.

    Args:
        config: thresholds and timeouts; defaults to
            :class:`BreakerConfig`.
        clock: monotonic-seconds source (injectable for tests).
        listener: optional ``listener(old_state, new_state)`` called on
            every transition, outside hot paths but under the breaker
            lock — keep it cheap (the serving lane uses it to update the
            state gauge and transition counters).
    """

    def __init__(
        self,
        config: BreakerConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        listener: Callable[[str, str], None] | None = None,
    ):
        self.config = config or BreakerConfig()
        self.clock = clock
        self.listener = listener
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_inflight = 0
        self._probe_successes = 0

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, advancing open → half-open if the timeout passed."""
        with self._lock:
            self._maybe_half_open(self.clock())
            return self._state

    def retry_after_s(self, now: float | None = None) -> float:
        """Seconds until an open breaker will admit a probe (0 otherwise)."""
        now = self.clock() if now is None else now
        with self._lock:
            if self._state != BREAKER_OPEN:
                return 0.0
            return max(
                0.0, self._opened_at + self.config.recovery_timeout_s - now
            )

    # ------------------------------------------------------------------

    def allow(self, now: float | None = None) -> bool:
        """Whether one request may be admitted right now.

        In the half-open state a ``True`` return *reserves* a probe slot;
        the caller must eventually report the request's outcome via
        :meth:`record_success` / :meth:`record_failure` — or
        :meth:`record_discard` if the request never executed — to release
        it.
        """
        now = self.clock() if now is None else now
        with self._lock:
            self._maybe_half_open(now)
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_OPEN:
                return False
            # Half-open: bounded probe admission.
            if self._probes_inflight < self.config.half_open_probes:
                self._probes_inflight += 1
                return True
            return False

    def record_success(self, now: float | None = None) -> None:
        """Report one admitted request that completed successfully."""
        with self._lock:
            if self._state == BREAKER_CLOSED:
                self._consecutive_failures = 0
            elif self._state == BREAKER_HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.config.success_threshold:
                    self._transition(BREAKER_CLOSED)
            # Open: a straggler admitted before the trip; ignore.

    def record_failure(self, now: float | None = None) -> None:
        """Report one admitted request that terminally failed."""
        now = self.clock() if now is None else now
        with self._lock:
            if self._state == BREAKER_CLOSED:
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.config.failure_threshold:
                    self._opened_at = now
                    self._transition(BREAKER_OPEN)
            elif self._state == BREAKER_HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._opened_at = now
                self._transition(BREAKER_OPEN)
            # Open: straggler; the breaker is already rejecting.

    def record_discard(self) -> None:
        """Report one admitted request that never executed (shed/expired).

        Neutral for health accounting, but releases the half-open probe
        slot the admission reserved.
        """
        with self._lock:
            if self._state == BREAKER_HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)

    # ------------------------------------------------------------------

    def _maybe_half_open(self, now: float) -> None:
        """Open → half-open once the recovery timeout expires (lock held)."""
        if (
            self._state == BREAKER_OPEN
            and now - self._opened_at >= self.config.recovery_timeout_s
        ):
            self._transition(BREAKER_HALF_OPEN)

    def _transition(self, new_state: str) -> None:
        """Move to ``new_state``, resetting state-local counters (lock held)."""
        old = self._state
        if old == new_state:
            return
        self._state = new_state
        if new_state == BREAKER_CLOSED:
            self._consecutive_failures = 0
        if new_state == BREAKER_HALF_OPEN:
            self._probes_inflight = 0
            self._probe_successes = 0
        if self.listener is not None:
            self.listener(old, new_state)
