"""Dynamic batching: window collection and stack-safe batched execution.

Two concerns live here, both deliberately separable from the serving
frontend so they can be tested without threads:

**Window collection** (:func:`collect_batch`): given the first request of
a window, keep pulling compatible requests until the batch is full or the
window's linger deadline — anchored at the *first* request, so no request
ever waits longer than ``max_linger_s`` inside the batcher — expires.  An
incompatible request ends the window and is carried over as the head of
the next one, which is the "fallback to unbatched dispatch when shapes
differ": mixed-signature traffic degrades to smaller (eventually
singleton) batches instead of being reordered or rejected.

**Stacked execution** (:func:`analyze_stack_safety`, :func:`run_stacked`):
a batch of same-signature requests *can* be executed as one graph
execution over inputs concatenated along the batch axis — but only when
that is bit-identical to running each request alone, because the serving
contract is exact equality with a solo :class:`~repro.runtime.session.
EngineSession` run.  Row-independent NumPy ops (elementwise ufuncs,
axis>=1 reductions and softmaxes, axis>=1 concat) keep that promise:
each output element is computed from the same values in the same order
regardless of how many rows sit above it.  BLAS-backed ops do **not** —
``np.matmul`` picks shape-dependent micro-kernels, so row *i* of a
stacked GEMM can differ in the last ulp from the solo result (observed
empirically; the verdict even varies with the operand *values*, so no
calibration scheme can certify it).  :func:`analyze_stack_safety`
therefore whitelists plans conservatively: anything containing
dense/matmul/recurrent kernels, axis-0 slicing, or batch-shaped
constants is marked unstackable and the frontend executes those batches
request by request — still coalesced for queueing purposes, still exact.
"""

from __future__ import annotations

import queue
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.errors import ExecutionError
from repro.runtime.plan import HeteroPlan

__all__ = [
    "BatchConfig",
    "request_signature",
    "collect_batch",
    "StackDecision",
    "analyze_stack_safety",
    "run_stacked",
    "STACK_SAFE_ELEMENTWISE",
    "STACK_SAFE_AXIS_OPS",
]

#: Ops whose outputs are computed element-by-element from broadcast
#: inputs: bit-stable under batch stacking by IEEE semantics (arithmetic,
#: comparisons) or verified positional stability of the NumPy SIMD loops
#: (exp/tanh/sigmoid).  ``log``/``sqrt`` stay off the list only because
#: their NaN branches are untested, not because a counterexample exists.
STACK_SAFE_ELEMENTWISE = frozenset(
    {
        "add", "subtract", "multiply", "divide", "maximum", "minimum",
        "relu", "negative", "abs", "identity", "exp", "tanh", "sigmoid",
        "leaky_relu", "clip",
    }
)

#: Ops that reduce/normalize/join along one axis: row-independent — and
#: therefore stack-safe — exactly when that axis is not the batch axis.
STACK_SAFE_AXIS_OPS = frozenset(
    {
        "reduce_sum", "reduce_mean", "reduce_max", "reduce_min",
        "softmax", "log_softmax", "argmax", "concat", "bias_add",
    }
)


@dataclass(frozen=True)
class BatchConfig:
    """Dynamic batching knobs.

    Attributes:
        max_batch_size: hard cap on requests coalesced into one batch.
        max_linger_s: longest any request may wait inside the batcher for
            company, measured from the moment the *window's first request*
            is pulled off the queue (later joiners wait strictly less).
            0 means "drain whatever is already queued, never wait".
    """

    max_batch_size: int = 8
    max_linger_s: float = 2e-3

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ExecutionError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_linger_s < 0:
            raise ExecutionError(
                f"max_linger_s must be >= 0, got {self.max_linger_s}"
            )


def request_signature(inputs: Mapping[str, np.ndarray]) -> tuple:
    """Shape/dtype signature deciding which requests may share a batch."""
    return tuple(
        sorted(
            (name, tuple(np.shape(v)), np.asarray(v).dtype.str)
            for name, v in inputs.items()
        )
    )


def collect_batch(
    head,
    get: Callable[[float], object],
    clock: Callable[[], float],
    config: BatchConfig,
    compatible: Callable[[object, object], bool],
    drop: Callable[[object], bool] | None = None,
    on_drop: Callable[[object], None] | None = None,
):
    """Collect one batching window; returns ``(batch, carry)``.

    Args:
        head: the window's first request (already dequeued).
        get: ``get(timeout_s)`` returning the next queued request or
            raising :class:`queue.Empty`; ``timeout_s <= 0`` must not
            block.
        clock: monotonic seconds.
        config: window size/linger limits.
        compatible: whether a request may join ``head``'s batch.
        drop: optional predicate over dequeued joiners; a ``True`` verdict
            discards the request from the window (it joins neither batch
            nor carry).  The serving frontend uses this for deadline
            expiry: work whose deadline passed while queued is dead
            weight, and dropping it at dequeue keeps expired requests
            from occupying batch slots.  ``head`` is never dropped here —
            the caller vetted it before opening the window.
        on_drop: called once per dropped request, so the caller can
            resolve its future and count the expiry.

    The window closes when the batch reaches ``max_batch_size``, the
    linger deadline (anchored at entry, i.e. at ``head``'s dequeue time)
    expires, or an incompatible request arrives — that request is
    returned as ``carry`` and becomes the next window's head, preserving
    arrival order.  Dropped requests do not close the window.
    """
    batch = [head]
    carry = None
    deadline = clock() + config.max_linger_s
    while len(batch) < config.max_batch_size:
        try:
            item = get(deadline - clock())
        except queue.Empty:
            break
        if drop is not None and drop(item):
            if on_drop is not None:
                on_drop(item)
            continue
        if not compatible(head, item):
            carry = item
            break
        batch.append(item)
    return batch, carry


# ----------------------------------------------------------------------
# Stack-safety analysis


@dataclass(frozen=True)
class StackDecision:
    """Whether a plan's batches may execute stacked, and why not.

    Attributes:
        stackable: True when batches of requests for this plan may be
            concatenated along axis 0, executed once, and split back with
            bit-identical per-request results.
        batch: the plan's native batch size (leading input dimension).
        reason: human-readable explanation when ``stackable`` is False.
    """

    stackable: bool
    batch: int = 0
    reason: str = ""


def _normalized_axis(attrs: Mapping, default: int, rank: int) -> int:
    axis = int(attrs.get("axis", default))
    return axis + rank if axis < 0 else axis


def analyze_stack_safety(plan: HeteroPlan) -> StackDecision:
    """Decide statically whether ``plan`` supports stacked batch execution.

    Conservative by construction — the only cost of a ``False`` verdict
    is that batches run request-by-request.  A plan is stackable when:

    * every external input and every op node carries the plan's batch
      size on axis 0 (so concatenation and splitting are well-defined);
    * every op is row-independent along axis 0: an elementwise op from
      :data:`STACK_SAFE_ELEMENTWISE`, or an axis-parameterized op from
      :data:`STACK_SAFE_AXIS_OPS` whose normalized axis is >= 1;
    * no constant operand spans the batch axis (rank equal to its
      consumer's with a batch-sized leading dim would break or alias
      broadcasting over a stacked batch).

    Everything else — ``dense``/``matmul`` (shape-dependent BLAS paths),
    recurrent layers (GEMM inside), ``strided_slice`` (absolute axis-0
    indices) — is rejected.
    """
    batch: int | None = None
    for task in plan.tasks:
        graph = task.module.graph
        for node in graph.input_nodes():
            if not node.ty.shape:
                return StackDecision(False, 0, f"input {node.id!r} is scalar")
            lead = int(node.ty.shape[0])
            if batch is None:
                batch = lead
            elif lead != batch:
                return StackDecision(
                    False, 0,
                    f"input {node.id!r} leading dim {lead} != batch {batch}",
                )
    if batch is None:
        return StackDecision(False, 0, "plan has no external inputs")

    for task in plan.tasks:
        graph = task.module.graph
        for kernel in task.module.kernels:
            for nid in kernel.node_ids:
                node = graph.node(nid)
                shape = tuple(node.ty.shape)
                if not shape or int(shape[0]) != batch:
                    return StackDecision(
                        False, batch,
                        f"op {nid!r} ({node.op}) output shape {shape} does "
                        f"not lead with batch {batch}",
                    )
                in_ranks = [len(graph.node(i).ty.shape) for i in node.inputs]
                rank = max([len(shape), *in_ranks]) if in_ranks else len(shape)
                if node.op in STACK_SAFE_ELEMENTWISE:
                    pass
                elif node.op in STACK_SAFE_AXIS_OPS:
                    default = 0 if node.op == "concat" else -1
                    primary_rank = in_ranks[0] if in_ranks else len(shape)
                    axis = _normalized_axis(node.attrs, default, primary_rank)
                    if axis == 0:
                        return StackDecision(
                            False, batch,
                            f"op {nid!r} ({node.op}) operates along the "
                            "batch axis",
                        )
                else:
                    return StackDecision(
                        False, batch,
                        f"op {nid!r} ({node.op}) is not stack-safe",
                    )
                for src in node.inputs:
                    src_node = graph.node(src)
                    if not src_node.is_const:
                        continue
                    src_shape = tuple(src_node.ty.shape)
                    if (
                        len(src_shape) == rank
                        and src_shape
                        and int(src_shape[0]) == batch
                        and batch > 1
                    ):
                        return StackDecision(
                            False, batch,
                            f"op {nid!r} broadcasts constant {src!r} whose "
                            "leading dim equals the batch size",
                        )
    return StackDecision(True, batch)


def run_stacked(
    kernel_run: Callable[[Mapping[str, np.ndarray]], Sequence[np.ndarray]],
    batch_inputs: Sequence[Mapping[str, np.ndarray]],
    batch: int,
) -> list[list[np.ndarray]]:
    """Execute a batch as one stacked dispatch; returns per-request outputs.

    Args:
        kernel_run: one numeric execution of the plan — typically
            ``DispatchKernel.run(...).outputs`` partially applied.
        batch_inputs: the requests' input dicts (same signature each).
        batch: the plan's native batch size (rows per request).

    Inputs are concatenated along axis 0, executed once, and each output
    split back into per-request slabs of ``batch`` rows.  Slabs are
    copied so callers own their outputs.  Only call this for plans
    :func:`analyze_stack_safety` approved — for those, the split results
    are bit-identical to per-request execution.
    """
    if len(batch_inputs) == 1:
        return [[np.copy(o) for o in kernel_run(batch_inputs[0])]]
    keys = batch_inputs[0].keys()
    stacked_feeds = {
        key: np.concatenate(
            [np.asarray(feeds[key]) for feeds in batch_inputs], axis=0
        )
        for key in keys
    }
    stacked_outputs = kernel_run(stacked_feeds)
    per_request: list[list[np.ndarray]] = []
    for i in range(len(batch_inputs)):
        lo, hi = i * batch, (i + 1) * batch
        per_request.append([np.copy(o[lo:hi]) for o in stacked_outputs])
    return per_request
