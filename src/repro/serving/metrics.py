"""Metrics registry: counters, gauges, fixed-bucket histograms.

The serving layer needs to report what the engine is doing under load —
queue waits, batch sizes, per-device busy time, retries — without pulling
in a metrics client dependency.  This module is a small, thread-safe,
deterministic implementation of the three Prometheus metric types the
serving path uses:

* :class:`Counter` — monotone labeled sums (requests, batches, retries).
* :class:`Gauge` — last-write-wins labeled values (queue depth, inflight).
* :class:`Histogram` — fixed-bucket distributions with quantile
  estimation (queue wait, request latency, batch size).  Buckets are
  fixed at registration so two runs of the same scenario produce the
  same exposition text byte for byte.

A :class:`MetricsRegistry` owns the metric families, renders a
Prometheus-style text exposition (:meth:`MetricsRegistry.render`), and
returns plain-data snapshots (:meth:`MetricsRegistry.snapshot`) for
programmatic consumers — the load benchmark reads its p50/p95/p99 from
histogram snapshots, not ad-hoc timers.  :func:`parse_exposition` parses
the text format back into sample values, which the round-trip tests use.

Bucket boundaries are defined once, here (:data:`LATENCY_BUCKETS_S`,
:data:`BATCH_SIZE_BUCKETS`), and validated centrally by
:func:`validate_buckets`.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Mapping

from repro.errors import MetricsError

__all__ = [
    "LATENCY_BUCKETS_S",
    "BATCH_SIZE_BUCKETS",
    "validate_buckets",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "parse_exposition",
]

#: Latency histogram upper bounds in seconds (an implicit ``+Inf`` bucket
#: is always appended).  Spans 10 µs .. 10 s, log-spaced at 1-2.5-5 steps:
#: fine enough to interpolate sub-millisecond serving quantiles, coarse
#: enough that one fixed layout serves every latency metric.
LATENCY_BUCKETS_S: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1, 1.0, 2.5, 5.0, 10.0,
)

#: Batch-size histogram upper bounds (requests per dispatched batch).
BATCH_SIZE_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0,
)


def validate_buckets(bounds: Iterable[float]) -> tuple[float, ...]:
    """Validate histogram bucket upper bounds; returns them as a tuple.

    Bounds must be non-empty, finite, positive, and strictly increasing.
    The ``+Inf`` bucket is implicit and must not be included.  Raises
    :class:`~repro.errors.MetricsError` on any violation — this is the
    single place bucket layouts are checked, for every histogram.
    """
    out = tuple(float(b) for b in bounds)
    if not out:
        raise MetricsError("histogram needs at least one bucket bound")
    for b in out:
        if not math.isfinite(b):
            raise MetricsError(f"bucket bound {b!r} is not finite (+Inf is implicit)")
        if b <= 0.0:
            raise MetricsError(f"bucket bound {b!r} must be positive")
    for lo, hi in zip(out, out[1:]):
        if hi <= lo:
            raise MetricsError(
                f"bucket bounds must be strictly increasing, got {lo!r} >= {hi!r}"
            )
    return out


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    """Stable exposition formatting: integers without a trailing ``.0``."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(key: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Metric:
    """Shared naming/locking plumbing of one metric family."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        self.name = name
        self.help = help
        self._lock = lock


class Counter(_Metric):
    """Monotonically increasing labeled sums."""

    kind = "counter"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        super().__init__(name, help, lock)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (must be >= 0) to the labeled series."""
        if amount < 0:
            raise MetricsError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of one labeled series (0.0 when never touched)."""
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every labeled series."""
        with self._lock:
            return sum(self._values.values())

    def _samples(self):
        with self._lock:
            items = sorted(self._values.items())
        return [(self.name, key, "", v) for key, v in items]


class Gauge(_Metric):
    """Last-write-wins labeled values."""

    kind = "gauge"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        super().__init__(name, help, lock)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        """Set the labeled series to ``value``."""
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Adjust the labeled series by ``amount`` (may be negative)."""
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        """Decrease the labeled series by ``amount``."""
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        """Current value of one labeled series (0.0 when never set)."""
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def _samples(self):
        with self._lock:
            items = sorted(self._values.items())
        return [(self.name, key, "", v) for key, v in items]


class HistogramSnapshot:
    """Immutable view of one labeled histogram series.

    Attributes:
        bounds: finite bucket upper bounds (``+Inf`` implicit).
        counts: observation count per bucket, cumulative-free (bucket ``i``
            holds observations in ``(bounds[i-1], bounds[i]]``; the last
            entry is the ``+Inf`` overflow bucket).
        sum: sum of all observed values.
        count: total number of observations.
    """

    def __init__(
        self, bounds: tuple[float, ...], counts: tuple[int, ...], sum_: float
    ):
        self.bounds = bounds
        self.counts = counts
        self.sum = sum_
        self.count = sum(counts)

    @property
    def overflow_count(self) -> int:
        """Observations that landed in the implicit ``+Inf`` bucket."""
        return self.counts[-1] if len(self.counts) > len(self.bounds) else 0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by interpolating within buckets.

        Uses the Prometheus convention: linear interpolation inside the
        bucket that contains the target rank, with the lowest bucket
        interpolated from 0 and the overflow bucket clamped to its lower
        bound.  Returns ``nan`` when the series has no observations.

        A clamped result silently *underestimates* the true quantile;
        use :meth:`quantile_estimate` when the caller needs to know the
        estimate overflowed the finite buckets.
        """
        return self.quantile_estimate(q)[0]

    def quantile_estimate(self, q: float) -> tuple[float, bool]:
        """``(estimate, overflowed)`` for the ``q``-quantile.

        ``overflowed`` is True when the target rank falls in the
        implicit ``+Inf`` bucket: the estimate is then clamped to the
        last finite bound and the true quantile is known only to be
        *at least* that value.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan"), False
        rank = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lo = 0.0 if i == 0 else self.bounds[i - 1]
                if i == len(self.bounds):  # +Inf overflow bucket
                    return self.bounds[-1], True
                hi = self.bounds[i]
                frac = (rank - cumulative) / n
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0), False
            cumulative += n
        return self.bounds[-1], False


class Histogram(_Metric):
    """Fixed-bucket labeled distributions."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.Lock,
        buckets: Iterable[float] = LATENCY_BUCKETS_S,
    ):
        super().__init__(name, help, lock)
        self.bounds = validate_buckets(buckets)
        self._series: dict[tuple[tuple[str, str], ...], list] = {}

    def _series_for(self, key):
        series = self._series.get(key)
        if series is None:
            # counts per bucket (+1 overflow), running sum
            series = [[0] * (len(self.bounds) + 1), 0.0]
            self._series[key] = series
        return series

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation into the labeled series."""
        value = float(value)
        key = _label_key(labels)
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        with self._lock:
            series = self._series_for(key)
            series[0][idx] += 1
            series[1] += value

    def snapshot(self, **labels: str) -> HistogramSnapshot:
        """Immutable view of one labeled series (empty when never touched)."""
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                counts, sum_ = (0,) * (len(self.bounds) + 1), 0.0
            else:
                counts, sum_ = tuple(series[0]), series[1]
        return HistogramSnapshot(self.bounds, counts, sum_)

    def merged(self) -> HistogramSnapshot:
        """One snapshot aggregating every labeled series."""
        with self._lock:
            counts = [0] * (len(self.bounds) + 1)
            sum_ = 0.0
            for series in self._series.values():
                for i, n in enumerate(series[0]):
                    counts[i] += n
                sum_ += series[1]
        return HistogramSnapshot(self.bounds, tuple(counts), sum_)

    def _samples(self):
        with self._lock:
            items = sorted(
                (key, (list(series[0]), series[1]))
                for key, series in self._series.items()
            )
        samples = []
        for key, (counts, sum_) in items:
            cumulative = 0
            for bound, n in zip(self.bounds, counts):
                cumulative += n
                samples.append(
                    (f"{self.name}_bucket", key, f'le="{_format_value(bound)}"',
                     float(cumulative))
                )
            cumulative += counts[-1]
            samples.append(
                (f"{self.name}_bucket", key, 'le="+Inf"', float(cumulative))
            )
            samples.append((f"{self.name}_sum", key, "", sum_))
            samples.append((f"{self.name}_count", key, "", float(cumulative)))
        return samples


class MetricsRegistry:
    """Thread-safe home of every metric family one serving frontend emits.

    Families are created on first use and shared afterwards::

        registry = MetricsRegistry()
        registry.counter("duet_requests_total").inc(model="wide_deep")
        registry.histogram("duet_queue_wait_seconds").observe(3e-4)
        print(registry.render())          # Prometheus text exposition

    Registering one name as two different metric types raises
    :class:`~repro.errors.MetricsError`; re-registering with the same type
    returns the existing family (``help``/buckets of the first
    registration win).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get(self, name: str, kind: type, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name=name, lock=self._lock, **kwargs)
                self._metrics[name] = metric
                return metric
        if not isinstance(metric, kind):
            raise MetricsError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {kind.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter family ``name``."""
        return self._get(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge family ``name``."""
        return self._get(name, Gauge, help=help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = LATENCY_BUCKETS_S,
    ) -> Histogram:
        """Get or create the histogram family ``name``."""
        return self._get(name, Histogram, help=help, buckets=buckets)

    def snapshot(self) -> dict:
        """Plain-data view of every family, for programmatic consumers.

        Returns ``{name: {"type": ..., "help": ..., "samples": {...}}}``
        where each histogram sample is a dict with ``bounds``, ``counts``,
        ``sum``, ``count`` and each counter/gauge sample is a float, keyed
        by the sorted ``(label, value)`` tuple.
        """
        with self._lock:
            metrics = sorted(self._metrics.items())
        out: dict = {}
        for name, metric in metrics:
            entry: dict = {"type": metric.kind, "help": metric.help, "samples": {}}
            if isinstance(metric, Histogram):
                with self._lock:
                    keys = sorted(metric._series)
                for key in keys:
                    snap = metric.snapshot(**dict(key))
                    entry["samples"][key] = {
                        "bounds": snap.bounds,
                        "counts": snap.counts,
                        "sum": snap.sum,
                        "count": snap.count,
                    }
            else:
                for sample_name, key, extra, value in metric._samples():
                    entry["samples"][key] = value
            out[name] = entry
        return out

    def render(self) -> str:
        """Prometheus-style text exposition of every family.

        Families are ordered by name and series by label key, so two runs
        that record the same values render byte-identical text.
        """
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: list[str] = []
        for name, metric in metrics:
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for sample_name, key, extra, value in metric._samples():
                lines.append(
                    f"{sample_name}{_format_labels(key, extra)} "
                    f"{_format_value(value)}"
                )
        return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse Prometheus-style exposition text back into sample values.

    Returns ``{(sample_name, sorted_label_items): value}``.  Only the
    subset of the format :meth:`MetricsRegistry.render` emits is
    supported; malformed lines raise :class:`~repro.errors.MetricsError`.
    The metrics tests round-trip ``render`` output through this parser.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise MetricsError(f"exposition line {lineno} has no value: {line!r}")
        if "{" in name_part:
            if not name_part.endswith("}"):
                raise MetricsError(
                    f"exposition line {lineno} has unterminated labels: {line!r}"
                )
            name, _, label_blob = name_part[:-1].partition("{")
            labels = []
            if label_blob:
                for pair in label_blob.split(","):
                    k, eq, v = pair.partition("=")
                    if not eq or len(v) < 2 or v[0] != '"' or v[-1] != '"':
                        raise MetricsError(
                            f"exposition line {lineno} has a malformed "
                            f"label {pair!r}"
                        )
                    labels.append((k, v[1:-1]))
            key = tuple(sorted(labels))
        else:
            name, key = name_part, ()
        try:
            value = float(value_part)
        except ValueError as exc:
            raise MetricsError(
                f"exposition line {lineno} has a non-numeric value: {line!r}"
            ) from exc
        samples[(name, key)] = value
    return samples
