"""The in-process serving frontend: admission, batching, session pools.

:class:`ServingFrontend` is the front door the ROADMAP's serving story
needs: it owns one *lane* per model — a bounded admission queue plus a
pool of worker threads, each holding its own
:class:`~repro.runtime.session.EngineSession` — and coalesces compatible
waiting requests into dynamic batches (see :mod:`repro.serving.batcher`).

Admission control is explicit backpressure: a full queue either rejects
immediately with :class:`~repro.errors.QueueFullError`
(``admission="reject"``) or blocks the submitter until space frees up
(``admission="block"``, optionally bounded by ``submit_timeout_s``).

Execution of a batch takes one of three modes, all bit-identical per
request to a solo :class:`~repro.runtime.session.EngineSession` run:

* ``stacked`` — the plan passed :func:`~repro.serving.batcher.
  analyze_stack_safety`, so the batch executes as *one* dispatch over
  inputs concatenated along the batch axis and is split back per request
  (the actual throughput lever: one NumPy kernel invocation per op for
  the whole batch);
* ``fallback`` — the batch was coalesced but the plan is not stack-safe
  (or a stacked attempt failed), so requests execute back to back on the
  worker's session;
* ``single`` — the batch holds one request.

On top of admission and batching sits a resilience layer composing the
existing fault machinery into the frontend:

* **health-checked session pools** — each worker slot carries a
  :class:`~repro.serving.health.SlotHealth` record; a
  :class:`~repro.errors.DeviceLostError` quarantines the slot, re-plans
  onto a surviving device via the standing degradation plans
  (:func:`~repro.runtime.resilient.survivor_plan`), and rebuilds the
  slot's session on its own worker thread while the lane's other slots
  keep serving.  :meth:`ServingFrontend.restore_device` stages
  primary-plan rebuilds in the background; workers adopt them at the
  next batch boundary.
* **per-model circuit breakers**
  (:class:`~repro.serving.breaker.CircuitBreaker`, opt-in via
  ``ServingConfig(breaker=...)``) — persistent failures trip the lane
  open and :meth:`ServingFrontend.submit` rejects fast with
  :class:`~repro.errors.CircuitOpenError` until half-open probes succeed.
* **deadline-aware admission and shedding** — requests may carry a
  deadline; expired work is dropped at dequeue time with
  :class:`~repro.errors.DeadlineExceededError`, and an
  :class:`~repro.serving.health.AdaptiveShedder` rejects at submit time
  (:class:`~repro.errors.LoadShedError`) when the observed queue delay
  makes a deadline unmeetable.

Every stage feeds the :class:`~repro.serving.metrics.MetricsRegistry`:
queue depth/wait, batch sizes and modes, request latencies and outcomes,
shed/expiry counts, breaker and slot-health state, per-device busy time
via :class:`~repro.runtime.core.MetricsMiddleware`, and retry/fault
counters when a retry policy is installed.

``REPRO_VALIDATE=1`` (or ``ServingConfig(validate=True)``) applies the
same invariant middleware a solo session would use on the per-request
paths; the stacked path — whose intermediate shapes legitimately differ
from the declared types — instead validates each request's *split*
outputs against the declared output types.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    DeviceLostError,
    ExecutionError,
    LoadShedError,
    QueueFullError,
    ReproError,
)
from repro.runtime.core import (
    DispatchKernel,
    InlineWorkers,
    MetricsMiddleware,
    Middleware,
    PhaseCheckpoint,
    RetryMiddleware,
    plan_worker_devices,
)
from repro.runtime.resilient import survivor_plan
from repro.serving.batcher import (
    BatchConfig,
    analyze_stack_safety,
    collect_batch,
    request_signature,
    run_stacked,
)
from repro.serving.breaker import (
    BREAKER_CLOSED,
    BREAKER_STATE_CODES,
    BreakerConfig,
    CircuitBreaker,
)
from repro.runtime.session import SuspendedRun
from repro.serving.health import (
    SLOT_HEALTHY,
    SLOT_STATE_CODES,
    HealthConfig,
    LaneHealth,
    SlotHealth,
    TenantAwareShedder,
)
from repro.serving.metrics import BATCH_SIZE_BUCKETS, MetricsRegistry
from repro.serving.tenants import DEFAULT_TENANT, TenantConfig, TenantRegistry
from repro.serving.wfq import WFQAdmissionQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import DuetEngine, DuetOptimization
    from repro.ir.graph import Graph
    from repro.runtime.faults import FaultInjector
    from repro.runtime.plan import HeteroPlan
    from repro.runtime.resilient import RetryPolicy

__all__ = ["ServingConfig", "ServeResult", "ServeFuture", "ServingFrontend"]

#: Queue sentinel telling a lane worker to exit.
_SHUTDOWN = object()

_RETRY_COUNTER_KEYS = ("faults", "retries", "giveups", "task_deadline_misses")


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving frontend.

    Attributes:
        queue_capacity: bound of each model's admission queue.
        admission: ``"block"`` makes :meth:`ServingFrontend.submit` wait
            for queue space (up to ``submit_timeout_s``); ``"reject"``
            raises :class:`~repro.errors.QueueFullError` immediately.
        submit_timeout_s: blocking-admission patience; ``None`` blocks
            indefinitely.  Expiry raises ``QueueFullError`` too.
        pool_size: worker threads (each with its own session) per model.
            Keep this at 1 when batching: concurrent workers steal each
            other's window fill and linger to no benefit (measured —
            multi-worker lingering *loses* throughput on small models).
        batching: coalesce compatible queued requests into batches.
        max_batch_size: hard cap on requests per batch.
        max_linger_s: longest a window's first request waits for company.
        stacking: execute stack-safe plans' batches as one concatenated
            dispatch (bit-identical; see :mod:`repro.serving.batcher`).
        retry_policy: optional
            :class:`~repro.runtime.resilient.RetryPolicy` installing the
            retry middleware around every task attempt.
        validate: install invariant validation; ``None`` honors the
            ``REPRO_VALIDATE`` environment variable via the engine.
        validate_transfers: guard cross-device tensors against
            non-finite corruption (retryable under ``retry_policy``).
        seed: seeds the retry backoff-jitter generators.
        default_deadline_s: deadline applied to requests submitted
            without one; ``None`` means requests carry no deadline unless
            the caller passes ``deadline_s`` explicitly.
        shedding: enable the adaptive shedder — deadlined requests are
            rejected at submit with :class:`~repro.errors.LoadShedError`
            when observed queue delay predicts the deadline unmeetable.
            Only acts on requests that carry a deadline.
        shed_margin: safety factor on the shedder's predicted sojourn;
            2.0 sheds when the deadline is under twice the prediction.
        breaker: per-model circuit-breaker thresholds
            (:class:`~repro.serving.breaker.BreakerConfig`); ``None``
            disables breakers entirely.
        health: slot health / device-loss recovery knobs
            (:class:`~repro.serving.health.HealthConfig`); enabled by
            default — set ``HealthConfig(enabled=False)`` to restore the
            old fail-forever behaviour on device loss.
        tenants: the :class:`~repro.serving.tenants.TenantRegistry`
            governing per-tenant priority classes, WFQ weights, SLO
            targets, and default deadlines.  ``None`` leaves every
            request on the anonymous standard-class default tenant
            (single-flow FIFO, the pre-tenant behaviour).
        preemption: let a waiting higher-priority request interrupt a
            lower-priority one at its next plan *phase boundary*; the
            preempted request resumes from its completed-phase frontier
            with bit-identical outputs.  Tier-0 (critical) work is
            never preempted.
        starvation_escape: consecutive dequeues that may bypass a
            backlogged lower-priority tier before one dequeue is
            granted to the longest-waiting bypassed request; ``None``
            disables the escape (pure strict priority).
    """

    queue_capacity: int = 64
    admission: str = "block"
    submit_timeout_s: float | None = None
    pool_size: int = 1
    batching: bool = True
    max_batch_size: int = 8
    max_linger_s: float = 2e-3
    stacking: bool = True
    retry_policy: "RetryPolicy | None" = None
    validate: bool | None = None
    validate_transfers: bool = False
    seed: int = 0
    default_deadline_s: float | None = None
    shedding: bool = True
    shed_margin: float = 1.0
    breaker: BreakerConfig | None = None
    health: HealthConfig = field(default_factory=HealthConfig)
    tenants: TenantRegistry | None = None
    preemption: bool = True
    starvation_escape: int | None = 64

    def __post_init__(self) -> None:
        if self.admission not in ("block", "reject"):
            raise ExecutionError(
                f'admission must be "block" or "reject", got {self.admission!r}'
            )
        if self.queue_capacity < 1:
            raise ExecutionError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.pool_size < 1:
            raise ExecutionError(
                f"pool_size must be >= 1, got {self.pool_size}"
            )
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ExecutionError(
                f"default_deadline_s must be > 0, got {self.default_deadline_s}"
            )
        if self.shed_margin <= 0:
            raise ExecutionError(
                f"shed_margin must be > 0, got {self.shed_margin}"
            )
        if self.starvation_escape is not None and self.starvation_escape < 1:
            raise ExecutionError(
                f"starvation_escape must be >= 1 or None, "
                f"got {self.starvation_escape}"
            )
        # Delegates batch-knob validation.
        self.batch_config()

    def batch_config(self) -> BatchConfig:
        """The window-collection knobs as a :class:`BatchConfig`."""
        return BatchConfig(
            max_batch_size=self.max_batch_size, max_linger_s=self.max_linger_s
        )


@dataclass
class ServeResult:
    """Outcome of one served request.

    Attributes:
        outputs: model outputs, owned by the caller.
        model: lane (model name) that served the request.
        queue_wait_s: admission-to-dequeue wait.
        batch_size: number of requests in the batch this one rode in.
        stacked: True when the batch executed as one stacked dispatch.
        wall_time_s: execution wall time of that batch.
    """

    outputs: list[np.ndarray]
    model: str
    queue_wait_s: float
    batch_size: int
    stacked: bool
    wall_time_s: float


class ServeFuture:
    """Handle to an admitted request; resolves when its batch executes.

    Attributes:
        deadline_s: the request's end-to-end budget (``None`` = no
            deadline).  Work still queued past its deadline is dropped at
            dequeue time and the future fails with
            :class:`~repro.errors.DeadlineExceededError`.
        tenant: the :class:`~repro.serving.tenants.TenantConfig` the
            request was admitted under (the anonymous standard-class
            default unless the submitter named one).
        preemptions: how many times this request's execution was
            suspended at a phase boundary for higher-priority work.
    """

    def __init__(
        self,
        model: str,
        inputs: Mapping[str, np.ndarray],
        deadline_s: float | None = None,
        clock: Callable[[], float] | None = None,
        tenant: TenantConfig = DEFAULT_TENANT,
    ):
        self.model = model
        self.inputs = {k: np.asarray(v) for k, v in inputs.items()}
        self.signature = request_signature(self.inputs)
        self.deadline_s = deadline_s
        self.tenant = tenant
        self.preemptions = 0
        self.enqueued_at = 0.0
        self.dequeued_at = 0.0
        self.expires_at = float("inf")
        self._clock = clock or time.perf_counter
        self._event = threading.Event()
        self._result: ServeResult | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        """Whether the request has completed (successfully or not)."""
        return self._event.is_set()

    def result(self, timeout_s: float | None = None) -> ServeResult:
        """Block until the request completes; re-raises its failure.

        Raises :class:`~repro.errors.DeadlineExceededError` when
        ``timeout_s`` expires before the request resolves.
        """
        if not self._event.wait(timeout_s):
            context = ""
            if self.enqueued_at:
                elapsed = max(0.0, self._clock() - self.enqueued_at)
                if self.dequeued_at:
                    queued = max(0.0, self.dequeued_at - self.enqueued_at)
                    context = (
                        f" ({elapsed:.4f}s since admission, "
                        f"{queued:.4f}s of it queued)"
                    )
                else:
                    context = (
                        f" ({elapsed:.4f}s since admission, still queued)"
                    )
            raise DeadlineExceededError(
                f"request to model {self.model!r} did not complete within "
                f"{timeout_s}s{context}"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def _finish(self, result: ServeResult) -> None:
        self._result = result
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class _WorkerSlot:
    """One lane worker's private execution state: its session, its
    optional stacked dispatch kernel, its health record, and its retry
    bookkeeping.

    The slot can be *rebuilt* onto a different plan: synchronously on its
    own worker thread after a device loss (onto the survivor's standing
    degradation plan), or via a staged replacement built on a background
    thread (back onto the primary plan after
    :meth:`ServingFrontend.restore_device`) that the worker adopts at the
    next batch boundary.
    """

    def __init__(
        self,
        lane: "_ModelLane",
        index: int,
        config: ServingConfig,
        registry: MetricsRegistry,
        clock: Callable[[], float],
        injector: "FaultInjector | None",
        validate: bool,
    ):
        self.lane = lane
        self.index = index
        self.config = config
        self.registry = registry
        self.clock = clock
        self.injector = injector
        self.validate = validate
        self.health = SlotHealth()
        self.retry_counters: dict[str, int] | None = None
        self.retry_events: deque = deque(maxlen=256)
        self._flushed = dict.fromkeys(_RETRY_COUNTER_KEYS, 0)
        if config.retry_policy is not None:
            self.retry_counters = dict.fromkeys(_RETRY_COUNTER_KEYS, 0)
        self._generation = 0
        self._replacement: tuple | None = None
        self.session, self.decision, self.stacked_kernel = self._components(
            lane.opt.plan
        )

    def _components(self, plan: "HeteroPlan"):
        """Build the session (and stacked kernel, when safe) for ``plan``."""
        from repro.runtime.session import EngineSession

        config, lane = self.config, self.lane
        generation = self._generation
        self._generation += 1
        middleware: list[Middleware] = []
        if config.retry_policy is not None:
            # Generation 0 reproduces the pre-rebuild jitter seeds exactly;
            # rebuilt sessions fold the generation in so their backoff
            # draws stay deterministic without replaying the first life's.
            key = (config.seed, self.index) if generation == 0 else (
                config.seed, self.index, generation
            )
            # Enumerating the plan's worker set keeps the (device, index)
            # seed pairs identical to the historical DEVICES pair on the
            # default machine while covering every mesh device.
            rngs = {
                dev: np.random.default_rng((*key, i))
                for i, dev in enumerate(plan_worker_devices(plan))
            }
            middleware.append(
                RetryMiddleware(
                    config.retry_policy,
                    self.retry_events,
                    self.retry_counters,
                    rngs,
                    self.clock,
                )
            )
        middleware.append(
            MetricsMiddleware(
                self.registry, labels={"model": lane.name}, clock=self.clock
            )
        )
        session = EngineSession(
            plan,
            validate=self.validate,
            opt=lane.opt,
            middleware=middleware,
            fault_injector=self.injector,
            validate_transfers=config.validate_transfers,
        )
        decision = (
            lane.decision
            if plan is lane.opt.plan
            else analyze_stack_safety(plan)
        )
        stacked_kernel: DispatchKernel | None = None
        if config.batching and config.stacking and decision.stackable:
            # No arena: stacked shapes vary with batch size and would
            # thrash the per-slot buffers; no invariant middleware: the
            # lane validates the *split* outputs instead.
            stacked_kernel = DispatchKernel(
                plan,
                workers=InlineWorkers(),
                middleware=middleware,
                fault_injector=self.injector,
                validate_transfers=config.validate_transfers,
            )
        return session, decision, stacked_kernel

    def rebuild_degraded(self, plan: "HeteroPlan", device: str) -> None:
        """Rebuild onto a surviving device's degradation plan (called on
        this slot's own worker thread; other slots keep serving)."""
        self.session, self.decision, self.stacked_kernel = self._components(
            plan
        )
        self.health.mark_degraded(device)

    def build_replacement(self) -> None:
        """Build primary-plan components off-thread and stage them; the
        worker adopts at its next batch boundary."""
        self._replacement = self._components(self.lane.opt.plan)

    def adopt_replacement(self) -> bool:
        """Swap in a staged replacement (worker thread only)."""
        staged = self._replacement
        if staged is None:
            return False
        self._replacement = None
        self.session, self.decision, self.stacked_kernel = staged
        self.health.mark_healthy()
        return True

    def flush_retry_counters(self, lane: "_ModelLane") -> None:
        """Publish retry-middleware counter deltas into the registry."""
        if self.retry_counters is None:
            return
        for key in _RETRY_COUNTER_KEYS:
            delta = self.retry_counters[key] - self._flushed[key]
            if delta:
                lane.retry_metrics[key].inc(delta, model=lane.name)
                self._flushed[key] = self.retry_counters[key]


class _ModelLane:
    """One model's serving lane: queue, workers, metrics, stack decision,
    and the resilience trio (slot health, circuit breaker, shedder)."""

    def __init__(
        self,
        name: str,
        opt: "DuetOptimization",
        config: ServingConfig,
        registry: MetricsRegistry,
        clock: Callable[[], float],
        injector: "FaultInjector | None",
        validate: bool,
    ):
        self.name = name
        self.opt = opt
        self.config = config
        self.registry = registry
        self.clock = clock
        self.validate = validate
        self.tenants = config.tenants or TenantRegistry()
        self.queue = WFQAdmissionQueue(
            config.queue_capacity,
            classify=self._classify,
            starvation_escape=config.starvation_escape,
        )
        self.batch_config = config.batch_config()
        # Critical-tier heads never linger: latency beats batching for
        # the top class (already-waiting compatible work still coalesces).
        self.critical_batch_config = BatchConfig(
            max_batch_size=config.max_batch_size, max_linger_s=0.0
        )
        self.decision = analyze_stack_safety(opt.plan)
        self.expected_outputs = self._declared_output_types(opt.plan)
        self.health = LaneHealth()
        # The LatencyOracle-derived end-to-end estimate seeds the
        # shedder's service prior so cold-start predictions are anchored.
        self.shedder = (
            TenantAwareShedder(service_prior_s=max(0.0, opt.latency))
            if config.shedding
            else None
        )

        self.requests_total = registry.counter(
            "duet_requests_total",
            help=(
                "Requests by model and outcome "
                "(ok/error/rejected/shed/expired)."
            ),
        )
        self.batches_total = registry.counter(
            "duet_batches_total",
            help="Executed batches by model and mode (stacked/fallback/single).",
        )
        self.shed_total = registry.counter(
            "duet_shed_total",
            help=(
                "Requests refused or dropped unexecuted, by model and "
                "reason (breaker_open/unmeetable/expired)."
            ),
        )
        self.queue_depth = registry.gauge(
            "duet_queue_depth", help="Requests waiting in the admission queue."
        )
        self.inflight = registry.gauge(
            "duet_inflight_requests", help="Requests currently executing."
        )
        self.queue_wait = registry.histogram(
            "duet_queue_wait_seconds",
            help="Admission-to-dequeue wait per request.",
        )
        self.latency = registry.histogram(
            "duet_request_latency_seconds",
            help="Admission-to-completion latency per request.",
        )
        self.batch_size = registry.histogram(
            "duet_batch_size",
            buckets=BATCH_SIZE_BUCKETS,
            help="Requests coalesced per executed batch.",
        )
        self.breaker_state = registry.gauge(
            "duet_breaker_state",
            help="Circuit-breaker state (0=closed, 1=half_open, 2=open).",
        )
        self.breaker_transitions = registry.counter(
            "duet_breaker_transitions_total",
            help="Circuit-breaker state transitions by model.",
        )
        self.slot_state = registry.gauge(
            "duet_slot_state",
            help="Worker-slot health (0=healthy, 1=quarantined, 2=degraded).",
        )
        self.slot_failstreak = registry.gauge(
            "duet_slot_consecutive_failures",
            help="Consecutive request failures per worker slot.",
        )
        self.slot_quarantines = registry.counter(
            "duet_slot_quarantines_total",
            help="Worker slots quarantined after device loss.",
        )
        self.slot_rebuilds = registry.counter(
            "duet_slot_rebuilds_total",
            help="Slot session rebuilds by kind (degraded/restored).",
        )
        self.tenant_queue_delay = registry.histogram(
            "duet_tenant_queue_delay_seconds",
            help="Admission-to-dequeue wait per request, by tenant.",
        )
        self.tenant_latency = registry.histogram(
            "duet_tenant_request_latency_seconds",
            help="Admission-to-completion latency per request, by tenant.",
        )
        self.tenant_requests = registry.counter(
            "duet_tenant_requests_total",
            help="Requests by model, tenant, and outcome.",
        )
        self.tenant_slo_miss = registry.counter(
            "duet_tenant_slo_miss_total",
            help=(
                "Requests that missed their tenant's p99 SLO target "
                "(completed late, expired, or shed)."
            ),
        )
        self.tenant_preemptions = registry.counter(
            "duet_tenant_preemptions_total",
            help=(
                "Executions suspended at a phase boundary for "
                "higher-priority work, by preempted tenant."
            ),
        )
        self.retry_metrics = {
            "faults": registry.counter(
                "duet_faults_total", help="Transient task faults observed."
            ),
            "retries": registry.counter(
                "duet_retries_total", help="Task attempts retried."
            ),
            "giveups": registry.counter(
                "duet_giveups_total", help="Tasks that exhausted their retries."
            ),
            "task_deadline_misses": registry.counter(
                "duet_task_deadline_misses_total",
                help="Task attempts that overran their deadline budget.",
            ),
        }

        self.breaker: CircuitBreaker | None = None
        if config.breaker is not None:
            self.breaker = CircuitBreaker(
                config.breaker,
                clock=clock,
                listener=self._on_breaker_transition,
            )
            self.breaker_state.set(
                BREAKER_STATE_CODES[BREAKER_CLOSED], model=name
            )

        self.slots = [
            _WorkerSlot(self, i, config, registry, clock, injector, validate)
            for i in range(config.pool_size)
        ]
        for slot in self.slots:
            self._publish_slot_state(slot)
        self.threads: list[threading.Thread] = []

    @staticmethod
    def _declared_output_types(plan) -> list[tuple[tuple, np.dtype]]:
        by_id = {task.task_id: task for task in plan.tasks}
        declared = []
        for tid, idx in plan.outputs:
            task = by_id[tid]
            node = task.module.graph.node(task.module.output_ids[idx])
            declared.append(
                (tuple(node.ty.shape), np.dtype(node.ty.dtype.to_numpy()))
            )
        return declared

    # ------------------------------------------------------------------
    # Resilience bookkeeping

    def _on_breaker_transition(self, old: str, new: str) -> None:
        self.breaker_transitions.inc(
            1, model=self.name, from_state=old, to_state=new
        )
        self.breaker_state.set(BREAKER_STATE_CODES[new], model=self.name)

    def _publish_slot_state(self, slot: _WorkerSlot) -> None:
        self.slot_state.set(
            SLOT_STATE_CODES[slot.health.state],
            model=self.name,
            slot=str(slot.index),
        )

    def _handle_device_loss(
        self, slot: _WorkerSlot, exc: DeviceLostError
    ) -> bool:
        """Quarantine ``slot`` and rebuild it onto a survivor's standing
        degradation plan.  Returns True when the slot was rebuilt (the
        caller retries the failed request once on the new session)."""
        if not self.config.health.enabled:
            return False
        self.health.mark_lost(exc.device)
        pick = survivor_plan(self.opt.degradation_plans, self.health.lost_devices)
        if pick is None:
            # Nothing to fail over to: no survivor has a standing plan.
            return False
        device, plan = pick
        slot.health.quarantine()
        self.slot_quarantines.inc(1, model=self.name)
        self._publish_slot_state(slot)
        slot.rebuild_degraded(plan, device)
        self.slot_rebuilds.inc(1, model=self.name, kind="degraded")
        self._publish_slot_state(slot)
        return True

    def restore(self, device: str) -> bool:
        """Mark ``device`` healthy again and stage background rebuilds of
        every non-healthy slot back onto the primary plan.  Returns True
        when any rebuild was staged."""
        self.health.revive(device)
        if self.health.lost_devices:
            # The primary plan still touches a lost device; stay degraded.
            return False
        staged = False
        for slot in self.slots:
            if slot.health.state != SLOT_HEALTHY:
                threading.Thread(
                    target=slot.build_replacement,
                    name=f"duet-rebuild-{self.name}-{slot.index}",
                    daemon=True,
                ).start()
                staged = True
        return staged

    # ------------------------------------------------------------------
    # Worker side

    def start(self) -> None:
        for i in range(self.config.pool_size):
            t = threading.Thread(
                target=self._worker,
                args=(self.slots[i],),
                name=f"duet-serve-{self.name}-{i}",
                daemon=True,
            )
            self.threads.append(t)
            t.start()

    def shutdown(self) -> None:
        for _ in self.threads:
            self.queue.put(_SHUTDOWN)
        for t in self.threads:
            t.join()
        self.threads.clear()
        # The final in-flight batch's retry counters would otherwise be
        # lost: the flush normally rides the worker loop, which has exited.
        for slot in self.slots:
            slot.flush_retry_counters(self)
        # Requests that raced admission against close() and landed behind
        # the sentinels would hang their futures forever; fail them now.
        while True:
            try:
                item = self.queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                continue
            self.requests_total.inc(1, model=self.name, outcome="rejected")
            if self.breaker is not None:
                self.breaker.record_discard()
            item._fail(
                ExecutionError(
                    f"serving frontend closed before the request to model "
                    f"{self.name!r} executed"
                )
            )
        self.queue_depth.set(0, model=self.name)

    @staticmethod
    def _classify(item):
        """WFQ classifier: shutdown sentinels ride the control channel."""
        if item is _SHUTDOWN:
            return None
        tenant = item.tenant
        return (tenant.tier, tenant.name, tenant.weight)

    def _timed_get(self, timeout_s: float):
        """Batcher-facing queue pull; ``timeout_s <= 0`` never blocks."""
        if timeout_s <= 0:
            item = self.queue.get_nowait()
        else:
            item = self.queue.get(timeout=timeout_s)
        if item is not _SHUTDOWN:
            item.dequeued_at = self.clock()
        return item

    def _compatible(self, head, item) -> bool:
        # Same-tier only: a batch has one priority, so higher-priority
        # work is never held behind (or preempted by) its own batch.
        return (
            item is not _SHUTDOWN
            and item.signature == head.signature
            and item.tenant.tier == head.tenant.tier
        )

    def _expired(self, item) -> bool:
        return item is not _SHUTDOWN and self.clock() >= item.expires_at

    def _slo_missed(self, req: ServeFuture, sojourn_s: float) -> None:
        """Count an SLO miss when the tenant has a target and blew it."""
        slo = req.tenant.slo_p99_s
        if slo is not None and sojourn_s > slo:
            self.tenant_slo_miss.inc(
                1, model=self.name, tenant=req.tenant.name
            )

    def _expire(self, req: ServeFuture) -> None:
        """Fail a request whose deadline passed while it sat queued."""
        waited = max(0.0, self.clock() - req.enqueued_at)
        self.requests_total.inc(1, model=self.name, outcome="expired")
        self.shed_total.inc(1, model=self.name, reason="expired")
        self.queue_wait.observe(waited, model=self.name)
        self.tenant_requests.inc(
            1, model=self.name, tenant=req.tenant.name, outcome="expired"
        )
        self.tenant_queue_delay.observe(
            waited, model=self.name, tenant=req.tenant.name
        )
        self._slo_missed(req, waited)
        if self.breaker is not None:
            self.breaker.record_discard()
        if self.shedder is not None:
            # An expiry is hard evidence of congestion: the request's
            # sojourn was at least its full wait.
            self.shedder.observe(waited, waited, tenant=req.tenant.name)
        req._fail(
            DeadlineExceededError(
                f"request to model {self.name!r} expired in queue: waited "
                f"{waited:.4f}s of a {req.deadline_s:.4f}s deadline"
            )
        )

    def _worker(self, slot: _WorkerSlot) -> None:
        carry = None
        while True:
            if slot.adopt_replacement():
                self.slot_rebuilds.inc(1, model=self.name, kind="restored")
                self._publish_slot_state(slot)
            head = carry if carry is not None else self.queue.get()
            carry = None
            if head is _SHUTDOWN:
                return
            head.dequeued_at = self.clock()
            if self._expired(head):
                self._expire(head)
                continue
            if self.config.batching:
                batch, carry = collect_batch(
                    head,
                    self._timed_get,
                    self.clock,
                    (
                        self.critical_batch_config
                        if head.tenant.tier == 0
                        else self.batch_config
                    ),
                    self._compatible,
                    drop=self._expired,
                    on_drop=self._expire,
                )
            else:
                batch = [head]
            if carry is _SHUTDOWN:
                # Put the sentinel back: another worker (or this one, on
                # the next loop) must still see it; the current batch
                # executes first either way.
                self.queue.put(_SHUTDOWN)
                carry = None
            self.queue_depth.set(self.queue.qsize(), model=self.name)
            try:
                self._execute(slot, batch)
            except BaseException as exc:
                # The zero-hung-futures invariant outranks everything: no
                # matter what broke, every admitted request must reach a
                # terminal state.
                for req in batch:
                    if not req.done():
                        self.requests_total.inc(
                            1, model=self.name, outcome="error"
                        )
                        if self.breaker is not None:
                            self.breaker.record_failure()
                        req._fail(
                            ExecutionError(
                                f"serving worker failed while executing a "
                                f"batch for model {self.name!r}: {exc!r}"
                            )
                        )

    def _execute(self, slot: _WorkerSlot, batch: list[ServeFuture]) -> None:
        self.inflight.inc(len(batch), model=self.name)
        try:
            began = self.clock()
            mode = "single" if len(batch) == 1 else "fallback"
            outputs: list[list[np.ndarray] | None] = [None] * len(batch)
            errors: list[BaseException | None] = [None] * len(batch)
            stacked = False
            if len(batch) > 1 and slot.stacked_kernel is not None:
                try:
                    outputs = self._run_stacked_checked(slot, batch)
                    stacked, mode = True, "stacked"
                except ReproError:
                    # Conservative recovery: anything the stacked path
                    # cannot serve exactly (give-ups and device loss
                    # included) re-runs per request, where failures
                    # attribute to individual requests.
                    outputs = [None] * len(batch)
            if not stacked:
                for i, req in enumerate(batch):
                    if i and self._preemptible(req.tenant.tier):
                        # Between batch members is a natural preemption
                        # point too: serve any higher-priority arrivals
                        # before the next same-tier request.
                        self._serve_preempting(slot, req.tenant.tier)
                    try:
                        outputs[i] = self._run_request(slot, req)
                    except DeviceLostError as exc:
                        if self._handle_device_loss(slot, exc):
                            # The slot now serves from the survivor's
                            # degradation plan; retry this request once
                            # (from scratch — any suspended frontier
                            # belonged to the lost session).
                            try:
                                outputs[i] = self._run_request(slot, req)
                            except ReproError as retry_exc:
                                errors[i] = retry_exc
                        else:
                            errors[i] = exc
                    except ReproError as exc:
                        errors[i] = exc
            wall = self.clock() - began
            now = self.clock()
            self.batch_size.observe(len(batch), model=self.name)
            self.batches_total.inc(1, model=self.name, mode=mode)
            slot.flush_retry_counters(self)
            for i, req in enumerate(batch):
                wait = max(0.0, req.dequeued_at - req.enqueued_at)
                sojourn = max(0.0, now - req.enqueued_at)
                self.queue_wait.observe(wait, model=self.name)
                self.latency.observe(sojourn, model=self.name)
                outcome = "ok" if errors[i] is None else "error"
                self.requests_total.inc(1, model=self.name, outcome=outcome)
                self.tenant_requests.inc(
                    1,
                    model=self.name,
                    tenant=req.tenant.name,
                    outcome=outcome,
                )
                self.tenant_queue_delay.observe(
                    wait, model=self.name, tenant=req.tenant.name
                )
                self.tenant_latency.observe(
                    sojourn, model=self.name, tenant=req.tenant.name
                )
                self._slo_missed(req, sojourn)
                if errors[i] is not None:
                    streak = slot.health.record_failure()
                    self.slot_failstreak.set(
                        streak, model=self.name, slot=str(slot.index)
                    )
                    if self.breaker is not None:
                        self.breaker.record_failure()
                    req._fail(errors[i])
                else:
                    if slot.health.consecutive_failures:
                        self.slot_failstreak.set(
                            0, model=self.name, slot=str(slot.index)
                        )
                    slot.health.record_success()
                    if self.breaker is not None:
                        self.breaker.record_success()
                    if self.shedder is not None:
                        self.shedder.observe(
                            wait, sojourn, tenant=req.tenant.name
                        )
                    req._finish(
                        ServeResult(
                            outputs=outputs[i],
                            model=self.name,
                            queue_wait_s=wait,
                            batch_size=len(batch),
                            stacked=stacked,
                            wall_time_s=wall,
                        )
                    )
        finally:
            self.inflight.dec(len(batch), model=self.name)

    # ------------------------------------------------------------------
    # Phase-boundary preemption

    def _preemptible(self, tier: int) -> bool:
        """Whether work of ``tier`` yields to higher-priority arrivals
        at phase boundaries.  Tier 0 has nobody above it."""
        return self.config.preemption and tier > 0

    def _run_request(self, slot: _WorkerSlot, req: ServeFuture):
        """One request on the slot's session, yielding to higher-priority
        arrivals at plan phase boundaries when preemption is enabled."""
        tier = req.tenant.tier
        if not self._preemptible(tier):
            return slot.session.run(req.inputs).outputs
        outcome = slot.session.run_preemptible(
            req.inputs,
            should_preempt=lambda: self.queue.has_higher_tier(tier),
        )
        while isinstance(outcome, SuspendedRun):
            self._record_preemption(req)
            self._serve_preempting(slot, tier)
            outcome = outcome.resume()
        return outcome.outputs

    def _record_preemption(self, req: ServeFuture) -> None:
        req.preemptions += 1
        self.tenant_preemptions.inc(
            1, model=self.name, tenant=req.tenant.name
        )

    def _serve_preempting(self, slot: _WorkerSlot, tier: int) -> None:
        """Drain and execute every request waiting above ``tier``.

        Called while a lower-priority request sits suspended at a phase
        boundary (its frontier is checkpointed off the arena, so these
        executions cannot perturb it).  Preemptors skip the batching
        window — the point is latency — and run as singleton batches
        with full accounting; a standard-class preemptor may itself be
        preempted by a critical arrival (recursion is bounded by the
        number of tiers).
        """
        while True:
            try:
                vip = self.queue.get_preempting_nowait(tier)
            except queue.Empty:
                return
            vip.dequeued_at = self.clock()
            self.queue_depth.set(self.queue.qsize(), model=self.name)
            if self._expired(vip):
                self._expire(vip)
                continue
            try:
                self._execute(slot, [vip])
            except BaseException as exc:
                # Same zero-hung-futures guarantee the worker loop gives.
                if not vip.done():
                    self.requests_total.inc(
                        1, model=self.name, outcome="error"
                    )
                    if self.breaker is not None:
                        self.breaker.record_failure()
                    vip._fail(
                        ExecutionError(
                            f"serving worker failed while executing a "
                            f"preempting request for model "
                            f"{self.name!r}: {exc!r}"
                        )
                    )

    def _run_stacked_checked(
        self, slot: _WorkerSlot, batch: list[ServeFuture]
    ) -> list[list[np.ndarray]]:
        kernel = slot.stacked_kernel
        tier = batch[0].tenant.tier
        if self._preemptible(tier):

            def run_feeds(feeds):
                # The stacked dispatch suspends at phase boundaries too:
                # a critical arrival interrupts the whole best-effort
                # batch, runs on the slot's session, and the batch then
                # resumes from its checkpointed frontier bit-identically.
                outcome = kernel.run_preemptible(
                    feeds,
                    should_preempt=lambda: self.queue.has_higher_tier(tier),
                )
                while isinstance(outcome, PhaseCheckpoint):
                    for req in batch:
                        self._record_preemption(req)
                    self._serve_preempting(slot, tier)
                    outcome = kernel.run_preemptible(
                        should_preempt=lambda: self.queue.has_higher_tier(
                            tier
                        ),
                        checkpoint=outcome,
                    )
                return outcome.outputs

        else:

            def run_feeds(feeds):
                return kernel.run(feeds).outputs

        per_request = run_stacked(
            run_feeds,
            [req.inputs for req in batch],
            slot.decision.batch,
        )
        if self.validate:
            for outs in per_request:
                for value, (shape, dtype) in zip(outs, self.expected_outputs):
                    if tuple(value.shape) != shape or value.dtype != dtype:
                        raise ExecutionError(
                            f"stacked output {tuple(value.shape)}/"
                            f"{value.dtype} does not match declared "
                            f"{shape}/{dtype}"
                        )
        return per_request


class ServingFrontend:
    """Multi-tenant serving over a set of optimized models.

    Typical use::

        engine = DuetEngine()
        with engine.serve({"m": graph}) as frontend:
            result = frontend.request({"x": x})       # blocking
            fut = frontend.submit({"x": x})           # async handle
            ...
            print(frontend.render_metrics())

    Args:
        engine: the optimizing engine; graphs in ``models`` are optimized
            through it exactly once, at construction.
        models: model name -> :class:`~repro.ir.graph.Graph` or prebuilt
            :class:`~repro.core.engine.DuetOptimization`.
        config: serving knobs; defaults to :class:`ServingConfig`.
        registry: metrics destination; a fresh
            :class:`~repro.serving.metrics.MetricsRegistry` by default.
        clock: monotonic-seconds source for every queue-wait, linger,
            latency, and busy-time measurement (injectable so tests can
            pin timing-derived metrics exactly).
        fault_injectors: optional model name ->
            :class:`~repro.runtime.faults.FaultInjector` chaos hooks
            (shared across that model's workers; plain injectors are not
            thread-safe, so use ``pool_size=1`` with them — the
            :class:`~repro.runtime.faults.ScriptedChaosInjector` is
            thread-safe and supports any pool size).
        autostart: start worker threads immediately.  Pass ``False`` to
            pre-fill queues deterministically, then call :meth:`start`.
    """

    def __init__(
        self,
        engine: "DuetEngine",
        models: Mapping[str, "Graph | DuetOptimization"],
        config: ServingConfig | None = None,
        registry: MetricsRegistry | None = None,
        clock: Callable[[], float] | None = None,
        fault_injectors: Mapping[str, "FaultInjector"] | None = None,
        autostart: bool = True,
    ):
        from repro.core.engine import DuetOptimization

        if not models:
            raise ExecutionError("ServingFrontend needs at least one model")
        self.engine = engine
        self.config = config or ServingConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.clock = clock or time.perf_counter
        validate = (
            self.config.validate
            if self.config.validate is not None
            else engine._should_validate()
        )
        injectors = dict(fault_injectors or {})
        self._lanes: dict[str, _ModelLane] = {}
        for name, model in models.items():
            opt = (
                model
                if isinstance(model, DuetOptimization)
                else engine.optimize(model)
            )
            self._lanes[name] = _ModelLane(
                name,
                opt,
                self.config,
                self.registry,
                self.clock,
                injectors.get(name),
                validate,
            )
        self._started = False
        self._closed = False
        if autostart:
            self.start()

    # ------------------------------------------------------------------

    @property
    def models(self) -> tuple[str, ...]:
        """The served model names."""
        return tuple(self._lanes)

    def lane_info(self, model: str | None = None) -> dict:
        """Introspection: stacking decision, pool shape, and health."""
        lane = self._lane(model)
        return {
            "model": lane.name,
            "stackable": lane.decision.stackable,
            "stack_reason": lane.decision.reason,
            "pool_size": self.config.pool_size,
            "queue_capacity": self.config.queue_capacity,
            "breaker_state": (
                lane.breaker.state if lane.breaker is not None else None
            ),
            "tenants": lane.tenants.names,
            "preemption": self.config.preemption,
            "lost_devices": sorted(lane.health.lost_devices),
            "slot_states": [slot.health.state for slot in lane.slots],
        }

    def _lane(self, model: str | None) -> _ModelLane:
        if model is None:
            if len(self._lanes) != 1:
                raise ExecutionError(
                    "model name required when serving several models: "
                    + ", ".join(self._lanes)
                )
            return next(iter(self._lanes.values()))
        lane = self._lanes.get(model)
        if lane is None:
            raise ExecutionError(
                f"unknown model {model!r}; serving: " + ", ".join(self._lanes)
            )
        return lane

    def start(self) -> None:
        """Start every lane's worker threads (idempotent)."""
        if self._started or self._closed:
            return
        self._started = True
        for lane in self._lanes.values():
            lane.start()

    def close(self) -> None:
        """Drain queued requests, stop the workers, and refuse new work."""
        if self._closed:
            return
        self._closed = True
        # Even when the workers never started, queued futures must not be
        # left hanging: shutdown() drains and fails whatever is waiting.
        for lane in self._lanes.values():
            lane.shutdown()

    def __enter__(self) -> "ServingFrontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def restore_device(self, device: str, model: str | None = None) -> bool:
        """Declare a previously lost device healthy again.

        Call this after the fault source recovers (in chaos runs, after
        ``injector.revive_device(...)`` — the frontend never touches the
        injector itself).  Each affected lane forgets the loss and stages
        a *background* rebuild of every degraded slot back onto the
        primary plan; worker threads adopt the fresh sessions at their
        next batch boundary, so serving never pauses.  Returns True when
        any rebuild was staged.
        """
        lanes = (
            [self._lane(model)] if model is not None else self._lanes.values()
        )
        staged = False
        for lane in lanes:
            staged = lane.restore(device) or staged
        return staged

    def submit(
        self,
        inputs: Mapping[str, np.ndarray],
        model: str | None = None,
        deadline_s: float | None = None,
        tenant: str | None = None,
    ) -> ServeFuture:
        """Admit one request; returns a :class:`ServeFuture`.

        Args:
            inputs: the request's input tensors.
            model: lane name (optional when serving a single model).
            deadline_s: end-to-end budget for this request, from
                admission; defaults to the tenant's
                ``default_deadline_s``, then ``config.default_deadline_s``.
                Deadlined work still queued past its deadline is dropped
                at dequeue and fails with
                :class:`~repro.errors.DeadlineExceededError`.
            tenant: tenant name resolving through the configured
                :class:`~repro.serving.tenants.TenantRegistry`; ``None``
                is the anonymous standard-class default.  The tenant
                decides the request's strict-priority tier, WFQ weight,
                SLO accounting, and default deadline.

        Raises:
            ~repro.errors.QueueFullError: the lane's queue is full under
                ``admission="reject"``, or a blocking admission's
                ``submit_timeout_s`` expired.
            ~repro.errors.CircuitOpenError: the lane's breaker is open.
            ~repro.errors.LoadShedError: the adaptive shedder predicts
                the deadline unmeetable.
        """
        if self._closed:
            raise ExecutionError("serving frontend is closed")
        lane = self._lane(model)
        tenant_cfg = lane.tenants.resolve(tenant)
        if deadline_s is None:
            deadline_s = tenant_cfg.default_deadline_s
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        if deadline_s is not None and deadline_s <= 0:
            raise ExecutionError(
                f"deadline_s must be > 0, got {deadline_s}"
            )
        if lane.breaker is not None and not lane.breaker.allow():
            lane.requests_total.inc(1, model=lane.name, outcome="shed")
            lane.shed_total.inc(1, model=lane.name, reason="breaker_open")
            raise CircuitOpenError(lane.name, lane.breaker.retry_after_s())
        try:
            if (
                deadline_s is not None
                and lane.shedder is not None
            ):
                predicted = lane.shedder.unmeetable(
                    deadline_s,
                    self.config.shed_margin,
                    tenant=tenant_cfg.name,
                    backlog_ahead=lane.queue.backlog_ahead(tenant_cfg.tier),
                )
                if predicted is not None:
                    lane.requests_total.inc(
                        1, model=lane.name, outcome="shed"
                    )
                    lane.shed_total.inc(
                        1, model=lane.name, reason="unmeetable"
                    )
                    lane.tenant_requests.inc(
                        1,
                        model=lane.name,
                        tenant=tenant_cfg.name,
                        outcome="shed",
                    )
                    if tenant_cfg.slo_p99_s is not None:
                        # Shed deadlined work never completes: that is
                        # an SLO miss for a tenant with a target.
                        lane.tenant_slo_miss.inc(
                            1, model=lane.name, tenant=tenant_cfg.name
                        )
                    raise LoadShedError(lane.name, deadline_s, predicted)
            req = ServeFuture(
                lane.name,
                inputs,
                deadline_s=deadline_s,
                clock=self.clock,
                tenant=tenant_cfg,
            )
            req.enqueued_at = self.clock()
            if deadline_s is not None:
                req.expires_at = req.enqueued_at + deadline_s
            try:
                if self.config.admission == "reject":
                    lane.queue.put_nowait(req)
                else:
                    lane.queue.put(req, timeout=self.config.submit_timeout_s)
            except queue.Full:
                lane.requests_total.inc(
                    1, model=lane.name, outcome="rejected"
                )
                raise QueueFullError(
                    f"admission queue for model {lane.name!r} is full "
                    f"({self.config.queue_capacity} waiting)"
                ) from None
        except BaseException:
            # A half-open admission reserved a probe slot; the request
            # will never execute, so hand the slot back.
            if lane.breaker is not None:
                lane.breaker.record_discard()
            raise
        lane.queue_depth.set(lane.queue.qsize(), model=lane.name)
        return req

    def request(
        self,
        inputs: Mapping[str, np.ndarray],
        model: str | None = None,
        timeout_s: float | None = None,
        deadline_s: float | None = None,
        tenant: str | None = None,
    ) -> ServeResult:
        """Admit one request and block until its result."""
        return self.submit(
            inputs, model=model, deadline_s=deadline_s, tenant=tenant
        ).result(timeout_s)

    # ------------------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Plain-data snapshot of every registered metric."""
        return self.registry.snapshot()

    def render_metrics(self) -> str:
        """Prometheus-style text exposition of the registry."""
        return self.registry.render()
