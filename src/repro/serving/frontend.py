"""The in-process serving frontend: admission, batching, session pools.

:class:`ServingFrontend` is the front door the ROADMAP's serving story
needs: it owns one *lane* per model — a bounded admission queue plus a
pool of worker threads, each holding its own
:class:`~repro.runtime.session.EngineSession` — and coalesces compatible
waiting requests into dynamic batches (see :mod:`repro.serving.batcher`).

Admission control is explicit backpressure: a full queue either rejects
immediately with :class:`~repro.errors.QueueFullError`
(``admission="reject"``) or blocks the submitter until space frees up
(``admission="block"``, optionally bounded by ``submit_timeout_s``).

Execution of a batch takes one of three modes, all bit-identical per
request to a solo :class:`~repro.runtime.session.EngineSession` run:

* ``stacked`` — the plan passed :func:`~repro.serving.batcher.
  analyze_stack_safety`, so the batch executes as *one* dispatch over
  inputs concatenated along the batch axis and is split back per request
  (the actual throughput lever: one NumPy kernel invocation per op for
  the whole batch);
* ``fallback`` — the batch was coalesced but the plan is not stack-safe
  (or a stacked attempt failed), so requests execute back to back on the
  worker's session;
* ``single`` — the batch holds one request.

Every stage feeds the :class:`~repro.serving.metrics.MetricsRegistry`:
queue depth/wait, batch sizes and modes, request latencies and outcomes,
per-device busy time via :class:`~repro.runtime.core.MetricsMiddleware`,
and retry/fault counters when a retry policy is installed.

``REPRO_VALIDATE=1`` (or ``ServingConfig(validate=True)``) applies the
same invariant middleware a solo session would use on the per-request
paths; the stacked path — whose intermediate shapes legitimately differ
from the declared types — instead validates each request's *split*
outputs against the declared output types.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from repro.errors import ExecutionError, QueueFullError, ReproError
from repro.runtime.core import (
    DEVICES,
    DispatchKernel,
    InlineWorkers,
    MetricsMiddleware,
    Middleware,
    RetryMiddleware,
)
from repro.serving.batcher import (
    BatchConfig,
    analyze_stack_safety,
    collect_batch,
    request_signature,
    run_stacked,
)
from repro.serving.metrics import BATCH_SIZE_BUCKETS, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import DuetEngine, DuetOptimization
    from repro.ir.graph import Graph
    from repro.runtime.faults import FaultInjector
    from repro.runtime.resilient import RetryPolicy

__all__ = ["ServingConfig", "ServeResult", "ServeFuture", "ServingFrontend"]

#: Queue sentinel telling a lane worker to exit.
_SHUTDOWN = object()

_RETRY_COUNTER_KEYS = ("faults", "retries", "giveups", "task_deadline_misses")


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving frontend.

    Attributes:
        queue_capacity: bound of each model's admission queue.
        admission: ``"block"`` makes :meth:`ServingFrontend.submit` wait
            for queue space (up to ``submit_timeout_s``); ``"reject"``
            raises :class:`~repro.errors.QueueFullError` immediately.
        submit_timeout_s: blocking-admission patience; ``None`` blocks
            indefinitely.  Expiry raises ``QueueFullError`` too.
        pool_size: worker threads (each with its own session) per model.
            Keep this at 1 when batching: concurrent workers steal each
            other's window fill and linger to no benefit (measured —
            multi-worker lingering *loses* throughput on small models).
        batching: coalesce compatible queued requests into batches.
        max_batch_size: hard cap on requests per batch.
        max_linger_s: longest a window's first request waits for company.
        stacking: execute stack-safe plans' batches as one concatenated
            dispatch (bit-identical; see :mod:`repro.serving.batcher`).
        retry_policy: optional
            :class:`~repro.runtime.resilient.RetryPolicy` installing the
            retry middleware around every task attempt.
        validate: install invariant validation; ``None`` honors the
            ``REPRO_VALIDATE`` environment variable via the engine.
        validate_transfers: guard cross-device tensors against
            non-finite corruption (retryable under ``retry_policy``).
        seed: seeds the retry backoff-jitter generators.
    """

    queue_capacity: int = 64
    admission: str = "block"
    submit_timeout_s: float | None = None
    pool_size: int = 1
    batching: bool = True
    max_batch_size: int = 8
    max_linger_s: float = 2e-3
    stacking: bool = True
    retry_policy: "RetryPolicy | None" = None
    validate: bool | None = None
    validate_transfers: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.admission not in ("block", "reject"):
            raise ExecutionError(
                f'admission must be "block" or "reject", got {self.admission!r}'
            )
        if self.queue_capacity < 1:
            raise ExecutionError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.pool_size < 1:
            raise ExecutionError(
                f"pool_size must be >= 1, got {self.pool_size}"
            )
        # Delegates batch-knob validation.
        self.batch_config()

    def batch_config(self) -> BatchConfig:
        """The window-collection knobs as a :class:`BatchConfig`."""
        return BatchConfig(
            max_batch_size=self.max_batch_size, max_linger_s=self.max_linger_s
        )


@dataclass
class ServeResult:
    """Outcome of one served request.

    Attributes:
        outputs: model outputs, owned by the caller.
        model: lane (model name) that served the request.
        queue_wait_s: admission-to-dequeue wait.
        batch_size: number of requests in the batch this one rode in.
        stacked: True when the batch executed as one stacked dispatch.
        wall_time_s: execution wall time of that batch.
    """

    outputs: list[np.ndarray]
    model: str
    queue_wait_s: float
    batch_size: int
    stacked: bool
    wall_time_s: float


class ServeFuture:
    """Handle to an admitted request; resolves when its batch executes."""

    def __init__(self, model: str, inputs: Mapping[str, np.ndarray]):
        self.model = model
        self.inputs = {k: np.asarray(v) for k, v in inputs.items()}
        self.signature = request_signature(self.inputs)
        self.enqueued_at = 0.0
        self.dequeued_at = 0.0
        self._event = threading.Event()
        self._result: ServeResult | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        """Whether the request has completed (successfully or not)."""
        return self._event.is_set()

    def result(self, timeout_s: float | None = None) -> ServeResult:
        """Block until the request completes; re-raises its failure."""
        if not self._event.wait(timeout_s):
            raise ExecutionError(
                f"request to model {self.model!r} did not complete within "
                f"{timeout_s}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def _finish(self, result: ServeResult) -> None:
        self._result = result
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class _WorkerSlot:
    """One lane worker's private execution state: its session, its
    optional stacked dispatch kernel, and its retry bookkeeping."""

    def __init__(
        self,
        lane: "_ModelLane",
        index: int,
        config: ServingConfig,
        registry: MetricsRegistry,
        clock: Callable[[], float],
        injector: "FaultInjector | None",
        validate: bool,
    ):
        from repro.runtime.session import EngineSession

        middleware: list[Middleware] = []
        self.retry_counters: dict[str, int] | None = None
        self._flushed = dict.fromkeys(_RETRY_COUNTER_KEYS, 0)
        if config.retry_policy is not None:
            self.retry_counters = dict.fromkeys(_RETRY_COUNTER_KEYS, 0)
            self.retry_events: deque = deque(maxlen=256)
            rngs = {
                dev: np.random.default_rng((config.seed, index, i))
                for i, dev in enumerate(DEVICES)
            }
            middleware.append(
                RetryMiddleware(
                    config.retry_policy,
                    self.retry_events,
                    self.retry_counters,
                    rngs,
                    clock,
                )
            )
        middleware.append(
            MetricsMiddleware(registry, labels={"model": lane.name}, clock=clock)
        )
        self.session = EngineSession(
            lane.opt.plan,
            validate=validate,
            opt=lane.opt,
            middleware=middleware,
            fault_injector=injector,
            validate_transfers=config.validate_transfers,
        )
        self.stacked_kernel: DispatchKernel | None = None
        if config.batching and config.stacking and lane.decision.stackable:
            # No arena: stacked shapes vary with batch size and would
            # thrash the per-slot buffers; no invariant middleware: the
            # lane validates the *split* outputs instead.
            self.stacked_kernel = DispatchKernel(
                lane.opt.plan,
                workers=InlineWorkers(),
                middleware=middleware,
                fault_injector=injector,
                validate_transfers=config.validate_transfers,
            )

    def flush_retry_counters(self, lane: "_ModelLane") -> None:
        """Publish retry-middleware counter deltas into the registry."""
        if self.retry_counters is None:
            return
        for key in _RETRY_COUNTER_KEYS:
            delta = self.retry_counters[key] - self._flushed[key]
            if delta:
                lane.retry_metrics[key].inc(delta, model=lane.name)
                self._flushed[key] = self.retry_counters[key]


class _ModelLane:
    """One model's serving lane: queue, workers, metrics, stack decision."""

    def __init__(
        self,
        name: str,
        opt: "DuetOptimization",
        config: ServingConfig,
        registry: MetricsRegistry,
        clock: Callable[[], float],
        injector: "FaultInjector | None",
        validate: bool,
    ):
        self.name = name
        self.opt = opt
        self.config = config
        self.registry = registry
        self.clock = clock
        self.validate = validate
        self.queue: "queue.Queue" = queue.Queue(maxsize=config.queue_capacity)
        self.batch_config = config.batch_config()
        self.decision = analyze_stack_safety(opt.plan)
        self.expected_outputs = self._declared_output_types(opt.plan)
        self.slots = [
            _WorkerSlot(self, i, config, registry, clock, injector, validate)
            for i in range(config.pool_size)
        ]
        self.threads: list[threading.Thread] = []

        self.requests_total = registry.counter(
            "duet_requests_total",
            help="Requests by model and outcome (ok/error/rejected).",
        )
        self.batches_total = registry.counter(
            "duet_batches_total",
            help="Executed batches by model and mode (stacked/fallback/single).",
        )
        self.queue_depth = registry.gauge(
            "duet_queue_depth", help="Requests waiting in the admission queue."
        )
        self.inflight = registry.gauge(
            "duet_inflight_requests", help="Requests currently executing."
        )
        self.queue_wait = registry.histogram(
            "duet_queue_wait_seconds",
            help="Admission-to-dequeue wait per request.",
        )
        self.latency = registry.histogram(
            "duet_request_latency_seconds",
            help="Admission-to-completion latency per request.",
        )
        self.batch_size = registry.histogram(
            "duet_batch_size",
            buckets=BATCH_SIZE_BUCKETS,
            help="Requests coalesced per executed batch.",
        )
        self.retry_metrics = {
            "faults": registry.counter(
                "duet_faults_total", help="Transient task faults observed."
            ),
            "retries": registry.counter(
                "duet_retries_total", help="Task attempts retried."
            ),
            "giveups": registry.counter(
                "duet_giveups_total", help="Tasks that exhausted their retries."
            ),
            "task_deadline_misses": registry.counter(
                "duet_task_deadline_misses_total",
                help="Task attempts that overran their deadline budget.",
            ),
        }

    @staticmethod
    def _declared_output_types(plan) -> list[tuple[tuple, np.dtype]]:
        by_id = {task.task_id: task for task in plan.tasks}
        declared = []
        for tid, idx in plan.outputs:
            task = by_id[tid]
            node = task.module.graph.node(task.module.output_ids[idx])
            declared.append(
                (tuple(node.ty.shape), np.dtype(node.ty.dtype.to_numpy()))
            )
        return declared

    # ------------------------------------------------------------------
    # Worker side

    def start(self) -> None:
        for i in range(self.config.pool_size):
            t = threading.Thread(
                target=self._worker,
                args=(self.slots[i],),
                name=f"duet-serve-{self.name}-{i}",
                daemon=True,
            )
            self.threads.append(t)
            t.start()

    def shutdown(self) -> None:
        for _ in self.threads:
            self.queue.put(_SHUTDOWN)
        for t in self.threads:
            t.join()
        self.threads.clear()

    def _timed_get(self, timeout_s: float):
        """Batcher-facing queue pull; ``timeout_s <= 0`` never blocks."""
        if timeout_s <= 0:
            item = self.queue.get_nowait()
        else:
            item = self.queue.get(timeout=timeout_s)
        if item is not _SHUTDOWN:
            item.dequeued_at = self.clock()
        return item

    def _compatible(self, head, item) -> bool:
        return item is not _SHUTDOWN and item.signature == head.signature

    def _worker(self, slot: _WorkerSlot) -> None:
        carry = None
        while True:
            head = carry if carry is not None else self.queue.get()
            carry = None
            if head is _SHUTDOWN:
                return
            head.dequeued_at = self.clock()
            if self.config.batching:
                batch, carry = collect_batch(
                    head,
                    self._timed_get,
                    self.clock,
                    self.batch_config,
                    self._compatible,
                )
            else:
                batch = [head]
            if carry is _SHUTDOWN:
                # Put the sentinel back: another worker (or this one, on
                # the next loop) must still see it; the current batch
                # executes first either way.
                self.queue.put(_SHUTDOWN)
                carry = None
            self.queue_depth.set(self.queue.qsize(), model=self.name)
            self._execute(slot, batch)

    def _execute(self, slot: _WorkerSlot, batch: list[ServeFuture]) -> None:
        self.inflight.inc(len(batch), model=self.name)
        began = self.clock()
        mode = "single" if len(batch) == 1 else "fallback"
        outputs: list[list[np.ndarray] | None] = [None] * len(batch)
        errors: list[BaseException | None] = [None] * len(batch)
        stacked = False
        if len(batch) > 1 and slot.stacked_kernel is not None:
            try:
                outputs = self._run_stacked_checked(slot, batch)
                stacked, mode = True, "stacked"
            except ReproError:
                # Conservative recovery: anything the stacked path cannot
                # serve exactly (give-ups included) re-runs per request,
                # where failures attribute to individual requests.
                outputs = [None] * len(batch)
        if not stacked:
            for i, req in enumerate(batch):
                try:
                    outputs[i] = slot.session.run(req.inputs).outputs
                except ReproError as exc:
                    errors[i] = exc
        wall = self.clock() - began
        now = self.clock()
        self.batch_size.observe(len(batch), model=self.name)
        self.batches_total.inc(1, model=self.name, mode=mode)
        slot.flush_retry_counters(self)
        for i, req in enumerate(batch):
            wait = max(0.0, req.dequeued_at - req.enqueued_at)
            self.queue_wait.observe(wait, model=self.name)
            self.latency.observe(
                max(0.0, now - req.enqueued_at), model=self.name
            )
            outcome = "ok" if errors[i] is None else "error"
            self.requests_total.inc(1, model=self.name, outcome=outcome)
            if errors[i] is not None:
                req._fail(errors[i])
            else:
                req._finish(
                    ServeResult(
                        outputs=outputs[i],
                        model=self.name,
                        queue_wait_s=wait,
                        batch_size=len(batch),
                        stacked=stacked,
                        wall_time_s=wall,
                    )
                )
        self.inflight.dec(len(batch), model=self.name)

    def _run_stacked_checked(
        self, slot: _WorkerSlot, batch: list[ServeFuture]
    ) -> list[list[np.ndarray]]:
        kernel = slot.stacked_kernel
        per_request = run_stacked(
            lambda feeds: kernel.run(feeds).outputs,
            [req.inputs for req in batch],
            self.decision.batch,
        )
        if self.validate:
            for outs in per_request:
                for value, (shape, dtype) in zip(outs, self.expected_outputs):
                    if tuple(value.shape) != shape or value.dtype != dtype:
                        raise ExecutionError(
                            f"stacked output {tuple(value.shape)}/"
                            f"{value.dtype} does not match declared "
                            f"{shape}/{dtype}"
                        )
        return per_request


class ServingFrontend:
    """Multi-tenant serving over a set of optimized models.

    Typical use::

        engine = DuetEngine()
        with engine.serve({"m": graph}) as frontend:
            result = frontend.request({"x": x})       # blocking
            fut = frontend.submit({"x": x})           # async handle
            ...
            print(frontend.render_metrics())

    Args:
        engine: the optimizing engine; graphs in ``models`` are optimized
            through it exactly once, at construction.
        models: model name -> :class:`~repro.ir.graph.Graph` or prebuilt
            :class:`~repro.core.engine.DuetOptimization`.
        config: serving knobs; defaults to :class:`ServingConfig`.
        registry: metrics destination; a fresh
            :class:`~repro.serving.metrics.MetricsRegistry` by default.
        clock: monotonic-seconds source for every queue-wait, linger,
            latency, and busy-time measurement (injectable so tests can
            pin timing-derived metrics exactly).
        fault_injectors: optional model name ->
            :class:`~repro.runtime.faults.FaultInjector` chaos hooks
            (shared across that model's workers; use ``pool_size=1``
            when injecting, injectors are not thread-safe).
        autostart: start worker threads immediately.  Pass ``False`` to
            pre-fill queues deterministically, then call :meth:`start`.
    """

    def __init__(
        self,
        engine: "DuetEngine",
        models: Mapping[str, "Graph | DuetOptimization"],
        config: ServingConfig | None = None,
        registry: MetricsRegistry | None = None,
        clock: Callable[[], float] | None = None,
        fault_injectors: Mapping[str, "FaultInjector"] | None = None,
        autostart: bool = True,
    ):
        from repro.core.engine import DuetOptimization

        if not models:
            raise ExecutionError("ServingFrontend needs at least one model")
        self.engine = engine
        self.config = config or ServingConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.clock = clock or time.perf_counter
        validate = (
            self.config.validate
            if self.config.validate is not None
            else engine._should_validate()
        )
        injectors = dict(fault_injectors or {})
        self._lanes: dict[str, _ModelLane] = {}
        for name, model in models.items():
            opt = (
                model
                if isinstance(model, DuetOptimization)
                else engine.optimize(model)
            )
            self._lanes[name] = _ModelLane(
                name,
                opt,
                self.config,
                self.registry,
                self.clock,
                injectors.get(name),
                validate,
            )
        self._started = False
        self._closed = False
        if autostart:
            self.start()

    # ------------------------------------------------------------------

    @property
    def models(self) -> tuple[str, ...]:
        """The served model names."""
        return tuple(self._lanes)

    def lane_info(self, model: str | None = None) -> dict:
        """Introspection: the lane's stacking decision and pool shape."""
        lane = self._lane(model)
        return {
            "model": lane.name,
            "stackable": lane.decision.stackable,
            "stack_reason": lane.decision.reason,
            "pool_size": self.config.pool_size,
            "queue_capacity": self.config.queue_capacity,
        }

    def _lane(self, model: str | None) -> _ModelLane:
        if model is None:
            if len(self._lanes) != 1:
                raise ExecutionError(
                    "model name required when serving several models: "
                    + ", ".join(self._lanes)
                )
            return next(iter(self._lanes.values()))
        lane = self._lanes.get(model)
        if lane is None:
            raise ExecutionError(
                f"unknown model {model!r}; serving: " + ", ".join(self._lanes)
            )
        return lane

    def start(self) -> None:
        """Start every lane's worker threads (idempotent)."""
        if self._started or self._closed:
            return
        self._started = True
        for lane in self._lanes.values():
            lane.start()

    def close(self) -> None:
        """Drain queued requests, stop the workers, and refuse new work."""
        if self._closed:
            return
        self._closed = True
        if self._started:
            for lane in self._lanes.values():
                lane.shutdown()

    def __enter__(self) -> "ServingFrontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def submit(
        self,
        inputs: Mapping[str, np.ndarray],
        model: str | None = None,
    ) -> ServeFuture:
        """Admit one request; returns a :class:`ServeFuture`.

        Raises :class:`~repro.errors.QueueFullError` when the lane's
        queue is full under ``admission="reject"``, or when a blocking
        admission's ``submit_timeout_s`` expires.
        """
        if self._closed:
            raise ExecutionError("serving frontend is closed")
        lane = self._lane(model)
        req = ServeFuture(lane.name, inputs)
        req.enqueued_at = self.clock()
        try:
            if self.config.admission == "reject":
                lane.queue.put_nowait(req)
            else:
                lane.queue.put(req, timeout=self.config.submit_timeout_s)
        except queue.Full:
            lane.requests_total.inc(1, model=lane.name, outcome="rejected")
            raise QueueFullError(
                f"admission queue for model {lane.name!r} is full "
                f"({self.config.queue_capacity} waiting)"
            ) from None
        lane.queue_depth.set(lane.queue.qsize(), model=lane.name)
        return req

    def request(
        self,
        inputs: Mapping[str, np.ndarray],
        model: str | None = None,
        timeout_s: float | None = None,
    ) -> ServeResult:
        """Admit one request and block until its result."""
        return self.submit(inputs, model=model).result(timeout_s)

    # ------------------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Plain-data snapshot of every registered metric."""
        return self.registry.snapshot()

    def render_metrics(self) -> str:
        """Prometheus-style text exposition of the registry."""
        return self.registry.render()
