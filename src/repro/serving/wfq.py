"""Two-tier admission queue: strict priority over weighted fair queueing.

Replaces the serving lane's single FIFO.  The queue holds *data* items
(requests) in per-``(tier, tenant)`` flows plus an out-of-band *control*
channel (worker shutdown sentinels).  Scheduling is:

1. **Strict priority across tiers** — a waiting request in a lower-
   numbered tier (``critical`` = 0) is always dequeued before any
   higher-numbered tier, except when the anti-starvation escape fires
   (below).
2. **Weighted fair queueing within a tier** — start-time fair queueing
   over the tier's tenant flows.  Each arrival is stamped with a virtual
   *start* tag ``max(tier_vtime, tenant_last_finish)`` and a *finish*
   tag ``start + 1/weight``; the flow whose head has the smallest finish
   tag is served, and the tier's virtual time advances to the served
   item's start tag.  Under sustained backlog each tenant drains in
   proportion to its weight; within one tenant order is strictly FIFO
   (tags are monotone per flow).
3. **Anti-starvation escape** — after ``starvation_escape`` consecutive
   dequeues that bypassed a backlogged lower-priority tier, one dequeue
   goes to the longest-waiting bypassed item instead, so the lowest
   class keeps a trickle of service under a permanent high-priority
   flood.  ``None`` disables the escape (pure strict priority).

The API is a drop-in superset of the :class:`queue.Queue` surface the
frontend uses — ``put``/``put_nowait``/``get``/``get_nowait``/``qsize``
raising :class:`queue.Empty`/:class:`queue.Full` — plus tenant-aware
introspection (:meth:`backlog_ahead`, :meth:`depths`) and the
preemption hooks (:meth:`has_higher_tier`,
:meth:`get_preempting_nowait`) the phase-boundary preemption path is
built on.

Control items never count against capacity (a shutdown must never
deadlock against a full queue) and are handed out only when no data is
waiting, so ``close()`` drains admitted work before stopping workers.

The queue is clock-free: fairness is defined over *dequeue decisions*,
not wall time, which is what makes the property suite in
``tests/serving/test_wfq.py`` runnable on a scripted virtual clock with
no real sleeps.
"""

from __future__ import annotations

import queue as _queue
import threading
import time
from collections import deque
from typing import Callable

from repro.errors import ExecutionError

__all__ = ["WFQAdmissionQueue"]

#: classify(item) -> (tier, tenant name, weight), or None for controls.
Classifier = Callable[[object], "tuple[int, str, float] | None"]


def _default_classify(item) -> tuple[int, str, float] | None:
    tenant = getattr(item, "tenant", None)
    if tenant is None:
        return (1, "default", 1.0)
    return (tenant.tier, tenant.name, tenant.weight)


class _Flow:
    """One tenant's FIFO within a tier, with its WFQ finish-tag state."""

    __slots__ = ("items", "last_finish")

    def __init__(self) -> None:
        # (start_tag, finish_tag, seq, item); seq breaks finish-tag ties
        # deterministically in arrival order.
        self.items: deque[tuple[float, float, int, object]] = deque()
        self.last_finish = 0.0


class WFQAdmissionQueue:
    """Bounded strict-priority + weighted-fair admission queue.

    Args:
        capacity: bound on waiting *data* items (controls are exempt).
        classify: maps an item to ``(tier, tenant, weight)`` or ``None``
            for control items; the default reads ``item.tenant``
            (a :class:`~repro.serving.tenants.TenantConfig`) and treats
            items without one as the standard-tier default tenant.
        starvation_escape: consecutive lower-tier bypasses tolerated
            before one dequeue is granted to the longest-waiting
            bypassed item; ``None`` disables the escape.
    """

    def __init__(
        self,
        capacity: int,
        classify: Classifier | None = None,
        starvation_escape: int | None = 64,
    ):
        if capacity < 1:
            raise ExecutionError(f"capacity must be >= 1, got {capacity}")
        if starvation_escape is not None and starvation_escape < 1:
            raise ExecutionError(
                f"starvation_escape must be >= 1 or None, "
                f"got {starvation_escape}"
            )
        self.capacity = capacity
        self.starvation_escape = starvation_escape
        self._classify = classify or _default_classify
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._flows: dict[tuple[int, str], _Flow] = {}
        self._vtime: dict[int, float] = {}
        self._controls: deque = deque()
        self._size = 0
        self._seq = 0
        self._bypasses = 0
        self.escapes = 0  # granted anti-starvation dequeues (introspection)

    # ------------------------------------------------------------------
    # Producer side

    def put(self, item, block: bool = True, timeout: float | None = None):
        """Enqueue; blocks while data capacity is exhausted.

        Control items (``classify(item) is None``) bypass capacity and
        never block.
        """
        key = self._classify(item)
        with self._not_full:
            if key is None:
                self._controls.append(item)
                self._not_empty.notify()
                return
            if not block:
                if self._size >= self.capacity:
                    raise _queue.Full
            elif timeout is None:
                while self._size >= self.capacity:
                    self._not_full.wait()
            else:
                deadline = time.monotonic() + timeout
                while self._size >= self.capacity:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise _queue.Full
                    self._not_full.wait(remaining)
            self._enqueue(key, item)
            self._not_empty.notify()

    def put_nowait(self, item) -> None:
        self.put(item, block=False)

    def _enqueue(self, key: tuple[int, str, float], item) -> None:
        tier, tenant, weight = key
        flow = self._flows.setdefault((tier, tenant), _Flow())
        start = max(self._vtime.get(tier, 0.0), flow.last_finish)
        finish = start + 1.0 / weight
        flow.last_finish = finish
        flow.items.append((start, finish, self._seq, item))
        self._seq += 1
        self._size += 1

    # ------------------------------------------------------------------
    # Consumer side

    def get(self, block: bool = True, timeout: float | None = None):
        """Dequeue the scheduled item; controls only when no data waits."""
        with self._not_empty:
            if not block:
                if not self._size and not self._controls:
                    raise _queue.Empty
            elif timeout is None:
                while not self._size and not self._controls:
                    self._not_empty.wait()
            else:
                deadline = time.monotonic() + timeout
                while not self._size and not self._controls:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise _queue.Empty
                    self._not_empty.wait(remaining)
            return self._dequeue()

    def get_nowait(self):
        return self.get(block=False)

    def get_preempting_nowait(self, tier: int):
        """Dequeue from a tier strictly above ``tier``; raises
        :class:`queue.Empty` when no higher-priority data waits.

        This is the preemption pull: it never yields controls, never
        trips the anti-starvation escape, and never returns same-or-
        lower-priority work.
        """
        with self._not_empty:
            best = self._best_tier(below=tier)
            if best is None:
                raise _queue.Empty
            item = self._pop_tier(best)
            self._size -= 1
            self._not_full.notify()
            return item

    def _dequeue(self):
        if not self._size:
            return self._controls.popleft()
        backlogged = sorted(
            t for (t, _), flow in self._flows.items() if flow.items
        )
        tier = backlogged[0]
        if (
            self.starvation_escape is not None
            and len(backlogged) > 1
            and self._bypasses >= self.starvation_escape
        ):
            # Grant the longest-waiting bypassed item one dequeue.
            tier = min(
                backlogged[1:],
                key=lambda t: min(
                    flow.items[0][2]
                    for (ft, _), flow in self._flows.items()
                    if ft == t and flow.items
                ),
            )
            self._bypasses = 0
            self.escapes += 1
        elif len(backlogged) > 1 and tier < backlogged[-1]:
            self._bypasses += 1
        else:
            self._bypasses = 0
        item = self._pop_tier(tier)
        self._size -= 1
        self._not_full.notify()
        return item

    def _best_tier(self, below: int) -> int | None:
        """Lowest-numbered backlogged tier strictly above ``below``."""
        tiers = [
            t
            for (t, _), flow in self._flows.items()
            if flow.items and t < below
        ]
        return min(tiers) if tiers else None

    def _pop_tier(self, tier: int):
        """WFQ pick within ``tier``: smallest head finish tag wins,
        arrival order breaks ties; the tier's virtual time advances to
        the served item's start tag (start-time fair queueing)."""
        flow = min(
            (f for (t, _), f in self._flows.items() if t == tier and f.items),
            key=lambda f: (f.items[0][1], f.items[0][2]),
        )
        start, _finish, _seq, item = flow.items.popleft()
        vt = self._vtime.get(tier, 0.0)
        if start > vt:
            self._vtime[tier] = start
        return item

    # ------------------------------------------------------------------
    # Introspection

    def qsize(self) -> int:
        """Waiting *data* items (controls excluded)."""
        with self._lock:
            return self._size

    def empty(self) -> bool:
        with self._lock:
            return not self._size and not self._controls

    def has_higher_tier(self, tier: int) -> bool:
        """Any data waiting in a tier strictly above (lower-numbered
        than) ``tier``?  The phase-boundary preemption predicate."""
        with self._lock:
            return self._best_tier(below=tier) is not None

    def backlog_ahead(self, tier: int) -> int:
        """Waiting items a new ``tier`` arrival would queue behind:
        everything in its own or a higher-priority tier.  Feeds the
        shedder's contention term — monotone in tier, so a critical
        request never sees more contention than a best-effort one."""
        with self._lock:
            return sum(
                len(flow.items)
                for (t, _), flow in self._flows.items()
                if t <= tier
            )

    def depths(self) -> dict[str, int]:
        """Waiting items per tenant (non-empty flows only)."""
        with self._lock:
            out: dict[str, int] = {}
            for (_, tenant), flow in self._flows.items():
                if flow.items:
                    out[tenant] = out.get(tenant, 0) + len(flow.items)
            return out
