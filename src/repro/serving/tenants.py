"""Tenant identity for the serving frontend: priority, weight, SLOs.

A :class:`TenantConfig` names one traffic class and carries everything
admission and scheduling need to know about it:

* a **priority class** — ``critical`` / ``standard`` / ``best_effort`` —
  mapped onto strict-priority *tiers* of the admission queue
  (:class:`~repro.serving.wfq.WFQAdmissionQueue`): a waiting
  higher-tier request is always served before any lower-tier one, and
  may preempt a lower-tier request already executing at its next plan
  phase boundary;
* a **weight** — the share of service a tenant receives *within* its
  tier, enforced by weighted fair queueing (virtual-finish-time
  accounting; a weight-4 tenant drains roughly four times as fast as a
  weight-1 tenant under sustained contention);
* an optional **p99 SLO target** — requests completing slower count
  into ``duet_tenant_slo_miss_total``;
* an optional **default deadline** applied to the tenant's requests
  when the caller does not pass one explicitly (it beats the lane-wide
  ``ServingConfig.default_deadline_s``).

The :class:`TenantRegistry` resolves request tenant names to configs.
Unknown names resolve to a standard-class default (opt into
``strict=True`` to reject them instead), so a frontend without any
tenant setup behaves exactly like the pre-tenant single-FIFO one: every
request lands in the same standard-tier flow and drains in FIFO order.

``tenants.json`` (see ``repro serve --tenants``) is either a top-level
list of tenant objects or ``{"tenants": [...]}``; durations accept
``*_s`` (seconds) or ``*_ms`` (milliseconds) spellings::

    {"tenants": [
      {"name": "search", "priority": "critical", "weight": 4,
       "slo_p99_ms": 250, "default_deadline_ms": 1000},
      {"name": "batch-embed", "priority": "best_effort", "weight": 1}
    ]}
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import ExecutionError

__all__ = [
    "PRIORITY_CLASSES",
    "PRIORITY_TIERS",
    "DEFAULT_TENANT",
    "TenantConfig",
    "TenantRegistry",
]

#: Priority classes, highest first; index = strict-priority tier.
PRIORITY_CLASSES = ("critical", "standard", "best_effort")

#: Priority class -> strict-priority tier (0 is served first).
PRIORITY_TIERS = {name: tier for tier, name in enumerate(PRIORITY_CLASSES)}


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's scheduling contract.

    Attributes:
        name: the tenant label (metrics label, registry key).
        priority: ``critical`` / ``standard`` / ``best_effort``.
        weight: WFQ weight within the tenant's tier; > 0.
        slo_p99_s: p99 latency target; completions slower than this
            count as SLO misses (``None`` = no target tracked).
        default_deadline_s: deadline for the tenant's requests when the
            submitter passes none; beats the lane-wide default.
    """

    name: str
    priority: str = "standard"
    weight: float = 1.0
    slo_p99_s: float | None = None
    default_deadline_s: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ExecutionError("tenant name must be non-empty")
        if self.priority not in PRIORITY_TIERS:
            raise ExecutionError(
                f"tenant {self.name!r}: priority must be one of "
                f"{PRIORITY_CLASSES}, got {self.priority!r}"
            )
        if not self.weight > 0:
            raise ExecutionError(
                f"tenant {self.name!r}: weight must be > 0, got {self.weight}"
            )
        for label, value in (
            ("slo_p99_s", self.slo_p99_s),
            ("default_deadline_s", self.default_deadline_s),
        ):
            if value is not None and value <= 0:
                raise ExecutionError(
                    f"tenant {self.name!r}: {label} must be > 0, got {value}"
                )

    @property
    def tier(self) -> int:
        """Strict-priority tier (0 = served first)."""
        return PRIORITY_TIERS[self.priority]


#: What anonymous requests resolve to: standard class, weight 1.
DEFAULT_TENANT = TenantConfig(name="default")

_DURATION_FIELDS = ("slo_p99", "default_deadline")


def _parse_duration(entry: dict, base: str, where: str) -> float | None:
    """Accept ``<base>_s`` (seconds) or ``<base>_ms`` (milliseconds)."""
    has_s, has_ms = f"{base}_s" in entry, f"{base}_ms" in entry
    if has_s and has_ms:
        raise ExecutionError(
            f"{where}: give {base}_s or {base}_ms, not both"
        )
    if has_s:
        return float(entry[f"{base}_s"])
    if has_ms:
        return float(entry[f"{base}_ms"]) * 1e-3
    return None


class TenantRegistry:
    """Immutable name -> :class:`TenantConfig` lookup for one frontend.

    Args:
        tenants: the configured tenants; names must be unique.
        strict: reject unknown tenant names at submit time instead of
            resolving them to the standard-class default.
    """

    def __init__(
        self, tenants: Iterable[TenantConfig] = (), strict: bool = False
    ):
        self._tenants: dict[str, TenantConfig] = {}
        self.strict = strict
        for cfg in tenants:
            if cfg.name in self._tenants:
                raise ExecutionError(f"duplicate tenant {cfg.name!r}")
            self._tenants[cfg.name] = cfg

    def resolve(self, name: str | None) -> TenantConfig:
        """The config a request submitted as ``name`` is governed by.

        ``None`` (and, non-strict, any unconfigured name) resolves to a
        standard-class weight-1 config so anonymous traffic keeps the
        pre-tenant FIFO behaviour.
        """
        if name is None:
            return self._tenants.get(
                DEFAULT_TENANT.name, DEFAULT_TENANT
            )
        cfg = self._tenants.get(name)
        if cfg is not None:
            return cfg
        if self.strict:
            raise ExecutionError(
                f"unknown tenant {name!r}; configured: "
                + (", ".join(self._tenants) or "<none>")
            )
        return TenantConfig(name=name)

    def __iter__(self) -> Iterator[TenantConfig]:
        return iter(self._tenants.values())

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._tenants)

    # ------------------------------------------------------------------

    @classmethod
    def from_json(cls, text: str, strict: bool = False) -> "TenantRegistry":
        """Parse a ``tenants.json`` document (see the module docstring)."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExecutionError(f"invalid tenants JSON: {exc}") from exc
        if isinstance(doc, dict):
            entries = doc.get("tenants")
            if not isinstance(entries, list):
                raise ExecutionError(
                    'tenants JSON object must hold a "tenants" list'
                )
        elif isinstance(doc, list):
            entries = doc
        else:
            raise ExecutionError(
                "tenants JSON must be a list or an object with a "
                f'"tenants" list, got {type(doc).__name__}'
            )
        tenants = []
        for i, entry in enumerate(entries):
            if not isinstance(entry, dict):
                raise ExecutionError(
                    f"tenant entry {i} must be an object, got "
                    f"{type(entry).__name__}"
                )
            name = entry.get("name")
            if not isinstance(name, str) or not name:
                raise ExecutionError(
                    f"tenant entry {i} needs a non-empty string name"
                )
            where = f"tenant {name!r}"
            known = {"name", "priority", "weight"} | {
                f"{base}_{unit}"
                for base in _DURATION_FIELDS
                for unit in ("s", "ms")
            }
            unknown = set(entry) - known
            if unknown:
                raise ExecutionError(
                    f"{where}: unknown keys {sorted(unknown)}"
                )
            tenants.append(
                TenantConfig(
                    name=name,
                    priority=entry.get("priority", "standard"),
                    weight=float(entry.get("weight", 1.0)),
                    slo_p99_s=_parse_duration(entry, "slo_p99", where),
                    default_deadline_s=_parse_duration(
                        entry, "default_deadline", where
                    ),
                )
            )
        return cls(tenants, strict=strict)

    @classmethod
    def from_file(cls, path, strict: bool = False) -> "TenantRegistry":
        """Load a registry from a ``tenants.json`` file."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            raise ExecutionError(
                f"cannot read tenants file {path!r}: {exc}"
            ) from exc
        return cls.from_json(text, strict=strict)
