"""Subgraph extraction.

Cuts a set of operator nodes out of a parent graph and packages it as a
standalone model (paper §IV-B: the profiler treats each subgraph as an
independent DNN and sends it through the whole compiler pipeline).

* Parameters referenced by the subgraph are copied in — weights live with
  the subgraph on whatever device it is placed on, so only *activations*
  ever cross the PCIe link.
* Every external dependency (a parent input, or a value produced by
  another subgraph) becomes a placeholder whose id equals the parent node
  id.  When several subgraphs consume the same value, each gets its own
  replicated placeholder pointing at the same upstream stream (§IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PartitionError
from repro.ir.graph import Graph
from repro.ir.node import Node, NodeKind

__all__ = ["SubgraphInfo", "extract_subgraph"]


@dataclass(frozen=True)
class SubgraphInfo:
    """One extracted subgraph.

    Attributes:
        id: unique subgraph id, e.g. ``"p1_b0"``.
        phase_index: which partition phase it belongs to.
        node_ids: parent-graph op-node ids folded into this subgraph.
        graph: the standalone extracted graph.  Placeholder ids equal the
            parent node ids they stand for; output ids are parent node ids.
        boundary_inputs: placeholder ids (== parent node ids) the subgraph
            reads from outside.
        boundary_outputs: parent node ids this subgraph produces for the
            outside (other subgraphs or the model caller).
    """

    id: str
    phase_index: int
    node_ids: frozenset[str]
    graph: Graph
    boundary_inputs: tuple[str, ...]
    boundary_outputs: tuple[str, ...]

    @property
    def bytes_in(self) -> float:
        """Total activation bytes entering the subgraph."""
        return float(
            sum(self.graph.node(i).ty.size_bytes for i in self.boundary_inputs)
        )

    @property
    def bytes_out(self) -> float:
        """Total activation bytes leaving the subgraph."""
        return float(
            sum(self.graph.node(o).ty.size_bytes for o in self.boundary_outputs)
        )


def extract_subgraph(
    parent: Graph,
    op_node_ids: set[str],
    subgraph_id: str,
    phase_index: int = 0,
) -> SubgraphInfo:
    """Extract ``op_node_ids`` from ``parent`` as a standalone graph."""
    for nid in op_node_ids:
        node = parent.node(nid)
        if not node.is_op:
            raise PartitionError(
                f"subgraph member {nid!r} is a {node.kind.value} node; "
                "only operator nodes are partitioned"
            )

    members = set(op_node_ids)
    nodes: list[Node] = []
    placeholders: list[str] = []
    added: set[str] = set()

    for nid in parent.topo_order():
        if nid not in members:
            continue
        node = parent.node(nid)
        for src in node.inputs:
            if src in members or src in added:
                continue
            src_node = parent.node(src)
            if src_node.is_const:
                nodes.append(src_node)  # parameters are copied in
            else:
                # Parent input or external op value -> replicated placeholder.
                nodes.append(
                    Node(id=src, kind=NodeKind.INPUT, ty=src_node.ty,
                         attrs=src_node.attrs)
                )
                placeholders.append(src)
            added.add(src)
        nodes.append(node)
        added.add(nid)

    outputs: list[str] = []
    parent_outputs = set(parent.outputs)
    for nid in parent.topo_order():
        if nid not in members:
            continue
        escapes = any(c not in members for c in parent.consumers(nid))
        if escapes or nid in parent_outputs:
            outputs.append(nid)
    if not outputs:
        raise PartitionError(
            f"subgraph {subgraph_id!r} has no outputs; it would be dead code"
        )

    graph = Graph(f"{parent.name}::{subgraph_id}", nodes, outputs)
    return SubgraphInfo(
        id=subgraph_id,
        phase_index=phase_index,
        node_ids=frozenset(members),
        graph=graph,
        boundary_inputs=tuple(placeholders),
        boundary_outputs=tuple(outputs),
    )
