"""Online adaptation: re-correct the schedule when runtime behaviour drifts.

DUET's correction step exists because run time is "unpredictable"
(§IV-C); the paper applies it once, offline.  This module closes the loop
at serving time: the engine watches per-subgraph execution times of live
requests, estimates a per-device slowdown factor relative to its profiled
expectations (EWMA-smoothed), and when a device drifts past a threshold —
a co-tenant stealing CPU cores, GPU thermal throttling — it re-profiles
against its updated machine belief and re-runs the scheduling pipeline.

The serving loop stays latency-faithful: adaptation decisions use only
observations an executor would really have (task start/finish times).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compiler.pipeline import Compiler
from repro.core.partition import partition_graph
from repro.core.profiler import CompilerAwareProfiler
from repro.core.scheduler import GreedyCorrectionScheduler
from repro.devices.machine import Machine, scale_device
from repro.errors import SchedulingError
from repro.ir.graph import Graph
from repro.runtime.plan import HeteroPlan
from repro.runtime.simulator import simulate

__all__ = ["ServeRecord", "AdaptiveDuetEngine"]


@dataclass(frozen=True)
class ServeRecord:
    """Outcome of serving one request."""

    index: int
    latency: float
    adapted: bool
    assumed_slowdown: dict[str, float]
    placement: dict[str, str]


@dataclass
class AdaptiveDuetEngine:
    """DUET with a runtime drift monitor.

    Attributes:
        base_machine: the machine as profiled offline (believed nominal).
        drift_threshold: relative deviation of the EWMA observed/expected
            time ratio that triggers re-optimization (e.g. 0.25 = 25%).
        ewma_alpha: smoothing factor of the drift estimator.
        cooldown: minimum requests between adaptations (prevents thrash).
    """

    base_machine: Machine
    drift_threshold: float = 0.25
    ewma_alpha: float = 0.25
    cooldown: int = 10
    compiler: Compiler = field(default_factory=Compiler)

    graph: Graph | None = field(default=None, init=False)
    plan: HeteroPlan | None = field(default=None, init=False)
    placement: dict[str, str] = field(default_factory=dict, init=False)
    assumed_slowdown: dict[str, float] = field(
        default_factory=lambda: {"cpu": 1.0, "gpu": 1.0}, init=False
    )
    _ewma_ratio: dict[str, float] = field(
        default_factory=lambda: {"cpu": 1.0, "gpu": 1.0}, init=False
    )
    # Expected per-task times under the current machine belief; populated
    # by _reschedule() and required by serve_one()'s drift monitor.
    _expected: dict[str, float] = field(default_factory=dict, init=False)
    _since_adapt: int = field(default=0, init=False)
    _served: int = field(default=0, init=False)
    adaptations: int = field(default=0, init=False)

    # ------------------------------------------------------------------

    def _believed_machine(self) -> Machine:
        return Machine(
            cpu=scale_device(self.base_machine.cpu, self.assumed_slowdown["cpu"]),
            gpu=scale_device(self.base_machine.gpu, self.assumed_slowdown["gpu"]),
            interconnect=self.base_machine.interconnect,
        )

    def _reschedule(self) -> None:
        assert self.graph is not None
        machine = self._believed_machine()
        partition = partition_graph(self.graph)
        profiles = CompilerAwareProfiler(
            machine=machine, compiler=self.compiler
        ).profile_partition(partition)
        scheduler = GreedyCorrectionScheduler(machine=machine)
        result = scheduler.schedule(self.graph, partition, profiles)
        self.plan = result.plan
        self.placement = result.placement
        # Expected per-task times under the current belief, for monitoring.
        self._expected = {}
        for task in result.plan.tasks:
            device = machine.device(task.device)
            self._expected[task.task_id] = sum(
                device.kernel_time(k.cost) for k in task.module.kernels
            )

    def start(self, graph: Graph) -> None:
        """Optimize ``graph`` under nominal conditions and begin serving."""
        self.graph = graph
        self.assumed_slowdown = {"cpu": 1.0, "gpu": 1.0}
        self._ewma_ratio = {"cpu": 1.0, "gpu": 1.0}
        self._expected = {}
        self._reschedule()

    # ------------------------------------------------------------------

    def serve_one(
        self,
        true_machine: Machine | None = None,
        rng: np.random.Generator | None = None,
    ) -> ServeRecord:
        """Serve one request on the (possibly drifted) true machine.

        Args:
            true_machine: the machine as it actually behaves right now;
                defaults to the nominal one.
            rng: optional noise sampling.
        """
        if self.plan is None or self.graph is None or not self._expected:
            # Also catches misuse like assigning ``plan`` directly: the
            # drift monitor is meaningless without the expectations that
            # start() -> _reschedule() computes.
            raise SchedulingError("call start(graph) before serve_one()")
        true_machine = true_machine or self.base_machine
        result = simulate(self.plan, true_machine, rng=rng)
        self._served += 1
        self._since_adapt += 1

        # Update per-device drift estimates from observed task durations.
        observed: dict[str, list[tuple[float, float]]] = {"cpu": [], "gpu": []}
        for rec in result.tasks:
            expected = self._expected.get(rec.task_id, 0.0)
            if expected > 1e-7:  # ignore negligible tasks: noisy ratios
                observed[rec.device].append((rec.duration, expected))
        for dev, pairs in observed.items():
            if not pairs:
                continue
            total_obs = sum(o for o, _ in pairs)
            total_exp = sum(e for _, e in pairs)
            ratio = total_obs / total_exp
            self._ewma_ratio[dev] += self.ewma_alpha * (
                ratio - self._ewma_ratio[dev]
            )

        adapted = False
        if self._since_adapt >= self.cooldown:
            drifted = [
                dev
                for dev, r in self._ewma_ratio.items()
                if abs(r - 1.0) > self.drift_threshold
            ]
            if drifted:
                for dev in drifted:
                    self.assumed_slowdown[dev] *= self._ewma_ratio[dev]
                    self._ewma_ratio[dev] = 1.0
                self._reschedule()
                self.adaptations += 1
                self._since_adapt = 0
                adapted = True

        return ServeRecord(
            index=self._served,
            latency=result.latency,
            adapted=adapted,
            assumed_slowdown=dict(self.assumed_slowdown),
            placement=dict(self.placement),
        )
