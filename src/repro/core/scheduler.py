"""Greedy-correction subgraph scheduling (paper §IV-C, Algorithm 1).

Three steps:

1. **Critical path on the fastest device.**  Sequential-phase subgraphs go
   to whichever device runs them faster.  In each multi-path phase, the
   subgraph with the maximum cost (cost = fastest-device time) is the one
   on the critical path; it is pinned to its fastest device.
2. **Greedy placement of the rest.**  Remaining multi-path subgraphs are
   sorted by execution time and placed, one by one, on the device that
   minimizes the increase of the phase's makespan (the local proxy for
   critical-path growth).
3. **Correction.**  For each multi-path phase, repeatedly try swapping a
   (CPU subgraph, GPU subgraph) pair — either side may be empty, i.e. a
   single move — and keep the swap that most reduces *measured* end-to-end
   latency.  Measuring real executions (here: the simulator in mean mode)
   folds the communication cost in without having to estimate it, which
   the paper argues is error-prone (§IV-C).  Stop when a round yields no
   gain.

The correction operator is Kernighan-Lin-style refinement, but the
objective is latency, not edge cut.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.core.phases import PhasedPartition, PhaseType
from repro.core.placement import PlanAssembler, validate_placement
from repro.core.profiler import SubgraphProfile
from repro.devices.machine import Machine
from repro.errors import SchedulingError
from repro.ir.graph import Graph
from repro.runtime.plan import HeteroPlan
from repro.runtime.simulator import simulate

__all__ = [
    "LatencyOracle",
    "ScheduleResult",
    "GreedyCorrectionScheduler",
    "correct_placement",
    "PolicyDecision",
    "register_policy",
    "available_policies",
    "schedule_with_policy",
    "DEFAULT_POLICY",
]


@dataclass(frozen=True)
class CorrectionStep:
    """One applied swap of the correction loop.

    ``pair`` is the device pair the swap exchanged between; the legacy
    field names read "forward" (``moved_to_gpu``: the subgraph moved
    ``pair[0] -> pair[1]``) and "backward" (``moved_to_cpu``: moved
    ``pair[1] -> pair[0]``) — on the default machine the pair is
    ``("cpu", "gpu")`` and the names are literal.
    """

    phase_index: int
    moved_to_gpu: str | None
    moved_to_cpu: str | None
    latency_before: float
    latency_after: float
    pair: tuple[str, str] = ("cpu", "gpu")


@dataclass
class ScheduleResult:
    """Outcome of scheduling: the placement, its plan, and diagnostics.

    Attributes:
        measurements: simulator invocations actually performed while
            scheduling (cache hits are free and not counted).
        cache_hits / cache_misses: latency-oracle cache statistics for
            this scheduling run; ``cache_misses == measurements``, and
            ``cache_hits + cache_misses`` is what an unmemoized scheduler
            would have simulated.
    """

    placement: dict[str, str]
    plan: HeteroPlan
    latency: float
    initial_latency: float
    corrections: list[CorrectionStep] = field(default_factory=list)
    measurements: int = 0
    cache_hits: int = 0
    cache_misses: int = 0


class LatencyOracle:
    """Memoized latency oracle: placement -> measured mean latency.

    The correction loop re-measures many placements — trial swaps revisit
    earlier configurations across rounds, sweeps, and restarts (the
    Random+Correction baseline) — so measured latencies are cached under a
    placement key.  Plans are assembled from per-(subgraph, device) cached
    task specs, and cache misses run the simulator's timing-only fast path
    with precomputed mean kernel durations.  All of this is exact: a cache
    hit returns bit-identically what re-simulation would.

    Attributes:
        hits: measure calls answered from the cache.
        misses: measure calls that ran the simulator (== simulations).
        overlap: when true, placements are priced under the overlapped
            (double-buffered) transfer discipline — the cost model of an
            ``overlap=True`` engine.
    """

    def __init__(
        self,
        graph: Graph,
        partition: PhasedPartition,
        profiles: Mapping[str, SubgraphProfile],
        machine: Machine,
        cache: bool = True,
        overlap: bool = False,
    ):
        self._assembler = PlanAssembler(graph, partition, profiles)
        self._partition = partition
        self._profiles = profiles
        self._machine = machine
        self._ids = tuple(sg.id for sg in partition.subgraphs)
        self._enabled = cache
        self._latencies: dict[tuple[str, ...], float] = {}
        self._kernel_times: dict[tuple[str, str], tuple[float, ...]] = {}
        self.overlap = overlap
        self.hits = 0
        self.misses = 0

    @property
    def calls(self) -> int:
        """Total measure calls (hits + misses)."""
        return self.hits + self.misses

    @property
    def simulations(self) -> int:
        """Simulator invocations performed (== misses)."""
        return self.misses

    def _key(self, placement: Mapping[str, str]) -> tuple[str, ...]:
        try:
            return tuple(placement[sid] for sid in self._ids)
        except KeyError as exc:
            raise SchedulingError(
                f"placement misses subgraph {exc.args[0]!r}"
            ) from exc

    def _mean_kernel_times(self, sid: str, device: str) -> tuple[float, ...]:
        key = (sid, device)
        times = self._kernel_times.get(key)
        if times is None:
            module = self._profiles[sid].modules[device]
            dev = self._machine.device(device)
            times = tuple(dev.kernel_time(k.cost) for k in module.kernels)
            self._kernel_times[key] = times
        return times

    def plan(self, placement: Mapping[str, str]) -> HeteroPlan:
        """The executable plan of a placement (from cached task specs)."""
        return self._assembler.build(placement)

    def measure(self, placement: Mapping[str, str]) -> float:
        """Measured mean end-to-end latency of ``placement``."""
        key = self._key(placement)
        cached = self._latencies.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        plan = self._assembler.build(placement)
        kernel_times = {
            sid: self._mean_kernel_times(sid, placement[sid]) for sid in self._ids
        }
        latency = simulate(
            plan,
            self._machine,
            record_kernels=False,
            kernel_times=kernel_times,
            overlap=self.overlap,
        ).latency
        self.misses += 1
        if self._enabled:
            self._latencies[key] = latency
        return latency

    __call__ = measure


def _measure_factory(
    graph: Graph,
    partition: PhasedPartition,
    profiles: Mapping[str, SubgraphProfile],
    machine: Machine,
    overlap: bool = False,
) -> LatencyOracle:
    """A (memoized) latency oracle for this scheduling problem."""
    return LatencyOracle(graph, partition, profiles, machine, overlap=overlap)


def correct_placement(
    placement: dict[str, str],
    partition: PhasedPartition,
    measure: Callable[[Mapping[str, str]], float],
    max_rounds: int = 32,
    epsilon: float = 1e-9,
    devices: tuple[str, ...] = ("cpu", "gpu"),
) -> tuple[dict[str, str], list[CorrectionStep], int]:
    """Step 3: KL-style swap refinement driven by measured latency.

    Algorithm 1 iterates until *no swap anywhere* improves measured
    latency.  Because the shared PCIe link couples phases, a swap applied
    in a later phase can unlock a gain in an earlier one, so a single pass
    over the phases is not enough: the per-phase refinement is wrapped in
    an outer sweep that repeats until one full sweep applies no swap
    (bounded by ``max_rounds`` sweeps).

    On an N-device mesh the swap move set generalizes per device *pair*:
    each round evaluates, for every pair ``(a, b)`` in mesh order, every
    (subgraph on ``a``, subgraph on ``b``) exchange — either side may be
    empty, i.e. a single move — and applies the globally best one.  With
    two devices this enumerates exactly the paper's (CPU, GPU) trials in
    the original order, so the refinement (and its measure-call sequence)
    is unchanged on the default machine.

    Returns the refined placement, the applied steps, and the number of
    ``measure`` calls made (exactly one call per evaluated placement,
    including the initial one — with a memoized oracle, repeated
    placements cost no extra simulation).
    """
    placement = dict(placement)
    steps: list[CorrectionStep] = []
    n_measures = 1
    t_old = measure(placement)

    pairs = list(itertools.combinations(devices, 2))
    phases = list(partition.multi_path_phases())
    for _sweep in range(max_rounds):
        swept_gain = False
        for phase in phases:
            ids = [sg.id for sg in phase.subgraphs]
            for _round in range(max_rounds):
                best_gain = 0.0
                best_move: tuple[str | None, str | None] | None = None
                best_devpair: tuple[str, str] | None = None
                best_latency = t_old
                for dev_a, dev_b in pairs:
                    a_side = [s for s in ids if placement[s] == dev_a]
                    b_side = [s for s in ids if placement[s] == dev_b]
                    # Pairs (si from a, sj from b); one side may be empty,
                    # which is a single-subgraph move.
                    for si, sj in itertools.product(
                        a_side + [None], b_side + [None]
                    ):
                        if si is None and sj is None:
                            continue
                        trial = dict(placement)
                        if si is not None:
                            trial[si] = dev_b
                        if sj is not None:
                            trial[sj] = dev_a
                        t_new = measure(trial)
                        n_measures += 1
                        gain = t_old - t_new
                        if gain > best_gain + epsilon:
                            best_gain = gain
                            best_move = (si, sj)
                            best_devpair = (dev_a, dev_b)
                            best_latency = t_new
                if best_move is None:
                    break
                si, sj = best_move
                dev_a, dev_b = best_devpair
                if si is not None:
                    placement[si] = dev_b
                if sj is not None:
                    placement[sj] = dev_a
                steps.append(
                    CorrectionStep(
                        phase_index=phase.index,
                        moved_to_gpu=si,
                        moved_to_cpu=sj,
                        latency_before=t_old,
                        latency_after=best_latency,
                        pair=(dev_a, dev_b),
                    )
                )
                t_old = best_latency
                swept_gain = True
        if not swept_gain:
            break
    return placement, steps, n_measures


@dataclass
class GreedyCorrectionScheduler:
    """The paper's scheduler: greedy initialization + measured correction.

    ``overlap`` selects the cost model the correction loop measures
    against (lazy vs. double-buffered transfers); it only applies when the
    scheduler builds its own oracle — a caller-supplied oracle keeps its
    own setting.
    """

    machine: Machine
    max_correction_rounds: int = 32
    epsilon: float = 1e-9
    overlap: bool = False

    def initial_placement(
        self,
        partition: PhasedPartition,
        profiles: Mapping[str, SubgraphProfile],
    ) -> dict[str, str]:
        """Steps 1 and 2: critical path + greedy balancing."""
        devices = self.machine.device_names
        placement: dict[str, str] = {}
        for phase in partition.phases:
            if phase.type is PhaseType.SEQUENTIAL:
                sg = phase.subgraphs[0]
                placement[sg.id] = profiles[sg.id].best_device
                continue

            # Step 1: the max-cost subgraph (cost = fastest-device time)
            # defines the phase's critical path; pin it to its fast device.
            members = sorted(
                phase.subgraphs,
                key=lambda sg: profiles[sg.id].best_time,
                reverse=True,
            )
            critical = members[0]
            placement[critical.id] = profiles[critical.id].best_device
            loads = {dev: 0.0 for dev in devices}
            loads[placement[critical.id]] += profiles[critical.id].best_time

            # Step 2: greedily place the rest, largest first, minimizing
            # the phase makespan.
            for sg in members[1:]:
                prof = profiles[sg.id]
                options = {}
                for dev in devices:
                    trial = dict(loads)
                    trial[dev] += prof.time_on(dev)
                    options[dev] = max(trial.values())
                dev = min(options, key=lambda d: (options[d], prof.time_on(d)))
                placement[sg.id] = dev
                loads[dev] += prof.time_on(dev)
        return placement

    def schedule(
        self,
        graph: Graph,
        partition: PhasedPartition,
        profiles: Mapping[str, SubgraphProfile],
        initial: Mapping[str, str] | None = None,
        oracle: LatencyOracle | None = None,
    ) -> ScheduleResult:
        """Run the full greedy-correction pipeline.

        Args:
            graph: the model.
            partition: its phased partition.
            profiles: compiler-aware profiles per subgraph.
            initial: override the greedy initialization (used by the
                Random+Correction baseline of §VI-C).
            oracle: reuse a shared latency oracle so trial placements
                already measured — by an earlier schedule() call, a
                restart, or an ablation arm — are never re-simulated.
                Must have been built for the same (graph, partition,
                profiles, machine).
        """
        if oracle is None:
            oracle = _measure_factory(
                graph, partition, profiles, self.machine, overlap=self.overlap
            )
        hits_before, misses_before = oracle.hits, oracle.misses

        if initial is None:
            placement = self.initial_placement(partition, profiles)
        else:
            placement = dict(initial)
        validate_placement(partition, placement, self.machine.device_names)
        initial_latency = oracle.measure(placement)

        placement, steps, _calls = correct_placement(
            placement,
            partition,
            oracle,
            max_rounds=self.max_correction_rounds,
            epsilon=self.epsilon,
            devices=self.machine.device_names,
        )
        # The corrected placement was measured during correction; both the
        # final latency and its plan come from the oracle's caches.
        latency = oracle.measure(placement)
        plan = oracle.plan(placement)
        return ScheduleResult(
            placement=placement,
            plan=plan,
            latency=latency,
            initial_latency=initial_latency,
            corrections=steps,
            measurements=oracle.misses - misses_before,
            cache_hits=oracle.hits - hits_before,
            cache_misses=oracle.misses - misses_before,
        )


# ----------------------------------------------------------------------
# Policy registry: every scheduler selectable by name.


@dataclass(frozen=True)
class PolicyDecision:
    """What one policy decided for one scheduling problem.

    Attributes:
        policy: registry name of the policy.
        placement: subgraph id -> device.
        latency: the placement's latency measured by the shared oracle
            (comparable across policies — same cost model, same caches).
        estimate: the policy's own analytic cost where it has one (DP,
            exhaustive, HEFT), else ``None``.
    """

    policy: str
    placement: dict[str, str]
    latency: float
    estimate: float | None = None


_POLICIES: dict[str, Callable] = {}


def register_policy(name: str):
    """Class/function decorator adding a policy under ``name``.

    A policy is ``fn(graph, partition, profiles, machine, *, oracle,
    seed) -> (placement, estimate | None)``.
    """

    def deco(fn):
        _POLICIES[name] = fn
        return fn

    return deco


def available_policies() -> tuple[str, ...]:
    """Registered policy names, sorted."""
    return tuple(sorted(_POLICIES))


def schedule_with_policy(
    name: str,
    graph: Graph,
    partition: PhasedPartition,
    profiles: Mapping[str, SubgraphProfile],
    machine: Machine,
    *,
    oracle: LatencyOracle | None = None,
    seed: int = 0,
) -> PolicyDecision:
    """Run one registered policy and measure its placement.

    Pass a shared ``oracle`` when comparing policies so every placement is
    priced by the same memoized cost model; ``seed`` feeds the stochastic
    policies (currently ``random``) so tournaments are reproducible.
    """
    fn = _POLICIES.get(name)
    if fn is None:
        raise SchedulingError(
            f"unknown scheduling policy {name!r}; "
            f"available: {', '.join(available_policies())}"
        )
    if oracle is None:
        oracle = _measure_factory(graph, partition, profiles, machine)
    placement, estimate = fn(
        graph, partition, profiles, machine, oracle=oracle, seed=seed
    )
    validate_placement(partition, placement, machine.device_names)
    return PolicyDecision(
        policy=name,
        placement=dict(placement),
        latency=oracle.measure(placement),
        estimate=estimate,
    )


@register_policy("greedy")
def _policy_greedy(graph, partition, profiles, machine, *, oracle, seed):
    result = GreedyCorrectionScheduler(machine=machine).schedule(
        graph, partition, profiles, oracle=oracle
    )
    return result.placement, None


@register_policy("dp")
def _policy_dp(graph, partition, profiles, machine, *, oracle, seed):
    from repro.core.schedulers.dp import DP_MAX_DEVICES, dp_placement

    if len(machine.devices) > DP_MAX_DEVICES:
        # The per-phase assignment enumeration is |devices|^k; beyond the
        # device threshold fall back to HEFT's list scheduling, which
        # scales linearly in mesh width.
        from repro.core.schedulers.heft import heft_placement

        return heft_placement(graph, partition, profiles, machine)
    placement, estimate = dp_placement(graph, partition, profiles, machine)
    return placement, estimate


@register_policy("heft")
def _policy_heft(graph, partition, profiles, machine, *, oracle, seed):
    from repro.core.schedulers.heft import heft_placement

    placement, estimate = heft_placement(graph, partition, profiles, machine)
    return placement, estimate


@register_policy("round_robin")
def _policy_round_robin(graph, partition, profiles, machine, *, oracle, seed):
    from repro.core.schedulers.round_robin import round_robin_placement

    return round_robin_placement(partition, devices=machine.device_names), None


@register_policy("random")
def _policy_random(graph, partition, profiles, machine, *, oracle, seed):
    from repro.core.schedulers.random_sched import random_placement

    return (
        random_placement(
            partition,
            np.random.default_rng(seed),
            devices=machine.device_names,
        ),
        None,
    )


@register_policy("exhaustive")
def _policy_exhaustive(graph, partition, profiles, machine, *, oracle, seed):
    from repro.core.schedulers.exhaustive import exhaustive_placement

    placement, estimate = exhaustive_placement(
        graph, partition, profiles, machine, oracle=oracle
    )
    return placement, estimate


#: The policy ``schedule_with_policy`` recommends when none is named —
#: promoted from the tournament league table (``python -m repro
#: tournament``, see EXPERIMENTS.md).  DP ties greedy-correction on every
#: regular zoo model and avoids greedy's swap-only correction blind spot
#: on the transfer-bound join (the KL-style swap move set cannot reach the
#: single-flip optimum there), so it wins the lazy league.  With
#: ``overlap=True`` greedy's placement is the fastest overall and greedy
#: wins that league; greedy-correction also remains the paper's algorithm
#: and the engine's built-in scheduler (§V).
DEFAULT_POLICY = "dp"
