"""DuetEngine: the end-to-end inference engine (paper Fig. 6).

Pipeline: coarse-grained partitioning → compiler-aware profiling →
greedy-correction scheduling → heterogeneous execution, with an automatic
fallback to the best single device when co-execution does not win
(§VI-E, Table III).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.compiler.lowering import CompiledModule
from repro.compiler.pipeline import Compiler
from repro.core.partition import partition_graph
from repro.core.phases import PhasedPartition
from repro.core.profiler import CompilerAwareProfiler, SubgraphProfile
from repro.core.scheduler import GreedyCorrectionScheduler, ScheduleResult
from repro.devices.machine import Machine, default_machine
from repro.ir.graph import Graph
from repro.errors import ProfilingError
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.measurement import LatencyStats, measure_latency_batch
from repro.runtime.plan import HeteroPlan
from repro.runtime.resilient import (
    ExecutionReport,
    ResilienceConfig,
    ResilientExecutor,
)
from repro.runtime.session import EngineSession
from repro.runtime.simulator import ExecutionResult, simulate, simulate_batch
from repro.runtime.single import run_single_device, single_device_plan

__all__ = ["DuetOptimization", "DuetEngine"]


@dataclass
class DuetOptimization:
    """Everything the engine decided for one model.

    Attributes:
        graph: the input model.
        partition: its phased partition.
        profiles: per-subgraph compiler-aware profiles.
        schedule: the greedy-correction scheduling result.
        plan: the plan actually executed — the heterogeneous plan, or a
            single-device plan when the engine fell back.
        fallback_device: the single device used on fallback, else ``None``.
        latency: expected (mean) end-to-end latency of ``plan``.
        single_device_latency: mean latency of the best single device.
        degradation_plans: device -> standing single-device plan built
            from the whole-model modules the fallback comparison already
            compiles (§VI-E).  The resilient executor restarts on the
            survivor's plan when the other device is lost before any
            subgraph completed, and callers should serve follow-up
            requests from it after any failover.
    """

    graph: Graph
    partition: PhasedPartition
    profiles: dict[str, SubgraphProfile]
    schedule: ScheduleResult
    plan: HeteroPlan
    fallback_device: str | None
    latency: float
    single_device_latency: dict[str, float]
    degradation_plans: dict[str, HeteroPlan] = field(default_factory=dict)

    @property
    def used_fallback(self) -> bool:
        return self.fallback_device is not None

    @property
    def placement(self) -> dict[str, str]:
        return self.schedule.placement

    def memory_report(self):
        """Per-device memory footprint of the chosen plan."""
        from repro.runtime.memory import memory_report

        return memory_report(self.plan)


@dataclass
class DuetEngine:
    """The DUET inference engine.

    Typical use::

        engine = DuetEngine()
        opt = engine.optimize(graph)
        result = engine.run(opt, inputs)      # numeric outputs + timing
        stats = engine.latency_stats(opt)     # 5000-run distribution

    With ``validate=True`` (or ``REPRO_VALIDATE=1`` in the environment)
    every scheduling decision is checked against the structural
    invariants in :mod:`repro.testing.invariants` before it is returned;
    violations raise :class:`~repro.errors.InvariantViolation`.
    """

    machine: Machine = field(default_factory=default_machine)
    compiler: Compiler = field(default_factory=Compiler)
    profile_sample_runs: int = 0
    fallback_margin: float = 0.0  # require DUET to beat single-device by this fraction
    validate: bool | None = None  # None: honor the REPRO_VALIDATE env var
    # Schedule and price plans under the double-buffered transfer
    # discipline (cross-device copies overlap compute); numerics are
    # identical either way — only the cost model and virtual clock change.
    overlap: bool = False
    # Kernel backend shorthand: DuetEngine(backend="native") lowers every
    # module (plan subgraphs, single-device fallbacks, serving sessions)
    # through the C renderer + .so cache, falling back per-kernel to the
    # NumPy closures.  None keeps whatever the supplied compiler says.
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.backend is not None and self.backend != self.compiler.backend:
            import dataclasses

            self.compiler = dataclasses.replace(self.compiler, backend=self.backend)

    def _should_validate(self) -> bool:
        if self.validate is not None:
            return self.validate
        import os

        return os.environ.get("REPRO_VALIDATE", "").strip() not in ("", "0")

    def _debug_validate(self, graph, partition, schedule) -> None:
        """Debug-flag invariant validation of a fresh scheduling decision.

        Raises :class:`~repro.errors.InvariantViolation` listing every
        broken invariant.  Imported lazily: :mod:`repro.testing` depends
        on :mod:`repro.core`, not the other way around.
        """
        from repro.testing.invariants import assert_valid, validate_schedule

        assert_valid(
            validate_schedule(
                graph, partition, schedule.placement, schedule.plan,
                devices=self.machine.device_names, host=self.machine.host,
            )
        )

    def _single_device_modules(self, graph: Graph) -> dict[str, CompiledModule]:
        """One whole-model module per mesh device, in machine order.

        Each device compiles for its spec's kind-appropriate target; on
        the default machine this is exactly the historical
        ``{"cpu": ..., "gpu": ...}`` pair.
        """
        from repro.core.profiler import device_target

        return {
            device.name: self.compiler.compile(graph, device_target(device))
            for device in self.machine.devices
        }

    def optimize(
        self, graph: Graph, profile_path: str | None = None
    ) -> DuetOptimization:
        """Partition, profile, schedule, and pick hetero vs. fallback.

        Args:
            graph: the model.
            profile_path: optional path to the offline profiling artifact
                (§IV-B one-time cost).  When the file exists and matches
                the partition, its timings are reused; otherwise the model
                is profiled and the artifact is (re)written.  Only
                artifact problems (:class:`ProfilingError`: unreadable
                file, fingerprint mismatch, malformed payload) trigger
                re-profiling — any other exception is a genuine bug and
                propagates.
        """
        from repro.core.profile_store import load_profiles, save_profiles

        partition = partition_graph(graph)
        profiles = None
        if profile_path is not None:
            import os

            if os.path.exists(profile_path):
                try:
                    profiles = load_profiles(
                        partition, profile_path, compiler=self.compiler
                    )
                except ProfilingError:
                    profiles = None  # stale/corrupt artifact: re-profile
        if profiles is None:
            profiler = CompilerAwareProfiler(
                machine=self.machine,
                compiler=self.compiler,
                sample_runs=self.profile_sample_runs,
            )
            profiles = profiler.profile_partition(partition)
            if profile_path is not None:
                try:
                    save_profiles(partition, profiles, profile_path)
                except OSError as exc:
                    # An unwritable artifact (read-only dir, disk full)
                    # must not sink the optimization: we still hold the
                    # fresh in-memory profiles; next run just re-profiles.
                    warnings.warn(
                        f"could not write profile artifact {profile_path}: "
                        f"{exc}; continuing with in-memory profiles",
                        RuntimeWarning,
                        stacklevel=2,
                    )
        scheduler = GreedyCorrectionScheduler(
            machine=self.machine, overlap=self.overlap
        )
        schedule = scheduler.schedule(graph, partition, profiles)
        if self._should_validate():
            self._debug_validate(graph, partition, schedule)

        single_modules = self._single_device_modules(graph)
        # Priced under the same transfer discipline as the hetero schedule
        # so the fallback comparison is apples-to-apples.
        single_latency = {
            dev: run_single_device(
                mod, dev, self.machine, overlap=self.overlap
            ).latency
            for dev, mod in single_modules.items()
        }
        best_dev = min(single_latency, key=lambda d: single_latency[d])
        best_single = single_latency[best_dev]

        # Fallback (§VI-E): co-execution must actually win, otherwise run
        # on the fastest single device.
        # The whole-model modules double as standing degradation plans:
        # if a device is permanently lost at runtime, the survivor's plan
        # can serve the request (and all follow-ups) alone.
        degradation_plans = {
            dev: single_device_plan(mod, dev)
            for dev, mod in single_modules.items()
        }

        if schedule.latency < best_single * (1.0 - self.fallback_margin):
            plan = schedule.plan
            fallback = None
            latency = schedule.latency
        else:
            plan = degradation_plans[best_dev]
            fallback = best_dev
            latency = best_single

        return DuetOptimization(
            graph=graph,
            partition=partition,
            profiles=profiles,
            schedule=schedule,
            plan=plan,
            fallback_device=fallback,
            latency=latency,
            single_device_latency=single_latency,
            degradation_plans=degradation_plans,
        )

    def run(
        self,
        opt: DuetOptimization,
        inputs: Mapping[str, np.ndarray] | None = None,
        rng: np.random.Generator | None = None,
    ) -> ExecutionResult:
        """Execute one inference of an optimized model."""
        return simulate(
            opt.plan, self.machine, rng=rng, inputs=inputs, overlap=self.overlap
        )

    def session(
        self,
        graph_or_opt: Graph | DuetOptimization,
        profile_path: str | None = None,
        trace_sink=None,
        preallocate: bool = True,
    ) -> EngineSession:
        """Open a reusable serving session for one model.

        Optimizes the graph (or reuses an existing
        :class:`DuetOptimization`) exactly once, then returns an
        :class:`~repro.runtime.session.EngineSession` that serves
        repeated ``run(inputs)`` calls without re-entering the
        partitioner, profiler, or scheduler, with intermediate tensors
        preallocated in a reusable arena.

        Args:
            graph_or_opt: the model, or an optimization from
                :meth:`optimize`.
            profile_path: forwarded to :meth:`optimize` when a graph is
                given.
            trace_sink: optional callable receiving a structured
                :class:`~repro.runtime.core.ExecutionEvent` per task
                start/finish/error.
            preallocate: size the arena up front from declared node types.
        """
        if isinstance(graph_or_opt, DuetOptimization):
            opt = graph_or_opt
        else:
            opt = self.optimize(graph_or_opt, profile_path=profile_path)
        return EngineSession(
            opt.plan,
            validate=self._should_validate(),
            trace_sink=trace_sink,
            preallocate=preallocate,
            opt=opt,
        )

    def serve(
        self,
        models: "Graph | DuetOptimization | Mapping[str, Graph | DuetOptimization]",
        config=None,
        registry=None,
        **kwargs,
    ):
        """Open a multi-tenant serving frontend over one or more models.

        A thin constructor for
        :class:`~repro.serving.frontend.ServingFrontend`: each graph is
        optimized exactly once, then served from a pool of reusable
        sessions behind a bounded admission queue with dynamic batching.
        A single graph/optimization is served under the model name
        ``"default"``.

        Args:
            models: one model, or a mapping of model name -> model.
            config: a :class:`~repro.serving.frontend.ServingConfig`.
            registry: a :class:`~repro.serving.metrics.MetricsRegistry`
                to populate (fresh one by default).
            **kwargs: forwarded to ``ServingFrontend`` (``clock``,
                ``fault_injectors``, ``autostart``).
        """
        from repro.serving.frontend import ServingFrontend

        if isinstance(models, (Graph, DuetOptimization)):
            models = {"default": models}
        return ServingFrontend(
            self, models, config=config, registry=registry, **kwargs
        )

    def run_resilient(
        self,
        opt: DuetOptimization,
        inputs: Mapping[str, np.ndarray],
        config: ResilienceConfig | None = None,
        faults: FaultPlan | FaultInjector | None = None,
    ) -> ExecutionReport:
        """Execute one inference on the fault-tolerant threaded path.

        Runs ``opt.plan`` under :class:`~repro.runtime.resilient.
        ResilientExecutor`: transient faults are retried with backoff,
        deadlines enforced, and a permanent device loss fails the
        remaining work over to the survivor — using ``opt``'s standing
        single-device degradation plans when the loss strikes before any
        subgraph completed.

        Args:
            opt: an optimization from :meth:`optimize`.
            inputs: model input tensors (external input name -> array).
            config: retry/deadline/failover knobs; defaults to
                :class:`~repro.runtime.resilient.ResilienceConfig`.
            faults: optional chaos to inject — a declarative
                :class:`~repro.runtime.faults.FaultPlan` or a prepared
                :class:`~repro.runtime.faults.FaultInjector`.

        Returns:
            An :class:`~repro.runtime.resilient.ExecutionReport` with the
            outputs plus the structured fault/retry/failover event log.
            Terminal failures raise an
            :class:`~repro.errors.ExecutionError` subclass carrying the
            partial report as ``exc.report``.
        """
        if isinstance(faults, FaultInjector):
            injector = faults
        elif faults is not None:
            injector = FaultInjector(faults)
        else:
            injector = None
        executor = ResilientExecutor(
            opt.plan,
            config=config,
            fault_injector=injector,
            degradation_plans=opt.degradation_plans,
        )
        return executor.run(inputs)

    def latency_stats(
        self,
        opt: DuetOptimization,
        n_runs: int = 5000,
        warmup: int = 50,
        seed: int = 0,
    ) -> LatencyStats:
        """Sampled latency distribution of the chosen plan (paper §VI-A).

        Noise for all runs is drawn in batched NumPy arrays
        (:func:`~repro.runtime.simulator.simulate_batch`) instead of
        ``n_runs`` sequential simulator walks; seeded results stay
        reproducible.
        """
        return measure_latency_batch(
            lambda rng, n: simulate_batch(opt.plan, self.machine, rng, n),
            n_runs=n_runs,
            warmup=warmup,
            seed=seed,
        )
