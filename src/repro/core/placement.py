"""Placements and plan construction.

A *placement* maps each subgraph id to ``"cpu"`` or ``"gpu"``.  Combining a
partition, per-device compiled modules (from the profiler), and a placement
yields the :class:`~repro.runtime.plan.HeteroPlan` the executor runs.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.phases import PhasedPartition
from repro.core.profiler import SubgraphProfile
from repro.errors import SchedulingError
from repro.ir.graph import Graph
from repro.runtime.plan import HeteroPlan, Source, TaskSpec

__all__ = ["Placement", "validate_placement", "build_hetero_plan"]

Placement = Mapping[str, str]


def validate_placement(partition: PhasedPartition, placement: Placement) -> None:
    """Every subgraph placed exactly once, on a real device."""
    ids = {sg.id for sg in partition.subgraphs}
    missing = ids - set(placement)
    if missing:
        raise SchedulingError(f"placement misses subgraphs: {sorted(missing)}")
    extra = set(placement) - ids
    if extra:
        raise SchedulingError(f"placement names unknown subgraphs: {sorted(extra)}")
    for sid, dev in placement.items():
        if dev not in ("cpu", "gpu"):
            raise SchedulingError(f"subgraph {sid!r} placed on invalid device {dev!r}")


def build_hetero_plan(
    graph: Graph,
    partition: PhasedPartition,
    profiles: Mapping[str, SubgraphProfile],
    placement: Placement,
) -> HeteroPlan:
    """Wire placed subgraphs into an executable heterogeneous plan."""
    validate_placement(partition, placement)

    # Which subgraph produces each boundary tensor (parent node id)?
    producer: dict[str, tuple[str, int]] = {}
    for sg in partition.subgraphs:
        for idx, out_id in enumerate(sg.boundary_outputs):
            producer[out_id] = (sg.id, idx)

    tasks: list[TaskSpec] = []
    for sg in partition.subgraphs:
        profile = profiles.get(sg.id)
        if profile is None:
            raise SchedulingError(f"no profile for subgraph {sg.id!r}")
        device = placement[sg.id]
        module = profile.modules.get(device)
        if module is None:
            raise SchedulingError(
                f"subgraph {sg.id!r} has no module compiled for {device!r}"
            )
        sources: dict[str, Source] = {}
        for input_id in module.input_ids:
            parent_node = graph.node(input_id)
            if parent_node.is_input:
                sources[input_id] = Source(kind="external", ref=input_id)
            else:
                if input_id not in producer:
                    raise SchedulingError(
                        f"boundary input {input_id!r} of subgraph {sg.id!r} "
                        "has no producer"
                    )
                src_id, idx = producer[input_id]
                sources[input_id] = Source(kind="task", ref=src_id, output_index=idx)
        tasks.append(
            TaskSpec(
                task_id=sg.id,
                device=device,
                module=module,
                sources=sources,
                phase_index=sg.phase_index,
            )
        )

    outputs: list[tuple[str, int]] = []
    for out in graph.outputs:
        if out not in producer:
            raise SchedulingError(
                f"model output {out!r} is not produced by any subgraph"
            )
        outputs.append(producer[out])
    return HeteroPlan(tasks=tasks, outputs=outputs)
