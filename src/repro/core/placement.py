"""Placements and plan construction.

A *placement* maps each subgraph id to one of the machine's device names
(the default machine's ``"cpu"``/``"gpu"``, or any mesh device).
Combining a partition, per-device compiled modules (from the profiler),
and a placement yields the :class:`~repro.runtime.plan.HeteroPlan` the
executor runs.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.phases import PhasedPartition
from repro.core.profiler import SubgraphProfile
from repro.errors import SchedulingError
from repro.ir.graph import Graph
from repro.runtime.plan import HeteroPlan, Source, TaskSpec

__all__ = ["Placement", "PlanAssembler", "validate_placement", "build_hetero_plan"]

Placement = Mapping[str, str]

#: The default machine's device names — the fallback valid set when a
#: caller has no machine in scope.
DEFAULT_DEVICES = ("cpu", "gpu")


def validate_placement(
    partition: PhasedPartition,
    placement: Placement,
    devices: Iterable[str] | None = None,
) -> None:
    """Every subgraph placed exactly once, on one of ``devices``.

    ``devices`` is the machine's device-name set (pass
    ``machine.device_names``); without it the default 2-device machine's
    ``("cpu", "gpu")`` is assumed.
    """
    valid = tuple(devices) if devices is not None else DEFAULT_DEVICES
    ids = {sg.id for sg in partition.subgraphs}
    missing = ids - set(placement)
    if missing:
        raise SchedulingError(f"placement misses subgraphs: {sorted(missing)}")
    extra = set(placement) - ids
    if extra:
        raise SchedulingError(f"placement names unknown subgraphs: {sorted(extra)}")
    for sid, dev in placement.items():
        if dev not in valid:
            raise SchedulingError(
                f"subgraph {sid!r} placed on unknown device {dev!r}; "
                f"this machine's devices are {list(valid)}"
            )


class PlanAssembler:
    """Assembles heterogeneous plans from prebuilt per-(subgraph, device) parts.

    Plan construction is on the scheduler's hot path: every trial placement
    of the correction loop needs a plan.  A :class:`TaskSpec` depends only on
    the subgraph and the device it is placed on — not on where the *other*
    subgraphs live — so the assembler builds each task spec once and reuses
    it across every placement that pins the subgraph to that device.  The
    producer map and the output wiring are likewise placement-invariant and
    computed once.
    """

    def __init__(
        self,
        graph: Graph,
        partition: PhasedPartition,
        profiles: Mapping[str, SubgraphProfile],
        devices: Iterable[str] | None = None,
    ):
        self._graph = graph
        self._partition = partition
        self._profiles = profiles
        if devices is not None:
            self._devices = tuple(devices)
        else:
            # The devices the profiler actually compiled for — the true
            # valid set when no machine is in scope.
            compiled = {d for p in profiles.values() for d in p.modules}
            self._devices = tuple(sorted(compiled)) or DEFAULT_DEVICES
        # Which subgraph produces each boundary tensor (parent node id)?
        self._producer: dict[str, tuple[str, int]] = {}
        for sg in partition.subgraphs:
            for idx, out_id in enumerate(sg.boundary_outputs):
                self._producer[out_id] = (sg.id, idx)
        self._specs: dict[tuple[str, str], TaskSpec] = {}
        self._outputs: list[tuple[str, int]] | None = None

    def task_spec(self, sg, device: str) -> TaskSpec:
        """The (cached) task spec of one subgraph on one device."""
        key = (sg.id, device)
        spec = self._specs.get(key)
        if spec is not None:
            return spec
        profile = self._profiles.get(sg.id)
        if profile is None:
            raise SchedulingError(f"no profile for subgraph {sg.id!r}")
        module = profile.modules.get(device)
        if module is None:
            raise SchedulingError(
                f"subgraph {sg.id!r} has no module compiled for {device!r}"
            )
        sources: dict[str, Source] = {}
        for input_id in module.input_ids:
            parent_node = self._graph.node(input_id)
            if parent_node.is_input:
                sources[input_id] = Source(kind="external", ref=input_id)
            else:
                if input_id not in self._producer:
                    raise SchedulingError(
                        f"boundary input {input_id!r} of subgraph {sg.id!r} "
                        "has no producer"
                    )
                src_id, idx = self._producer[input_id]
                sources[input_id] = Source(kind="task", ref=src_id, output_index=idx)
        spec = TaskSpec(
            task_id=sg.id,
            device=device,
            module=module,
            sources=sources,
            phase_index=sg.phase_index,
        )
        self._specs[key] = spec
        return spec

    def _plan_outputs(self) -> list[tuple[str, int]]:
        if self._outputs is None:
            outputs: list[tuple[str, int]] = []
            for out in self._graph.outputs:
                if out not in self._producer:
                    raise SchedulingError(
                        f"model output {out!r} is not produced by any subgraph"
                    )
                outputs.append(self._producer[out])
            self._outputs = outputs
        return self._outputs

    def build(self, placement: Placement) -> HeteroPlan:
        """Wire a placement into an executable plan from cached parts."""
        validate_placement(self._partition, placement, self._devices)
        tasks = [
            self.task_spec(sg, placement[sg.id])
            for sg in self._partition.subgraphs
        ]
        return HeteroPlan(tasks=tasks, outputs=list(self._plan_outputs()))


def build_hetero_plan(
    graph: Graph,
    partition: PhasedPartition,
    profiles: Mapping[str, SubgraphProfile],
    placement: Placement,
    devices: Iterable[str] | None = None,
) -> HeteroPlan:
    """Wire placed subgraphs into an executable heterogeneous plan."""
    return PlanAssembler(graph, partition, profiles, devices=devices).build(
        placement
    )
