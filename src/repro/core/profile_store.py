"""Profile persistence: save/load the offline profiling artifact.

The paper stresses that compiler-aware profiling "is only done during the
offline phase and is therefore a one-time cost" (§IV-B).  This module
makes that concrete: profiled timings are written to JSON once, and later
engine runs reload them instead of re-measuring.  Compiled modules are
*not* stored — compilation is deterministic and cheap, so loading
recompiles per device and attaches the stored timings.

A fingerprint of the partition (subgraph ids + op multisets) guards
against applying stale profiles to a changed model.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Mapping

from repro.compiler.pipeline import Compiler
from repro.compiler.target import CPU_TARGET, GPU_TARGET
from repro.core.phases import PhasedPartition
from repro.core.profiler import SubgraphProfile
from repro.errors import ProfilingError

__all__ = ["partition_fingerprint", "save_profiles", "load_profiles"]

_TARGETS = {"cpu": CPU_TARGET, "gpu": GPU_TARGET}


def partition_fingerprint(partition: PhasedPartition) -> str:
    """Stable digest of the partition's structure."""
    h = hashlib.sha256()
    for sg in partition.subgraphs:
        ops = sorted(sg.graph.node(n).op or "" for n in sg.node_ids)
        h.update(sg.id.encode())
        h.update(",".join(ops).encode())
        h.update(str(sorted(sg.boundary_inputs)).encode())
        h.update(str(sorted(sg.boundary_outputs)).encode())
    return h.hexdigest()[:16]


def save_profiles(
    partition: PhasedPartition,
    profiles: Mapping[str, SubgraphProfile],
    path: str | Path,
) -> None:
    """Write the profiling artifact to ``path`` (JSON)."""
    payload = {
        "fingerprint": partition_fingerprint(partition),
        "profiles": {
            sid: {
                "mean_time": dict(prof.mean_time),
                "bytes_in": prof.bytes_in,
                "bytes_out": prof.bytes_out,
            }
            for sid, prof in profiles.items()
        },
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_profiles(
    partition: PhasedPartition,
    path: str | Path,
    compiler: Compiler | None = None,
) -> dict[str, SubgraphProfile]:
    """Reload a profiling artifact for ``partition``.

    Modules are recompiled (deterministic); timings come from the file.
    Raises :class:`ProfilingError` on fingerprint mismatch or missing
    subgraphs.
    """
    compiler = compiler or Compiler()
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ProfilingError(f"cannot read profile artifact {path}: {exc}") from exc

    if not isinstance(payload, dict):
        raise ProfilingError(
            f"profile artifact {path} is malformed: top-level payload is "
            f"not an object"
        )
    expected = partition_fingerprint(partition)
    if payload.get("fingerprint") != expected:
        raise ProfilingError(
            "profile artifact does not match this partition "
            f"(artifact {payload.get('fingerprint')!r}, expected {expected!r}); "
            "re-run the profiler"
        )
    stored = payload.get("profiles")
    if not isinstance(stored, dict):
        raise ProfilingError(
            f"profile artifact {path} is malformed: missing 'profiles' table"
        )
    profiles: dict[str, SubgraphProfile] = {}
    for sg in partition.subgraphs:
        if sg.id not in stored:
            raise ProfilingError(f"artifact misses subgraph {sg.id!r}")
        entry = _validated_entry(sg.id, stored[sg.id], path)
        modules = {
            dev: compiler.compile(sg.graph, target)
            for dev, target in _TARGETS.items()
        }
        profiles[sg.id] = SubgraphProfile(
            subgraph=sg,
            modules=modules,
            mean_time={k: float(v) for k, v in entry["mean_time"].items()},
            stats=None,
            bytes_in=float(entry["bytes_in"]),
            bytes_out=float(entry["bytes_out"]),
        )
    return profiles


def _validated_entry(sid: str, entry: object, path: str | Path) -> dict:
    """Check one stored profile entry's shape, raising ProfilingError."""
    if not isinstance(entry, dict):
        raise ProfilingError(
            f"profile artifact {path} is malformed: entry for subgraph "
            f"{sid!r} is not an object"
        )
    mean_time = entry.get("mean_time")
    if not isinstance(mean_time, dict) or not set(_TARGETS) <= set(mean_time):
        raise ProfilingError(
            f"profile artifact {path} is malformed: subgraph {sid!r} needs "
            f"'mean_time' entries for {sorted(_TARGETS)}"
        )
    for field in ("bytes_in", "bytes_out"):
        if not isinstance(entry.get(field), (int, float)):
            raise ProfilingError(
                f"profile artifact {path} is malformed: subgraph {sid!r} "
                f"misses numeric {field!r}"
            )
    for dev, value in mean_time.items():
        if not isinstance(value, (int, float)):
            raise ProfilingError(
                f"profile artifact {path} is malformed: subgraph {sid!r} "
                f"has non-numeric mean_time for {dev!r}"
            )
    return entry
