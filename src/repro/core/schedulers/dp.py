"""Analytic dynamic-programming placement (paper §IV-C's alternative).

The paper notes placement could be decided analytically with dynamic
programming over profiled compute and communication costs (their ref [24],
Jia et al.), but argues measured end-to-end refinement is more robust
because *estimated* communication is error-prone.  This module implements
that analytic DP so the claim can be tested:

* state: the device assignment vector of one phase's subgraphs;
* transition: estimated phase makespan (per-device compute sums) plus
  estimated PCIe time for every tensor crossing devices between the
  previous phase and this one, plus host-landing transfers for any model
  output the phase produces on the GPU;
* assumptions (the standard layer-wise-DP simplifications): phases run
  with barriers between them, and each phase consumes data only from its
  immediate predecessor (older producers are priced as host-resident).

Because every cost term depends on at most the previous and the current
phase's assignments, the objective decomposes over consecutive phases and
the DP is *exact* for it: :func:`dp_placement` returns the true minimum
of :func:`estimate_placement_cost` over all 2^n placements (the
differential test suite brute-forces this equivalence).  The estimate
itself remains an approximation of the real executor — there are no
phase barriers, and consumers may reach further back — which is exactly
the kind of model/reality gap the paper's measured correction sidesteps.
"""

from __future__ import annotations

import itertools
from typing import Callable, Mapping

from repro.core.phases import PhasedPartition
from repro.core.profiler import SubgraphProfile
from repro.devices.machine import Machine
from repro.errors import SchedulingError
from repro.ir.graph import Graph

__all__ = ["dp_placement", "estimate_placement_cost"]

_DEVICES = ("cpu", "gpu")


def _make_phase_cost(
    graph: Graph,
    partition: PhasedPartition,
    profiles: Mapping[str, SubgraphProfile],
    machine: Machine,
) -> Callable:
    """Build the shared per-phase analytic cost function.

    The returned callable prices one phase under ``assignment`` (its own
    subgraph -> device map) given ``prev_assignment`` (the immediately
    preceding phase's map): per-device compute makespan, incoming PCIe
    transfers, and host-landing transfers for model outputs the phase
    produces on the GPU.  Charging the landing in the *producing* phase
    (rather than after the DP) keeps the total objective decomposable
    over consecutive phases, which is what makes the DP exact.
    """
    link = machine.interconnect

    producer: dict[str, str] = {}
    for sg in partition.subgraphs:
        for out in sg.boundary_outputs:
            producer[out] = sg.id
    phase_of = {
        sg.id: phase.index for phase in partition.phases for sg in phase.subgraphs
    }

    # Host-landing cost each subgraph owes if it computes model outputs
    # on the GPU (one transfer per declared output tensor).
    landing: dict[str, float] = {}
    for out in graph.outputs:
        src = producer.get(out)
        if src is not None:
            n_bytes = float(
                partition.subgraph(src).graph.node(out).ty.size_bytes
            )
            landing[src] = landing.get(src, 0.0) + link.transfer_time(n_bytes)

    def phase_cost(
        phase, assignment: Mapping[str, str], prev_assignment: Mapping[str, str]
    ) -> float:
        compute = {"cpu": 0.0, "gpu": 0.0}
        comm = 0.0
        for sg in phase.subgraphs:
            dev = assignment[sg.id]
            compute[dev] += profiles[sg.id].time_on(dev)
            if dev == "gpu":
                comm += landing.get(sg.id, 0.0)
            for tensor in sg.boundary_inputs:
                n_bytes = float(sg.graph.node(tensor).ty.size_bytes)
                src = producer.get(tensor)
                if src is None:
                    src_dev = "cpu"  # model input: host resident
                elif phase_of[src] == phase.index - 1 and prev_assignment:
                    src_dev = prev_assignment[src]
                elif phase_of[src] == phase.index:
                    continue  # intra-phase edges cannot exist (independent)
                else:
                    src_dev = "cpu"  # older producer: approximate as host
                if src_dev != dev:
                    comm += link.transfer_time(n_bytes)
        return max(compute.values()) + comm

    return phase_cost


def estimate_placement_cost(
    graph: Graph,
    partition: PhasedPartition,
    profiles: Mapping[str, SubgraphProfile],
    machine: Machine,
    placement: Mapping[str, str],
) -> float:
    """The analytic objective :func:`dp_placement` minimizes, evaluated
    for one complete placement.

    This is the reference the conformance suite brute-forces: for every
    placement of a small instance, ``min(estimate_placement_cost)`` must
    equal the cost :func:`dp_placement` returns.
    """
    phase_cost = _make_phase_cost(graph, partition, profiles, machine)
    total = 0.0
    prev_assignment: dict[str, str] = {}
    for phase in partition.phases:
        assignment = {sg.id: placement[sg.id] for sg in phase.subgraphs}
        total += phase_cost(phase, assignment, prev_assignment)
        prev_assignment = assignment
    return total


def dp_placement(
    graph: Graph,
    partition: PhasedPartition,
    profiles: Mapping[str, SubgraphProfile],
    machine: Machine,
    max_phase_subgraphs: int = 10,
) -> tuple[dict[str, str], float]:
    """Analytically optimal placement under the DP assumptions.

    Returns the placement and the DP's *estimated* latency (which the
    caller should re-measure with the simulator — the estimate embeds the
    barrier and immediate-predecessor approximations).
    """
    phases = partition.phases
    for phase in phases:
        if len(phase.subgraphs) > max_phase_subgraphs:
            raise SchedulingError(
                f"phase {phase.index} has {len(phase.subgraphs)} subgraphs; "
                f"DP enumerates 2^k assignments (cap {max_phase_subgraphs})"
            )
    phase_cost = _make_phase_cost(graph, partition, profiles, machine)

    # DP over phases.  best[assignment] = (cost so far, placement so far)
    best: dict[tuple, tuple[float, dict[str, str]]] = {(): (0.0, {})}
    prev_phase = None
    for phase in phases:
        ids = [sg.id for sg in phase.subgraphs]
        new_best: dict[tuple, tuple[float, dict[str, str]]] = {}
        for devices in itertools.product(_DEVICES, repeat=len(ids)):
            assignment = dict(zip(ids, devices))
            for prev_key, (cost, placement) in best.items():
                prev_assignment = (
                    dict(zip([sg.id for sg in prev_phase.subgraphs], prev_key))
                    if prev_phase is not None
                    else {}
                )
                total = cost + phase_cost(phase, assignment, prev_assignment)
                if devices not in new_best or total < new_best[devices][0]:
                    new_placement = dict(placement)
                    new_placement.update(assignment)
                    new_best[devices] = (total, new_placement)
        best = new_best
        prev_phase = phase

    final_cost, final_placement = min(best.values(), key=lambda kv: kv[0])
    return final_placement, final_cost
