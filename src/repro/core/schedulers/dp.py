"""Analytic dynamic-programming placement (paper §IV-C's alternative).

The paper notes placement could be decided analytically with dynamic
programming over profiled compute and communication costs (their ref [24],
Jia et al.), but argues measured end-to-end refinement is more robust
because *estimated* communication is error-prone.  This module implements
that analytic DP so the claim can be tested:

* state: the device assignment vector of one phase's subgraphs;
* transition: estimated phase makespan (per-device compute sums) plus
  estimated PCIe time for every tensor crossing devices between the
  previous phase and this one;
* assumptions (the standard layer-wise-DP simplifications): phases run
  with barriers between them, and each phase consumes data only from its
  immediate predecessor (older producers are priced as host-resident).

Both assumptions are *approximations* of the real executor — there are no
phase barriers, and consumers may reach further back — which is exactly
the kind of model/reality gap the paper's measured correction sidesteps.
"""

from __future__ import annotations

import itertools
from typing import Mapping

from repro.core.phases import PhasedPartition
from repro.core.profiler import SubgraphProfile
from repro.devices.machine import Machine
from repro.errors import SchedulingError
from repro.ir.graph import Graph

__all__ = ["dp_placement"]

_DEVICES = ("cpu", "gpu")


def dp_placement(
    graph: Graph,
    partition: PhasedPartition,
    profiles: Mapping[str, SubgraphProfile],
    machine: Machine,
    max_phase_subgraphs: int = 10,
) -> tuple[dict[str, str], float]:
    """Analytically optimal placement under the DP assumptions.

    Returns the placement and the DP's *estimated* latency (which the
    caller should re-measure with the simulator — the estimate embeds the
    barrier and immediate-predecessor approximations).
    """
    link = machine.interconnect
    phases = partition.phases
    for phase in phases:
        if len(phase.subgraphs) > max_phase_subgraphs:
            raise SchedulingError(
                f"phase {phase.index} has {len(phase.subgraphs)} subgraphs; "
                f"DP enumerates 2^k assignments (cap {max_phase_subgraphs})"
            )

    # Producer lookup: boundary tensor id -> subgraph id.
    producer: dict[str, str] = {}
    for sg in partition.subgraphs:
        for out in sg.boundary_outputs:
            producer[out] = sg.id
    phase_of = {sg.id: phase.index for phase in phases for sg in phase.subgraphs}

    def phase_cost(phase, assignment, prev_assignment) -> float:
        """Estimated makespan of one phase under a device assignment."""
        compute = {"cpu": 0.0, "gpu": 0.0}
        comm = 0.0
        for sg, dev in zip(phase.subgraphs, assignment):
            compute[dev] += profiles[sg.id].time_on(dev)
            for tensor in sg.boundary_inputs:
                n_bytes = float(sg.graph.node(tensor).ty.size_bytes)
                src = producer.get(tensor)
                if src is None:
                    src_dev = "cpu"  # model input: host resident
                elif phase_of[src] == phase.index - 1 and prev_assignment:
                    src_dev = prev_assignment[src]
                elif phase_of[src] == phase.index:
                    continue  # intra-phase edges cannot exist (independent)
                else:
                    src_dev = "cpu"  # older producer: approximate as host
                if src_dev != dev:
                    comm += link.transfer_time(n_bytes)
        return max(compute.values()) + comm

    # DP over phases.  best[assignment] = (cost so far, placement so far)
    best: dict[tuple, tuple[float, dict[str, str]]] = {(): (0.0, {})}
    prev_phase = None
    for phase in phases:
        ids = [sg.id for sg in phase.subgraphs]
        new_best: dict[tuple, tuple[float, dict[str, str]]] = {}
        for assignment in itertools.product(_DEVICES, repeat=len(ids)):
            for prev_key, (cost, placement) in best.items():
                prev_assignment = (
                    dict(zip([sg.id for sg in prev_phase.subgraphs], prev_key))
                    if prev_phase is not None
                    else {}
                )
                step = phase_cost(phase, assignment, prev_assignment)
                total = cost + step
                if (
                    assignment not in new_best
                    or total < new_best[assignment][0]
                ):
                    new_placement = dict(placement)
                    new_placement.update(zip(ids, assignment))
                    new_best[assignment] = (total, new_placement)
        best = new_best
        prev_phase = phase

    # Account for final outputs landing on the host.
    final_cost = float("inf")
    final_placement: dict[str, str] | None = None
    for assignment, (cost, placement) in best.items():
        extra = 0.0
        for out in graph.outputs:
            src = producer.get(out)
            if src is not None and placement[src] == "gpu":
                n_bytes = float(
                    partition.subgraph(src).graph.node(out).ty.size_bytes
                )
                extra += link.transfer_time(n_bytes)
        if cost + extra < final_cost:
            final_cost = cost + extra
            final_placement = placement
    assert final_placement is not None
    return final_placement, final_cost
