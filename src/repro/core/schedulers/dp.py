"""Analytic dynamic-programming placement (paper §IV-C's alternative).

The paper notes placement could be decided analytically with dynamic
programming over profiled compute and communication costs (their ref [24],
Jia et al.), but argues measured end-to-end refinement is more robust
because *estimated* communication is error-prone.  This module implements
that analytic DP so the claim can be tested:

* state: the device assignment vector of one phase's subgraphs;
* transition: estimated phase makespan (per-device compute sums) plus
  estimated PCIe time for every tensor crossing devices between the
  previous phase and this one, plus host-landing transfers for any model
  output the phase produces on the GPU;
* assumptions (the standard layer-wise-DP simplifications): phases run
  with barriers between them, and each phase consumes data only from its
  immediate predecessor (older producers are priced as host-resident).

Because every cost term depends on at most the previous and the current
phase's assignments, the objective decomposes over consecutive phases and
the DP is *exact* for it: :func:`dp_placement` returns the true minimum
of :func:`estimate_placement_cost` over all 2^n placements (the
differential test suite brute-forces this equivalence).  The estimate
itself remains an approximation of the real executor — there are no
phase barriers, and consumers may reach further back — which is exactly
the kind of model/reality gap the paper's measured correction sidesteps.
"""

from __future__ import annotations

import itertools
from typing import Callable, Mapping

from repro.core.phases import PhasedPartition
from repro.core.profiler import SubgraphProfile
from repro.devices.machine import Machine
from repro.errors import SchedulingError
from repro.ir.graph import Graph

__all__ = ["dp_placement", "estimate_placement_cost", "DP_MAX_DEVICES"]

#: Device-count threshold beyond which the ``dp`` policy falls back to
#: HEFT: the DP enumerates ``|devices|^k`` assignments per phase, so wide
#: meshes blow the state space long before wide phases do.
DP_MAX_DEVICES = 4


def _make_phase_cost(
    graph: Graph,
    partition: PhasedPartition,
    profiles: Mapping[str, SubgraphProfile],
    machine: Machine,
) -> Callable:
    """Build the shared per-phase analytic cost function.

    The returned callable prices one phase under ``assignment`` (its own
    subgraph -> device map) given ``prev_assignment`` (the immediately
    preceding phase's map): per-device compute makespan, incoming PCIe
    transfers, and host-landing transfers for model outputs the phase
    produces on the GPU.  Charging the landing in the *producing* phase
    (rather than after the DP) keeps the total objective decomposable
    over consecutive phases, which is what makes the DP exact.
    """
    device_names = machine.device_names
    host = machine.host

    producer: dict[str, str] = {}
    for sg in partition.subgraphs:
        for out in sg.boundary_outputs:
            producer[out] = sg.id
    phase_of = {
        sg.id: phase.index for phase in partition.phases for sg in phase.subgraphs
    }

    # Sizes of the model outputs each subgraph computes: a subgraph placed
    # off-host owes one landing transfer per declared output tensor, over
    # its own device's host link (so heterogeneous links price correctly).
    landing_bytes: dict[str, list[float]] = {}
    for out in graph.outputs:
        src = producer.get(out)
        if src is not None:
            n_bytes = float(
                partition.subgraph(src).graph.node(out).ty.size_bytes
            )
            landing_bytes.setdefault(src, []).append(n_bytes)

    def phase_cost(
        phase, assignment: Mapping[str, str], prev_assignment: Mapping[str, str]
    ) -> float:
        compute = {dev: 0.0 for dev in device_names}
        comm = 0.0
        for sg in phase.subgraphs:
            dev = assignment[sg.id]
            compute[dev] += profiles[sg.id].time_on(dev)
            if dev != host and sg.id in landing_bytes:
                host_link = machine.link(dev, host)
                cost = 0.0
                for n_bytes in landing_bytes[sg.id]:
                    cost += host_link.transfer_time(n_bytes)
                comm += cost
            for tensor in sg.boundary_inputs:
                n_bytes = float(sg.graph.node(tensor).ty.size_bytes)
                src = producer.get(tensor)
                if src is None:
                    src_dev = host  # model input: host resident
                elif phase_of[src] == phase.index - 1 and prev_assignment:
                    src_dev = prev_assignment[src]
                elif phase_of[src] == phase.index:
                    continue  # intra-phase edges cannot exist (independent)
                else:
                    src_dev = host  # older producer: approximate as host
                if src_dev != dev:
                    comm += machine.link(src_dev, dev).transfer_time(n_bytes)
        return max(compute.values()) + comm

    return phase_cost


def estimate_placement_cost(
    graph: Graph,
    partition: PhasedPartition,
    profiles: Mapping[str, SubgraphProfile],
    machine: Machine,
    placement: Mapping[str, str],
) -> float:
    """The analytic objective :func:`dp_placement` minimizes, evaluated
    for one complete placement.

    This is the reference the conformance suite brute-forces: for every
    placement of a small instance, ``min(estimate_placement_cost)`` must
    equal the cost :func:`dp_placement` returns.
    """
    phase_cost = _make_phase_cost(graph, partition, profiles, machine)
    total = 0.0
    prev_assignment: dict[str, str] = {}
    for phase in partition.phases:
        assignment = {sg.id: placement[sg.id] for sg in phase.subgraphs}
        total += phase_cost(phase, assignment, prev_assignment)
        prev_assignment = assignment
    return total


def dp_placement(
    graph: Graph,
    partition: PhasedPartition,
    profiles: Mapping[str, SubgraphProfile],
    machine: Machine,
    max_phase_subgraphs: int = 10,
) -> tuple[dict[str, str], float]:
    """Analytically optimal placement under the DP assumptions.

    Returns the placement and the DP's *estimated* latency (which the
    caller should re-measure with the simulator — the estimate embeds the
    barrier and immediate-predecessor approximations).
    """
    phases = partition.phases
    device_names = machine.device_names
    for phase in phases:
        k = len(phase.subgraphs)
        if len(device_names) ** k > 2 ** max_phase_subgraphs:
            raise SchedulingError(
                f"phase {phase.index} has {k} subgraphs on "
                f"{len(device_names)} devices; DP enumerates |devices|^k "
                f"assignments (cap 2^{max_phase_subgraphs} states)"
            )
    phase_cost = _make_phase_cost(graph, partition, profiles, machine)

    # DP over phases.  best[assignment] = (cost so far, placement so far)
    best: dict[tuple, tuple[float, dict[str, str]]] = {(): (0.0, {})}
    prev_phase = None
    for phase in phases:
        ids = [sg.id for sg in phase.subgraphs]
        new_best: dict[tuple, tuple[float, dict[str, str]]] = {}
        for devices in itertools.product(device_names, repeat=len(ids)):
            assignment = dict(zip(ids, devices))
            for prev_key, (cost, placement) in best.items():
                prev_assignment = (
                    dict(zip([sg.id for sg in prev_phase.subgraphs], prev_key))
                    if prev_phase is not None
                    else {}
                )
                total = cost + phase_cost(phase, assignment, prev_assignment)
                if devices not in new_best or total < new_best[devices][0]:
                    new_placement = dict(placement)
                    new_placement.update(assignment)
                    new_best[devices] = (total, new_placement)
        best = new_best
        prev_phase = phase

    final_cost, final_placement = min(best.values(), key=lambda kv: kv[0])
    return final_placement, final_cost
