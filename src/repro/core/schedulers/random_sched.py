"""Random placement baseline (paper §VI-C)."""

from __future__ import annotations

import numpy as np

from repro.core.phases import PhasedPartition

__all__ = ["random_placement"]


def random_placement(
    partition: PhasedPartition, rng: np.random.Generator
) -> dict[str, str]:
    """Assign every subgraph to CPU or GPU uniformly at random."""
    return {
        sg.id: ("cpu" if rng.random() < 0.5 else "gpu")
        for sg in partition.subgraphs
    }
