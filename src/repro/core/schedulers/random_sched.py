"""Random placement baseline (paper §VI-C)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.phases import PhasedPartition

__all__ = ["random_placement"]


def random_placement(
    partition: PhasedPartition,
    rng: np.random.Generator,
    devices: Sequence[str] = ("cpu", "gpu"),
) -> dict[str, str]:
    """Assign every subgraph to one of ``devices`` uniformly at random.

    One uniform draw per subgraph, bucketed over the device list — with
    two devices this consumes the generator exactly like the historical
    ``"cpu" if rng.random() < 0.5 else "gpu"``, so seeded baselines
    reproduce bit-identically on the default machine.
    """
    n = len(devices)
    return {
        sg.id: devices[min(int(rng.random() * n), n - 1)]
        for sg in partition.subgraphs
    }
