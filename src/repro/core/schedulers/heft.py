"""HEFT-style critical-path scheduling over the subgraph DAG.

Heterogeneous Earliest Finish Time (Topcuoglu et al.) is the classic
list-scheduling baseline the critical-path literature measures against;
"The TensorFlow Partitioning and Scheduling Problem: It's the Critical
Path!" (PAPERS.md) argues exactly this family often dominates learned or
enumerative placement on heterogeneous hardware.  Two steps:

1. **Upward rank.**  ``rank_u(n) = w(n) + max over successors s of
   (c(n, s) + rank_u(s))`` where ``w(n)`` is the subgraph's compute time
   averaged across devices and ``c(n, s)`` the expected link cost of the
   connecting tensor — ``transfer_time(bytes) / 2``, since the edge
   crosses devices in half the device-pair assignments of the 2-device
   machine.  Model outputs fold half a host-landing transfer into their
   producer's rank the same way.  Ranks strictly decrease along edges
   (``w > 0``), so descending rank order is a topological order.

2. **Earliest finish time.**  Subgraphs are placed in rank order on
   whichever device finishes them first, against per-device busy
   timelines and the shared serialized link (incoming copies of each
   candidate are tentatively reserved on the link in dependency order;
   only the chosen device's reservations commit).  The returned makespan
   estimate also prices host landings of off-host model outputs, mirroring
   the simulator's completion rule.

Costs come from the same compiler-aware profiles and interconnect model
every other policy uses, so tournament comparisons are apples-to-apples;
like the DP's estimate, the returned cost is *analytic* and callers
re-measure the placement with the latency oracle.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.phases import PhasedPartition
from repro.core.profiler import SubgraphProfile
from repro.devices.machine import Machine
from repro.errors import SchedulingError
from repro.ir.graph import Graph

__all__ = ["heft_placement", "upward_ranks"]


def _pair(a: str, b: str) -> tuple[str, str]:
    return (a, b) if a <= b else (b, a)


def _mean_transfer(machine: Machine, n_bytes: float) -> float:
    """Link transfer time averaged over every device pair (the expected
    cost of an edge whose endpoints are not yet placed)."""
    names = machine.device_names
    total, pairs = 0.0, 0
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            total += machine.link(a, b).transfer_time(n_bytes)
            pairs += 1
    return total / pairs if pairs else 0.0


class _SubgraphDag:
    """The inter-subgraph dependency structure HEFT schedules over."""

    def __init__(self, graph: Graph, partition: PhasedPartition):
        self.order = [sg.id for sg in partition.subgraphs]
        producer: dict[str, str] = {}
        for sg in partition.subgraphs:
            for out in sg.boundary_outputs:
                producer[out] = sg.id
        # sid -> [(pred sid | None for host, tensor key, bytes)]
        self.inputs: dict[str, list[tuple[str | None, str, float]]] = {}
        # sid -> {succ sid: max connecting-tensor bytes}
        self.succ_bytes: dict[str, dict[str, float]] = {
            sid: {} for sid in self.order
        }
        for sg in partition.subgraphs:
            entries = []
            for tensor in sg.boundary_inputs:
                n_bytes = float(sg.graph.node(tensor).ty.size_bytes)
                src = producer.get(tensor)
                if src is None and not graph.node(tensor).is_input:
                    raise SchedulingError(
                        f"boundary input {tensor!r} of subgraph {sg.id!r} "
                        "has no producer"
                    )
                entries.append((src, tensor, n_bytes))
                if src is not None:
                    prev = self.succ_bytes[src].get(sg.id, 0.0)
                    self.succ_bytes[src][sg.id] = max(prev, n_bytes)
            self.inputs[sg.id] = entries
        # Model outputs each subgraph produces: (tensor, bytes).
        self.outputs: dict[str, list[tuple[str, float]]] = {
            sid: [] for sid in self.order
        }
        for out in graph.outputs:
            src = producer.get(out)
            if src is None:
                raise SchedulingError(
                    f"model output {out!r} is not produced by any subgraph"
                )
            n_bytes = float(
                partition.subgraph(src).graph.node(out).ty.size_bytes
            )
            self.outputs[src].append((out, n_bytes))


def upward_ranks(
    graph: Graph,
    partition: PhasedPartition,
    profiles: Mapping[str, SubgraphProfile],
    machine: Machine,
) -> dict[str, float]:
    """Upward rank of every subgraph (the HEFT priority)."""
    dag = _SubgraphDag(graph, partition)
    devices = machine.device_names
    # Probability an edge crosses devices when both endpoints are drawn
    # uniformly from the mesh: (n-1)/n — the classic 1/2 on the pair.
    cross_prob = (len(devices) - 1) / len(devices)
    ranks: dict[str, float] = {}
    for sid in reversed(dag.order):  # plan order is topological
        prof = profiles[sid]
        w = sum(prof.time_on(d) for d in devices) / len(devices)
        tail = 0.0
        for succ, n_bytes in dag.succ_bytes[sid].items():
            tail = max(
                tail,
                cross_prob * _mean_transfer(machine, n_bytes) + ranks[succ],
            )
        for _tensor, n_bytes in dag.outputs[sid]:
            tail = max(tail, cross_prob * _mean_transfer(machine, n_bytes))
        ranks[sid] = w + tail
    return ranks


def heft_placement(
    graph: Graph,
    partition: PhasedPartition,
    profiles: Mapping[str, SubgraphProfile],
    machine: Machine,
) -> tuple[dict[str, str], float]:
    """HEFT placement of every subgraph; returns it with the analytic
    makespan of HEFT's own timeline (callers re-measure via the oracle)."""
    dag = _SubgraphDag(graph, partition)
    devices = machine.device_names
    host = machine.host
    ranks = upward_ranks(graph, partition, profiles, machine)
    # Descending rank; plan position breaks exact ties deterministically.
    position = {sid: i for i, sid in enumerate(dag.order)}
    schedule_order = sorted(dag.order, key=lambda s: (-ranks[s], position[s]))

    device_free = {d: 0.0 for d in devices}
    # Each device pair is its own serialized link with its own free cursor
    # (the 2-device machine has exactly one, recovering the scalar model).
    link_free: dict[tuple[str, str], float] = {}
    arrival: dict[tuple[str, str], float] = {}  # (tensor, dest) -> time
    finish: dict[str, float] = {}
    placed_on: dict[str, str] = {}

    def walk_inputs(sid: str, dest: str, commit: bool) -> float:
        """Latest input-availability on ``dest``; optionally commit the
        link reservations this requires."""
        cursors = dict(link_free)
        latest = 0.0
        for src, tensor, n_bytes in dag.inputs[sid]:
            produced_at = 0.0 if src is None else finish[src]
            produced_on = host if src is None else placed_on[src]
            if produced_on == dest:
                avail = produced_at
            else:
                cached = arrival.get((tensor, dest))
                if cached is not None:
                    avail = cached
                else:
                    pair = _pair(produced_on, dest)
                    start = max(cursors.get(pair, 0.0), produced_at)
                    avail = start + machine.link(
                        produced_on, dest
                    ).transfer_time(n_bytes)
                    cursors[pair] = avail
                    if commit:
                        arrival[(tensor, dest)] = avail
            latest = max(latest, avail)
        if commit:
            link_free.update(cursors)
        return latest

    for sid in schedule_order:
        prof = profiles[sid]
        best: tuple[float, float, str] | None = None  # (eft, exec, device)
        for dev in devices:
            ready = max(device_free[dev], walk_inputs(sid, dev, commit=False))
            eft = ready + prof.time_on(dev)
            cand = (eft, prof.time_on(dev), dev)
            if best is None or cand < best:
                best = cand
        _, _, dev = best
        ready = max(device_free[dev], walk_inputs(sid, dev, commit=True))
        done = ready + prof.time_on(dev)
        device_free[dev] = done
        finish[sid] = done
        placed_on[sid] = dev

    # Mirror the simulator's completion rule: model outputs land on host.
    makespan = 0.0
    for sid in dag.order:
        for tensor, n_bytes in dag.outputs[sid]:
            if placed_on[sid] == host:
                makespan = max(makespan, finish[sid])
                continue
            cached = arrival.get((tensor, host))
            if cached is None:
                pair = _pair(placed_on[sid], host)
                start = max(link_free.get(pair, 0.0), finish[sid])
                cached = start + machine.link(
                    placed_on[sid], host
                ).transfer_time(n_bytes)
                link_free[pair] = cached
                arrival[(tensor, host)] = cached
            makespan = max(makespan, cached)
    return placed_on, makespan
