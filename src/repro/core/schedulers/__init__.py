"""Baseline scheduling policies used in the paper's §VI-C comparison,
plus the HEFT critical-path scheduler from the tournament harness."""

from repro.core.schedulers.dp import dp_placement, estimate_placement_cost
from repro.core.schedulers.exhaustive import exhaustive_placement
from repro.core.schedulers.heft import heft_placement, upward_ranks
from repro.core.schedulers.random_sched import random_placement
from repro.core.schedulers.round_robin import round_robin_placement

__all__ = [
    "dp_placement",
    "estimate_placement_cost",
    "exhaustive_placement",
    "heft_placement",
    "upward_ranks",
    "random_placement",
    "round_robin_placement",
]
