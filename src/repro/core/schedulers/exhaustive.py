"""Exhaustive (Ideal) scheduling: enumerate every placement.

The paper uses this to verify greedy-correction finds the optimum when the
subgraph count is small enough (§VI-C); finding the optimal schedule in
general is NP-hard.
"""

from __future__ import annotations

import itertools
from typing import Mapping

from repro.core.phases import PhasedPartition
from repro.core.profiler import SubgraphProfile
from repro.devices.machine import Machine
from repro.errors import SchedulingError
from repro.ir.graph import Graph

__all__ = ["exhaustive_placement"]


def exhaustive_placement(
    graph: Graph,
    partition: PhasedPartition,
    profiles: Mapping[str, SubgraphProfile],
    machine: Machine,
    max_subgraphs: int = 16,
    oracle=None,
) -> tuple[dict[str, str], float]:
    """The latency-optimal placement by brute force.

    Raises :class:`SchedulingError` when the search space exceeds
    ``2 ** max_subgraphs``.  Pass a shared
    :class:`~repro.core.scheduler.LatencyOracle` so the enumeration
    measures under the same cost settings (and caches) as other policies.
    """
    from repro.core.scheduler import LatencyOracle

    ids = [sg.id for sg in partition.subgraphs]
    devices = machine.device_names
    if len(devices) ** len(ids) > 2 ** max_subgraphs:
        raise SchedulingError(
            f"{len(ids)} subgraphs on {len(devices)} devices exceed the "
            f"exhaustive-search cap (2^{max_subgraphs} states); the space "
            "is |devices|^n"
        )
    if oracle is None:
        # Every enumerated placement is distinct, so memoization buys
        # nothing here — but the oracle's cached task specs and
        # timing-only simulation make each measurement much cheaper.
        oracle = LatencyOracle(graph, partition, profiles, machine, cache=False)
    best_placement: dict[str, str] | None = None
    best_latency = float("inf")
    for assignment in itertools.product(devices, repeat=len(ids)):
        placement = dict(zip(ids, assignment))
        latency = oracle.measure(placement)
        if latency < best_latency:
            best_latency = latency
            best_placement = placement
    assert best_placement is not None
    return best_placement, best_latency
