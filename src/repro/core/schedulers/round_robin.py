"""Round-robin placement baseline (paper §VI-C): subgraphs cycle through
the machine's devices in partition order."""

from __future__ import annotations

from typing import Sequence

from repro.core.phases import PhasedPartition

__all__ = ["round_robin_placement"]


def round_robin_placement(
    partition: PhasedPartition, devices: Sequence[str] = ("cpu", "gpu")
) -> dict[str, str]:
    """Cycle device assignments across the subgraph sequence."""
    placement: dict[str, str] = {}
    for i, sg in enumerate(partition.subgraphs):
        placement[sg.id] = devices[i % len(devices)]
    return placement
