"""Round-robin placement baseline (paper §VI-C): subgraphs alternate
between CPU and GPU in partition order."""

from __future__ import annotations

from repro.core.phases import PhasedPartition

__all__ = ["round_robin_placement"]


def round_robin_placement(partition: PhasedPartition) -> dict[str, str]:
    """Alternate cpu/gpu assignments across the subgraph sequence."""
    placement: dict[str, str] = {}
    for i, sg in enumerate(partition.subgraphs):
        placement[sg.id] = "cpu" if i % 2 == 0 else "gpu"
    return placement
