"""Compiler-aware subgraph profiler (paper §IV-B).

For each subgraph the profiler builds a micro-benchmark: the subgraph is
treated as a standalone model, pushed through the *entire* compiler
pipeline (graph-level optimization + fusion + lowering) for each target,
and timed on each device.  Profiling therefore measures the cost of the
code that will actually run — not the cost of unoptimized operators, which
is what framework profilers report and why they mislead schedulers.

Profiling is an offline, one-time cost.  Mean execution times come from
the device cost model's expectation; optionally a number of noisy runs is
sampled (the paper uses ~500) to verify the measurement is stable and to
expose variance to the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.compiler.lowering import CompiledModule
from repro.compiler.pipeline import Compiler
from repro.compiler.target import CPU_TARGET, GPU_TARGET, Target
from repro.core.phases import PhasedPartition
from repro.core.subgraph import SubgraphInfo
from repro.devices.base import Device
from repro.devices.machine import Machine
from repro.errors import ProfilingError
from repro.runtime.measurement import LatencyStats

__all__ = ["SubgraphProfile", "CompilerAwareProfiler"]

_DEVICE_TARGETS = {"cpu": CPU_TARGET, "gpu": GPU_TARGET}


def device_target(device: Device) -> Target:
    """The compilation target of one mesh device (by its spec kind, so a
    ``gpu1`` Titan V compiles with the GPU backend)."""
    return _DEVICE_TARGETS.get(device.spec.kind) or Target(device.spec.kind)


@dataclass(frozen=True)
class SubgraphProfile:
    """Profiling record of one subgraph (paper Table II rows).

    Attributes:
        subgraph: the profiled subgraph.
        modules: device name -> module compiled for that device.
        mean_time: device name -> mean execution time (seconds).
        stats: device name -> sampled latency statistics (when sampling
            was requested).
        bytes_in / bytes_out: boundary activation sizes, used to reason
            about communication cost.
    """

    subgraph: SubgraphInfo
    modules: Mapping[str, CompiledModule]
    mean_time: Mapping[str, float]
    stats: Mapping[str, LatencyStats] | None
    bytes_in: float
    bytes_out: float

    def time_on(self, device: str) -> float:
        try:
            return self.mean_time[device]
        except KeyError as exc:
            raise ProfilingError(
                f"subgraph {self.subgraph.id!r} was not profiled on {device!r}"
            ) from exc

    @property
    def best_device(self) -> str:
        """The device with the smaller mean execution time."""
        return min(self.mean_time, key=lambda d: self.mean_time[d])

    @property
    def best_time(self) -> float:
        return min(self.mean_time.values())

    @property
    def worst_time(self) -> float:
        return max(self.mean_time.values())


def _module_exec_time(module: CompiledModule, device: Device) -> float:
    """Pure compute time of a module on a device (no link transfers —
    communication is the scheduler's concern, not the profiler's)."""
    return sum(device.kernel_time(k.cost) for k in module.kernels)


def _module_exec_sample(
    module: CompiledModule, device: Device, rng: np.random.Generator
) -> float:
    return sum(device.sample_kernel_time(k.cost, rng) for k in module.kernels)


@dataclass
class CompilerAwareProfiler:
    """Profiles subgraphs through the full compiler pipeline.

    Attributes:
        machine: devices to profile against.
        compiler: compiler configuration (opt level etc.).
        sample_runs: when > 0, additionally draw this many noisy samples
            per device and attach :class:`LatencyStats` (paper: 500 runs
            suffice for statistically stable measurements).
        seed: RNG seed for the sampled runs.
    """

    machine: Machine
    compiler: Compiler = field(default_factory=Compiler)
    sample_runs: int = 0
    seed: int = 0

    def profile(self, subgraph: SubgraphInfo) -> SubgraphProfile:
        """Compile and time one subgraph on every device."""
        modules: dict[str, CompiledModule] = {}
        mean_time: dict[str, float] = {}
        stats: dict[str, LatencyStats] = {}
        for device in self.machine.devices:
            dev_name = device.name
            target = device_target(device)
            try:
                module = self.compiler.compile(subgraph.graph, target)
            except Exception as exc:
                raise ProfilingError(
                    f"compiling subgraph {subgraph.id!r} for {dev_name} "
                    f"failed: {exc}"
                ) from exc
            modules[dev_name] = module
            mean_time[dev_name] = _module_exec_time(module, device)
            if self.sample_runs > 0:
                rng = np.random.default_rng(
                    np.random.SeedSequence(
                        [self.seed, abs(hash((subgraph.id, dev_name))) % 2**31]
                    )
                )
                samples = np.fromiter(
                    (
                        _module_exec_sample(module, device, rng)
                        for _ in range(self.sample_runs)
                    ),
                    dtype=np.float64,
                    count=self.sample_runs,
                )
                stats[dev_name] = LatencyStats.from_samples(samples)
        return SubgraphProfile(
            subgraph=subgraph,
            modules=modules,
            mean_time=mean_time,
            stats=stats if self.sample_runs > 0 else None,
            bytes_in=subgraph.bytes_in,
            bytes_out=subgraph.bytes_out,
        )

    def profile_partition(
        self, partition: PhasedPartition
    ) -> dict[str, SubgraphProfile]:
        """Profile every subgraph of a partition, keyed by subgraph id."""
        return {sg.id: self.profile(sg) for sg in partition.subgraphs}
