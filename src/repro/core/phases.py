"""Phased schedules (paper §IV-A).

A valid schedule is a sequence of phases S1, S2, ... where each phase is a
non-overlapping node subset, phases are totally ordered, and each phase is
either *sequential* (one chain subgraph) or *multi-path* (several
independent subgraphs that may run concurrently on different devices).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.subgraph import SubgraphInfo
from repro.errors import PartitionError

__all__ = ["PhaseType", "Phase", "PhasedPartition"]


class PhaseType(enum.Enum):
    """Phase flavour: one chain subgraph, or several independent ones."""

    SEQUENTIAL = "sequential"
    MULTI_PATH = "multi_path"


@dataclass(frozen=True)
class Phase:
    """One phase of the partition.

    Attributes:
        index: position in the phase ordering.
        type: sequential or multi-path.
        subgraphs: member subgraphs; exactly one for a sequential phase.
    """

    index: int
    type: PhaseType
    subgraphs: tuple[SubgraphInfo, ...]

    def __post_init__(self) -> None:
        if not self.subgraphs:
            raise PartitionError(f"phase {self.index} has no subgraphs")
        if self.type is PhaseType.SEQUENTIAL and len(self.subgraphs) != 1:
            raise PartitionError(
                f"sequential phase {self.index} must hold exactly one "
                f"subgraph, got {len(self.subgraphs)}"
            )


@dataclass(frozen=True)
class PhasedPartition:
    """A complete phased partition of a model graph."""

    phases: tuple[Phase, ...]

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for phase in self.phases:
            for sg in phase.subgraphs:
                overlap = seen & sg.node_ids
                if overlap:
                    raise PartitionError(
                        f"phases overlap on nodes {sorted(overlap)[:4]}"
                    )
                seen |= sg.node_ids

    @property
    def subgraphs(self) -> list[SubgraphInfo]:
        """All subgraphs in phase order."""
        return [sg for phase in self.phases for sg in phase.subgraphs]

    def subgraph(self, subgraph_id: str) -> SubgraphInfo:
        for sg in self.subgraphs:
            if sg.id == subgraph_id:
                return sg
        raise PartitionError(f"unknown subgraph {subgraph_id!r}")

    def multi_path_phases(self) -> list[Phase]:
        return [p for p in self.phases if p.type is PhaseType.MULTI_PATH]

    def covered_node_ids(self) -> set[str]:
        out: set[str] = set()
        for sg in self.subgraphs:
            out |= sg.node_ids
        return out
