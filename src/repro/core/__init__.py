"""DUET core: partitioning, profiling, scheduling, and the engine."""

from repro.core.engine import DuetEngine, DuetOptimization
from repro.core.nested import partition_graph_nested
from repro.core.online import AdaptiveDuetEngine, ServeRecord
from repro.core.profile_store import (
    load_profiles,
    partition_fingerprint,
    save_profiles,
)
from repro.core.partition import (
    find_separators,
    partition_graph,
    partition_per_operator,
)
from repro.core.phases import Phase, PhasedPartition, PhaseType
from repro.core.placement import (
    Placement,
    PlanAssembler,
    build_hetero_plan,
    validate_placement,
)
from repro.core.profiler import CompilerAwareProfiler, SubgraphProfile
from repro.core.scheduler import (
    GreedyCorrectionScheduler,
    LatencyOracle,
    ScheduleResult,
    correct_placement,
)
from repro.core.subgraph import SubgraphInfo, extract_subgraph

__all__ = [
    "AdaptiveDuetEngine",
    "ServeRecord",
    "CompilerAwareProfiler",
    "DuetEngine",
    "DuetOptimization",
    "GreedyCorrectionScheduler",
    "LatencyOracle",
    "Phase",
    "PhasedPartition",
    "PhaseType",
    "Placement",
    "PlanAssembler",
    "ScheduleResult",
    "SubgraphInfo",
    "SubgraphProfile",
    "build_hetero_plan",
    "correct_placement",
    "extract_subgraph",
    "find_separators",
    "partition_graph",
    "partition_graph_nested",
    "partition_per_operator",
    "load_profiles",
    "partition_fingerprint",
    "save_profiles",
    "validate_placement",
]
