"""Multi-level (nested) partitioning — the paper's footnote-1 future work.

The one-level partitioner treats each weakly-connected branch of a
multi-path phase as a single opaque subgraph.  Nested partitioning
recurses *into* branches that exceed a size threshold, exposing their
internal phase structure as additional top-level phases.  That creates
finer placement units (e.g. the q/k/v projections inside a transformer
attention block become separately placeable), at the cost of more
potential CPU↔GPU hand-offs and smaller fusion scopes — the trade-off the
paper predicts ("doing so will decrease the computation granularity and
incur more communication overhead").

The output is a flat :class:`~repro.core.phases.PhasedPartition` whose
phase sequence is a valid topological ordering of the units; the runtime
does not barrier between phases, so concurrency between a split branch's
internals and its sibling branches is preserved by the simulator's
dependency tracking.
"""

from __future__ import annotations

from repro.core.partition import find_separators, partition_graph
from repro.core.phases import Phase, PhasedPartition, PhaseType
from repro.core.subgraph import extract_subgraph
from repro.errors import PartitionError
from repro.ir.graph import Graph
from repro.ir.traversal import weakly_connected_components

__all__ = ["partition_graph_nested"]


def _split_component(
    graph: Graph, component: set[str], max_depth: int, min_split_ops: int
) -> list[tuple[PhaseType, list[set[str]]]]:
    """Recursively split one connected op-node set into (type, groups)
    units, each group being the node set of one future subgraph."""
    if max_depth <= 0 or len(component) < min_split_ops:
        return [(PhaseType.MULTI_PATH, [component])]

    # Analyze the component in isolation: extract it (ids are preserved)
    # and find its internal separators.
    iso = extract_subgraph(graph, component, "probe").graph
    separators = set(find_separators(iso))
    if not separators or separators == component:
        # No internal structure to expose (pure chain or no separators).
        return [(PhaseType.MULTI_PATH, [component])]

    order = [nid for nid in iso.topo_order() if iso.node(nid).is_op]
    units: list[tuple[PhaseType, list[set[str]]]] = []
    run: list[str] = []
    region: list[str] = []

    def flush_run() -> None:
        nonlocal run
        if run:
            units.append((PhaseType.SEQUENTIAL, [set(run)]))
            run = []

    def flush_region() -> None:
        nonlocal region
        if not region:
            return
        components = weakly_connected_components(iso, region)
        groups: list[set[str]] = []
        for comp in components:
            for _type, sub in _split_component(
                graph, comp, max_depth - 1, min_split_ops
            ):
                groups.extend(sub)
        units.append((PhaseType.MULTI_PATH, groups))
        region = []

    for nid in order:
        if nid in separators:
            flush_region()
            run.append(nid)
        else:
            flush_run()
            region.append(nid)
    flush_region()
    flush_run()
    return units


def partition_graph_nested(
    graph: Graph, max_depth: int = 1, min_split_ops: int = 12
) -> PhasedPartition:
    """Partition with up to ``max_depth`` levels of intra-branch splitting.

    Args:
        graph: the model graph.
        max_depth: extra levels below the top-level phases.  ``0`` is
            exactly :func:`~repro.core.partition.partition_graph`.
        min_split_ops: branches smaller than this stay whole.
    """
    if max_depth <= 0:
        return partition_graph(graph)
    graph = graph.pruned()
    base = partition_graph(graph)

    phases: list[Phase] = []
    index = 0

    def emit(ptype: PhaseType, groups: list[set[str]]) -> None:
        nonlocal index
        if ptype is PhaseType.SEQUENTIAL and len(groups) == 1:
            sg = extract_subgraph(graph, groups[0], f"n{index}_seq", index)
            phases.append(
                Phase(index=index, type=PhaseType.SEQUENTIAL, subgraphs=(sg,))
            )
        else:
            subgraphs = tuple(
                extract_subgraph(graph, grp, f"n{index}_b{i}", index)
                for i, grp in enumerate(groups)
            )
            phases.append(
                Phase(index=index, type=PhaseType.MULTI_PATH, subgraphs=subgraphs)
            )
        index += 1

    for phase in base.phases:
        if phase.type is PhaseType.SEQUENTIAL:
            emit(PhaseType.SEQUENTIAL, [set(phase.subgraphs[0].node_ids)])
            continue
        # Split each branch independently, then merge aligned units: the
        # k-th unit of every branch lands in the same emitted phase so
        # siblings stay placeable side by side.
        per_branch = [
            _split_component(
                graph, set(sg.node_ids), max_depth, min_split_ops
            )
            for sg in phase.subgraphs
        ]
        depth = max(len(u) for u in per_branch)
        for k in range(depth):
            groups: list[set[str]] = []
            for units in per_branch:
                if k < len(units):
                    groups.extend(units[k][1])
            if groups:
                emit(PhaseType.MULTI_PATH, groups)

    partition = PhasedPartition(phases=tuple(phases))
    covered = partition.covered_node_ids()
    expected = {n.id for n in graph.op_nodes()}
    if covered != expected:
        raise PartitionError(
            f"nested partition lost nodes: {sorted(expected - covered)[:5]}"
        )
    return partition
