"""Coarse-grained multi-phase graph partitioning (paper §IV-A).

The partitioner finds *separator* operators — nodes every source→sink path
passes through — and uses them as phase boundaries:

* a maximal run of consecutive separators (a chain) forms a **sequential**
  phase with one subgraph;
* the nodes strictly between two separators form a **multi-path** phase,
  one subgraph per weakly-connected component (the independent branches).

Separator detection uses the jump-edge criterion: fixing any topological
order of the op-only condensed graph, a node ``v`` is a separator iff no
edge ``(u, w)`` satisfies ``pos(u) < pos(v) < pos(w)``.  (If such an edge
existed, the path through it would bypass ``v``; conversely a true
separator can never be jumped in any topological order.)

Partitioning is deliberately one-level and coarse (footnote 1): each branch
stays whole so the DL compiler keeps its fusion opportunities and the
CPU↔GPU communication volume stays low (§III-B).
"""

from __future__ import annotations

from repro.core.phases import Phase, PhasedPartition, PhaseType
from repro.core.subgraph import extract_subgraph
from repro.errors import PartitionError
from repro.ir.graph import Graph
from repro.ir.traversal import weakly_connected_components

__all__ = ["partition_graph", "partition_per_operator", "find_separators"]


def _op_topo(graph: Graph) -> list[str]:
    return [nid for nid in graph.topo_order() if graph.node(nid).is_op]


def _op_edges(graph: Graph) -> list[tuple[str, str]]:
    """Edges of the condensed op-only graph (leaves are transparent)."""
    edges: list[tuple[str, str]] = []
    for nid in graph.topo_order():
        node = graph.node(nid)
        if not node.is_op:
            continue
        for src in node.inputs:
            if graph.node(src).is_op:
                edges.append((src, nid))
    return edges


def find_separators(graph: Graph) -> list[str]:
    """Op nodes every source→sink path of the op graph passes through."""
    order = _op_topo(graph)
    if not order:
        return []
    pos = {nid: i for i, nid in enumerate(order)}
    edges = _op_edges(graph)

    # For each position, the furthest endpoint over edges starting there;
    # a running maximum then tells whether any edge jumps position i.
    max_from: dict[int, int] = {}
    for u, w in edges:
        pu = pos[u]
        max_from[pu] = max(max_from.get(pu, 0), pos[w])

    # A separator must additionally come after every source and before
    # every sink of the op graph — otherwise a path that starts (or ends)
    # on the far side of it never crosses its position at all.
    has_op_pred = {w for _, w in edges}
    has_op_succ = {u for u, _ in edges}
    last_source = max(pos[n] for n in order if n not in has_op_pred)
    first_sink = min(pos[n] for n in order if n not in has_op_succ)

    running = 0
    separators: list[str] = []
    for i, nid in enumerate(order):
        if running <= i and last_source <= i <= first_sink:
            separators.append(nid)
        running = max(running, max_from.get(i, 0))
    return separators


def partition_graph(graph: Graph) -> PhasedPartition:
    """Partition ``graph`` into alternating sequential/multi-path phases.

    Dead operators (unreachable from the outputs) are pruned first — they
    would otherwise form subgraphs with no outputs, and a compiler would
    have eliminated them anyway.
    """
    graph = graph.pruned()
    order = _op_topo(graph)
    if not order:
        raise PartitionError("graph has no operator nodes to partition")
    pos = {nid: i for i, nid in enumerate(order)}
    separators = find_separators(graph)
    sep_set = set(separators)

    # Build the region sequence: runs of separators and the gaps between.
    phases: list[Phase] = []
    phase_index = 0

    def add_sequential(run: list[str]) -> None:
        nonlocal phase_index
        sg = extract_subgraph(
            graph, set(run), f"p{phase_index}_seq", phase_index
        )
        phases.append(
            Phase(index=phase_index, type=PhaseType.SEQUENTIAL, subgraphs=(sg,))
        )
        phase_index += 1

    def add_multipath(region: list[str]) -> None:
        nonlocal phase_index
        components = weakly_connected_components(graph, region)
        subgraphs = tuple(
            extract_subgraph(
                graph, comp, f"p{phase_index}_b{i}", phase_index
            )
            for i, comp in enumerate(components)
        )
        phases.append(
            Phase(
                index=phase_index, type=PhaseType.MULTI_PATH, subgraphs=subgraphs
            )
        )
        phase_index += 1

    run: list[str] = []  # current run of consecutive separators
    region: list[str] = []  # current non-separator region
    for nid in order:
        if nid in sep_set:
            if region:
                add_multipath(region)
                region = []
            run.append(nid)
        else:
            if run:
                add_sequential(run)
                run = []
            region.append(nid)
    if region:
        add_multipath(region)
    if run:
        add_sequential(run)

    partition = PhasedPartition(phases=tuple(phases))

    covered = partition.covered_node_ids()
    expected = set(order)
    if covered != expected:
        missing = expected - covered
        raise PartitionError(
            f"partition lost operator nodes: {sorted(missing)[:5]}"
        )
    return partition


def partition_per_operator(graph: Graph) -> PhasedPartition:
    """Operator-granularity partition: every op is its own subgraph.

    This is the *anti-pattern* the paper argues against (§III-B, related
    work on operator-level placement): it destroys cross-operator fusion
    (each one-op subgraph compiles alone) and maximizes the number of
    potential CPU-GPU hand-offs.  Used by the granularity ablation bench
    to quantify what coarse partitioning buys.
    """
    graph = graph.pruned()
    order = _op_topo(graph)
    if not order:
        raise PartitionError("graph has no operator nodes to partition")
    phases = []
    for i, nid in enumerate(order):
        sg = extract_subgraph(graph, {nid}, f"op{i}_{nid}", phase_index=i)
        phases.append(
            Phase(index=i, type=PhaseType.SEQUENTIAL, subgraphs=(sg,))
        )
    return PhasedPartition(phases=tuple(phases))
